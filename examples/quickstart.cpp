// quickstart — a five-minute tour of the libqsv public API.
//
//   build/examples/quickstart
//
// One include, the facade names, and the std wrappers you already
// know: the four faces of the QSV mechanism (mutex, reader-writer,
// timeout, episode barrier) plus the semaphore sugar, each on a tiny
// but real multi-threaded task — and the runtime waiting layer that
// picks how blocked threads wait (spin / yield / park / adaptive) per
// process or per instance, with no template in sight.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "harness/team.hpp"
#include "qsv/qsv.hpp"

using namespace std::chrono_literals;

int main() {
  std::printf("libqsv quickstart — the QSV mechanism in four moves\n\n");

  // 1. Exclusive entry: qsv::mutex is a drop-in mutex — std::lock_guard
  //    and std::scoped_lock work as-is. One word of state, FIFO
  //    handoff, waiters spin on their own cache line.
  {
    qsv::mutex mutex;
    long counter = 0;  // guarded by mutex
    qsv::harness::ThreadTeam::run(4, [&](std::size_t) {
      for (int i = 0; i < 100000; ++i) {
        std::lock_guard<qsv::mutex> guard(mutex);
        ++counter;
      }
    });
    std::printf("1. qsv::mutex:        4 threads x 100k increments = %ld "
                "(expected 400000)\n",
                counter);
  }

  // 2. Shared entry: qsv::shared_mutex under std::shared_lock /
  //    std::unique_lock. Readers are admitted in batches, writers take
  //    FIFO turns, neither side can starve.
  {
    qsv::shared_mutex rw;
    std::vector<int> config{1, 1};
    std::atomic<long> reads{0};
    qsv::harness::ThreadTeam::run(4, [&](std::size_t rank) {
      if (rank == 0) {
        for (int i = 0; i < 1000; ++i) {
          std::unique_lock guard(rw);
          config[0] = i;
          config[1] = i;  // writers keep the pair equal
        }
      } else {
        for (int i = 0; i < 30000; ++i) {
          std::shared_lock guard(rw);
          if (config[0] != config[1]) std::abort();  // torn read
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    std::printf("2. qsv::shared_mutex: %ld consistent snapshot reads under "
                "a writer\n",
                reads.load());
  }

  // 3. Bounded impatience: qsv::timed_mutex speaks try_lock_for and
  //    try_lock_until; a waiter that gives up splices itself out of
  //    the queue.
  {
    qsv::timed_mutex mutex;
    mutex.lock();
    std::thread impatient([&] {
      if (!mutex.try_lock_for(2ms)) {
        std::printf("3. qsv::timed_mutex:  waiter withdrew after 2ms as "
                    "expected\n");
      }
    });
    impatient.join();
    mutex.unlock();
  }

  // 4. Episode synchronization: the same queue-node machinery as the
  //    mutex, used as a barrier — with std::barrier's arrive_and_drop
  //    for members that leave early.
  {
    constexpr std::size_t kTeam = 4, kPhases = 1000;
    qsv::barrier barrier(kTeam);
    std::atomic<long> sum{0};
    std::atomic<bool> ragged{false};
    qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
      for (std::size_t p = 1; p <= kPhases; ++p) {
        sum.fetch_add(1);
        barrier.arrive_and_wait(rank);
        if (sum.load() != static_cast<long>(kTeam * p)) ragged.store(true);
        barrier.arrive_and_wait(rank);
      }
      barrier.arrive_and_drop(rank);  // leave the team cleanly
    });
    std::printf("4. qsv::barrier:      %zu episodes, phases %s, team now "
                "%zu\n",
                kPhases, ragged.load() ? "RAGGED (bug!)" : "perfectly aligned",
                barrier.team_size());
  }

  // 5. Sugar: FIFO counting semaphore.
  {
    qsv::counting_semaphore permits(2);
    std::atomic<int> peak{0}, inside{0};
    qsv::harness::ThreadTeam::run(6, [&](std::size_t) {
      for (int i = 0; i < 1000; ++i) {
        permits.acquire();
        const int now = inside.fetch_add(1) + 1;
        int expect = peak.load();
        while (now > expect && !peak.compare_exchange_weak(expect, now)) {
        }
        inside.fetch_sub(1);
        permits.release();
      }
    });
    std::printf("5. qsv::counting_semaphore: 6 threads, 2 permits, observed "
                "peak concurrency = %d\n",
                peak.load());
  }

  // 6. The waiting layer: how blocked threads wait is runtime state —
  //    per process (also via the QSV_WAIT env var) and per instance.
  //    Same protocol, same types; only the terminal wait changes.
  {
    qsv::set_default_wait_policy(qsv::wait_policy::adaptive);
    qsv::mutex tuned;                            // adaptive (the default now)
    qsv::mutex parked(qsv::wait_policy::park);   // pinned per instance
    long counter = 0;  // guarded by both locks in turn
    qsv::harness::ThreadTeam::run(4, [&](std::size_t) {
      for (int i = 0; i < 20000; ++i) {
        std::scoped_lock guard(tuned, parked);
        ++counter;
      }
    });
    qsv::set_default_wait_policy(qsv::wait_policy::spin);  // restore
    std::printf("6. qsv::wait_policy:  adaptive + park locks agreed on %ld "
                "(expected 80000)\n",
                counter);
  }

  std::printf("\nAll quickstart invariants held.\n");
  return 0;
}
