// quickstart — a five-minute tour of the libqsv public API.
//
//   build/examples/quickstart
//
// Shows the four faces of the QSV mechanism (mutex, reader-writer,
// timeout, episode barrier) plus the semaphore/condvar sugar, each on a
// tiny but real multi-threaded task.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/syncvar.hpp"
#include "harness/team.hpp"
#include "locks/lock_concept.hpp"
#include "rwlocks/rw_concept.hpp"

using namespace std::chrono_literals;

int main() {
  std::printf("libqsv quickstart — the QSV mechanism in four moves\n\n");

  // 1. Exclusive entry: QsvMutex is a drop-in mutex. One word of state,
  //    FIFO handoff, waiters spin on their own cache line.
  {
    qsv::core::QsvMutex<> mutex;
    long counter = 0;  // guarded by mutex
    qsv::harness::ThreadTeam::run(4, [&](std::size_t) {
      for (int i = 0; i < 100000; ++i) {
        qsv::locks::Guard guard(mutex);
        ++counter;
      }
    });
    std::printf("1. QsvMutex:       4 threads x 100k increments = %ld "
                "(expected 400000)\n",
                counter);
  }

  // 2. Shared entry: readers are admitted in batches, writers take FIFO
  //    turns, neither side can starve.
  {
    qsv::core::QsvRwLock<> rw;
    std::vector<int> config{1, 1};
    std::atomic<long> reads{0};
    qsv::harness::ThreadTeam::run(4, [&](std::size_t rank) {
      if (rank == 0) {
        for (int i = 0; i < 1000; ++i) {
          qsv::rwlocks::ExclusiveGuard guard(rw);
          config[0] = i;
          config[1] = i;  // writers keep the pair equal
        }
      } else {
        for (int i = 0; i < 30000; ++i) {
          qsv::rwlocks::SharedGuard guard(rw);
          if (config[0] != config[1]) std::abort();  // torn read
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    std::printf("2. QsvRwLock:      %ld consistent snapshot reads under a "
                "writer\n",
                reads.load());
  }

  // 3. Bounded impatience: a waiter can give up; the queue splices
  //    around the abandoned node.
  {
    qsv::core::QsvTimeoutMutex mutex;
    mutex.lock();
    std::thread impatient([&] {
      if (!mutex.try_lock_for(2ms)) {
        std::printf("3. QsvTimeoutMutex: waiter withdrew after 2ms as "
                    "expected\n");
      }
    });
    impatient.join();
    mutex.unlock();
  }

  // 4. Episode synchronization: the same queue-node machinery as the
  //    mutex, used as a barrier.
  {
    constexpr std::size_t kTeam = 4, kPhases = 1000;
    qsv::core::QsvBarrier<> barrier(kTeam);
    std::atomic<long> sum{0};
    std::atomic<bool> ragged{false};
    qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
      for (std::size_t p = 1; p <= kPhases; ++p) {
        sum.fetch_add(1);
        barrier.arrive_and_wait(rank);
        if (sum.load() != static_cast<long>(kTeam * p)) ragged.store(true);
        barrier.arrive_and_wait(rank);
      }
    });
    std::printf("4. QsvBarrier:     %zu episodes, phases %s\n", kPhases,
                ragged.load() ? "RAGGED (bug!)" : "perfectly aligned");
  }

  // 5. Sugar: FIFO semaphore + condition variable.
  {
    qsv::core::QsvSemaphore permits(2);
    std::atomic<int> peak{0}, inside{0};
    qsv::harness::ThreadTeam::run(6, [&](std::size_t) {
      for (int i = 0; i < 1000; ++i) {
        permits.acquire();
        const int now = inside.fetch_add(1) + 1;
        int expect = peak.load();
        while (now > expect && !peak.compare_exchange_weak(expect, now)) {
        }
        inside.fetch_sub(1);
        permits.release();
      }
    });
    std::printf("5. QsvSemaphore:   6 threads, 2 permits, observed peak "
                "concurrency = %d\n",
                peak.load());
  }

  std::printf("\nAll quickstart invariants held.\n");
  return 0;
}
