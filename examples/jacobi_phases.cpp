// jacobi_phases — bulk-synchronous computation on the QSV episode
// barrier.
//
//   build/examples/jacobi_phases [cells] [threads] [phases]
//
// A 1-D Jacobi smoother: each thread owns a strip, every phase reads the
// neighbours' previous-phase halo, so the computation is correct iff the
// barrier is. The parallel result is checked bit-exactly against the
// serial reference, and the episode barrier is raced against the central
// counter barrier for a quick in-example comparison.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "barriers/central.hpp"
#include "core/qsv_barrier.hpp"
#include "harness/team.hpp"
#include "platform/timing.hpp"
#include "workload/phases.hpp"

namespace {

template <typename Barrier>
double run_parallel(std::size_t cells, std::size_t threads,
                    std::size_t phases,
                    const std::vector<std::int64_t>& input,
                    std::vector<std::int64_t>* result) {
  std::vector<std::int64_t> a = input, b(cells);
  Barrier barrier(threads);
  const auto t0 = qsv::platform::now_ns();
  qsv::harness::ThreadTeam::run(threads, [&](std::size_t rank) {
    const std::size_t lo = cells * rank / threads;
    const std::size_t hi = cells * (rank + 1) / threads;
    auto* src = &a;
    auto* dst = &b;
    for (std::size_t p = 0; p < phases; ++p) {
      qsv::workload::smooth_strip(*src, *dst, lo, hi);
      barrier.arrive_and_wait(rank);
      std::swap(src, dst);
      barrier.arrive_and_wait(rank);
    }
  });
  const auto dt = qsv::platform::now_ns() - t0;
  *result = phases % 2 == 0 ? a : b;
  return static_cast<double>(dt) * 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cells = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 1 << 16;
  const std::size_t threads = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : 4;
  const std::size_t phases = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 200;

  const auto input = qsv::workload::phase_input(cells);
  const auto expected = qsv::workload::smooth_serial(input, phases);

  std::vector<std::int64_t> got_qsv, got_central;
  const double ms_qsv = run_parallel<qsv::core::QsvBarrier<>>(
      cells, threads, phases, input, &got_qsv);
  const double ms_central = run_parallel<qsv::barriers::CentralBarrier<>>(
      cells, threads, phases, input, &got_central);

  const bool ok_qsv = got_qsv == expected;
  const bool ok_central = got_central == expected;
  std::printf("jacobi_phases: %zu cells, %zu threads, %zu phases\n", cells,
              threads, phases);
  std::printf("  qsv-episode barrier : %8.2f ms  result %s\n", ms_qsv,
              ok_qsv ? "exact" : "WRONG");
  std::printf("  central barrier     : %8.2f ms  result %s\n", ms_central,
              ok_central ? "exact" : "WRONG");
  return ok_qsv && ok_central ? 0 : 1;
}
