// rw_cache — a read-mostly configuration cache under QSV shared mode.
//
//   build/examples/rw_cache [threads] [seconds]
//
// A key-value table serving a 99%-read workload, guarded by
// qsv::shared_mutex through the std RAII wrappers (std::shared_lock
// for readers, std::unique_lock for the refresher). Every read
// validates the table's internal checksum, so any admission bug is
// caught on the spot. The same workload is run over the centralized
// QSV ablation and the reader-preference baseline to show the
// writer-starvation anomaly in the refresh counter.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "harness/team.hpp"
#include "platform/rng.hpp"
#include "platform/timing.hpp"
#include "qsv/qsv.hpp"
#include "rwlocks/central_rw.hpp"

namespace {

/// Table with a self-validating checksum; torn snapshots fail validate().
class ConfigTable {
 public:
  explicit ConfigTable(std::size_t entries) : values_(entries, 0) {}

  void refresh(std::uint64_t generation) {  // hold exclusive
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      values_[i] = generation * 31 + i;
      sum += values_[i];
    }
    checksum_ = sum;
  }

  bool validate() const {  // hold shared
    std::uint64_t sum = 0;
    for (auto v : values_) sum += v;
    return sum == checksum_;
  }

  std::uint64_t lookup(std::size_t key) const {  // hold shared
    return values_[key % values_.size()];
  }

 private:
  std::vector<std::uint64_t> values_;
  std::uint64_t checksum_ = 0;
};

struct Outcome {
  std::uint64_t reads = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t torn = 0;
};

template <typename Lock>
Outcome serve(std::size_t threads, double seconds) {
  Lock lock;
  ConfigTable table(256);
  {
    // Initial population under the writer lock.
    std::unique_lock guard(lock);
    table.refresh(1);
  }
  Outcome out;
  std::atomic<std::uint64_t> reads{0}, refreshes{0}, torn{0};
  std::atomic<bool> stop{false};
  const auto deadline =
      qsv::platform::now_ns() + static_cast<std::uint64_t>(seconds * 1e9);

  qsv::harness::ThreadTeam::run(threads, [&](std::size_t rank) {
    qsv::platform::Xoshiro256 rng(rank + 5);
    std::uint64_t my_reads = 0, my_refreshes = 0, ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (rank == 0 && rng.next_bool(0.01)) {
        // The refresher: ~1% of rank-0 operations rewrite the table.
        std::unique_lock guard(lock);
        table.refresh(my_refreshes + 2);
        ++my_refreshes;
      } else {
        std::shared_lock guard(lock);
        if (!table.validate()) torn.fetch_add(1);
        (void)table.lookup(static_cast<std::size_t>(rng.next_below(1024)));
        ++my_reads;
      }
      if (rank == 0 && (++ops & 0x7f) == 0 &&
          qsv::platform::now_ns() >= deadline) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
    reads.fetch_add(my_reads);
    refreshes.fetch_add(my_refreshes);
  });
  out.reads = reads.load();
  out.refreshes = refreshes.load();
  out.torn = torn.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : 8;
  const double seconds = argc > 2 ? std::strtod(argv[2], nullptr) : 0.5;

  const auto qsv_out = serve<qsv::shared_mutex>(threads, seconds);
  const auto central_out =
      serve<qsv::central_shared_mutex>(threads, seconds);
  const auto rp_out = serve<qsv::rwlocks::ReaderPrefRwLock>(threads, seconds);

  std::printf("rw_cache: %zu threads, %.1fs, 99%% reads\n", threads, seconds);
  std::printf("  %-22s reads=%-10llu refreshes=%-6llu torn=%llu\n",
              "qsv-rw (striped):",
              static_cast<unsigned long long>(qsv_out.reads),
              static_cast<unsigned long long>(qsv_out.refreshes),
              static_cast<unsigned long long>(qsv_out.torn));
  std::printf("  %-22s reads=%-10llu refreshes=%-6llu torn=%llu\n",
              "qsv-rw (central):",
              static_cast<unsigned long long>(central_out.reads),
              static_cast<unsigned long long>(central_out.refreshes),
              static_cast<unsigned long long>(central_out.torn));
  std::printf("  %-22s reads=%-10llu refreshes=%-6llu torn=%llu\n",
              "reader-pref baseline:",
              static_cast<unsigned long long>(rp_out.reads),
              static_cast<unsigned long long>(rp_out.refreshes),
              static_cast<unsigned long long>(rp_out.torn));
  if (qsv_out.torn != 0 || central_out.torn != 0 || rp_out.torn != 0) {
    std::printf("  ADMISSION BUG: torn snapshot observed\n");
    return 1;
  }
  std::printf("  all snapshots consistent\n");
  return 0;
}
