// bank_ledger — fine-grained locking with QSV mutexes.
//
//   build/examples/bank_ledger [accounts] [threads] [transfers]
//
// A ledger of accounts, each guarded by its own one-word QsvMutex (the
// space argument for the mechanism: a lock per record is affordable).
// Worker threads execute random transfers with ordered two-lock
// acquisition; an auditor thread concurrently snapshots the books using
// the timeout mode so it can skip records busy for too long. At exit the
// total must be exactly conserved.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "core/syncvar.hpp"
#include "harness/team.hpp"
#include "platform/rng.hpp"

using namespace std::chrono_literals;

namespace {

struct Account {
  qsv::core::QsvMutex<> lock;
  std::int64_t balance = 1000;  // guarded by lock
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t accounts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                        : 64;
  const std::size_t threads = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : 8;
  const std::size_t transfers =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 200000;

  std::vector<Account> ledger(accounts);
  const std::int64_t expected_total =
      static_cast<std::int64_t>(accounts) * 1000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> audits{0}, audit_skips{0};

  // Auditor: best-effort sweep with bounded impatience per record.
  // (Demonstrates QsvTimeoutMutex composing with plain QsvMutex state —
  // it uses its own lock per account would be the real design; here it
  // simply try-locks the account's mutex via a side timeout lock table.)
  std::vector<qsv::core::QsvTimeoutMutex> audit_locks(accounts);

  std::thread auditor([&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::int64_t seen = 0;
      bool complete = true;
      for (std::size_t i = 0; i < accounts; ++i) {
        if (audit_locks[i].try_lock_for(50us)) {
          ledger[i].lock.lock();
          seen += ledger[i].balance;
          ledger[i].lock.unlock();
          audit_locks[i].unlock();
        } else {
          complete = false;
          audit_skips.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (complete) audits.fetch_add(1, std::memory_order_relaxed);
      (void)seen;  // a mid-flight sum is not conserved; only quiescent is
    }
  });

  qsv::harness::ThreadTeam::run(threads, [&](std::size_t rank) {
    qsv::platform::Xoshiro256 rng(rank * 2654435761u + 1);
    for (std::size_t t = 0; t < transfers; ++t) {
      auto from = static_cast<std::size_t>(rng.next_below(accounts));
      auto to = static_cast<std::size_t>(rng.next_below(accounts));
      if (from == to) continue;
      const auto amount = static_cast<std::int64_t>(rng.next_below(100));
      // Deadlock freedom: global acquisition order by index.
      Account& first = ledger[std::min(from, to)];
      Account& second = ledger[std::max(from, to)];
      first.lock.lock();
      second.lock.lock();
      ledger[from].balance -= amount;
      ledger[to].balance += amount;
      second.lock.unlock();
      first.lock.unlock();
    }
  });
  done.store(true);
  auditor.join();

  std::int64_t total = 0;
  for (auto& a : ledger) total += a.balance;

  std::printf("bank_ledger: %zu accounts, %zu threads, %zu transfers each\n",
              accounts, threads, transfers);
  std::printf("  final total   : %lld (expected %lld) %s\n",
              static_cast<long long>(total),
              static_cast<long long>(expected_total),
              total == expected_total ? "OK" : "CORRUPTED");
  std::printf("  auditor sweeps: %llu complete, %llu record skips "
              "(bounded impatience)\n",
              static_cast<unsigned long long>(audits.load()),
              static_cast<unsigned long long>(audit_skips.load()));
  return total == expected_total ? 0 : 1;
}
