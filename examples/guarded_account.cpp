// guarded_account.cpp — compiler-enforced lock discipline on the facade.
//
// The facade locks are Clang thread-safety capabilities
// (qsv/thread_safety.hpp): declare WHICH lock guards WHICH data with
// QSV_GUARDED_BY, and `clang++ -Wthread-safety -Werror` turns misuse —
// touching a balance without the ledger lock, writing the rate table
// with only a reader hold, leaking a lock past a return — into compile
// errors. CI compiles exactly this file under that gate; under GCC the
// annotations expand to nothing and it is an ordinary example.
//
// Build & run:  ./guarded_account
#include <cstdint>
#include <cstdio>

#include "qsv/mutex.hpp"
#include "qsv/shared_mutex.hpp"
#include "qsv/thread_safety.hpp"

namespace {

/// An account ledger: every balance mutation must hold `mu_`. The
/// QSV_REQUIRES contract on the private helper means even same-class
/// callers cannot reach it without the lock.
class Ledger {
 public:
  void deposit(std::int64_t amount) {
    qsv::lock_guard<qsv::mutex> g(mu_);
    apply(amount);
  }

  bool try_withdraw(std::int64_t amount) {
    if (!mu_.try_lock()) return false;
    const bool ok = balance_ >= amount;
    if (ok) apply(-amount);
    mu_.unlock();
    return ok;
  }

  std::int64_t balance() {
    qsv::lock_guard<qsv::mutex> g(mu_);
    return balance_;
  }

 private:
  void apply(std::int64_t delta) QSV_REQUIRES(mu_) { balance_ += delta; }

  qsv::mutex mu_;
  std::int64_t balance_ QSV_GUARDED_BY(mu_) = 0;
};

/// A rate table: reads take the shared side, updates the exclusive
/// side. Reading with no hold, or writing under a reader hold, is a
/// -Wthread-safety compile error.
class RateTable {
 public:
  void set(std::uint32_t bps) {
    rw_.lock();
    rate_bps_ = bps;
    rw_.unlock();
  }

  std::uint32_t get() {
    rw_.lock_shared();
    const std::uint32_t r = rate_bps_;
    rw_.unlock_shared();
    return r;
  }

 private:
  qsv::shared_mutex rw_;
  std::uint32_t rate_bps_ QSV_GUARDED_BY(rw_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  ledger.deposit(250);
  const bool paid = ledger.try_withdraw(100);
  RateTable rates;
  rates.set(125);
  std::printf("balance %lld after %s, rate %u bps\n",
              static_cast<long long>(ledger.balance()),
              paid ? "withdrawal" : "declined withdrawal", rates.get());
  return ledger.balance() == 150 && rates.get() == 125 ? 0 : 1;
}
