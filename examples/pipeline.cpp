// pipeline — a three-stage image-processing-style pipeline wired with
// eventcount/sequencer bounded rings (no lock on the data path).
//
//   build/examples/pipeline [stages^-1 work knobs are compiled in]
//
// Stage 1 (2 producers) synthesizes "frames" (blocks of pseudo-pixels),
// stage 2 (3 workers) filters them, stage 3 (1 consumer) accumulates a
// checksum and latency histogram. The rings are the Reed-Kanodia
// construction from eventcount/bounded_ring.hpp — compare with
// workload/ring.hpp to see the same topology built from the QSV mutex +
// semaphores instead (and bench/fig11_eventcount for the race between
// the two).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "eventcount/bounded_ring.hpp"
#include "harness/team.hpp"
#include "platform/histogram.hpp"
#include "platform/rng.hpp"
#include "platform/timing.hpp"

namespace {

struct Frame {
  std::uint32_t id = 0;
  std::uint64_t born_ns = 0;
  std::uint64_t payload = 0;  // stands in for pixel data
};

constexpr std::uint32_t kFrames = 60000;
constexpr std::size_t kProducers = 2;
constexpr std::size_t kFilters = 3;

}  // namespace

int main() {
  std::printf("pipeline — eventcount rings, %u frames, %zu+%zu+1 threads\n",
              kFrames, kProducers, kFilters);

  qsv::eventcount::EcBoundedRing<Frame> raw(128);
  qsv::eventcount::EcBoundedRing<Frame> filtered(128);

  std::atomic<std::uint64_t> checksum{0};
  qsv::platform::LogHistogram latency;

  const auto t0 = qsv::platform::now_ns();
  qsv::harness::ThreadTeam::run(
      kProducers + kFilters + 1, [&](std::size_t rank) {
        if (rank < kProducers) {
          // ---- stage 1: synthesize frames -----------------------------
          qsv::platform::SplitMix64 rng(rank + 1);
          const std::uint32_t mine = kFrames / kProducers;
          for (std::uint32_t i = 0; i < mine; ++i) {
            Frame f;
            f.id = static_cast<std::uint32_t>(rank) * mine + i;
            f.born_ns = qsv::platform::now_ns();
            f.payload = rng.next();
            raw.push(f);
          }
        } else if (rank < kProducers + kFilters) {
          // ---- stage 2: filter ----------------------------------------
          const std::uint32_t mine =
              kFrames / kFilters +
              (rank - kProducers < kFrames % kFilters ? 1 : 0);
          for (std::uint32_t i = 0; i < mine; ++i) {
            Frame f = raw.pop();
            // "Filter": a few rounds of mixing, standing in for real work.
            std::uint64_t x = f.payload;
            for (int r = 0; r < 8; ++r) {
              x ^= x >> 33;
              x *= 0xFF51AFD7ED558CCDull;
            }
            f.payload = x;
            filtered.push(f);
          }
        } else {
          // ---- stage 3: accumulate ------------------------------------
          std::uint64_t sum = 0;
          for (std::uint32_t i = 0; i < kFrames; ++i) {
            const Frame f = filtered.pop();
            sum ^= f.payload;
            latency.add(qsv::platform::now_ns() - f.born_ns);
          }
          checksum.store(sum);
        }
      });
  const double secs =
      static_cast<double>(qsv::platform::now_ns() - t0) * 1e-9;

  std::printf("  throughput : %.2f Mframes/s\n",
              static_cast<double>(kFrames) / secs * 1e-6);
  std::printf("  checksum   : %016llx\n",
              static_cast<unsigned long long>(checksum.load()));
  std::printf("  end-to-end : p50 < %.1fus  p99 < %.1fus\n",
              static_cast<double>(latency.quantile_upper_bound(0.50)) * 1e-3,
              static_cast<double>(latency.quantile_upper_bound(0.99)) * 1e-3);
  std::printf("  rings      : raw pushed=%u popped=%u | filtered "
              "pushed=%u popped=%u\n",
              raw.pushed(), raw.popped(), filtered.pushed(),
              filtered.popped());
  const bool conserved = raw.pushed() == kFrames && raw.popped() == kFrames &&
                         filtered.pushed() == kFrames &&
                         filtered.popped() == kFrames;
  std::printf("  conservation: %s\n", conserved ? "OK" : "VIOLATED");
  return conserved ? 0 : 1;
}
