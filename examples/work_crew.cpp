// work_crew — a task farm on the hierarchical (cohort) QSV mutex.
//
//   build/examples/work_crew
//
// Eight workers, organized in cohorts of four (think: two NUMA nodes),
// pull variable-sized work items from one shared deque. The deque's
// lock is the contended resource; the hierarchical QSV lock prefers
// handing it to a cohort-mate, which on clustered hardware keeps the
// lock line and the deque's data resident in one node's cache.
//
// The run reports the protocol-event mix (intra-cohort passes vs global
// round trips) for three fairness budgets, showing the dial between
// locality and strict FIFO — and that total work completed is identical
// (nothing is lost, only reordered).
#include <cstdint>
#include <cstdio>
#include <deque>
#include <vector>

#include "harness/team.hpp"
#include "hier/hier_qsv.hpp"
#include "obs/hook.hpp"
#include "platform/rng.hpp"
#include "platform/timing.hpp"

namespace {

struct WorkItem {
  std::uint32_t id;
  std::uint32_t cost;  // busy-loop iterations
};

constexpr std::size_t kWorkers = 8;
constexpr std::size_t kCohortSize = 4;
constexpr std::uint32_t kItems = 40000;

/// One farm run under the given budget; returns {seconds, passes, acqs}.
struct FarmResult {
  double seconds;
  std::uint64_t local_passes;
  std::uint64_t global_acquires;
  std::uint64_t completed;
};

FarmResult run_farm(std::size_t budget) {
  qsv::hier::HierQsvMutex<qsv::platform::SpinWait> lock(kCohortSize, budget);
  const qsv::obs::LockRec* rec = lock.telemetry();
  std::deque<WorkItem> queue;  // guarded by `lock`
  qsv::platform::SplitMix64 rng(42);
  for (std::uint32_t i = 0; i < kItems; ++i) {
    queue.push_back(WorkItem{i, static_cast<std::uint32_t>(
                                    64 + (rng.next() & 255))});
  }

  std::vector<std::uint64_t> done(kWorkers, 0);
  const auto t0 = qsv::platform::now_ns();
  qsv::harness::ThreadTeam::run(kWorkers, [&](std::size_t rank) {
    std::uint64_t n = 0;
    for (;;) {
      lock.lock();
      if (queue.empty()) {
        lock.unlock();
        break;
      }
      const WorkItem item = queue.front();
      queue.pop_front();
      lock.unlock();
      // Simulated work outside the lock.
      volatile std::uint32_t sink = 0;
      for (std::uint32_t i = 0; i < item.cost; ++i) sink = sink + i;
      ++n;
    }
    done[rank] = n;
  });
  const double secs =
      static_cast<double>(qsv::platform::now_ns() - t0) * 1e-9;

  std::uint64_t total = 0;
  for (auto d : done) total += d;
  return FarmResult{secs, rec != nullptr ? rec->local_passes() : 0,
                    rec != nullptr ? rec->global_acquires() : 0, total};
}

}  // namespace

int main() {
  std::printf("work_crew — %zu workers in cohorts of %zu, %u items\n\n",
              kWorkers, kCohortSize, kItems);
  std::printf("%8s %10s %14s %14s %10s\n", "budget", "seconds",
              "local passes", "global acqs", "items");
  for (const std::size_t budget : {0ul, 8ul, 64ul}) {
    const FarmResult r = run_farm(budget);
    std::printf("%8zu %10.3f %14llu %14llu %10llu%s\n", budget, r.seconds,
                static_cast<unsigned long long>(r.local_passes),
                static_cast<unsigned long long>(r.global_acquires),
                static_cast<unsigned long long>(r.completed),
                r.completed == kItems ? "" : "  << LOST WORK");
    if (r.completed != kItems) return 1;
  }
  std::printf("\nHigher budgets convert global round trips into "
              "intra-cohort passes;\nevery run completes all %u items — "
              "the dial trades fairness for locality,\nnever "
              "correctness.\n", kItems);
  return 0;
}
