// sim_explorer — poke at the simulated 1991 multiprocessor.
//
//   build/examples/sim_explorer [procs] [rounds]
//
// Runs every lock protocol on both simulated machines and prints the
// full counter set — the raw material behind figures F2/F3/F5. Useful
// for exploring parameter points the benches do not sweep.
#include <cstdio>
#include <cstdlib>

#include "sim/protocols.hpp"

int main(int argc, char** argv) {
  const std::size_t procs = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 16;
  const std::size_t rounds = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 32;

  std::printf("sim_explorer: %zu simulated processors, %zu acquisitions "
              "each\n\n",
              procs, rounds);

  for (auto topo : {qsv::sim::Topology::kBus, qsv::sim::Topology::kNuma}) {
    std::printf("--- %s machine ---\n",
                topo == qsv::sim::Topology::kBus ? "snooping-bus (Symmetry)"
                                                 : "NUMA directory "
                                                   "(Butterfly)");
    std::printf("%-10s %12s %14s %12s %10s %12s\n", "lock", "bus txns/acq",
                "invalidates/acq", "remote/acq", "hit rate", "cycles/acq");
    for (const auto& algo : qsv::sim::sim_lock_names()) {
      const auto r = qsv::sim::run_lock_sim(algo, procs, rounds, topo);
      if (!r.completed) {
        std::printf("%-10s DEADLOCK\n", algo.c_str());
        continue;
      }
      const double hit_rate =
          r.counters.total_accesses
              ? static_cast<double>(r.counters.cache_hits) /
                    static_cast<double>(r.counters.total_accesses)
              : 0.0;
      std::printf("%-10s %12.1f %14.1f %12.1f %9.0f%% %12.0f\n",
                  algo.c_str(), r.bus_per_op(), r.invalidations_per_op(),
                  r.remote_per_op(), hit_rate * 100.0,
                  static_cast<double>(r.elapsed) /
                      static_cast<double>(r.operations));
    }
    std::printf("\n");
  }

  std::printf("--- barrier episodes on the bus machine ---\n");
  std::printf("%-14s %14s %14s\n", "barrier", "bus txns/ep", "cycles/ep");
  for (const auto& algo : qsv::sim::sim_barrier_names()) {
    const auto r =
        qsv::sim::run_barrier_sim(algo, procs, 16, qsv::sim::Topology::kBus);
    if (!r.completed) {
      std::printf("%-14s DEADLOCK\n", algo.c_str());
      continue;
    }
    std::printf("%-14s %14.0f %14.0f\n", algo.c_str(), r.bus_per_op(),
                static_cast<double>(r.elapsed) /
                    static_cast<double>(r.operations));
  }
  return 0;
}
