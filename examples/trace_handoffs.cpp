// trace_handoffs — visualize who gets the lock, using the trace module.
//
//   build/examples/trace_handoffs [--csv]
//
// Runs the same contended counter loop under the QSV mutex (FIFO
// handoff) and the TTAS lock (barging), traces every acquire/release,
// and prints the per-thread acquisition shares and wait times each
// discipline produces. With --csv the raw merged event stream is dumped
// for external plotting.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/qsv_mutex.hpp"
#include "harness/team.hpp"
#include "locks/ttas.hpp"
#include "trace/trace.hpp"

namespace {

constexpr std::size_t kThreads = 6;
constexpr std::size_t kOps = 3000;

template <typename Lock>
void run_traced(const char* label, std::uint64_t id,
                qsv::trace::TraceSession& session) {
  qsv::trace::TracedLock<Lock> lock(session, id);
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps; ++i) {
      lock.lock();
      lock.unlock();
    }
  });
  const auto stats = qsv::trace::analyze_handoffs(session.merge(), id);
  std::printf("%s\n", label);
  std::printf("  acquisitions per thread:");
  for (std::size_t t = 0; t < stats.acquisitions.size(); ++t) {
    if (stats.acquisitions[t] == 0) continue;
    std::printf(" %llu",
                static_cast<unsigned long long>(stats.acquisitions[t]));
  }
  std::printf("\n  share imbalance (max/min): %.2f\n", stats.imbalance());
  std::printf("  self-handoffs: %llu of %llu (%.0f%%)\n",
              static_cast<unsigned long long>(stats.self_handoffs),
              static_cast<unsigned long long>(stats.handoffs),
              stats.handoffs ? 100.0 * static_cast<double>(
                                           stats.self_handoffs) /
                                   static_cast<double>(stats.handoffs)
                             : 0.0);
  std::uint64_t max_wait = 0;
  for (std::size_t t = 0; t < stats.total_wait_ns.size(); ++t) {
    if (stats.acquisitions[t] != 0) {
      max_wait = std::max(max_wait,
                          stats.total_wait_ns[t] / stats.acquisitions[t]);
    }
  }
  std::printf("  worst mean wait: %.1f us\n\n",
              static_cast<double>(max_wait) * 1e-3);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;
  std::printf("trace_handoffs — FIFO vs barging, %zu threads x %zu ops\n\n",
              kThreads, kOps);

  // Separate sessions so each analysis sees only its own lock's events.
  {
    qsv::trace::TraceSession session(1 << 16);
    run_traced<qsv::core::QsvMutex<>>(
        "qsv (FIFO handoff): even shares, no self-handoff bias", 1,
        session);
    if (csv) session.dump_csv(std::cout);
  }
  {
    qsv::trace::TraceSession session(1 << 16);
    run_traced<qsv::locks::TtasNoBackoffLock>(
        "ttas (barging): releaser often re-wins its own lock", 2, session);
  }
  return 0;
}
