// tsa_negative.cpp — the lock-discipline gate's expect-FAIL probe.
//
// Every function below misuses the annotated facade in a way Clang's
// thread-safety analysis must reject. CI compiles this file with
// `clang++ -Wthread-safety -Werror` and requires the compile to FAIL —
// if it ever succeeds, the annotations have rotted and the gate is
// decorative. Never add this file to the build system: under GCC the
// annotations are no-ops and the misuse compiles silently.
#include <cstdint>

#include "qsv/mutex.hpp"
#include "qsv/shared_mutex.hpp"
#include "qsv/thread_safety.hpp"

namespace {

qsv::mutex g_mu;
std::int64_t g_balance QSV_GUARDED_BY(g_mu) = 0;

qsv::shared_mutex g_rw;
std::uint32_t g_rate QSV_GUARDED_BY(g_rw) = 0;

/// Touches guarded data with no hold at all.
std::int64_t read_unlocked() { return g_balance; }

/// Returns with the capability still held.
void leak_hold() {
  g_mu.lock();
  g_balance += 1;
  // missing g_mu.unlock()
}

/// Releases a capability the thread never acquired.
void release_unheld() { g_mu.unlock(); }

/// Writes exclusive-guarded data under only a shared hold.
void write_under_reader() {
  g_rw.lock_shared();
  g_rate = 42;
  g_rw.unlock_shared();
}

/// Ignores a try_lock result and proceeds as if it succeeded.
void unguarded_try() {
  (void)g_mu.try_lock();
  g_balance += 1;
  g_mu.unlock();
}

}  // namespace

int main() {
  (void)read_unlocked();
  leak_hold();
  release_unheld();
  write_under_reader();
  unguarded_try();
  return 0;
}
