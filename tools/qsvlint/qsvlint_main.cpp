// qsvlint_main.cpp — CLI for the project-native discipline linter.
//
//   qsvlint [--root DIR] [--baseline FILE] [--json] [--rule NAME]...
//   qsvlint --list-rules
//   qsvlint --gen-layout [FILE]
//   qsvlint --fixture FILE...
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error. CI and ctest run
// the tree mode with the committed (empty) baseline; the fixture mode
// lints a single file under the virtual path named by its first-line
// `// qsvlint-fixture: <path>` directive, which is how the must-fire
// corpus is replayed without planting violations in the real tree.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qsvlint/qsvlint.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: qsvlint [--root DIR] [--baseline FILE] [--json] "
      "[--rule NAME]...\n"
      "       qsvlint --list-rules | --gen-layout [FILE] | "
      "--fixture FILE...\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// A fixture's first line names the path it pretends to live at.
bool fixture_virtual_path(const std::string& content, std::string& out) {
  static constexpr std::string_view kTag = "// qsvlint-fixture:";
  if (content.compare(0, kTag.size(), kTag) != 0) return false;
  std::size_t end = content.find('\n');
  std::string path = content.substr(
      kTag.size(), end == std::string::npos ? std::string::npos
                                            : end - kTag.size());
  std::size_t a = path.find_first_not_of(" \t");
  std::size_t b = path.find_last_not_of(" \t\r");
  if (a == std::string::npos) return false;
  out = path.substr(a, b - a + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::vector<std::string> only_rules;
  std::vector<std::string> fixtures;
  bool json = false;
  bool list_rules = false;
  bool gen_layout = false;
  std::string gen_layout_out;

  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--root") {
      const char* v = next();
      if (!v) return usage();
      root = v;
    } else if (a == "--baseline") {
      const char* v = next();
      if (!v) return usage();
      baseline_path = v;
    } else if (a == "--rule") {
      const char* v = next();
      if (!v) return usage();
      only_rules.push_back(v);
    } else if (a == "--fixture") {
      const char* v = next();
      if (!v) return usage();
      fixtures.push_back(v);
    } else if (a == "--json") {
      json = true;
    } else if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--gen-layout") {
      gen_layout = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') gen_layout_out = argv[++i];
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "qsvlint: unknown argument '%s'\n", argv[i]);
      return usage();
    }
  }

  if (list_rules) {
    for (const qsvlint::Rule& r : qsvlint::rules()) {
      std::printf("%-16s %s\n", r.name, r.summary);
    }
    return 0;
  }

  if (gen_layout) {
    const std::string tu =
        qsvlint::generate_layout_tu(qsvlint::layout_entries());
    if (gen_layout_out.empty()) {
      std::fwrite(tu.data(), 1, tu.size(), stdout);
      return 0;
    }
    std::ofstream out(gen_layout_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "qsvlint: cannot write '%s'\n",
                   gen_layout_out.c_str());
      return 2;
    }
    out << tu;
    return 0;
  }

  std::vector<qsvlint::Finding> findings;
  if (!fixtures.empty()) {
    for (const std::string& f : fixtures) {
      std::string content;
      if (!read_file(f, content)) {
        std::fprintf(stderr, "qsvlint: cannot read fixture '%s'\n",
                     f.c_str());
        return 2;
      }
      std::string vpath;
      if (!fixture_virtual_path(content, vpath)) {
        std::fprintf(stderr,
                     "qsvlint: fixture '%s' has no '// qsvlint-fixture: "
                     "<path>' first line\n",
                     f.c_str());
        return 2;
      }
      for (qsvlint::Finding fd :
           qsvlint::lint_file(vpath, content, only_rules)) {
        fd.file = f + " (as " + fd.file + ")";
        findings.push_back(std::move(fd));
      }
    }
  } else {
    findings = qsvlint::lint_tree(root, only_rules);
  }

  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    std::vector<std::string> keys;
    if (!qsvlint::load_baseline(baseline_path, keys)) {
      std::fprintf(stderr, "qsvlint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    suppressed = qsvlint::apply_baseline(findings, keys);
  }

  if (json) {
    const std::string doc = qsvlint::findings_to_json(findings);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
  } else {
    for (const qsvlint::Finding& f : findings) {
      std::printf("%s\n", qsvlint::finding_to_text(f).c_str());
    }
    std::fprintf(stderr, "qsvlint: %zu finding(s), %zu suppressed, %zu rules\n",
                 findings.size(), suppressed, qsvlint::rules().size());
  }
  return findings.empty() ? 0 : 1;
}
