// lexer.cpp — comment/string-aware line lexing, findings serialization,
// and the baseline mechanism.
#include "qsvlint/qsvlint.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace qsvlint {

// ------------------------------------------------------------------ lexer

std::vector<LineInfo> lex(std::string_view content) {
  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };

  std::vector<LineInfo> lines;
  LineInfo cur;
  State st = State::kNormal;
  std::string raw_delim;  // raw string: the ")delim" terminator
  bool escaped = false;

  auto flush_line = [&] {
    std::string_view code_view(cur.code);
    std::size_t nonspace = code_view.find_first_not_of(" \t");
    cur.comment_only =
        nonspace == std::string_view::npos && !cur.comment.empty();
    lines.push_back(std::move(cur));
    cur = LineInfo{};
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\r') continue;
    if (c == '\n') {
      // A newline ends // comments and (for our per-line channels) the
      // current line in every state; multi-line constructs keep their
      // state across the flush.
      if (st == State::kLineComment) st = State::kNormal;
      flush_line();
      escaped = false;
      continue;
    }
    cur.raw.push_back(c);
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case State::kNormal: {
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          cur.code.push_back(' ');
          break;
        }
        if (c == '/' && next == '*') {
          st = State::kBlockComment;
          cur.code.push_back(' ');
          cur.code.push_back(' ');
          ++i;
          cur.raw.push_back('*');
          break;
        }
        if (c == '"') {
          // Raw string? The opener is R" with R not part of a longer
          // identifier (covers R"", u8R"", LR"" via the suffix check).
          bool raw = false;
          if (!cur.code.empty() && cur.code.back() == 'R') {
            std::size_t n = cur.code.size();
            raw = n < 2 || (!std::isalnum(static_cast<unsigned char>(
                                cur.code[n - 2])) &&
                            cur.code[n - 2] != '_') ||
                  cur.code[n - 2] == '8' || cur.code[n - 2] == 'L' ||
                  cur.code[n - 2] == 'u' || cur.code[n - 2] == 'U';
          }
          cur.code.push_back('"');
          if (raw) {
            // assign(1, ch) rather than = ")": GCC 12's -O3 restrict
            // checker misdiagnoses the literal assignment as a
            // potentially-overlapping memcpy.
            raw_delim.assign(1, ')');
            std::size_t j = i + 1;
            while (j < content.size() && content[j] != '(' &&
                   content[j] != '\n' && raw_delim.size() < 18) {
              raw_delim.push_back(content[j]);
              ++j;
            }
            raw_delim.push_back('"');
            st = State::kRawString;
          } else {
            st = State::kString;
          }
          escaped = false;
          break;
        }
        if (c == '\'') {
          // Digit separators (1'000'000) are not character literals:
          // a quote directly after an alnum inside a number is a
          // separator. Heuristic: previous code char is a digit and the
          // next char is alnum.
          if (!cur.code.empty() &&
              std::isdigit(static_cast<unsigned char>(cur.code.back())) &&
              (std::isalnum(static_cast<unsigned char>(next)))) {
            cur.code.push_back('\'');
            break;
          }
          cur.code.push_back('\'');
          st = State::kChar;
          escaped = false;
          break;
        }
        cur.code.push_back(c);
        break;
      }
      case State::kLineComment:
        cur.comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          st = State::kNormal;
          ++i;
          cur.raw.push_back('/');
        } else {
          cur.comment.push_back(c);
        }
        break;
      case State::kString:
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          cur.code.push_back('"');
          st = State::kNormal;
          break;
        }
        cur.code.push_back(' ');
        break;
      case State::kChar:
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '\'') {
          cur.code.push_back('\'');
          st = State::kNormal;
          break;
        }
        cur.code.push_back(' ');
        break;
      case State::kRawString: {
        // Close only on the exact ")delim"" terminator.
        if (c == ')' &&
            content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            cur.raw.push_back(content[i + k]);
          }
          i += raw_delim.size() - 1;
          cur.code.push_back('"');
          st = State::kNormal;
        } else {
          cur.code.push_back(' ');
        }
        break;
      }
    }
  }
  if (!cur.raw.empty() || !cur.code.empty() || !cur.comment.empty()) {
    flush_line();
  }
  return lines;
}

// --------------------------------------------------------------- findings

namespace {

void json_escape(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

/// Minimal scanner for the documents findings_to_json emits (and any
/// JSON with the same shape). Not a general-purpose parser.
struct JsonScan {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r' || s[i] == ','))
      ++i;
  }
  bool lit(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string(std::string& out) {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            // We only emit \u00xx for control bytes; decode that range.
            if (i + 4 < s.size()) {
              unsigned v = 0;
              std::sscanf(std::string(s.substr(i + 1, 4)).c_str(), "%4x", &v);
              out.push_back(static_cast<char>(v));
              i += 4;
            }
            break;
          }
          default: out.push_back(s[i]);
        }
      } else {
        out.push_back(s[i]);
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }
  bool number(std::size_t& out) {
    ws();
    std::size_t start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
      ++i;
    if (i == start) return false;
    out = 0;
    for (std::size_t k = start; k < i; ++k) {
      out = out * 10 + static_cast<std::size_t>(s[k] - '0');
    }
    return true;
  }
};

}  // namespace

std::string findings_to_json(const std::vector<Finding>& findings) {
  std::string out = "{\n  \"version\": \"qsvlint/1\",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"file\": \"";
    json_escape(f.file, out);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"";
    json_escape(f.rule, out);
    out += "\", \"message\": \"";
    json_escape(f.message, out);
    out += "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool findings_from_json(std::string_view json, std::vector<Finding>& out) {
  JsonScan j{json};
  std::vector<Finding> parsed;
  if (!j.lit('{')) return false;
  std::string key, val;
  bool saw_version = false, saw_findings = false;
  while (true) {
    j.ws();
    if (j.i >= j.s.size()) return false;
    if (j.s[j.i] == '}') break;
    if (!j.string(key) || !j.lit(':')) return false;
    if (key == "version") {
      if (!j.string(val) || val != "qsvlint/1") return false;
      saw_version = true;
    } else if (key == "findings") {
      if (!j.lit('[')) return false;
      saw_findings = true;
      while (true) {
        j.ws();
        if (j.i >= j.s.size()) return false;
        if (j.s[j.i] == ']') {
          ++j.i;
          break;
        }
        if (!j.lit('{')) return false;
        Finding f;
        while (true) {
          j.ws();
          if (j.i >= j.s.size()) return false;
          if (j.s[j.i] == '}') {
            ++j.i;
            break;
          }
          std::string k2;
          if (!j.string(k2) || !j.lit(':')) return false;
          if (k2 == "line") {
            if (!j.number(f.line)) return false;
          } else {
            std::string v2;
            if (!j.string(v2)) return false;
            if (k2 == "file") f.file = v2;
            else if (k2 == "rule") f.rule = v2;
            else if (k2 == "message") f.message = v2;
            else return false;
          }
        }
        parsed.push_back(std::move(f));
      }
    } else {
      return false;
    }
  }
  if (!saw_version || !saw_findings) return false;
  out = std::move(parsed);
  return true;
}

std::string finding_to_text(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

// --------------------------------------------------------------- baseline

bool load_baseline(const std::string& path, std::vector<std::string>& keys) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    keys.push_back(line);
  }
  return true;
}

std::size_t apply_baseline(std::vector<Finding>& findings,
                           const std::vector<std::string>& keys) {
  std::size_t before = findings.size();
  std::erase_if(findings, [&](const Finding& f) {
    const std::string k = f.key();
    for (const std::string& b : keys) {
      if (b == k) return true;
    }
    return false;
  });
  return before - findings.size();
}

}  // namespace qsvlint
