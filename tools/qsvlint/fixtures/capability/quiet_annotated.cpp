// qsvlint-fixture: include/qsv/good_facade.hpp
// Must-stay-quiet: the annotated shape the facade actually uses, plus
// a non-lock type whose unrelated lock() mentions must not trip it.
namespace qsv {

class QSV_CAPABILITY("mutex") good_mutex {
 public:
  void lock() QSV_ACQUIRE();
  void unlock() QSV_RELEASE();
};

class observer {
 public:
  // Calls through a member are not definitions of lock/unlock.
  void run() { m_.lock(); m_.unlock(); }

 private:
  good_mutex m_;
};

}  // namespace qsv
