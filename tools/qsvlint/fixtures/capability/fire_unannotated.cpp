// qsvlint-fixture: include/qsv/bad_facade.hpp
// Must-fire: a facade type exposing lock()/unlock() without the
// QSV_CAPABILITY annotation — clang's thread-safety analysis cannot
// track it, so @GUARDED_BY contracts silently stop checking.
namespace qsv {

class naked_mutex {
 public:
  void lock();
  void unlock();
  bool try_lock();
};

}  // namespace qsv
