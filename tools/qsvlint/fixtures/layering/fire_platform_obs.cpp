// qsvlint-fixture: src/platform/bad_obs_reach.hpp
// Must-fire: platform/ (rank 1) reaching past the obs/hook.hpp seam
// into the telemetry registry machinery, and a primitive doing the
// same — lower layers may consult the seam header only.
#include "obs/registry.hpp"

namespace qsv::platform {}
