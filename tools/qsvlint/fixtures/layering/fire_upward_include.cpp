// qsvlint-fixture: src/platform/bad_layering.hpp
// Must-fire: platform/ (rank 1) including upward into trace/ (rank 2)
// — the include cycle PR 9 broke with the hazard_hook inversion — and
// a production layer reaching the chk checker.
#include "trace/lock_order.hpp"
#include "chk/explorer.hpp"

namespace qsv::platform {}
