// qsvlint-fixture: src/platform/good_obs_hook.hpp
// Must-stay-quiet: the obs/hook.hpp seam is includable from every
// layer (the chk_hook dependency-inversion move), and the catalogue
// and facade may reach the registry machinery behind it.
#include "obs/hook.hpp"

namespace qsv::platform {}
