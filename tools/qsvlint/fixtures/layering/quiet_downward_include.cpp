// qsvlint-fixture: src/catalog/good_layering.hpp
// Must-stay-quiet: catalog (rank 3) including primitives and platform
// (lower ranks), plus the api-common vocabulary header.
#include "core/qsv_mutex.hpp"
#include "locks/mcs.hpp"
#include "platform/arch.hpp"
#include "qsv/wait.hpp"

namespace qsv::catalog {}
