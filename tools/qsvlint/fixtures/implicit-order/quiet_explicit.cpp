// qsvlint-fixture: src/core/good_implicit.hpp
// Must-stay-quiet: explicit orders everywhere, order-parameter
// passthrough, and locals that shadow atomic member names.
#include <atomic>

namespace qsv::core {

struct Node {
  std::atomic<Node*> next{nullptr};
};

inline std::atomic<int> g_hits{0};

inline int explicit_load() {
  return g_hits.load(std::memory_order_acquire);
}

inline int passthrough(std::memory_order order) {
  return g_hits.load(order);  // order parameter counts as explicit
}

inline Node* walk(Node* n) {
  // `next` here is a plain local that shadows the atomic member name;
  // writes to it are not atomic operations.
  Node* next = n->next.load(std::memory_order_acquire);
  while ((next = n->next.load(std::memory_order_acquire)) == nullptr) {
  }
  return next;
}

}  // namespace qsv::core
