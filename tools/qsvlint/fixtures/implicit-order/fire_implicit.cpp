// qsvlint-fixture: src/core/bad_implicit.hpp
// Must-fire: implicit-seq_cst atomic operations in a hot layer — the
// member-call forms and the operator forms both count.
#include <atomic>

namespace qsv::core {

inline std::atomic<int> g_hits{0};
inline std::atomic<bool> g_flag{false};

inline int implicit_load() {
  return g_hits.load();  // must fire: defaulted order
}

inline void implicit_store() {
  g_flag.store(true);  // must fire: defaulted order
}

inline void operator_forms() {
  g_hits++;       // must fire: seq_cst RMW in disguise
  g_hits += 2;    // must fire
  g_flag = true;  // must fire: seq_cst store in disguise
}

}  // namespace qsv::core
