// qsvlint-fixture: src/core/good_relaxed.hpp
// Must-stay-quiet: every relaxed carries a justification — same line,
// comment block above, or on the statement head of a wrapped call.
#include <atomic>

namespace qsv::core {

inline std::atomic<int> g_count{0};
inline std::atomic<unsigned> g_word{0};

inline void bump() {
  g_count.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat tally
}

inline void block_comment_form() {
  // relaxed: monotonic counter; nothing is published under it.
  g_count.fetch_add(1, std::memory_order_relaxed);
}

inline bool wrapped_cas() {
  unsigned expected = 0;
  // relaxed: failure order — a failed try reads nothing through it.
  return g_word.compare_exchange_strong(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
}

}  // namespace qsv::core
