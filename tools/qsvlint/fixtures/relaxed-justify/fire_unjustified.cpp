// qsvlint-fixture: src/core/bad_relaxed.hpp
// Must-fire: a memory_order_relaxed with no justification tag, and a
// memory_order_consume (always wrong: compilers promote it anyway).
#include <atomic>

namespace qsv::core {

inline std::atomic<int> g_count{0};
inline std::atomic<int*> g_ptr{nullptr};

inline void bump() {
  g_count.fetch_add(1, std::memory_order_relaxed);  // no tag: must fire
}

inline int* read_ptr() {
  return g_ptr.load(std::memory_order_consume);  // must fire: consume
}

}  // namespace qsv::core
