// qsvlint-fixture: src/eventcount/good_wait.hpp
// Must-stay-quiet: the same waits routed through the platform seam.
// (Fixtures are linted as token streams; the include is illustrative.)

namespace qsv::eventcount {

inline void spin_wait_good() {
  for (int i = 0; i < 64; ++i) {
    qsv::platform::thread_yield();  // routed: chk_hook sees this wait
  }
}

inline void nap_good() {
  qsv::platform::thread_sleep(std::chrono::microseconds(10));
}

// Mentioning this_thread::yield in a comment or a "string literal with
// sched_yield inside" must not fire: the lexer blanks both channels.
inline const char* doc() { return "never call sched_yield directly"; }

}  // namespace qsv::eventcount
