// qsvlint-fixture: src/eventcount/bad_wait.hpp
// Must-fire: PR 8's livelock bug class — a raw OS yield in a primitive
// layer bypasses the chk_hook seam, so the qsvchk scheduler never sees
// the wait and schedule exploration livelocks/misses interleavings.
#include <thread>

namespace qsv::eventcount {

inline void spin_wait_bad() {
  for (int i = 0; i < 64; ++i) {
    std::this_thread::yield();  // BAD: bypasses qsv::platform::thread_yield
  }
}

inline void nap_bad() {
  std::this_thread::sleep_for(std::chrono::microseconds(10));  // BAD
}

}  // namespace qsv::eventcount
