// qsvlint.hpp — the project-native concurrency-discipline linter.
//
// Generic static analyzers see C++; they do not see libqsv's contracts.
// The invariants that have actually bitten this tree — a raw
// std::this_thread::yield() escaping the chk_hook seam (PR 8's livelock
// bug class), an unjustified memory_order_relaxed in a protocol path, a
// layering leak that lets platform/ include upward — are project rules,
// checkable from token streams without a C++ frontend. qsvlint is a
// lightweight lexer (comment/string-aware, multi-line call grouping)
// plus a table of rules over the lexed lines. No LLVM libraries, no
// compile database: the whole tool builds in well under a second and
// runs over the tree in milliseconds, which is what lets CI and ctest
// carry it with a permanently empty baseline.
//
// The rules (see rules.cpp for the table, DESIGN.md "Static
// discipline" for the rationale):
//   seam             no raw yield/sleep/pause outside src/platform/
//   relaxed-justify  every memory_order_relaxed/consume in src/ and
//                    include/ carries a "// relaxed:" justification
//   implicit-order   no implicit-seq_cst atomic ops in the hot layers
//   layering         the include graph is the documented DAG; chk and
//                    chk_hook stay unreachable from production layers
//   capability       facade types with lock()/unlock() must be
//                    QSV_CAPABILITY-annotated
//   layout           the registered hot structs' layout-audit TU is
//                    generatable and its headers exist
//
// Findings are machine-readable (to_json/findings_from_json round-trip,
// used by tests and any future dashboard). --baseline suppresses listed
// findings; the committed baseline is empty and the project intends to
// keep it that way — fix the tree, don't suppress it.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace qsvlint {

// --------------------------------------------------------------- findings

struct Finding {
  std::string file;     ///< path relative to the lint root, '/'-separated
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< rule name from the table
  std::string message;  ///< human-readable diagnosis

  /// Baseline key: everything except the line number, which drifts.
  std::string key() const { return file + "|" + rule + "|" + message; }

  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && rule == o.rule &&
           message == o.message;
  }
};

/// Serialize findings as the machine-readable "qsvlint/1" JSON document.
std::string findings_to_json(const std::vector<Finding>& findings);

/// Parse a "qsvlint/1" document back. Returns false (leaving `out`
/// untouched) on malformed input — the round-trip is a tested contract.
bool findings_from_json(std::string_view json, std::vector<Finding>& out);

/// Render one finding as the one-line human format "file:line: [rule] msg".
std::string finding_to_text(const Finding& f);

// ----------------------------------------------------------------- lexing

/// One physical line, split into the channels the rules care about.
struct LineInfo {
  std::string raw;      ///< the line as read (no trailing newline)
  std::string code;     ///< comments removed, string/char contents blanked
  std::string comment;  ///< concatenated comment text on this line
  bool comment_only = false;  ///< no code tokens on this line
};

/// Lex a whole file. Handles // and /**/ comments (including spans),
/// string/char literals (contents blanked so tokens inside strings are
/// never matched), and raw string literals.
std::vector<LineInfo> lex(std::string_view content);

// ------------------------------------------------------------------ rules

/// Everything a rule needs about one file.
struct FileContext {
  std::string path;             ///< lint-root-relative, '/'-separated
  const std::vector<LineInfo>* lines = nullptr;
  std::string root;             ///< lint root ("" when linting a buffer)
};

struct Rule {
  const char* name;
  const char* summary;
  /// Does this rule look at `path` at all?
  bool (*applies)(std::string_view path);
  /// Scan one file, appending findings.
  void (*run)(const FileContext& ctx, std::vector<Finding>& out);
};

/// The rule table (fixed order, stable names). CI floors its size so a
/// future refactor cannot silently drop a rule.
const std::vector<Rule>& rules();

/// Lint one in-memory file under its virtual path (fixtures, tests).
/// `only_rules` empty means "all rules".
std::vector<Finding> lint_file(std::string_view virtual_path,
                               std::string_view content,
                               const std::vector<std::string>& only_rules = {});

/// Lint the tree rooted at `root`: every *.hpp/*.cpp/*.h under src/,
/// include/, tests/, and bench/, plus the tree-level rules (layout).
std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& only_rules = {});

// --------------------------------------------------------------- baseline

/// Load a baseline file: one Finding::key() per line; '#' comments and
/// blank lines ignored. Returns false when the file cannot be read.
bool load_baseline(const std::string& path, std::vector<std::string>& keys);

/// Drop findings whose key() appears in `keys`; returns the number
/// suppressed.
std::size_t apply_baseline(std::vector<Finding>& findings,
                           const std::vector<std::string>& keys);

// ----------------------------------------------------------------- layout

/// One registered hot struct for the false-sharing layout audit. The
/// generator emits a static_assert TU from these; the build compiling
/// that TU is the enforcement (an alignment regression is a build
/// failure, not a runtime surprise).
struct LayoutEntry {
  std::string header;  ///< root-relative header that defines the type
  std::string type;    ///< fully qualified type name
  /// static_assert bodies over `T` (spelled literally with the type
  /// name already substituted), e.g. "alignof(T) == 128".
  std::vector<std::string> asserts;
};

/// The built-in registry: NodeArena node slots, FC publication records,
/// stripe arrays, facade-visible padded slots.
const std::vector<LayoutEntry>& layout_entries();

/// Generate the audit TU text for `entries`.
std::string generate_layout_tu(const std::vector<LayoutEntry>& entries);

/// Validate `entries` against the tree (headers exist, asserts
/// non-empty); appends findings under the "layout" rule.
void check_layout_entries(const std::string& root,
                          const std::vector<LayoutEntry>& entries,
                          std::vector<Finding>& out);

// ------------------------------------------------------------------ layers

/// The documented layer of a path, for the layering rule and its tests:
/// "api-common", "facade", "toolkit", "catalog", "primitives",
/// "platform", "chk", "top", or "" for paths outside the model.
std::string_view layer_of(std::string_view path);

}  // namespace qsvlint
