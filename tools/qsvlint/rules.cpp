// rules.cpp — the concurrency-discipline rule table.
//
// Every rule is a pure function over lexed lines plus a path scope
// predicate; the table is the single source of truth for what the
// gate checks (CI floors its size). Rules work at token level on the
// comment-stripped code channel, so nothing in a comment or string
// literal can fire them, and justification tags are read from the
// comment channel only.
#include "qsvlint/qsvlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace qsvlint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Find `tok` in `code` at identifier boundaries, starting at `from`.
std::size_t find_token(std::string_view code, std::string_view tok,
                       std::size_t from = 0) {
  while (true) {
    std::size_t p = code.find(tok, from);
    if (p == std::string_view::npos) return std::string_view::npos;
    bool left_ok = p == 0 || !is_ident(code[p - 1]);
    std::size_t end = p + tok.size();
    bool right_ok = end >= code.size() || !is_ident(code[end]);
    if (left_ok && right_ok) return p;
    from = p + 1;
  }
}

/// Collect the argument text of a call whose opening '(' sits at
/// `open_pos` on line `li` — across lines until the parens balance (or
/// a 16-line cap, returning what was seen).
std::string call_args(const std::vector<LineInfo>& lines, std::size_t li,
                      std::size_t open_pos) {
  std::string out;
  int depth = 0;
  for (std::size_t l = li; l < lines.size() && l < li + 16; ++l) {
    const std::string& code = lines[l].code;
    std::size_t start = l == li ? open_pos : 0;
    for (std::size_t p = start; p < code.size(); ++p) {
      char c = code[p];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;  // the call's own '(' is not an arg char
      } else if (c == ')') {
        --depth;
        if (depth == 0) return out;
      }
      if (depth > 0) out.push_back(c);
    }
    out.push_back(' ');
  }
  return out;
}

/// Does the line (or the contiguous comment block immediately above it)
/// carry a comment containing `tag`?
bool has_tag_above(const std::vector<LineInfo>& lines, std::size_t li,
                   std::string_view tag) {
  if (lines[li].comment.find(tag) != std::string::npos) return true;
  // Wrapped statements: a CAS's failure order usually lands on a
  // continuation line, but its justification belongs with the statement
  // head. Walk up while the previous code line visibly continues into
  // this one, crediting a tag found anywhere in the statement.
  for (std::size_t guard = 0; li > 0 && guard < 12; ++guard) {
    const std::string& above = lines[li - 1].code;
    std::size_t e = above.find_last_not_of(" \t");
    if (e == std::string::npos) break;
    const char prev_end = above[e];
    std::size_t b = lines[li].code.find_first_not_of(" \t");
    const char own_start =
        b == std::string::npos ? '\0' : lines[li].code[b];
    const bool continues =
        prev_end == '(' || prev_end == ',' || prev_end == '=' ||
        prev_end == '&' || prev_end == '|' || prev_end == '?' ||
        prev_end == ':' || prev_end == '+' || prev_end == '<' ||
        own_start == '?' || own_start == ':' || own_start == ')' ||
        own_start == '.';
    if (!continues) break;
    --li;
    if (lines[li].comment.find(tag) != std::string::npos) return true;
  }
  for (std::size_t l = li; l-- > 0;) {
    if (!lines[l].comment_only) {
      // A trailing comment on the last code line above also counts:
      //   foo(std::memory_order_relaxed);  // on a wrapped call's
      // justification sits with the statement, not the wrapped line.
      return lines[l].comment.find(tag) != std::string::npos;
    }
    if (lines[l].comment.find(tag) != std::string::npos) return true;
  }
  return false;
}

// ------------------------------------------------------------------- seam

bool seam_applies(std::string_view path) {
  return (starts_with(path, "src/") || starts_with(path, "include/")) &&
         !starts_with(path, "src/platform/");
}

void seam_run(const FileContext& ctx, std::vector<Finding>& out) {
  static constexpr std::string_view kRawWaits[] = {
      "this_thread::yield",    "this_thread::sleep_for",
      "this_thread::sleep_until", "sched_yield",
      "_mm_pause",             "__builtin_ia32_pause",
      "nanosleep",             "usleep",
  };
  const auto& lines = *ctx.lines;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    for (std::string_view tok : kRawWaits) {
      if (lines[li].code.find(tok) == std::string::npos) continue;
      out.push_back(
          {ctx.path, li + 1, "seam",
           "raw OS wait '" + std::string(tok) +
               "' outside src/platform/ bypasses the chk_hook seam; "
               "route it through qsv::platform::thread_yield()/"
               "thread_sleep() or the wait layer"});
    }
  }
}

// --------------------------------------------------------- relaxed-justify

bool relaxed_applies(std::string_view path) {
  return starts_with(path, "src/") || starts_with(path, "include/");
}

void relaxed_run(const FileContext& ctx, std::vector<Finding>& out) {
  const auto& lines = *ctx.lines;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    bool relaxed = find_token(code, "memory_order_relaxed") !=
                       std::string_view::npos ||
                   code.find("memory_order::relaxed") != std::string::npos;
    bool consume = find_token(code, "memory_order_consume") !=
                       std::string_view::npos ||
                   code.find("memory_order::consume") != std::string::npos;
    if (!relaxed && !consume) continue;
    if (consume) {
      out.push_back({ctx.path, li + 1, "relaxed-justify",
                     "memory_order_consume is unimplementable as specified "
                     "(every compiler promotes it); use acquire, or relaxed "
                     "with a '// relaxed:' justification"});
      continue;
    }
    if (has_tag_above(lines, li, "relaxed:")) continue;
    out.push_back(
        {ctx.path, li + 1, "relaxed-justify",
         "memory_order_relaxed without a '// relaxed:' justification on "
         "this line or the comment block above — state why unordered "
         "access is correct here"});
  }
}

// ----------------------------------------------------------- implicit-order

bool implicit_applies(std::string_view path) {
  return starts_with(path, "src/core/") ||
         starts_with(path, "src/platform/") ||
         starts_with(path, "src/eventcount/") ||
         starts_with(path, "src/combining/") ||
         starts_with(path, "src/obs/") ||
         starts_with(path, "src/trace/");
}

/// Names of variables declared std::atomic<...> / std::atomic_xxx in
/// this file (declaration and use sit in the same class in this tree).
std::set<std::string> atomic_names(const std::vector<LineInfo>& lines) {
  std::set<std::string> names;
  for (const LineInfo& line : lines) {
    const std::string& code = line.code;
    std::size_t trimmed = code.find_first_not_of(" \t");
    if (trimmed != std::string::npos &&
        starts_with(std::string_view(code).substr(trimmed), "using "))
      continue;
    for (std::size_t p = code.find("std::atomic"); p != std::string::npos;
         p = code.find("std::atomic", p + 1)) {
      std::size_t q = p + std::string_view("std::atomic").size();
      if (q < code.size() && code[q] == '<') {
        int depth = 0;
        while (q < code.size()) {
          if (code[q] == '<') ++depth;
          if (code[q] == '>' && --depth == 0) {
            ++q;
            break;
          }
          ++q;
        }
      } else if (q < code.size() && is_ident(code[q])) {
        // std::atomic_bool, std::atomic_flag, ...
        while (q < code.size() && is_ident(code[q])) ++q;
      }
      while (q < code.size() && (code[q] == ' ' || code[q] == '&')) ++q;
      std::size_t name_end = q;
      while (name_end < code.size() && is_ident(code[name_end])) ++name_end;
      if (name_end > q) names.insert(code.substr(q, name_end - q));
    }
  }
  return names;
}

void implicit_run(const FileContext& ctx, std::vector<Finding>& out) {
  const auto& lines = *ctx.lines;
  std::set<std::string> atomics = atomic_names(lines);

  // A protocol routine that snapshots an atomic member into a local of
  // the same name (`Node* next = n->next.load(...)`) shadows it for the
  // rest of the file as far as a lexer can tell; writes to such names
  // are ambiguous, so they are excluded from the operator heuristic
  // (the member-call checks above still cover them).
  {
    std::set<std::string> shadowed;
    for (const LineInfo& line : lines) {
      const std::string& code = line.code;
      for (const std::string& name : atomics) {
        for (std::size_t p = find_token(code, name);
             p != std::string_view::npos;
             p = find_token(code, name, p + 1)) {
          std::size_t b = p;
          while (b > 0 && code[b - 1] == ' ') --b;
          if (b == 0 || (!is_ident(code[b - 1]) && code[b - 1] != '*' &&
                         code[b - 1] != '&') ||
              code.find("std::atomic") != std::string::npos) {
            continue;
          }
          // An identifier before the name marks a declaration only if
          // it is type-like — expression keywords don't declare.
          if (is_ident(code[b - 1])) {
            std::size_t wb = b;
            while (wb > 0 && is_ident(code[wb - 1])) --wb;
            const std::string word = code.substr(wb, b - wb);
            if (word == "return" || word == "throw" || word == "case" ||
                word == "goto" || word == "delete" || word == "sizeof" ||
                word == "alignof" || word == "co_return" ||
                word == "co_yield" || word == "co_await") {
              continue;
            }
          }
          shadowed.insert(name);
        }
      }
    }
    for (const std::string& s : shadowed) atomics.erase(s);
  }

  struct Method {
    std::string_view name;
    bool any_receiver;  ///< flag regardless of receiver identity
  };
  // load/store/test_and_set/compare_exchange are distinctive enough to
  // flag on any receiver; exchange and the fetch_* family collide with
  // the counter facades' own method names, so those require a receiver
  // this file declared std::atomic.
  static constexpr Method kMethods[] = {
      {"load", true},           {"store", true},
      {"test_and_set", true},   {"compare_exchange_weak", true},
      {"compare_exchange_strong", true},
      {"exchange", false},      {"fetch_add", false},
      {"fetch_sub", false},     {"fetch_or", false},
      {"fetch_and", false},     {"fetch_xor", false},
  };

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    for (const Method& m : kMethods) {
      for (std::size_t p = find_token(code, m.name);
           p != std::string_view::npos;
           p = find_token(code, m.name, p + 1)) {
        std::size_t open = p + m.name.size();
        if (open >= code.size() || code[open] != '(') continue;
        // Member calls only: the token must follow '.' or '->'.
        bool member = (p >= 1 && code[p - 1] == '.') ||
                      (p >= 2 && code[p - 2] == '-' && code[p - 1] == '>');
        if (!member) continue;
        if (!m.any_receiver) {
          std::size_t r_end = p >= 1 && code[p - 1] == '.' ? p - 1 : p - 2;
          std::size_t r_begin = r_end;
          while (r_begin > 0 && is_ident(code[r_begin - 1])) --r_begin;
          if (r_begin == r_end ||
              atomics.count(code.substr(r_begin, r_end - r_begin)) == 0)
            continue;
        }
        std::string args = call_args(lines, li, open);
        // Explicit enough: a literal std::memory_order_* constant or a
        // threaded-through `order` parameter (StripedCounter::sum).
        if (args.find("memory_order") != std::string::npos ||
            find_token(args, "order") != std::string_view::npos)
          continue;
        out.push_back(
            {ctx.path, li + 1, "implicit-order",
             "atomic ." + std::string(m.name) +
                 "() without an explicit memory order in a hot layer — "
                 "implicit seq_cst hides the protocol's real ordering "
                 "requirement; spell it (std::memory_order_seq_cst if "
                 "sequential consistency is the point)"});
      }
    }
    // Operator forms on identifiers this file declared atomic: ++, --,
    // compound assignment, and plain assignment (an implicit seq_cst
    // store). Declaration lines themselves are exempt.
    if (code.find("std::atomic") != std::string::npos) continue;
    for (const std::string& name : atomics) {
      for (std::size_t p = find_token(code, name);
           p != std::string_view::npos;
           p = find_token(code, name, p + 1)) {
        std::size_t after = p + name.size();
        while (after < code.size() && code[after] == ' ') ++after;
        std::string_view rest = std::string_view(code).substr(after);
        std::size_t before = p;
        while (before > 0 && code[before - 1] == ' ') --before;
        // `Type name = ...` / `Type* name = ...` is a declaration of a
        // (shadowing) local, not a write to the atomic member: a write
        // statement starts the expression or follows a member access.
        bool declaration =
            before > 0 && (is_ident(code[before - 1]) ||
                           code[before - 1] == '*' || code[before - 1] == '&');
        if (declaration) continue;
        bool pre_incdec =
            before >= 2 && ((code[before - 1] == '+' && code[before - 2] == '+') ||
                            (code[before - 1] == '-' && code[before - 2] == '-'));
        bool post_incdec = starts_with(rest, "++") || starts_with(rest, "--");
        bool compound = rest.size() >= 2 && rest[1] == '=' &&
                        (rest[0] == '+' || rest[0] == '-' || rest[0] == '|' ||
                         rest[0] == '&' || rest[0] == '^');
        bool plain_assign =
            !rest.empty() && rest[0] == '=' &&
            (rest.size() < 2 || rest[1] != '=') &&
            (before == 0 || (code[before - 1] != '=' && code[before - 1] != '!' &&
                             code[before - 1] != '<' && code[before - 1] != '>'));
        if (!(pre_incdec || post_incdec || compound || plain_assign)) continue;
        out.push_back(
            {ctx.path, li + 1, "implicit-order",
             "implicit-seq_cst operator on atomic '" + name +
                 "' in a hot layer — use fetch_add/fetch_sub/store with an "
                 "explicit memory order"});
      }
    }
  }
}

// --------------------------------------------------------------- layering

struct Band {
  std::string_view layer;
  int rank;
};

int band_rank(std::string_view layer) {
  if (layer == "api-common") return 0;
  if (layer == "platform") return 1;
  if (layer == "primitives") return 2;
  if (layer == "obs") return 3;
  if (layer == "catalog") return 3;
  if (layer == "toolkit") return 4;
  if (layer == "facade") return 4;
  if (layer == "chk") return 5;
  if (layer == "top") return 6;
  return -1;
}

bool layering_applies(std::string_view path) {
  return starts_with(path, "src/") || starts_with(path, "include/") ||
         starts_with(path, "tests/") || starts_with(path, "bench/");
}

void layering_run(const FileContext& ctx, std::vector<Finding>& out) {
  const std::string_view src_layer = layer_of(ctx.path);
  const int src_rank = band_rank(src_layer);
  if (src_rank < 0) return;
  const auto& lines = *ctx.lines;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    std::size_t p = code.find("#include");
    if (p == std::string::npos) continue;
    std::size_t q1 = code.find('"', p);
    if (q1 == std::string::npos) continue;  // <system> include
    std::size_t q2 = code.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    // The lexer blanks string contents; recover the target from raw.
    std::size_t r1 = lines[li].raw.find('"');
    std::size_t r2 =
        r1 == std::string::npos ? std::string::npos
                                : lines[li].raw.find('"', r1 + 1);
    if (r2 == std::string::npos) continue;
    const std::string target = lines[li].raw.substr(r1 + 1, r2 - r1 - 1);
    const std::string_view tgt_layer = layer_of(target);
    const int tgt_rank = band_rank(tgt_layer);
    if (tgt_rank < 0) continue;  // outside the layer model (vendored etc.)

    // The chk checker and its seam are test-only machinery: production
    // layers must reach them only through the platform wait paths.
    const bool tgt_is_chk = tgt_layer == "chk";
    const bool tgt_is_hook = target == "platform/chk_hook.hpp" ||
                             target == "src/platform/chk_hook.hpp";
    if (tgt_is_chk && !(src_layer == "chk" || src_layer == "top")) {
      out.push_back({ctx.path, li + 1, "layering",
                     "production layer '" + std::string(src_layer) +
                         "' includes the test-only checker (\"" + target +
                         "\"); src/chk/ is reachable only from tests and "
                         "its own CLI"});
      continue;
    }
    if (tgt_is_hook && !(src_layer == "platform" || src_layer == "chk" ||
                         src_layer == "top")) {
      out.push_back({ctx.path, li + 1, "layering",
                     "\"platform/chk_hook.hpp\" is the checker seam: only "
                     "src/platform/ wait paths (and the checker itself) may "
                     "consult it, or the seam stops being total"});
      continue;
    }

    // The telemetry layer: "obs/hook.hpp" is the one narrow seam every
    // layer may include (the chk_hook dependency-inversion move); the
    // registry/endpoint machinery behind it stays unreachable from the
    // platform and primitive layers.
    const bool tgt_is_obs_hook =
        target == "obs/hook.hpp" || target == "src/obs/hook.hpp";
    if (tgt_is_obs_hook) continue;  // the seam: includable from any layer
    if (tgt_layer == "obs" &&
        (src_layer == "platform" || src_layer == "primitives")) {
      out.push_back({ctx.path, li + 1, "layering",
                     "layer '" + std::string(src_layer) + "' includes \"" +
                         target +
                         "\" — src/obs/ registry machinery is reachable "
                         "only from the catalogue, facade, toolkit, and "
                         "tests; lower layers go through \"obs/hook.hpp\""});
      continue;
    }

    if (tgt_rank > src_rank) {
      out.push_back(
          {ctx.path, li + 1, "layering",
           "layer '" + std::string(src_layer) + "' includes \"" + target +
               "\" from higher layer '" + std::string(tgt_layer) +
               "'; the include DAG is facade/toolkit -> catalogue -> "
               "primitives -> platform (api-common headers are free)"});
    }
  }
}

// -------------------------------------------------------------- capability

bool capability_applies(std::string_view path) {
  return starts_with(path, "include/qsv/");
}

void capability_run(const FileContext& ctx, std::vector<Finding>& out) {
  const auto& lines = *ctx.lines;

  struct Scope {
    bool is_class = false;
    bool has_cap = false;
    bool saw_lock = false;
    bool saw_unlock = false;
    std::string name;
    std::size_t line = 0;
  };
  std::vector<Scope> stack;

  bool pending = false;       // saw class/struct, waiting for '{' or ';'
  Scope pending_scope;
  std::string pending_text;

  auto finish_class_header = [&] {
    // First identifier after the keyword that is not the capability
    // macro or an attribute is the class name.
    std::size_t p = 0;
    while (p < pending_text.size()) {
      while (p < pending_text.size() && !is_ident(pending_text[p])) ++p;
      std::size_t e = p;
      while (e < pending_text.size() && is_ident(pending_text[e])) ++e;
      std::string tok = pending_text.substr(p, e - p);
      if (tok == "class" || tok == "struct" || tok == "QSV_CAPABILITY" ||
          tok == "alignas" || tok == "final" || tok.empty()) {
        // skip the macro's argument list
        while (e < pending_text.size() && pending_text[e] == ' ') ++e;
        if (e < pending_text.size() && pending_text[e] == '(') {
          int d = 0;
          while (e < pending_text.size()) {
            if (pending_text[e] == '(') ++d;
            if (pending_text[e] == ')' && --d == 0) {
              ++e;
              break;
            }
            ++e;
          }
        }
        p = e;
        continue;
      }
      pending_scope.name = tok;
      break;
    }
  };

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;

    // Class-header detection: 'class'/'struct' as the first token of a
    // line (the convention throughout include/qsv/), buffered until the
    // opening brace or a forward-declaration semicolon.
    std::size_t first = code.find_first_not_of(" \t");
    if (!pending && first != std::string::npos) {
      std::string_view t = std::string_view(code).substr(first);
      if ((starts_with(t, "class") &&
           (t.size() == 5 || !is_ident(t[5]))) ||
          (starts_with(t, "struct") &&
           (t.size() == 6 || !is_ident(t[6])))) {
        pending = true;
        pending_scope = Scope{};
        pending_scope.is_class = true;
        pending_scope.line = li + 1;
        pending_text.clear();
      }
    }

    for (std::size_t p = 0; p < code.size(); ++p) {
      char c = code[p];
      if (pending) {
        if (c == '{') {
          pending_scope.has_cap =
              pending_text.find("QSV_CAPABILITY") != std::string::npos;
          finish_class_header();
          stack.push_back(pending_scope);
          pending = false;
          continue;
        }
        if (c == ';') {
          pending = false;  // forward declaration
          continue;
        }
        pending_text.push_back(c);
        continue;
      }
      if (c == '{') {
        stack.push_back(Scope{});  // anonymous block
      } else if (c == '}') {
        if (!stack.empty()) {
          Scope s = stack.back();
          stack.pop_back();
          if (s.is_class && s.saw_lock && s.saw_unlock && !s.has_cap) {
            out.push_back(
                {ctx.path, s.line, "capability",
                 "facade type '" + s.name +
                     "' exposes lock()/unlock() without a QSV_CAPABILITY "
                     "annotation — Clang thread-safety analysis cannot see "
                     "it (include/qsv/thread_safety.hpp)"});
          }
        }
      }
    }

    // lock()/unlock() declarations inside the innermost class scope.
    // Member *calls* (x.lock(), p->lock(), std::lock(...)) are excluded
    // by the preceding-character check.
    auto mark = [&](std::string_view tok, bool is_lock) {
      for (std::size_t p = find_token(code, tok); p != std::string_view::npos;
           p = find_token(code, tok, p + 1)) {
        std::size_t after = p + tok.size();
        if (after >= code.size() || code[after] != '(') continue;
        std::size_t b = p;
        while (b > 0 && code[b - 1] == ' ') --b;
        if (b > 0 && (code[b - 1] == '.' || code[b - 1] == '>' ||
                      code[b - 1] == ':'))
          continue;
        for (std::size_t s = stack.size(); s-- > 0;) {
          if (stack[s].is_class) {
            (is_lock ? stack[s].saw_lock : stack[s].saw_unlock) = true;
            break;
          }
        }
      }
    };
    mark("lock", true);
    mark("unlock", false);
  }
}

// ------------------------------------------------------------------ layout

bool layout_applies(std::string_view) { return false; }  // tree-level rule

void layout_run(const FileContext&, std::vector<Finding>&) {}

}  // namespace

// ----------------------------------------------------------------- layers

std::string_view layer_of(std::string_view path) {
  auto is_under = [&](std::string_view dir) {
    return starts_with(path, dir) ||
           starts_with(path, std::string("src/") + std::string(dir));
  };
  if (path == "qsv/wait.hpp" || path == "include/qsv/wait.hpp" ||
      path == "qsv/thread_safety.hpp" ||
      path == "include/qsv/thread_safety.hpp")
    return "api-common";
  if (starts_with(path, "qsv/") || starts_with(path, "include/qsv/"))
    return "facade";
  if (is_under("catalog/")) return "catalog";
  if (is_under("obs/")) return "obs";
  if (is_under("platform/")) return "platform";
  if (is_under("chk/")) return "chk";
  for (std::string_view d :
       {"core/", "locks/", "rwlocks/", "barriers/", "eventcount/",
        "parking/", "combining/", "hier/", "trace/", "workload/", "sim/"}) {
    if (is_under(d)) return "primitives";
  }
  for (std::string_view d : {"benchreg/", "harness/", "validate/"}) {
    if (is_under(d)) return "toolkit";
  }
  for (std::string_view d : {"tests/", "bench/", "examples/", "tools/"}) {
    if (starts_with(path, d)) return "top";
  }
  return "";
}

// ------------------------------------------------------------- rule table

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kTable = {
      {"seam",
       "no raw yield/sleep/pause outside src/platform/ (the chk seam "
       "must be total)",
       seam_applies, seam_run},
      {"relaxed-justify",
       "memory_order_relaxed/consume in src/ and include/ must carry a "
       "'// relaxed:' justification",
       relaxed_applies, relaxed_run},
      {"implicit-order",
       "no implicit-seq_cst atomic operations in the hot layers "
       "(src/core, src/platform, src/eventcount, src/combining, "
       "src/obs, src/trace)",
       implicit_applies, implicit_run},
      {"layering",
       "the include graph is the documented DAG; src/chk and "
       "chk_hook.hpp stay unreachable from production layers, and "
       "src/obs/ registry machinery is reachable only through "
       "obs/hook.hpp from below",
       layering_applies, layering_run},
      {"capability",
       "facade types exposing lock()/unlock() carry QSV_CAPABILITY",
       capability_applies, capability_run},
      {"layout",
       "the false-sharing layout-audit registry is generatable and its "
       "headers exist (enforced at compile time by the generated TU)",
       layout_applies, layout_run},
  };
  return kTable;
}

// ------------------------------------------------------------ lint drivers

namespace {

bool rule_selected(const std::vector<std::string>& only,
                   std::string_view name) {
  if (only.empty()) return true;
  for (const std::string& r : only) {
    if (r == name) return true;
  }
  return false;
}

}  // namespace

std::vector<Finding> lint_file(std::string_view virtual_path,
                               std::string_view content,
                               const std::vector<std::string>& only_rules) {
  std::vector<LineInfo> lines = lex(content);
  FileContext ctx;
  ctx.path = std::string(virtual_path);
  ctx.lines = &lines;
  std::vector<Finding> out;
  for (const Rule& r : rules()) {
    if (!rule_selected(only_rules, r.name)) continue;
    if (!r.applies(ctx.path)) continue;
    r.run(ctx, out);
  }
  return out;
}

std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& only_rules) {
  namespace fs = std::filesystem;
  std::vector<Finding> out;
  std::vector<std::string> files;
  for (const char* dir : {"src", "include", "tests", "bench"}) {
    fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& e : fs::recursive_directory_iterator(base)) {
      if (!e.is_regular_file()) continue;
      std::string ext = e.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h") continue;
      files.push_back(fs::relative(e.path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<LineInfo> lines = lex(buf.str());
    FileContext ctx;
    ctx.path = rel;
    ctx.lines = &lines;
    ctx.root = root;
    for (const Rule& r : rules()) {
      if (!rule_selected(only_rules, r.name)) continue;
      if (!r.applies(ctx.path)) continue;
      r.run(ctx, out);
    }
  }
  if (rule_selected(only_rules, "layout")) {
    check_layout_entries(root, layout_entries(), out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace qsvlint
