// hier_events.hpp — protocol-event sinks shared by the hierarchical
// (cohort) locks.
//
// Both the specialized HierQsvMutex (hier_qsv.hpp) and the generic
// CohortLock combinator (cohort_lock.hpp) expose the same three
// protocol events — a budgeted local pass, a global acquisition, a
// global release — so tests and benches can assert the pass/acquire mix
// against one vocabulary regardless of which composition produced it.
// The default sink compiles to nothing (the core/events.hpp pattern);
// CountingHierEvents is the process-global instrument.
#pragma once

#include <atomic>
#include <cstdint>

namespace qsv::hier {

/// Protocol-event sink for the hierarchical locks. Instrument with
/// CountingHierEvents in tests/benches; the default compiles to nothing.
struct NullHierEvents {
  static void count_local_pass() noexcept {}
  static void count_global_acquire() noexcept {}
  static void count_global_release() noexcept {}
};

/// Process-global relaxed tallies (instrumentation only).
struct CountingHierEvents {
  static inline std::atomic<std::uint64_t> local_passes{0};
  static inline std::atomic<std::uint64_t> global_acquires{0};
  static inline std::atomic<std::uint64_t> global_releases{0};

  static void count_local_pass() noexcept {
    local_passes.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat
  }
  static void count_global_acquire() noexcept {
    global_acquires.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat
  }
  static void count_global_release() noexcept {
    global_releases.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat
  }
  static void reset() noexcept {
    // relaxed: stat reset between quiesced bench phases.
    local_passes.store(0, std::memory_order_relaxed);
    global_acquires.store(0, std::memory_order_relaxed);   // relaxed: stat
    global_releases.store(0, std::memory_order_relaxed);   // relaxed: stat
  }
};

}  // namespace qsv::hier
