// cohort_lock.hpp — the generic cohort (hierarchical) lock combinator.
//
// HierQsvMutex (hier_qsv.hpp) fuses the cohort idea with the QSV node
// protocol: the local grant and the global grant travel in one store
// because both tiers speak the same queue-node dialect. That fusion is
// the specialized, fastest instance — but it hard-wires QSV×QSV.
// CohortLock is the *combinator*: it implements the same budgeted
// local-handoff protocol over ANY pair of mutexes from the catalogue
// (QSV×QSV, MCS×MCS, QSV×ticket, ticket×MCS, …), so every lock family
// becomes a cohort composition and the cohort effect can be measured
// independently of the queue protocol that carries it.
//
// Protocol (Dice/Marathe/Shavit-style lock cohorting, restated for the
// 1991 repertoire — both tiers still need only fetch&store/CAS-class
// mutexes; the only thing asked of a component beyond lock/unlock is
// the global tier's cross-thread-release contract, see below):
//
//   * One LocalLock per cohort (cohorts = NUMA nodes via
//     TopologyCohortMap by default), one GlobalLock for the machine.
//   * lock(): announce intent (per-cohort `pending` count), take the
//     local lock. If the previous holder left the global grant behind
//     (`top_granted`), the thread owns both locks at the price of one
//     node-local handoff. Otherwise it acquires the global lock on the
//     cohort's behalf.
//   * unlock(): if the budget allows and a cohort-mate is committed
//     (`pending > 0`), leave `top_granted` set and release only the
//     local lock — the global lock never moves, the handoff is local.
//     Otherwise release the global lock first, then the local one.
//   * `budget` bounds consecutive local passes, so other cohorts wait
//     at most budget+1 critical sections per tenure — the same
//     fairness/throughput dial as HierQsvMutex (budget 0 degenerates
//     to the flat global lock plus one local hop: the ablation
//     control).
//
// `pending` makes the handoff safe without inspecting the components:
// it is incremented before local.lock() and decremented only after
// local.lock() returns — and since the releasing holder still owns the
// local lock when it reads `pending`, a nonzero reading proves a
// cohort-mate is committed to acquiring the local lock and will
// inherit (and eventually release) the global grant. The remaining
// per-cohort fields (`top_granted`, `passes`) are owned by the local
// lock's holder; the local lock's release/acquire ordering carries
// them between holders, so they need no atomicity of their own.
//
// Per tier the O(1)-remote-reference argument of the underlying locks
// is preserved: CohortLock adds one per-cohort line (pending + holder
// fields, padded) and routes every wait through the component locks,
// which spin locally by construction. See DESIGN.md "Topology and
// cohorts".
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <memory>
#include <vector>

#include "hier/cohort_map.hpp"
#include "obs/hook.hpp"
#include "platform/cache.hpp"
#include "platform/thread_id.hpp"
#include "qsv/wait.hpp"

namespace qsv::hier {

/// The component can hand its unlock obligation to another thread:
/// export_hold() detaches the in-flight acquisition from the calling
/// thread as an opaque token, adopt_hold() attaches it to the adopter
/// (QsvMutex and McsLock implement the pair over their held maps).
template <typename L>
concept HoldTransferable = requires(L l, void* hold) {
  { l.export_hold() } -> std::convertible_to<void*>;
  l.adopt_hold(hold);
};

/// The component declares that unlock() touches no per-thread state,
/// so any thread may release it (ticket, tas — the centralized locks).
template <typename L>
concept ThreadObliviousUnlock = requires {
  { L::kThreadObliviousUnlock } -> std::convertible_to<bool>;
} && L::kThreadObliviousUnlock;

/// The cohort combinator over two exclusive locks. `Map` assigns dense
/// thread indices to cohorts (TopologyCohortMap by default — one cohort
/// per NUMA node). Protocol events land on the combinator's own
/// telemetry record (obs/hook.hpp) — the component locks additionally
/// register records of their own.
///
/// The global tier's ownership crosses threads (the acquiring cohort
/// representative and the releasing last holder are usually different
/// threads), so GlobalLock must either be thread-oblivious or support
/// hold transfer — enforced at compile time below. The local tier is
/// always locked and unlocked by the same thread, so any mutex works.
template <typename GlobalLock, typename LocalLock,
          typename Map = TopologyCohortMap>
class CohortLock {
  /// Does the global grant travel between threads as an explicit token?
  static constexpr bool kGlobalTransfer = HoldTransferable<GlobalLock>;
  static_assert(kGlobalTransfer || ThreadObliviousUnlock<GlobalLock>,
                "the cohort global tier is released by a different thread "
                "than acquired it: GlobalLock must implement "
                "export_hold()/adopt_hold() or declare "
                "kThreadObliviousUnlock");

 public:
  /// Default local-handoff budget, matching HierQsvMutex's tuning.
  static constexpr std::size_t kDefaultBudget = 16;

  /// `budget`: maximum consecutive intra-cohort handoffs before the
  /// global lock must be released. `policy` is forwarded to whichever
  /// component locks take a wait policy (a hardwired spinner like the
  /// ticket lock simply ignores it).
  explicit CohortLock(std::size_t budget = kDefaultBudget,
                      qsv::wait_policy policy = qsv::get_default_wait_policy(),
                      Map map = Map{})
      : map_(std::move(map)), budget_(budget), global_(policy) {
    const std::size_t n = map_.cohort_count(qsv::platform::kMaxThreads);
    if (n == 0) detail::cohort_fatal("cohort map yields no cohorts");
    cohorts_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      cohorts_.push_back(
          std::make_unique<qsv::platform::Padded<Cohort>>(policy));
    }
  }
  CohortLock(const CohortLock&) = delete;
  CohortLock& operator=(const CohortLock&) = delete;

  void lock() {
    Cohort& c = my_cohort();
    // Commit before touching the local lock: a releasing holder that
    // reads pending > 0 may leave the global grant behind for us.
    c.pending.fetch_add(1, std::memory_order_relaxed);  // relaxed: see below
    c.local.lock();
    // relaxed: pending is a hint for the holder's pass-local decision;
    // the local lock's own handoff carries all data ordering, and a
    // stale hint only costs one unnecessary global release.
    c.pending.fetch_sub(1, std::memory_order_relaxed);
    if (c.top_granted) {
      // The previous holder passed the global lock with the local one.
      c.top_granted = false;
      adopt_global(c);
    } else {
      global_.lock.lock();
      qsv::obs::count_global_acquire(obs_.rec());
      c.passes = 0;
    }
    qsv::obs::count_acquire(obs_.rec());
  }

  /// Non-blocking attempt; present exactly when both components offer
  /// one. A failed attempt leaves no trace (the local lock is backed
  /// out when the global attempt loses).
  bool try_lock()
    requires requires(GlobalLock& g, LocalLock& l) {
      { g.try_lock() } -> std::convertible_to<bool>;
      { l.try_lock() } -> std::convertible_to<bool>;
    }
  {
    Cohort& c = my_cohort();
    if (!c.local.try_lock()) return false;
    if (c.top_granted) {
      // Stealing an in-flight local handoff is fine: the committed
      // waiter that was promised the grant will block on the local
      // lock until we release (and re-decide) in unlock().
      c.top_granted = false;
      adopt_global(c);
      qsv::obs::count_acquire(obs_.rec());
      return true;
    }
    if (global_.lock.try_lock()) {
      qsv::obs::count_global_acquire(obs_.rec());
      qsv::obs::count_acquire(obs_.rec());
      c.passes = 0;
      return true;
    }
    c.local.unlock();
    return false;
  }

  void unlock() {
    Cohort& c = my_cohort();
    // pending is decremented only while holding the local lock — which
    // we hold — so a nonzero reading proves a committed cohort-mate.
    if (c.passes < budget_ &&
        // relaxed: hint read (see lock()); staleness is benign.
        c.pending.load(std::memory_order_relaxed) > 0) {
      ++c.passes;
      // Detach the global hold from this thread so whichever cohort-mate
      // takes the local lock next can release it; the local lock's
      // release/acquire ordering carries the token.
      if constexpr (kGlobalTransfer) {
        c.global_hold = global_.lock.export_hold();
      }
      c.top_granted = true;
      qsv::obs::count_local_pass(obs_.rec());
      c.local.unlock();
      return;
    }
    // Budget spent or cohort drained: let other cohorts in. Global
    // first, so a cohort-mate that sneaks in never waits on a global
    // lock we still hold.
    c.passes = 0;
    global_.lock.unlock();
    qsv::obs::count_global_release(obs_.rec());
    c.local.unlock();
  }

  static constexpr const char* name() noexcept { return "cohort"; }

  std::size_t budget() const noexcept { return budget_; }
  std::size_t cohort_count() const noexcept { return cohorts_.size(); }

  /// Fixed per-instance state: the global lock plus one padded cohort
  /// (local lock + handoff fields) per cohort.
  std::size_t footprint_bytes() const noexcept {
    return sizeof(GlobalLock) +
           cohorts_.size() * sizeof(qsv::platform::Padded<Cohort>);
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  /// Per-cohort state. `local` serializes the cohort; `pending` counts
  /// cohort-mates committed to acquiring it; `top_granted` and `passes`
  /// are owned by the local lock's holder (carried between holders by
  /// the lock's release/acquire ordering).
  struct Cohort {
    LocalLock local;
    std::atomic<std::size_t> pending{0};
    bool top_granted = false;
    std::size_t passes = 0;
    /// The exported global hold riding along a local pass (only used
    /// when the global tier is HoldTransferable).
    void* global_hold = nullptr;

    explicit Cohort(qsv::wait_policy p)
      requires std::constructible_from<LocalLock, qsv::wait_policy>
        : local(p) {}
    explicit Cohort(qsv::wait_policy)
      requires(!std::constructible_from<LocalLock, qsv::wait_policy>)
        : local() {}
  };

  /// Wraps the global lock so construction can forward the wait policy
  /// exactly when the component accepts one.
  struct GlobalHolder {
    GlobalLock lock;
    explicit GlobalHolder(qsv::wait_policy p)
      requires std::constructible_from<GlobalLock, qsv::wait_policy>
        : lock(p) {}
    explicit GlobalHolder(qsv::wait_policy)
      requires(!std::constructible_from<GlobalLock, qsv::wait_policy>)
        : lock() {}
  };

  /// Consume an inherited global grant: attach the traveling hold to
  /// the calling thread (no-op for thread-oblivious global tiers).
  void adopt_global(Cohort& c) {
    if constexpr (kGlobalTransfer) {
      global_.lock.adopt_hold(c.global_hold);
      c.global_hold = nullptr;
    }
  }

  Cohort& my_cohort() {
    const std::size_t c = map_.my_cohort();
    if (c >= cohorts_.size()) {
      detail::cohort_fatal("thread index exceeds cohort table");
    }
    return cohorts_[c]->value;
  }

  Map map_;
  std::size_t budget_;
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  GlobalHolder global_;
  /// One padded slab per cohort, allocated once (component locks are
  /// neither copyable nor movable, so the table is pointer-stable by
  /// construction).
  std::vector<std::unique_ptr<qsv::platform::Padded<Cohort>>> cohorts_;
};

}  // namespace qsv::hier
