// hier_qsv.hpp — hierarchical (cohort) extension of the QSV mechanism.
//
// The flat QSV mutex hands the lock to waiters in global FIFO order, so
// on a machine with locality structure (NUMA nodes, bus segments) almost
// every handoff crosses the expensive part of the interconnect. The
// hierarchical extension keeps one QSV-style queue *per cohort* of
// nearby threads plus one global QSV queue *of cohorts*:
//
//   * a thread first enqueues on its cohort's local queue;
//   * the cohort's first waiter acquires the global lock on the cohort's
//     behalf (with a fresh arena node, so concurrent release/re-acquire
//     of the same cohort never alias);
//   * a releasing thread prefers its local successor: up to `budget`
//     consecutive intra-cohort handoffs pass *both* the local and the
//     global lock with one store to the successor's flag;
//   * when the budget is spent (or the local queue empties) the global
//     lock is released so other cohorts make progress — the budget is
//     the fairness/throughput dial (experiment F10; budget 0 is the
//     ablation control that degenerates to flat QSV plus one hop).
//
// The protocol needs exactly the QSV instruction repertoire (fetch&store
// + compare&swap on one word) and its per-thread space is still one node
// per held lock, so it is a faithful "future work" extension of the 1991
// mechanism rather than a modern import.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "hier/cohort_map.hpp"
#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/node_arena.hpp"
#include "platform/thread_id.hpp"
#include "platform/wait.hpp"

namespace qsv::hier {

/// Hierarchical QSV mutex. `Wait` is the waiting strategy for both the
/// local and global wait — per-instance state, fixed at construction
/// (platform/wait.hpp; RuntimeWait by default).
template <typename Wait = qsv::platform::RuntimeWait>
class HierQsvMutex {
 public:
  /// `threads_per_cohort`: dense thread indices are grouped in blocks of
  /// this size (hier/cohort_map.hpp). `budget`: maximum consecutive
  /// intra-cohort handoffs before the global lock must be released.
  explicit HierQsvMutex(std::size_t threads_per_cohort = 4,
                        std::size_t budget = 16, Wait waiter = Wait{})
      : waiter_(waiter),
        map_(threads_per_cohort),
        budget_(budget),
        cohorts_(map_.cohort_count(qsv::platform::kMaxThreads)) {
    if constexpr (requires { waiter_.consult_telemetry(obs_.rec()); }) {
      waiter_.consult_telemetry(obs_.rec());
    }
  }

  /// Tuned cohort/budget defaults, explicit waiting policy.
  explicit HierQsvMutex(qsv::wait_policy policy)
    requires std::constructible_from<Wait, qsv::wait_policy>
      : HierQsvMutex(4, 16, Wait(policy)) {}
  HierQsvMutex(const HierQsvMutex&) = delete;
  HierQsvMutex& operator=(const HierQsvMutex&) = delete;

  void lock() {
    Cohort& coh = my_cohort();
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel exchange below publishes it.
    n->next.store(nullptr, std::memory_order_relaxed);
    n->state.store(kWaiting, std::memory_order_relaxed);  // relaxed: as above
    // acq_rel: publish our node to the successor side; observe the
    // predecessor node (and, transitively, the cohort fields written by
    // the previous holder on the fresh-acquire path).
    Node* pred = coh.local_tail.exchange(n, std::memory_order_acq_rel);
    bool have_global = false;
    std::uint64_t t0 = 0;
    if (pred != nullptr) {
      t0 = qsv::obs::wait_begin_ns(obs_.rec());
      pred->next.store(n, std::memory_order_release);
      waiter_.wait_while_equal(n->state, kWaiting);
      have_global =
          n->state.load(std::memory_order_acquire) == kGlobalPassed;
    }
    if (!have_global) acquire_global(coh, t0);
    if (t0 != 0) {
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    } else {
      qsv::obs::count_acquire(obs_.rec());
    }
    Held::local().insert(this, n);
  }

  bool try_lock() {
    Cohort& coh = my_cohort();
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel CAS below publishes it on success.
    n->next.store(nullptr, std::memory_order_relaxed);
    n->state.store(kWaiting, std::memory_order_relaxed);  // relaxed: as above
    Node* expected = nullptr;
    // relaxed: failure order — a non-empty local queue just means we
    // recycle the node and fail the try; nothing is read through it.
    if (!coh.local_tail.compare_exchange_strong(expected, n,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      Arena::instance().release(n);
      return false;
    }
    // Local queue was empty and we are its head; now try the global word.
    Node* g = Arena::instance().acquire();
    // relaxed: node init; the acq_rel CAS below publishes it on success.
    g->next.store(nullptr, std::memory_order_relaxed);
    g->state.store(kWaiting, std::memory_order_relaxed);  // relaxed: as above
    expected = nullptr;
    // relaxed: failure order — on failure we back out the local claim
    // and recycle; nothing is read through the failed value.
    if (global_tail_.compare_exchange_strong(expected, g,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      qsv::obs::count_global_acquire(obs_.rec());
      qsv::obs::count_acquire(obs_.rec());
      coh.global_node = g;
      coh.passes = 0;
      Held::local().insert(this, n);
      return true;
    }
    Arena::instance().release(g);
    // Undo the local enqueue. If a cohort-mate slipped in behind us it
    // becomes the cohort representative: grant it the local lock with the
    // obligation to acquire the global one itself.
    Node* mine = n;
    // relaxed: failure order — failure only tells us a successor
    // enqueued; the acquire re-load of next carries the ordering.
    if (coh.local_tail.compare_exchange_strong(mine, nullptr,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
      Arena::instance().release(n);
      return false;
    }
    Node* next;
    while ((next = n->next.load(std::memory_order_acquire)) == nullptr) {
      qsv::platform::cpu_relax();
    }
    next->state.store(kMustAcquireGlobal, std::memory_order_release);
    waiter_.notify_all(next->state);
    Arena::instance().release(n);
    return false;
  }

  void unlock() {
    Cohort& coh = my_cohort();
    auto& e = Held::local().find(this);
    Node* n = e.node;
    Held::local().erase(e);
    Node* next = n->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Node* expected = n;
      // relaxed: failure order — same successor-pending pattern as
      // unlock(); the acquire re-load of next carries the ordering.
      if (coh.local_tail.compare_exchange_strong(expected, nullptr,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed)) {
        // Cohort queue drained: give the global lock back.
        release_global(coh);
        qsv::obs::count_free_release(obs_.rec());
        Arena::instance().release(n);
        return;
      }
      while ((next = n->next.load(std::memory_order_acquire)) == nullptr) {
        qsv::platform::cpu_relax();
      }
    }
    qsv::obs::count_handoff(obs_.rec());
    if (coh.passes < budget_) {
      // Intra-cohort pass: successor inherits local *and* global lock.
      ++coh.passes;
      qsv::obs::count_local_pass(obs_.rec());
      next->state.store(kGlobalPassed, std::memory_order_release);
      waiter_.notify_all(next->state);
    } else {
      // Budget spent: let other cohorts in, then wake the successor with
      // the obligation to queue globally on the cohort's behalf.
      release_global(coh);
      next->state.store(kMustAcquireGlobal, std::memory_order_release);
      waiter_.notify_all(next->state);
    }
    Arena::instance().release(n);
  }

  static constexpr const char* name() noexcept { return "hier-qsv"; }

  std::size_t threads_per_cohort() const noexcept { return map_.block(); }
  std::size_t budget() const noexcept { return budget_; }
  std::size_t cohort_count() const noexcept { return cohorts_.size(); }

  /// Fixed per-instance state: the global word plus one padded tail (and
  /// holder-private fields) per cohort.
  std::size_t footprint_bytes() const noexcept {
    return qsv::platform::kFalseSharingRange +
           cohorts_.footprint_bytes();
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  static constexpr std::uint32_t kWaiting = 0;
  static constexpr std::uint32_t kGlobalPassed = 1;
  static constexpr std::uint32_t kMustAcquireGlobal = 2;

  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> state{kWaiting};
  };
  using Arena = qsv::platform::NodeArena<Node>;
  using Held = qsv::platform::HeldMap<Node>;

  /// Per-cohort state. `global_node` and `passes` are owned by whichever
  /// thread currently holds the cohort's local lock; the handoff chain
  /// (release store → acquire spin / tail CAS → tail exchange) carries
  /// the happens-before edge, so they need no atomicity of their own.
  struct Cohort {
    std::atomic<Node*> local_tail{nullptr};
    Node* global_node = nullptr;
    std::size_t passes = 0;
  };

  Cohort& my_cohort() {
    const std::size_t c = map_.my_cohort();
    if (c >= cohorts_.size()) {
      detail::cohort_fatal("thread index exceeds cohort table");
    }
    return cohorts_[c];
  }

  /// Standard QSV enqueue on the global word with a fresh node; records
  /// the node in the cohort so any cohort-mate that later inherits the
  /// lock can release it. `t0` is the caller's contended-wait bracket:
  /// left untouched when already set (the local wait started it),
  /// started here when the global tier makes us wait.
  void acquire_global(Cohort& coh, std::uint64_t& t0) {
    Node* g = Arena::instance().acquire();
    // relaxed: node init; the acq_rel exchange below publishes it.
    g->next.store(nullptr, std::memory_order_relaxed);
    g->state.store(kWaiting, std::memory_order_relaxed);  // relaxed: as above
    Node* pred = global_tail_.exchange(g, std::memory_order_acq_rel);
    if (pred != nullptr) {
      if (t0 == 0) t0 = qsv::obs::wait_begin_ns(obs_.rec());
      pred->next.store(g, std::memory_order_release);
      waiter_.wait_while_equal(g->state, kWaiting);
    }
    qsv::obs::count_global_acquire(obs_.rec());
    coh.global_node = g;
    coh.passes = 0;
  }

  /// Standard QSV release of the global word using the node recorded at
  /// the cohort's global acquisition.
  void release_global(Cohort& coh) {
    Node* g = coh.global_node;
    coh.global_node = nullptr;
    coh.passes = 0;
    Node* next = g->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Node* expected = g;
      // relaxed: failure order — failure means a global successor is
      // linking; the acquire re-load of next carries the ordering.
      if (global_tail_.compare_exchange_strong(expected, nullptr,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
        qsv::obs::count_global_release(obs_.rec());
        Arena::instance().release(g);
        return;
      }
      while ((next = g->next.load(std::memory_order_acquire)) == nullptr) {
        qsv::platform::cpu_relax();
      }
    }
    qsv::obs::count_global_release(obs_.rec());
    next->state.store(kGlobalPassed, std::memory_order_release);
    waiter_.notify_all(next->state);
    Arena::instance().release(g);
  }

  /// How this instance's blocked threads wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  BlockCohortMap map_;
  std::size_t budget_;
  /// Global word: tail of the queue *of cohort representatives*.
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<Node*> global_tail_{nullptr};
  qsv::platform::PaddedArray<Cohort> cohorts_;
};

}  // namespace qsv::hier
