// cohort_map.hpp — thread → cohort assignment for hierarchical locks.
//
// A *cohort* is a group of threads whose mutual lock handoffs are cheap
// (same bus segment / NUMA node / shared cache). The 1991 testbeds had
// this structure physically (Butterfly: processor-per-node; Symmetry:
// board-level clusters); the hierarchical extension of the QSV mechanism
// (DESIGN.md experiment F10) exploits it by preferring intra-cohort
// handoffs up to a fairness budget.
//
// Two policies:
//   * TopologyCohortMap — the production map: dense thread indices go
//     through the harness's round-robin CPU placement
//     (platform::cpu_for_index) to the NUMA node that cpu belongs to
//     (platform/topology.hpp). One cohort per node; on hosts without
//     multi-node structure the topology's single-node fallback makes
//     this one cohort spanning everything.
//   * BlockCohortMap — the explicit ablation control: `block`
//     consecutive indices share a cohort, the same shape a NUMA-aware
//     runtime would produce with one cohort per node, but independent
//     of the real machine so experiments can sweep cohort width.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>

#include "platform/thread_id.hpp"
#include "platform/affinity.hpp"
#include "platform/topology.hpp"

namespace qsv::hier {

namespace detail {
/// Cohort-map contract violations feed directly into cohort-table
/// indexing (a zero block is a divide-by-zero, an empty node an
/// unmapped cohort); abort deterministically in every build mode
/// rather than fall into UB — the HeldMap/node-layer precedent.
[[noreturn]] inline void cohort_fatal(const char* what) noexcept {
  std::fprintf(stderr, "libqsv cohort layer: %s\n", what);
  std::abort();
}
}  // namespace detail

/// Assignment of dense thread indices to cohorts: `block` consecutive
/// indices share a cohort. Immutable after construction; every method is
/// safe to call concurrently.
class BlockCohortMap {
 public:
  /// `block` = threads per cohort (>= 1). A block of 1 degenerates to
  /// "every thread its own cohort" (the lock then behaves like a flat
  /// QSV with an extra indirection — useful as an ablation control).
  /// A block of 0 would make every cohort_of a divide-by-zero; abort
  /// deterministically instead of leaving release builds to UB.
  explicit BlockCohortMap(std::size_t block) : block_(block) {
    if (block == 0) detail::cohort_fatal("cohort block must be at least 1");
  }

  /// Cohort of a dense thread index.
  std::size_t cohort_of(std::size_t thread_idx) const noexcept {
    return thread_idx / block_;
  }

  /// Cohort of the calling thread.
  std::size_t my_cohort() const noexcept {
    return cohort_of(qsv::platform::thread_index());
  }

  /// Upper bound on cohort ids that can appear for `max_threads` threads.
  std::size_t cohort_count(std::size_t max_threads) const noexcept {
    return (max_threads + block_ - 1) / block_;
  }

  std::size_t block() const noexcept { return block_; }

 private:
  std::size_t block_;
};

/// Assignment of dense thread indices to cohorts by *machine locality*:
/// thread index -> the cpu the harness's round-robin placement gives it
/// -> that cpu's NUMA node (one cohort per node). This is the map a
/// NUMA-aware runtime would hand the hierarchical locks; on single-node
/// hosts the topology fallback collapses it to one cohort, which the
/// cohort protocol handles (budgeted local handoffs, global acquired
/// once per tenure). Immutable after construction; safe to share.
class TopologyCohortMap {
 public:
  /// Build over the process topology (the default) or an injected one —
  /// the caller keeps an injected topology alive for the map's lifetime.
  explicit TopologyCohortMap(
      const qsv::platform::Topology& topo = qsv::platform::topology())
      : topo_(&topo) {
    if (topo.node_count() == 0) {
      detail::cohort_fatal("topology has no nodes");
    }
    for (const auto& node : topo.nodes()) {
      if (node.cpus.empty()) {
        detail::cohort_fatal("topology node without cpus cannot seat a cohort");
      }
    }
  }

  /// Cohort (= dense node index) of a dense thread index.
  std::size_t cohort_of(std::size_t thread_idx) const noexcept {
    return topo_->node_of_cpu(qsv::platform::cpu_for_index(thread_idx));
  }

  /// Cohort of the calling thread.
  std::size_t my_cohort() const noexcept {
    return cohort_of(qsv::platform::thread_index());
  }

  /// One cohort per node, regardless of thread count — node ids are
  /// dense, so this covers every index cohort_of can produce.
  std::size_t cohort_count(std::size_t /*max_threads*/) const noexcept {
    return topo_->node_count();
  }

  const qsv::platform::Topology& topology() const noexcept { return *topo_; }

 private:
  const qsv::platform::Topology* topo_;
};

}  // namespace qsv::hier
