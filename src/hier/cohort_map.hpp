// cohort_map.hpp — thread → cohort assignment for hierarchical locks.
//
// A *cohort* is a group of threads whose mutual lock handoffs are cheap
// (same bus segment / NUMA node / shared cache). The 1991 testbeds had
// this structure physically (Butterfly: processor-per-node; Symmetry:
// board-level clusters); the hierarchical extension of the QSV mechanism
// (DESIGN.md experiment F10) exploits it by preferring intra-cohort
// handoffs up to a fairness budget.
//
// On the container we run in there is no discoverable multi-node
// topology, so the default policy derives cohorts from dense thread
// indices in round-robin blocks — the same shape a NUMA-aware runtime
// would produce with one cohort per node — and the NUMA *simulator*
// (sim/protocols) supplies the ground-truth cost asymmetry.
#pragma once

#include <cassert>
#include <cstddef>

#include "platform/thread_id.hpp"

namespace qsv::hier {

/// Assignment of dense thread indices to cohorts: `block` consecutive
/// indices share a cohort. Immutable after construction; every method is
/// safe to call concurrently.
class BlockCohortMap {
 public:
  /// `block` = threads per cohort (>= 1). A block of 1 degenerates to
  /// "every thread its own cohort" (the lock then behaves like a flat
  /// QSV with an extra indirection — useful as an ablation control).
  explicit BlockCohortMap(std::size_t block) : block_(block) {
    assert(block >= 1 && "cohort block must be at least 1");
  }

  /// Cohort of a dense thread index.
  std::size_t cohort_of(std::size_t thread_idx) const noexcept {
    return thread_idx / block_;
  }

  /// Cohort of the calling thread.
  std::size_t my_cohort() const noexcept {
    return cohort_of(qsv::platform::thread_index());
  }

  /// Upper bound on cohort ids that can appear for `max_threads` threads.
  std::size_t cohort_count(std::size_t max_threads) const noexcept {
    return (max_threads + block_ - 1) / block_;
  }

  std::size_t block() const noexcept { return block_; }

 private:
  std::size_t block_;
};

}  // namespace qsv::hier
