// bounded_ring.hpp — the classic eventcount/sequencer bounded buffer
// (Reed & Kanodia's construction): N slots, multiple producers and
// consumers, *no lock anywhere*. Contrast with workload/ring.hpp, which
// guards the same structure with the QSV mutex + semaphores
// (experiment F11 races the two).
//
// Discipline (producer ticket t from Pseq, consumer ticket t from Cseq):
//   producer: await IN  == t        (my turn to deposit, orders writers)
//             await OUT >= t-N+1    (slot t mod N has been emptied)
//             buf[t mod N] = v; advance(IN)
//   consumer: await OUT == t        (my turn to remove, orders readers)
//             await IN  >= t+1      (slot t mod N has been filled)
//             v = buf[t mod N]; advance(OUT)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eventcount/eventcount.hpp"
#include "eventcount/sequencer.hpp"
#include "platform/cache.hpp"

namespace qsv::eventcount {

/// Bounded multi-producer multi-consumer FIFO on eventcounts.
/// `Ec` selects the eventcount implementation (EventCount<> or
/// QueuedEventCount<>), which is the knob experiment F11's ablation
/// turns.
template <typename T, typename Ec = EventCount<>>
class EcBoundedRing {
 public:
  explicit EcBoundedRing(std::size_t capacity) : buffer_(capacity) {}
  EcBoundedRing(const EcBoundedRing&) = delete;
  EcBoundedRing& operator=(const EcBoundedRing&) = delete;

  /// Blocks while the ring is full (or while earlier producers have not
  /// yet deposited — deposits are totally ordered by ticket).
  void push(T value) {
    const std::uint32_t t = pseq_.ticket();
    in_.await(t);  // previous producer finished slot t-1
    if (t >= buffer_.size()) {
      out_.await(t - static_cast<std::uint32_t>(buffer_.size()) + 1);
    }
    buffer_[t % buffer_.size()] = std::move(value);
    in_.advance();  // publishes the deposit (release)
  }

  /// Blocks while the ring is empty.
  T pop() {
    const std::uint32_t t = cseq_.ticket();
    out_.await(t);      // previous consumer finished slot t-1
    in_.await(t + 1);   // slot t has been filled
    T out = std::move(buffer_[t % buffer_.size()]);
    out_.advance();  // releases the slot to producer t+N
    return out;
  }

  std::size_t capacity() const noexcept { return buffer_.size(); }

  /// Items deposited / removed so far (quiescent diagnostics).
  std::uint32_t pushed() const noexcept { return in_.read(); }
  std::uint32_t popped() const noexcept { return out_.read(); }

 private:
  std::vector<T> buffer_;
  Sequencer pseq_;
  Sequencer cseq_;
  Ec in_;
  Ec out_;
};

}  // namespace qsv::eventcount
