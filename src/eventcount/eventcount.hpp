// eventcount.hpp — eventcounts: ordered condition synchronization
// without mutual exclusion (Reed & Kanodia's discipline, the era's
// standard "general mechanism" companion to sequencers).
//
// An eventcount is a monotonically increasing counter. `advance()`
// publishes that one more event has occurred; `await(v)` blocks until at
// least `v` events have occurred. Combined with a Sequencer
// (sequencer.hpp) this expresses producer/consumer, bounded buffers, and
// pipeline stage hand-offs with *no lock at all* — the comparison the
// reconstructed experiment F11 makes against the semaphore+mutex ring.
//
// Two implementations:
//   * EventCount — the count is one shared word; awaiting threads poll
//     it through the WaitPolicy. Simple and fast at low contention, but
//     every advance invalidates every waiter's cached copy
//     (centralized spinning — the pattern the QSV mechanism exists to
//     avoid).
//   * QueuedEventCount — awaiting threads enqueue a node carrying their
//     target and spin *locally*; advance detaches the waiter list and
//     wakes exactly the satisfied nodes. The QSV node protocol applied
//     to condition synchronization (one fetch&store to enqueue, one
//     store per wake).
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/node_arena.hpp"
#include "platform/wait.hpp"

namespace qsv::eventcount {

/// Centralized eventcount: one word, waiters poll through `Wait`.
template <typename Wait = qsv::platform::RuntimeWait>
class EventCount {
 public:
  explicit EventCount(Wait waiter = Wait{}) : waiter_(waiter) {}
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  /// Number of events that have occurred so far.
  std::uint32_t read() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  /// Publish one more event and wake waiters. Returns the new count.
  /// The release ordering publishes everything written before the event
  /// to threads whose await() observes it.
  std::uint32_t advance() noexcept {
    const std::uint32_t now =
        count_.fetch_add(1, std::memory_order_acq_rel) + 1;
    waiter_.notify_all(count_);
    return now;
  }

  /// Block until at least `target` events have occurred; returns the
  /// count actually observed (>= target).
  std::uint32_t await(std::uint32_t target) const noexcept {
    for (;;) {
      const std::uint32_t now = count_.load(std::memory_order_acquire);
      if (now >= target) return now;
      // Sleep until the word changes from the snapshot, then re-check:
      // works uniformly for spin, yield, park, and adaptive policies.
      waiter_.wait_while_equal(count_, now);
    }
  }

  static constexpr const char* name() noexcept { return "eventcount"; }

 private:
  // Mutable members: await() is const but parks through the waiter and
  // notifies take the atomic by non-const reference.
  mutable Wait waiter_;
  alignas(qsv::platform::kFalseSharingRange) mutable
      std::atomic<std::uint32_t> count_{0};
};

/// Queue-based eventcount: waiters spin on their own node (the QSV
/// protocol applied to condition synchronization).
template <typename Wait = qsv::platform::RuntimeWait>
class QueuedEventCount {
 public:
  explicit QueuedEventCount(Wait waiter = Wait{}) : waiter_(waiter) {}
  QueuedEventCount(const QueuedEventCount&) = delete;
  QueuedEventCount& operator=(const QueuedEventCount&) = delete;

  std::uint32_t read() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  std::uint32_t advance() noexcept {
    const std::uint32_t now =
        count_.fetch_add(1, std::memory_order_acq_rel) + 1;
    wake_satisfied();
    return now;
  }

  std::uint32_t await(std::uint32_t target) noexcept {
    std::uint32_t now = count_.load(std::memory_order_acquire);
    if (now >= target) return now;

    Node* n = Arena::instance().acquire();
    n->target = target;
    // relaxed: node init; the acq_rel push CAS below publishes it.
    n->state.store(kWaiting, std::memory_order_relaxed);
    // Push onto the Treiber stack of waiters.
    // relaxed: head sample; the CAS validates it (failure order too).
    Node* head = waiters_.load(std::memory_order_relaxed);
    do {
      n->next.store(head, std::memory_order_relaxed);  // relaxed: as above
    } while (!waiters_.compare_exchange_weak(head, n,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed));
    // Lost-wakeup guard: an advance may have run between our first read
    // and the push. Re-check, and if we are already satisfied try to
    // withdraw; losing the race to an advance's grant is fine (it will
    // have woken us).
    now = count_.load(std::memory_order_acquire);
    if (now >= target) {
      std::uint32_t expected = kWaiting;
      // relaxed: failure order — a lost withdraw means we were granted;
      // the grant CAS's acq_rel already ordered everything we read.
      if (n->state.compare_exchange_strong(expected, kAbandoned,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        // Withdrawn: the node stays in the stack and the next advance
        // drops it (and owns returning it to the arena).
        return now;
      }
      // CAS lost to a concurrent grant — fall through as granted.
    } else {
      waiter_.wait_while_equal(n->state, kWaiting);
    }
    const std::uint32_t seen = count_.load(std::memory_order_acquire);
    // Ownership rule: a granted node belongs to the *waiter* (the grantor
    // stops touching it the moment its grant CAS succeeds, except for the
    // wake notification), so we recycle it here — after the final load of
    // `state` — never the grantor. This is what makes the grant safe:
    // the node cannot be re-armed to kWaiting under our spin.
    Arena::instance().release(n);
    return seen;
  }

  static constexpr const char* name() noexcept { return "queued-ec"; }

 private:
  static constexpr std::uint32_t kWaiting = 0;
  static constexpr std::uint32_t kGranted = 1;
  static constexpr std::uint32_t kAbandoned = 2;

  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> state{kWaiting};
    std::uint32_t target = 0;
  };
  using Arena = qsv::platform::NodeArena<Node>;

  /// Detach the whole waiter stack, wake nodes whose target is met, and
  /// re-push the rest. Node ownership: a successful grant CAS transfers
  /// the node to its waiter (which recycles it after observing the
  /// grant); abandoned nodes are recycled here. `next` is always read
  /// *before* the grant CAS because the node may be gone afterwards.
  ///
  /// Walks are serialized by `walk_lock_` and read the count *inside*
  /// the lock. Without this there is a lost wakeup: walker A detaches an
  /// unsatisfied node, a later advance B finds the stack empty and
  /// finishes, then A re-pushes the node — which B's count satisfied —
  /// and no walk ever sees it again. Serialization + the in-lock re-read
  /// guarantee the *last* walk observes the final count and every
  /// re-pushed node. (The QSV barrier's closing-arrival grant walk uses
  /// the same single-walker discipline.)
  void wake_satisfied() noexcept {
    while (walk_lock_.exchange(1, std::memory_order_acquire) != 0) {
      qsv::platform::cpu_relax();
    }
    const std::uint32_t now = count_.load(std::memory_order_acquire);
    Node* list = waiters_.exchange(nullptr, std::memory_order_acq_rel);
    while (list != nullptr) {
      // relaxed: the acq_rel exchange that took the stack synchronized
      // with every push; the links are visible.
      Node* next = list->next.load(std::memory_order_relaxed);
      if (list->target <= now) {
        std::uint32_t expected = kWaiting;
        // relaxed: failure order — failure means the waiter abandoned;
        // the corpse is recycled without reading through it.
        if (list->state.compare_exchange_strong(expected, kGranted,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
          // Waiter owns the node from here on; only the wake remains.
          // (A notify on a node the waiter has already recycled is
          // benign: arena nodes are never unmapped and every wait loop
          // re-checks its predicate on spurious wakes.)
          waiter_.notify_all(list->state);
        } else {
          // Waiter withdrew concurrently (kAbandoned): ours to recycle.
          Arena::instance().release(list);
        }
      } else if (list->state.load(std::memory_order_acquire) ==
                 kAbandoned) {
        Arena::instance().release(list);
      } else {
        // Still unsatisfied: re-push.
        // relaxed: head sample + link; the acq_rel CAS publishes (its
        // failure order just refreshes the sample).
        Node* head = waiters_.load(std::memory_order_relaxed);
        do {
          list->next.store(head, std::memory_order_relaxed);  // relaxed: as above
        } while (!waiters_.compare_exchange_weak(head, list,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed));
      }
      list = next;
    }
    walk_lock_.store(0, std::memory_order_release);
  }

  /// How this instance's blocked awaiters wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> count_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<Node*> waiters_{nullptr};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> walk_lock_{0};
};

}  // namespace qsv::eventcount
