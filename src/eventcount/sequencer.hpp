// sequencer.hpp — sequencers: totally-ordered ticket dispensers
// (Reed & Kanodia's companion primitive to eventcounts).
//
// A sequencer hands out consecutive integers, one per ticket() call.
// Eventcounts order *waiting* (await a count); sequencers order
// *contenders* (who goes first). Together they express mutual exclusion,
// bounded buffers, and pipelines — see bounded_ring.hpp.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/cache.hpp"

namespace qsv::eventcount {

class Sequencer {
 public:
  Sequencer() = default;
  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  /// Next ticket: 0, 1, 2, ... Unique across all callers.
  /// relaxed is sufficient: a ticket orders its holder relative to other
  /// ticket holders only through the eventcount it is later awaited on.
  std::uint32_t ticket() noexcept {
    // relaxed: see above — the eventcount is the ordering channel.
    return next_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Tickets handed out so far (diagnostic / sizing).
  std::uint32_t issued() const noexcept {
    // relaxed: diagnostic snapshot.
    return next_.load(std::memory_order_relaxed);
  }

 private:
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> next_{0};
};

}  // namespace qsv::eventcount
