// scenario.hpp — the benchreg scenario concept.
//
// A *scenario* is one reconstructed figure/table/ablation: a named
// measurement that, given run parameters, produces a flat list of
// samples (records of string/number fields). Scenarios register
// themselves into the global registry (registry.hpp) exactly like the
// primitives in the unified catalogue (catalog/), and the
// single `qsvbench` driver enumerates scenarios × parameters, rendering
// every report through the shared emitters (emit.hpp) — one CLI and one
// JSON schema instead of one ad-hoc main() per experiment.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qsv/wait.hpp"

namespace qsv::benchreg {

/// Which part of the paper's evaluation a scenario reconstructs.
enum class Kind { kFigure, kTable, kAblation, kSmoke };

inline const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kFigure: return "figure";
    case Kind::kTable: return "table";
    case Kind::kAblation: return "ablation";
    case Kind::kSmoke: return "smoke";
  }
  return "?";
}

/// Run parameters, shared by every scenario. Zero/empty means "use the
/// scenario's own default" so one flag set drives 21 heterogeneous
/// experiments without a per-scenario option matrix.
struct Params {
  std::size_t threads = 0;    ///< cap/override for team sizes (0 = default)
  std::size_t reps = 3;       ///< repetitions for rep-based kernels
  double budget_ms = 0.0;     ///< per-measurement time budget (0 = default)
  std::string algo_filter;    ///< substring filter over registry algorithms
  /// The --wait sweep axis: wait policies a policy-sweeping scenario
  /// (A1) runs, in order. Empty = the scenario's default (all four).
  std::vector<qsv::wait_policy> wait_policies;

  /// Measurement window in seconds: the budget if set, else the
  /// scenario's publication default.
  double seconds(double fallback_s) const {
    return budget_ms > 0.0 ? budget_ms * 1e-3 : fallback_s;
  }

  std::size_t threads_or(std::size_t fallback) const {
    return threads != 0 ? threads : fallback;
  }

  /// Scale a count-driven workload (episodes, items, sim rounds) to the
  /// time budget, assuming the default count costs ~`nominal_ms`.
  std::uint64_t scale_count(std::uint64_t dflt, double nominal_ms) const {
    if (budget_ms <= 0.0 || nominal_ms <= 0.0) return dflt;
    const double f = budget_ms / nominal_ms;
    const double scaled = static_cast<double>(dflt) * (f < 1e3 ? f : 1e3);
    return scaled < 1.0 ? 1 : static_cast<std::uint64_t>(scaled);
  }

  /// Does a registry algorithm pass the --algo substring filter?
  bool algo_match(const std::string& name) const {
    return algo_filter.empty() || name.find(algo_filter) != std::string::npos;
  }

  /// The wait policies to sweep: --wait selections, or all four.
  std::vector<qsv::wait_policy> wait_policies_or_all() const {
    if (!wait_policies.empty()) return wait_policies;
    return {qsv::kAllWaitPolicies,
            qsv::kAllWaitPolicies + qsv::kWaitPolicyCount};
  }
};

/// One cell: a string or a number (with a display precision). Kept dumb
/// on purpose — all rendering/escaping lives in emit.hpp so JSON and
/// markdown cannot drift apart per scenario.
class Value {
 public:
  Value(std::string s) : str_(std::move(s)) {}
  Value(const char* s) : str_(s) {}
  Value(double v, int precision = 2) : numeric_(true), num_(v),
                                       precision_(precision) {}
  Value(std::uint64_t v)
      : numeric_(true), num_(static_cast<double>(v)), precision_(0) {}
  Value(int v) : numeric_(true), num_(v), precision_(0) {}

  bool is_number() const { return numeric_; }
  double number() const { return num_; }
  int precision() const { return precision_; }
  const std::string& str() const { return str_; }

 private:
  bool numeric_ = false;
  double num_ = 0.0;
  int precision_ = 2;
  std::string str_;
};

/// One record in a report. Field order is preserved: the emitters use
/// first-appearance order as the column order.
class Sample {
 public:
  Sample& set(std::string key, Value v) {
    fields_.emplace_back(std::move(key), std::move(v));
    return *this;
  }
  const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }
  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : fields_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string, Value>> fields_;
};

/// What one scenario run produced. `ok == false` marks an integrity
/// failure (mutual-exclusion violation, torn snapshot, sim deadlock);
/// the driver still emits the partial report, then exits non-zero.
struct Report {
  std::vector<Sample> samples;
  std::vector<std::string> notes;
  bool ok = true;
  std::string error;

  Sample& add() {
    samples.emplace_back();
    return samples.back();
  }
  void note(std::string n) { notes.push_back(std::move(n)); }
  void fail(std::string why) {
    ok = false;
    error = std::move(why);
  }
};

/// Registry entry: identity + provenance + the measurement itself.
struct Scenario {
  std::string name;   ///< stable machine name, e.g. "rw_ratio"
  std::string id;     ///< paper anchor, e.g. "fig8" / "tab1" / "abl6"
  Kind kind = Kind::kFigure;
  std::string title;  ///< one-line banner (the old bench banner text)
  std::string claim;  ///< reconstructed claim the scenario checks
  Report (*run)(const Params&) = nullptr;
};

}  // namespace qsv::benchreg
