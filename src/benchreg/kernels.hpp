// kernels.hpp — the shared measurement loops of the evaluation suite.
//
// Before benchreg, the reader-writer mix loop existed four times
// (smoke, fig8, abl2, abl6) and the plain acquire/release loop three
// times (abl1, abl3, abl4) with only cosmetic drift between copies.
// Each loop lives here once, templated over the lock type so both the
// type-erased registry handles and the concrete ablation types compile
// to the same measurement.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "benchreg/stats.hpp"
#include "harness/team.hpp"
#include "platform/affinity.hpp"
#include "platform/arch.hpp"
#include "workload/critical_section.hpp"
#include "workload/rw_mix.hpp"

namespace qsv::benchreg {

/// Outcome of a reader/writer mix run.
struct RwMixResult {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t dt_ns = 0;
  bool torn = false;  ///< any reader observed an inconsistent snapshot

  double total_mops() const { return mops(reads + writes, dt_ns); }
  double read_mops() const { return mops(reads, dt_ns); }
  double write_mops() const { return mops(writes, dt_ns); }
};

/// Read-mostly mix over VersionedCells: readers take the shared mode
/// and verify snapshot consistency, writers take the exclusive mode.
/// `seed_stride`/`seed_bias` keep the per-thread RNG streams of the
/// historical binaries reproducible.
template <typename Lock>
RwMixResult run_rw_mix(Lock& lock, std::size_t threads, double read_ratio,
                       double seconds, std::uint64_t seed_stride = 7919,
                       std::uint64_t seed_bias = 1) {
  std::atomic<std::uint64_t> reads{0}, writes{0}, torn{0};
  qsv::workload::VersionedCells cells;
  DeadlineStop clock(seconds);
  qsv::harness::ThreadTeam::run(threads, [&](std::size_t rank) {
    qsv::workload::RwMix mix(read_ratio, rank * seed_stride + seed_bias);
    std::uint64_t r = 0, w = 0, ops = 0;
    while (!clock.stop()) {
      if (mix.next_is_read()) {
        lock.lock_shared();
        if (!cells.read_consistent()) torn.fetch_add(1);
        lock.unlock_shared();
        ++r;
      } else {
        lock.lock();
        cells.write();
        lock.unlock();
        ++w;
      }
      clock.poll(rank, ++ops);
    }
    reads.fetch_add(r);
    writes.fetch_add(w);
  });
  RwMixResult out;
  out.dt_ns = clock.elapsed_ns();
  out.reads = reads.load();
  out.writes = writes.load();
  out.torn = torn.load() != 0;
  return out;
}

/// Outcome of a plain acquire/release loop.
struct LockLoopResult {
  std::uint64_t ops = 0;
  std::uint64_t dt_ns = 0;
  bool ok = true;  ///< mutual-exclusion integrity held

  double throughput_mops() const { return mops(ops, dt_ns); }
};

/// Empty-section contention loop with the GuardedCounter integrity
/// check. `external_watchdog` moves timer duty off the team onto a
/// helper thread — required when the team is oversubscribed and no
/// member can be trusted to make progress (abl1/abl4); pinning is
/// likewise skipped once threads exceed the CPUs.
template <typename Lock>
LockLoopResult run_lock_loop(Lock& lock, std::size_t threads, double seconds,
                             bool external_watchdog = false) {
  qsv::workload::GuardedCounter integrity;
  std::atomic<std::uint64_t> total{0};
  DeadlineStop clock(seconds);
  std::thread watchdog;
  if (external_watchdog) {
    watchdog = std::thread([&] {
      qsv::platform::thread_sleep(
          std::chrono::nanoseconds(static_cast<std::int64_t>(seconds * 1e9)));
      clock.request();
    });
  }
  qsv::harness::ThreadTeam::run(
      threads,
      [&](std::size_t rank) {
        std::uint64_t ops = 0;
        while (!clock.stop()) {
          lock.lock();
          integrity.bump();
          lock.unlock();
          ++ops;
          if (!external_watchdog) clock.poll(rank, ops);
        }
        total.fetch_add(ops);
      },
      /*pin=*/threads <= qsv::platform::available_cpus());
  LockLoopResult out;
  out.dt_ns = clock.elapsed_ns();
  if (watchdog.joinable()) watchdog.join();
  out.ops = total.load();
  out.ok = integrity.consistent() && integrity.value() == out.ops;
  return out;
}

/// Hot-counter fetch&add loop (T3): returns achieved Mops.
template <typename Counter>
double run_counter_loop(Counter& counter, std::size_t threads,
                        double seconds) {
  std::atomic<std::uint64_t> total{0};
  DeadlineStop clock(seconds);
  qsv::harness::ThreadTeam::run(threads, [&](std::size_t rank) {
    std::uint64_t ops = 0;
    while (!clock.stop()) {
      counter.fetch_add(1);
      clock.poll(rank, ++ops, 0x3f);
    }
    total.fetch_add(ops);
  });
  return mops(total.load(), clock.elapsed_ns());
}

}  // namespace qsv::benchreg
