// stats.hpp — timing and statistics kernels for the benchmark layer.
//
// Everything here used to live as near-identical copies inside the
// figure/table binaries (and `bench/bench_util.hpp`): the thread sweep,
// the deadline/stop-flag idiom, ops→Mops conversion, percentile
// summaries, and the calibrated single-thread ns/op loop that replaces
// the google-benchmark dependency of the old tab1 binary. Scenarios use
// these; none re-implements a timing loop.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/affinity.hpp"
#include "platform/stats.hpp"
#include "platform/timing.hpp"

namespace qsv::benchreg {

/// Thread counts for scaling sweeps: 1,2,4,... capped at the allowed CPU
/// count (measuring spin locks oversubscribed produces noise, not data).
inline std::vector<std::size_t> thread_sweep(std::size_t cap = 0) {
  const std::size_t cpus = qsv::platform::available_cpus();
  const std::size_t limit = cap == 0 ? cpus : std::min(cap, cpus);
  std::vector<std::size_t> sweep;
  for (std::size_t t = 1; t <= limit; t *= 2) sweep.push_back(t);
  if (sweep.back() != limit) sweep.push_back(limit);
  return sweep;
}

/// The duration-bounded run idiom, hoisted: workers loop on `stop()`,
/// rank 0 doubles as the timer by calling `poll` every iteration (the
/// clock is only read every `mask`+1 ops), and `elapsed_ns()` reports
/// the measured wall time from construction to the moment of asking.
class DeadlineStop {
 public:
  explicit DeadlineStop(double seconds)
      : t0_(qsv::platform::now_ns()),
        deadline_(t0_ + static_cast<std::uint64_t>(seconds * 1e9)) {}

  // relaxed: stop flag — workers only need to see it eventually, and
  // result aggregation happens after the join.
  bool stop() const { return stop_.load(std::memory_order_relaxed); }
  void request() { stop_.store(true, std::memory_order_relaxed); }  // relaxed: as above

  /// Rank-0 timer duty: cheap for everyone, clock read amortized.
  void poll(std::size_t rank, std::uint64_t ops, std::uint64_t mask = 0xff) {
    if (rank == 0 && (ops & mask) == 0 &&
        qsv::platform::now_ns() >= deadline_) {
      request();
    }
  }

  std::uint64_t elapsed_ns() const { return qsv::platform::now_ns() - t0_; }

 private:
  std::atomic<bool> stop_{false};
  std::uint64_t t0_;
  std::uint64_t deadline_;
};

/// Operations over nanoseconds → millions of operations per second.
inline double mops(std::uint64_t ops, std::uint64_t dt_ns) {
  return dt_ns == 0 ? 0.0
                    : static_cast<double>(ops) / static_cast<double>(dt_ns) *
                          1e3;
}

/// Exact percentile of a sample, q in [0,1] (delegates to the platform
/// quantile; re-exported here so scenario code has one stats doorway).
inline double percentile(const std::vector<double>& sample, double q) {
  return qsv::platform::quantile(sample, q);
}

inline double median(const std::vector<double>& sample) {
  return percentile(sample, 0.5);
}

/// Five-number summary over repetition measurements.
struct RepSummary {
  std::size_t reps = 0;
  double min = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

inline RepSummary summarize(const std::vector<double>& xs) {
  RepSummary s;
  s.reps = xs.size();
  if (xs.empty()) return s;
  qsv::platform::OnlineStats online;
  for (double x : xs) online.add(x);
  s.min = online.min();
  s.max = online.max();
  s.mean = online.mean();
  s.median = median(xs);
  return s;
}

/// Optimization barrier: keeps `p`'s object alive and its stores
/// unelidable without costing a memory access (google-benchmark's
/// DoNotOptimize, minus the dependency).
inline void keep_alive(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(p) : "memory");
#else
  static const void* volatile sink;
  sink = p;
#endif
}

/// Calibrated single-thread latency kernel (T1's measurement, without
/// google-benchmark): grow the iteration count until one batch takes at
/// least ~1/8 of the budget, then run `reps` timed batches and return
/// the median ns per op. Call `keep_alive` inside `op` to stop the
/// optimizer from collapsing the loop.
template <typename Op>
double ns_per_op(Op&& op, std::size_t reps, double budget_ms) {
  if (reps == 0) reps = 1;
  const double batch_ns = budget_ms * 1e6 / 8.0;
  std::uint64_t iters = 64;
  for (;;) {
    const auto t0 = qsv::platform::now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) op();
    const auto dt = qsv::platform::now_ns() - t0;
    if (static_cast<double>(dt) >= batch_ns || iters >= (1ull << 30)) break;
    iters *= 4;
  }
  std::vector<double> per_rep;
  per_rep.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = qsv::platform::now_ns();
    for (std::uint64_t i = 0; i < iters; ++i) op();
    const auto dt = qsv::platform::now_ns() - t0;
    per_rep.push_back(static_cast<double>(dt) /
                      static_cast<double>(iters));
  }
  return median(per_rep);
}

}  // namespace qsv::benchreg
