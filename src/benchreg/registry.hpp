// registry.hpp — global scenario catalogue (the same pattern as the
// primitive catalogue in catalog/: a process-wide list that drivers and
// tests iterate uniformly). Scenario translation units self-register through a static
// `Registrar`, so adding an experiment is one ~30-line file and zero
// driver edits; the driver binary links the scenario objects directly,
// keeping their initializers alive.
#pragma once

#include <string>
#include <vector>

#include "benchreg/scenario.hpp"

namespace qsv::benchreg {

/// Add a scenario to the catalogue. Aborts on a duplicate name or id —
/// a silent collision would make --filter ambiguous.
void register_scenario(Scenario s);

/// All registered scenarios in registration (link) order.
const std::vector<Scenario>& scenario_registry();

/// Registered scenarios in presentation order: figures first, then
/// tables, ablations, smoke probes, each numerically by id (fig2 before
/// fig10 — plain lexicographic order would interleave them).
std::vector<const Scenario*> sorted_scenarios();

/// Look up one scenario by exact name or id (nullptr on miss).
const Scenario* find_scenario(const std::string& name_or_id);

/// --filter semantics: `filter` is a comma-separated pattern list; a
/// scenario matches when any pattern equals its id, equals its name, or
/// is a substring of its name. An empty filter matches everything.
bool matches_filter(const Scenario& s, const std::string& filter);

/// Static-initialization hook for scenario translation units.
struct Registrar {
  explicit Registrar(Scenario s) { register_scenario(std::move(s)); }
};

}  // namespace qsv::benchreg
