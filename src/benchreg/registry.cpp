#include "benchreg/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace qsv::benchreg {

namespace {

std::vector<Scenario>& mutable_registry() {
  static std::vector<Scenario> registry;
  return registry;
}

int kind_rank(Kind k) {
  switch (k) {
    case Kind::kFigure: return 0;
    case Kind::kTable: return 1;
    case Kind::kAblation: return 2;
    case Kind::kSmoke: return 3;
  }
  return 4;
}

/// Natural order for ids like "fig2" vs "fig10": compare the alpha
/// prefix, then the numeric suffix numerically.
bool id_less(const std::string& a, const std::string& b) {
  const auto split = [](const std::string& s) {
    std::size_t i = 0;
    while (i < s.size() && (s[i] < '0' || s[i] > '9')) ++i;
    const std::string prefix = s.substr(0, i);
    const long number = i < s.size() ? std::strtol(s.c_str() + i, nullptr, 10)
                                     : -1;
    return std::pair<std::string, long>{prefix, number};
  };
  const auto [ap, an] = split(a);
  const auto [bp, bn] = split(b);
  if (ap != bp) return ap < bp;
  return an < bn;
}

/// One comma-separated token at a time, whitespace-free by construction
/// (the driver passes flag values verbatim).
bool pattern_matches(const Scenario& s, const std::string& pat) {
  if (pat.empty()) return false;
  if (pat == s.id || pat == s.name) return true;
  return s.name.find(pat) != std::string::npos;
}

}  // namespace

void register_scenario(Scenario s) {
  auto& registry = mutable_registry();
  for (const auto& existing : registry) {
    if (existing.name == s.name || existing.id == s.id) {
      std::fprintf(stderr,
                   "benchreg: duplicate scenario registration '%s' (%s)\n",
                   s.name.c_str(), s.id.c_str());
      std::abort();
    }
  }
  registry.push_back(std::move(s));
}

const std::vector<Scenario>& scenario_registry() {
  return mutable_registry();
}

std::vector<const Scenario*> sorted_scenarios() {
  std::vector<const Scenario*> out;
  out.reserve(scenario_registry().size());
  for (const auto& s : scenario_registry()) out.push_back(&s);
  std::stable_sort(out.begin(), out.end(),
                   [](const Scenario* a, const Scenario* b) {
                     if (a->kind != b->kind) {
                       return kind_rank(a->kind) < kind_rank(b->kind);
                     }
                     return id_less(a->id, b->id);
                   });
  return out;
}

const Scenario* find_scenario(const std::string& name_or_id) {
  for (const auto& s : scenario_registry()) {
    if (s.name == name_or_id || s.id == name_or_id) return &s;
  }
  return nullptr;
}

bool matches_filter(const Scenario& s, const std::string& filter) {
  if (filter.empty()) return true;
  std::size_t begin = 0;
  while (begin <= filter.size()) {
    const std::size_t comma = filter.find(',', begin);
    const std::size_t end = comma == std::string::npos ? filter.size() : comma;
    if (pattern_matches(s, filter.substr(begin, end - begin))) return true;
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return false;
}

}  // namespace qsv::benchreg
