// emit.hpp — machine- and human-readable renderings of a bench run.
//
// One JSON schema ("qsvbench/v1") for every scenario, so the CI
// trajectory artifacts (BENCH_*.json) stay diffable across PRs, plus a
// markdown renderer for console/report use. A minimal validating JSON
// parser rides along: the driver refuses to write an artifact its own
// parser rejects, and the unit tests round-trip the emitter through it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "benchreg/scenario.hpp"

namespace qsv::benchreg {

/// One executed scenario: registry entry + what it produced.
struct ScenarioRun {
  const Scenario* scenario = nullptr;
  Report report;
};

/// A whole driver invocation.
struct RunOutput {
  Params params;
  std::vector<ScenarioRun> runs;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Render a full run as schema "qsvbench/v1" JSON (see DESIGN.md).
std::string to_json(const RunOutput& out);

/// Render a full run as markdown: one section per scenario with a
/// field-union table (column order = first appearance across samples).
std::string to_markdown(const RunOutput& out);

/// Validating parse of a complete JSON document (objects, arrays,
/// strings with escapes, numbers, true/false/null). Returns false and
/// fills `error` (when non-null) with an offset-tagged message.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace qsv::benchreg
