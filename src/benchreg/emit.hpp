// emit.hpp — machine- and human-readable renderings of a bench run.
//
// One JSON schema ("qsvbench/v1") for every scenario, so the CI
// trajectory artifacts (BENCH_*.json) stay diffable across PRs, plus a
// markdown renderer for console/report use. A minimal validating JSON
// parser rides along: the driver refuses to write an artifact its own
// parser rejects, and the unit tests round-trip the emitter through it.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "benchreg/scenario.hpp"

namespace qsv::benchreg {

/// One executed scenario: registry entry + what it produced.
struct ScenarioRun {
  const Scenario* scenario = nullptr;
  Report report;
};

/// A whole driver invocation.
struct RunOutput {
  Params params;
  std::vector<ScenarioRun> runs;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Render a full run as schema "qsvbench/v1" JSON (see DESIGN.md).
std::string to_json(const RunOutput& out);

/// Render a full run as markdown: one section per scenario with a
/// field-union table (column order = first appearance across samples).
std::string to_markdown(const RunOutput& out);

/// Validating parse of a complete JSON document (objects, arrays,
/// strings with escapes, numbers, true/false/null). Returns false and
/// fills `error` (when non-null) with an offset-tagged message.
bool json_valid(std::string_view text, std::string* error = nullptr);

/// Parsed JSON node — the DOM counterpart of json_valid, so tests and
/// tools can read the emitted artifacts back (the sim-vs-measured
/// validation reads BENCH_cohort.json / BENCH_rw_ratio.json this way).
/// Exactly one of the payload members is meaningful, selected by
/// `kind`; object members keep document order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named `key`, or nullptr (also on non-objects).
  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// As json_valid, but additionally builds the document tree into `out`
/// (left default-initialized on failure). Escape sequences in strings
/// are decoded; \uXXXX becomes UTF-8.
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace qsv::benchreg
