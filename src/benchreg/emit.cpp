#include "benchreg/emit.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "platform/topology.hpp"

namespace qsv::benchreg {

namespace {

/// Provenance for the artifact's `meta` block: the building commit
/// (CMake stamps QSV_GIT_SHA at configure time; the QSV_GIT_SHA
/// environment variable overrides it, so CI can stamp the exact tested
/// revision into a cached build).
std::string git_sha() {
  if (const char* env = std::getenv("QSV_GIT_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
#ifdef QSV_GIT_SHA
  return QSV_GIT_SHA;
#else
  return "unknown";
#endif
}

/// ISO-8601 UTC, second resolution ("2026-08-08T12:34:56Z").
std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  if (gmtime_r(&now, &tm) == nullptr) return "unknown";
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// One-line host-topology summary ("2 packages, 2 nodes, 16 cpus").
std::string topology_summary() {
  const auto& topo = qsv::platform::topology();
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%zu package%s, %zu node%s, %zu cpus%s",
                topo.package_count(), topo.package_count() == 1 ? "" : "s",
                topo.node_count(), topo.node_count() == 1 ? "" : "s",
                topo.cpu_count(), topo.is_fallback() ? " (fallback)" : "");
  return buf;
}

/// JSON number: full precision, integers without a trailing ".0",
/// non-finite values mapped to null (JSON has no NaN/Inf).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  if (std::fabs(v) < 9.0e15 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

/// Display number: the precision the scenario asked for.
std::string display_number(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string value_json(const Value& v) {
  if (v.is_number()) return json_number(v.number());
  std::string quoted;
  quoted += '"';
  quoted += json_escape(v.str());
  quoted += '"';
  return quoted;
}

std::string value_display(const Value& v) {
  if (v.is_number()) return display_number(v.number(), v.precision());
  return v.str();
}

void append_sample_json(std::string& out, const Sample& s,
                        const char* indent) {
  out += indent;
  out += "{";
  bool first = true;
  for (const auto& [key, value] : s.fields()) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += json_escape(key);
    out += "\": ";
    out += value_json(value);
  }
  out += "}";
}

/// Column order for one scenario's table: first appearance wins.
std::vector<std::string> column_union(const std::vector<Sample>& samples) {
  std::vector<std::string> columns;
  for (const auto& s : samples) {
    for (const auto& [key, value] : s.fields()) {
      bool seen = false;
      for (const auto& c : columns) {
        if (c == key) {
          seen = true;
          break;
        }
      }
      if (!seen) columns.push_back(key);
    }
  }
  return columns;
}

/// Markdown table cells may not contain '|' or newlines.
std::string md_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '|') {
      out += "\\|";
    } else if (c == '\n') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

// ---------------------------------------------------- validator / DOM
// One grammar walk serves both faces: with a null `out` it only
// validates (json_valid); with a JsonValue it additionally builds the
// tree (json_parse). Keeping them the same code path means the DOM can
// never accept a document the validator rejects, or vice versa.

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const char* why) {
    error = std::string(why) + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  static unsigned hex_digit(char c) {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    return static_cast<unsigned>(c - 'A' + 10);
  }

  static void append_utf8(std::string& s, unsigned code) {
    if (code < 0x80) {
      s += static_cast<char>(code);
    } else if (code < 0x800) {
      s += static_cast<char>(0xC0 | (code >> 6));
      s += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      s += static_cast<char>(0xE0 | (code >> 12));
      s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return fail("expected string");
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos];
        if (e == 'u') {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() || !std::isxdigit(static_cast<unsigned char>(
                                          text[pos]))) {
              return fail("bad \\u escape");
            }
            code = code * 16 + hex_digit(text[pos]);
          }
          if (out != nullptr) append_utf8(*out, code);
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return fail("bad escape character");
        } else if (out != nullptr) {
          switch (e) {
            case 'b': *out += '\b'; break;
            case 'f': *out += '\f'; break;
            case 'n': *out += '\n'; break;
            case 'r': *out += '\r'; break;
            case 't': *out += '\t'; break;
            default: *out += e;
          }
        }
      } else if (out != nullptr) {
        *out += c;
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_number(double* out) {
    const std::size_t start = pos;
    if (eat('-')) {
    }
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                  text[pos]))) {
      pos = start;
      return fail("expected number");
    }
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (eat('.')) {
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                    text[pos]))) {
        return fail("digit required after decimal point");
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                    text[pos]))) {
        return fail("digit required in exponent");
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (out != nullptr) {
      // The scan above accepted exactly a JSON number, so strtod on the
      // accepted span cannot fail.
      *out = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                         nullptr);
    }
    return true;
  }

  bool parse_literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text.compare(pos, n, word) != 0) return fail("bad literal");
    pos += n;
    return true;
  }

  bool parse_value(int depth, JsonValue* out) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    switch (text[pos]) {
      case '{':
        if (out != nullptr) out->kind = JsonValue::Kind::kObject;
        return parse_object(depth, out);
      case '[':
        if (out != nullptr) out->kind = JsonValue::Kind::kArray;
        return parse_array(depth, out);
      case '"':
        if (out != nullptr) out->kind = JsonValue::Kind::kString;
        return parse_string(out != nullptr ? &out->string : nullptr);
      case 't':
        if (out != nullptr) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
        }
        return parse_literal("true");
      case 'f':
        if (out != nullptr) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
        }
        return parse_literal("false");
      case 'n':
        if (out != nullptr) out->kind = JsonValue::Kind::kNull;
        return parse_literal("null");
      default:
        if (out != nullptr) out->kind = JsonValue::Kind::kNumber;
        return parse_number(out != nullptr ? &out->number : nullptr);
    }
  }

  bool parse_object(int depth, JsonValue* out) {
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(out != nullptr ? &key : nullptr)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->object.emplace_back(std::move(key), JsonValue{});
        slot = &out->object.back().second;
      }
      if (!parse_value(depth + 1, slot)) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(int depth, JsonValue* out) {
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->array.emplace_back();
        slot = &out->array.back();
      }
      if (!parse_value(depth + 1, slot)) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const RunOutput& out) {
  std::string j;
  j += "{\n";
  j += "  \"schema\": \"qsvbench/v1\",\n";
  j += "  \"meta\": {";
  j += "\"git_sha\": \"" + json_escape(git_sha()) + "\"";
  j += ", \"timestamp\": \"" + json_escape(utc_timestamp()) + "\"";
  j += ", \"host_topology\": \"" + json_escape(topology_summary()) + "\"";
  j += "},\n";
  j += "  \"params\": {";
  j += "\"threads\": " + json_number(static_cast<double>(out.params.threads));
  j += ", \"reps\": " + json_number(static_cast<double>(out.params.reps));
  j += ", \"budget_ms\": " + json_number(out.params.budget_ms);
  j += ", \"algo_filter\": \"" + json_escape(out.params.algo_filter) + "\"";
  j += "},\n";
  j += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < out.runs.size(); ++i) {
    const auto& run = out.runs[i];
    const auto& s = *run.scenario;
    j += "    {\n";
    j += "      \"name\": \"" + json_escape(s.name) + "\",\n";
    j += "      \"id\": \"" + json_escape(s.id) + "\",\n";
    j += "      \"kind\": \"" + std::string(kind_name(s.kind)) + "\",\n";
    j += "      \"title\": \"" + json_escape(s.title) + "\",\n";
    j += "      \"claim\": \"" + json_escape(s.claim) + "\",\n";
    j += "      \"ok\": " + std::string(run.report.ok ? "true" : "false") +
         ",\n";
    if (!run.report.ok) {
      j += "      \"error\": \"" + json_escape(run.report.error) + "\",\n";
    }
    j += "      \"notes\": [";
    for (std::size_t n = 0; n < run.report.notes.size(); ++n) {
      if (n != 0) j += ", ";
      j += '"';
      j += json_escape(run.report.notes[n]);
      j += '"';
    }
    j += "],\n";
    j += "      \"samples\": [\n";
    for (std::size_t k = 0; k < run.report.samples.size(); ++k) {
      append_sample_json(j, run.report.samples[k], "        ");
      if (k + 1 < run.report.samples.size()) j += ",";
      j += "\n";
    }
    j += "      ]\n";
    j += "    }";
    if (i + 1 < out.runs.size()) j += ",";
    j += "\n";
  }
  j += "  ]\n";
  j += "}\n";
  return j;
}

std::string to_markdown(const RunOutput& out) {
  std::string md;
  for (const auto& run : out.runs) {
    const auto& s = *run.scenario;
    md += "## " + s.id + " · " + s.name + " — " + s.title + "\n\n";
    if (!s.claim.empty()) md += "*claim:* " + s.claim + "\n\n";
    if (!run.report.ok) {
      md += "**FAILED:** " + run.report.error + "\n\n";
    }
    const auto columns = column_union(run.report.samples);
    if (!columns.empty()) {
      md += "|";
      for (const auto& c : columns) {
        md += ' ';
        md += md_escape(c);
        md += " |";
      }
      md += "\n|";
      for (std::size_t i = 0; i < columns.size(); ++i) md += " --- |";
      md += "\n";
      for (const auto& sample : run.report.samples) {
        md += "|";
        for (const auto& c : columns) {
          const Value* v = sample.find(c);
          md += ' ';
          if (v != nullptr) md += md_escape(value_display(*v));
          md += " |";
        }
        md += "\n";
      }
      md += "\n";
    }
    for (const auto& note : run.report.notes) {
      md += "> " + note + "\n";
    }
    if (!run.report.notes.empty()) md += "\n";
  }
  return md;
}

bool json_valid(std::string_view text, std::string* error) {
  Parser p;
  p.text = text;
  if (!p.parse_value(0, nullptr)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    return false;
  }
  return true;
}

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  Parser p;
  p.text = text;
  if (!p.parse_value(0, &out)) {
    if (error != nullptr) *error = p.error;
    out = JsonValue{};
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    out = JsonValue{};
    return false;
  }
  return true;
}

}  // namespace qsv::benchreg
