// fc_queue.hpp — bounded MPMC queue over the flat-combining executor.
//
// Layering: this is eventcount/bounded_ring.hpp's ring with the
// *sequencer tickets replaced by the executor*. EcBoundedRing orders
// producers and consumers by Pseq/Cseq tickets and lets each thread
// deposit/remove its own slot; here the executor's combiner performs
// the deposits and removals (batched, cache-warm), and the same IN/OUT
// eventcount pair plays both of its classic roles:
//
//   IN  = items deposited so far     OUT = items removed so far
//   occupancy  = IN - OUT            (exact under the executor)
//   blocking   = await on the count that must move (Reed & Kanodia)
//
// try_push/try_pop never block and are safe to call from anywhere
// EXCEPT inside a closure delegated to the same executor (no
// reentrancy). push/pop block OUTSIDE the executor on the eventcounts —
// a combiner never sleeps on queue state, so delegation cannot
// deadlock on a full or empty ring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "combining/fc_executor.hpp"
#include "eventcount/eventcount.hpp"
#include "platform/wait.hpp"
#include "qsv/wait.hpp"

namespace qsv::combining {

template <typename T, typename Executor = FcExecutor<>,
          typename Ec = qsv::eventcount::EventCount<>>
class FcMpmcQueue {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  FcMpmcQueue()
      : FcMpmcQueue(kDefaultCapacity, qsv::get_default_wait_policy()) {}
  explicit FcMpmcQueue(qsv::wait_policy policy)
      : FcMpmcQueue(kDefaultCapacity, policy) {}
  FcMpmcQueue(std::size_t capacity, qsv::wait_policy policy)
      : exec_(policy),
        buffer_(capacity == 0 ? 1 : capacity),
        in_(qsv::platform::RuntimeWait(policy)),
        out_(qsv::platform::RuntimeWait(policy)) {}
  FcMpmcQueue(const FcMpmcQueue&) = delete;
  FcMpmcQueue& operator=(const FcMpmcQueue&) = delete;

  /// Deposit a copy of `value` if the ring has room. Never blocks.
  bool try_push(const T& value) {
    bool ok = false;
    exec_.run([&] {
      const std::uint32_t in = in_.read();
      const std::uint32_t out = out_.read();
      if (in - out < buffer_.size()) {
        buffer_[in % buffer_.size()] = value;
        in_.advance();  // publishes the deposit, wakes empty-waiters
        ok = true;
      }
    });
    return ok;
  }

  /// Remove the oldest item into `out`. Never blocks.
  bool try_pop(T& out) {
    bool ok = false;
    exec_.run([&] {
      const std::uint32_t in = in_.read();
      const std::uint32_t o = out_.read();
      if (in != o) {
        out = std::move(buffer_[o % buffer_.size()]);
        out_.advance();  // releases the slot, wakes full-waiters
        ok = true;
      }
    });
    return ok;
  }

  /// Blocks while the ring is full. The wait runs outside the executor:
  /// snapshot OUT, attempt, and on failure sleep until OUT moves past
  /// the snapshot — every removal advances OUT, so the wake cannot be
  /// missed (the bounded_ring producer discipline, minus the ticket).
  void push(T value) {
    for (;;) {
      const std::uint32_t seen = out_.read();
      if (try_push(value)) return;
      out_.await(seen + 1);
    }
  }

  /// Blocks while the ring is empty (consumer discipline: sleep until
  /// IN moves past the pre-attempt snapshot).
  T pop() {
    T out{};
    for (;;) {
      const std::uint32_t seen = in_.read();
      if (try_pop(out)) return out;
      in_.await(seen + 1);
    }
  }

  std::size_t capacity() const noexcept { return buffer_.size(); }

  /// Racy occupancy estimate (exact only at quiescence).
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(in_.read() - out_.read());
  }

  /// Items deposited / removed so far (quiescent diagnostics, as on
  /// EcBoundedRing).
  std::uint32_t pushed() const noexcept { return in_.read(); }
  std::uint32_t popped() const noexcept { return out_.read(); }

  typename Executor::Stats combine_stats() const { return exec_.stats(); }

 private:
  Executor exec_;
  std::vector<T> buffer_;
  Ec in_;
  Ec out_;
};

}  // namespace qsv::combining
