// flat_counter.hpp — single fetch&add word, the combining tree's rival.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/cache.hpp"

namespace qsv::combining {

/// One shared word updated with hardware fetch&add. Unbeatable at low
/// thread counts; at high counts every operation serializes on one cache
/// line, which is the saturation the combining tree amortizes (Table 3).
class FlatCounter {
 public:
  explicit FlatCounter(std::size_t /*capacity*/ = 0) {}

  /// Returns the value before the addition (linearizable fetch&add).
  std::int64_t fetch_add(std::int64_t delta) noexcept {
    // acq_rel: counter values are used to order work items.
    return value_.fetch_add(delta, std::memory_order_acq_rel);
  }

  std::int64_t read() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

  static constexpr const char* name() noexcept { return "flat-atomic"; }

 private:
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::int64_t> value_{0};
};

}  // namespace qsv::combining
