// flat_counter.hpp — single fetch&add word, the combining rivals' rival.
//
// Subsumed by striped_accumulator.hpp: a flat counter is a striped
// accumulator pinned to one stripe, where the stripe-local prior IS the
// global prior (linearizable fetch&add). The type stays because tab3
// and the tests name it, and because "the single hot word" is the
// strawman every combining structure is measured against.
#pragma once

#include <cstddef>
#include <cstdint>

#include "combining/striped_accumulator.hpp"

namespace qsv::combining {

class FlatCounter {
 public:
  explicit FlatCounter(std::size_t /*capacity*/ = 0) : acc_(1) {}

  /// Returns the value before the addition (linearizable fetch&add —
  /// exact with a single stripe).
  std::int64_t fetch_add(std::int64_t delta) noexcept {
    return acc_.fetch_add(delta);
  }

  void add(std::int64_t delta) noexcept { acc_.add(delta); }

  std::int64_t read() const noexcept { return acc_.read(); }

  static constexpr const char* name() noexcept { return "flat-atomic"; }

 private:
  StripedAccumulator acc_;
};

}  // namespace qsv::combining
