// sharded_map.hpp — concurrent hash map: N independent shards, each a
// plain unordered_map served by its own delegation executor.
//
// Sharding spreads unrelated keys across independent locks; flat
// combining then attacks the contention that sharding cannot remove —
// hot shards (skewed keys, few shards, many threads), where the
// combiner applies the whole backlog of bucket operations while the
// shard's table is warm in its cache. The executor is a template
// parameter, so the per-shard lock is catalogue-chosen:
//
//   ShardedMap<K, V>                                   // FC over qsv::mutex
//   ShardedMap<K, V, PlainExecutor<core::QsvMutex<>>>  // handoff control
//   ShardedMap<K, V, FcExecutor<hier::CohortLock<...>>> // NUMA-cohort FC
//
// Operations are per-shard linearizable (each key lives in exactly one
// shard, and every operation on it runs under that shard's executor);
// size() is a quiescently-exact sum, like StripedAccumulator::read().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "combining/fc_executor.hpp"
#include "platform/arch.hpp"
#include "qsv/wait.hpp"

namespace qsv::combining {

template <typename K, typename V, typename Executor = FcExecutor<>,
          typename Hash = std::hash<K>>
class ShardedMap {
 public:
  static constexpr std::size_t kDefaultShards = 8;

  ShardedMap() : ShardedMap(kDefaultShards, qsv::get_default_wait_policy()) {}
  explicit ShardedMap(qsv::wait_policy policy)
      : ShardedMap(kDefaultShards, policy) {}
  ShardedMap(std::size_t shards, qsv::wait_policy policy) {
    const auto n = static_cast<std::size_t>(qsv::platform::next_pow2(
        static_cast<std::uint64_t>(shards == 0 ? 1 : shards)));
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>(policy));
    }
  }
  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  /// Insert or overwrite; returns true when the key was new.
  bool insert_or_assign(const K& key, V value) {
    bool inserted = false;
    Shard& s = shard_of(key);
    s.exec.run([&] {
      inserted = s.map.insert_or_assign(key, std::move(value)).second;
    });
    return inserted;
  }

  /// Copy the mapped value into `out`; returns true on a hit.
  bool find(const K& key, V& out) {
    bool hit = false;
    Shard& s = shard_of(key);
    s.exec.run([&] {
      auto it = s.map.find(key);
      if (it != s.map.end()) {
        out = it->second;
        hit = true;
      }
    });
    return hit;
  }

  /// Returns true when the key was present.
  bool erase(const K& key) {
    std::size_t n = 0;
    Shard& s = shard_of(key);
    s.exec.run([&] { n = s.map.erase(key); });
    return n != 0;
  }

  /// Sum of shard sizes; exact at quiescence.
  std::size_t size() {
    std::size_t total = 0;
    for (auto& s : shards_) {
      std::size_t n = 0;
      s->exec.run([&] { n = s->map.size(); });
      total += n;
    }
    return total;
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Pre-size every shard's table for ~`expected` total keys (bench
  /// setup: keeps rehashing out of the measured window).
  void reserve(std::size_t expected) {
    const std::size_t per = expected / shards_.size() + 1;
    for (auto& s : shards_) {
      s->exec.run([&] { s->map.reserve(per); });
    }
  }

  /// Aggregated combining counters across shards.
  typename Executor::Stats combine_stats() const {
    typename Executor::Stats total{};
    for (const auto& s : shards_) {
      const auto st = s->exec.stats();
      total.tenures += st.tenures;
      total.passes += st.passes;
      total.applied += st.applied;
    }
    return total;
  }

 private:
  // One allocation per shard: the executor's padded hot words and the
  // table never share a line with a sibling shard.
  struct Shard {
    explicit Shard(qsv::wait_policy policy) : exec(policy) {}
    Executor exec;
    std::unordered_map<K, V, Hash> map;
  };

  Shard& shard_of(const K& key) {
    return *shards_[hash_(key) & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  Hash hash_;
};

}  // namespace qsv::combining
