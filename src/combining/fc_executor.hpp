// fc_executor.hpp — the flat-combining delegation executor.
//
// Flat combining (Hendler, Incze, Shavit, Tzafrir) inverts the lock
// contract: instead of every thread acquiring the lock to run its own
// critical section, a thread *publishes* its operation on a per-thread
// publication record and whoever currently holds the lock applies the
// whole backlog in one batch before releasing. N lock handoffs — N
// cache-line migrations of the lock word AND of the protected data —
// collapse into one pass over records by a thread whose cache is
// already warm. This is the same remote-reference arithmetic that
// motivates the QSV queue locks, taken one step further: don't just
// queue the waiters, queue the *work*.
//
// FcExecutor is that protocol over ANY catalogue mutex:
//
//   FcExecutor<qsv::core::QsvMutex<>> exec;
//   exec.run([&] { /* runs under the lock, possibly on another thread */ });
//
// Design notes, in the house idiom:
//   * Publication records follow the NodeArena discipline (one
//     line-aligned record per (thread, executor), cached thread-locally,
//     allocation only on first use, storage owned centrally so records
//     outlive their threads). Records are never recycled across threads:
//     they stay linked into the publication list until the combiner
//     evicts them, so ownership must not move.
//   * The combiner is elected by try_lock (never by queueing, which
//     would re-create the handoff chain combining exists to avoid).
//     Losers wait on a tenure epoch through the runtime wait layer
//     (qsv::wait_policy — spin, yield, park, adaptive all work), and a
//     tenure end is the one wake-up event, so parked waiters cannot
//     miss a wake no matter where the combiner was in its scan when
//     they enlisted.
//   * A tenure applies at most `max_passes` scans (the combine-pass
//     budget): combining must not let one holder serve an unbounded
//     stream while its own caller waits behind the batch.
//   * Records idle for more than `eviction_idle` tenures are unlinked
//     (aging), so one-shot threads do not tax every future scan. Only
//     interior records are unlinked — new records CAS themselves onto
//     the list head concurrently, and the head is the one link the
//     combiner does not own.
//
// FcExecutor also exposes the mutex face (lock/try_lock/unlock), so
// qsv::fc_mutex is simultaneously a std-conforming lock and a
// delegation server: raw unlock() serves the pending backlog before
// releasing. PlainExecutor is the control: same run() surface, ordinary
// lock-execute-unlock, used by the bench pairs (fc/* vs plain/*).
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/qsv_mutex.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"
#include "qsv/wait.hpp"

namespace qsv::combining {

namespace detail {
/// Local face probe (capability.hpp has the catalogue-wide twin; the
/// combining layer must not depend on the catalogue).
template <typename M>
concept LockHasTry = requires(M& m) {
  { m.try_lock() } -> std::convertible_to<bool>;
};

/// Construct the underlying mutex with the executor's wait policy when
/// it accepts one; default-construct otherwise (e.g. CohortLock, whose
/// constructor vocabulary is budget-first).
template <typename M, bool = std::is_constructible_v<M, qsv::wait_policy>>
struct LockSlot {
  explicit LockSlot(qsv::wait_policy policy) : lock(policy) {}
  M lock;
};
template <typename M>
struct LockSlot<M, false> {
  explicit LockSlot(qsv::wait_policy) : lock() {}
  M lock;
};
}  // namespace detail

/// Tuning knobs for one executor instance.
struct FcConfig {
  /// Max combine scans per lock tenure. 1 = serve each batch once;
  /// larger values let the holder absorb work arriving mid-tenure.
  std::size_t max_passes = 8;
  /// A record idle (no posted op) for more than this many tenures is
  /// unlinked from the publication list and re-enlists on next use.
  std::uint64_t eviction_idle = 512;
};

template <typename Mutex = qsv::core::QsvMutex<>>
class FcExecutor {
 public:
  /// Lifetime combining counters (relaxed; for tests and tuning).
  struct Stats {
    std::uint64_t tenures = 0;  ///< combiner elections (batches)
    std::uint64_t passes = 0;   ///< publication-list scans
    std::uint64_t applied = 0;  ///< operations executed
  };

  explicit FcExecutor(qsv::wait_policy policy = qsv::get_default_wait_policy(),
                      FcConfig cfg = FcConfig{})
      : cfg_(cfg), waiter_(policy), slot_(policy) {}
  FcExecutor(const FcExecutor&) = delete;
  FcExecutor& operator=(const FcExecutor&) = delete;

  /// Execute `f` under the executor's mutual exclusion. Returns after
  /// `f` has run — here if this thread won the combiner election, or on
  /// the current combiner's thread otherwise. `f`'s side effects are
  /// visible to the caller on return (release/acquire on the record
  /// state). `f` must not recursively call into the same executor.
  template <typename F>
  void run(F&& f) {
    Record* r = my_record();
    r->ctx = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
    r->apply = [](void* p) {
      (*static_cast<std::remove_reference_t<F>*>(p))();
    };
    // relaxed: eviction bookkeeping — last_active only feeds the idle
    // heuristic, and a stale tenure read merely evicts a little early
    // or late; the release store of kPosted below publishes the record.
    r->last_active.store(tenure_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    r->state.store(kPosted, std::memory_order_release);
    enlist(r);
    if constexpr (detail::LockHasTry<Mutex>) {
      for (;;) {
        const std::uint32_t e = epoch_.load(std::memory_order_acquire);
        if (r->state.load(std::memory_order_acquire) != kPosted) return;
        if (slot_.lock.try_lock()) {
          combine(r);
          release_tenure();
          return;
        }
        if (r->state.load(std::memory_order_acquire) != kPosted) return;
        // The op may have been evicted between post and now; re-arm
        // before sleeping so the next tenure can see it.
        enlist(r);
        waiter_.wait_while_equal(epoch_, e);
      }
    } else {
      // No try_lock: queue on the mutex like any waiter, then serve
      // whatever is pending (possibly only our own record).
      slot_.lock.lock();
      if (r->state.load(std::memory_order_acquire) == kPosted) combine(r);
      release_tenure();
    }
  }

  // ------------------------------------------------ mutex face
  // fc_mutex is also a plain lock: raw critical sections serialize with
  // delegated ones on the same underlying mutex, and every release —
  // raw or combining — ends a tenure (epoch bump + wake) so delegators
  // parked behind a raw holder retry their election.

  void lock() { slot_.lock.lock(); }

  bool try_lock()
    requires detail::LockHasTry<Mutex>
  {
    return slot_.lock.try_lock();
  }

  /// Serve the pending backlog (one scan), then release.
  void unlock() {
    if (list_.load(std::memory_order_acquire) != nullptr) {
      // relaxed: tenure is an eviction clock (RMW keeps it exact);
      // the stat counters are bench telemetry. Neither publishes data.
      const std::uint64_t t =
          tenure_.fetch_add(1, std::memory_order_relaxed) + 1;
      stat_tenures_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat
      stat_passes_.fetch_add(1, std::memory_order_relaxed);    // relaxed: stat
      scan(t);
    }
    release_tenure();
  }

  // ------------------------------------------------ introspection

  Stats stats() const {
    // relaxed: stat snapshot; callers quiesce before trusting totals.
    return {stat_tenures_.load(std::memory_order_relaxed),
            stat_passes_.load(std::memory_order_relaxed),
            stat_applied_.load(std::memory_order_relaxed)};
  }

  const FcConfig& config() const { return cfg_; }

  /// Records currently linked into the publication list (takes the
  /// lock; test/diagnostic surface for the eviction policy).
  std::size_t active_records() {
    slot_.lock.lock();
    std::size_t n = 0;
    // relaxed: link walk under the combiner lock; every link was
    // written either under this lock or before the head-push release.
    for (Record* c = list_.load(std::memory_order_acquire); c != nullptr;
         c = c->next.load(std::memory_order_relaxed)) {  // relaxed: see above
      ++n;
    }
    release_tenure();
    return n;
  }

  static constexpr const char* name() noexcept { return "fc"; }

 private:
  friend struct qsv::platform::LayoutAuditAccess;

  enum : std::uint32_t { kIdle = 0, kPosted = 1 };

  /// One publication record. Line-aligned via Padded storage; owned by
  /// the executor (records stay reachable from the publication list
  /// after their thread exits, until aged out).
  struct Record {
    std::atomic<Record*> next{nullptr};   ///< list link; combiner-owned
                                          ///< once enlisted
    std::atomic<std::uint32_t> state{kIdle};
    void (*apply)(void*) = nullptr;       ///< trampoline to the closure
    void* ctx = nullptr;                  ///< closure on the poster's stack
    std::atomic<bool> enlisted{false};
    std::atomic<std::uint64_t> last_active{0};  ///< tenure of last use
  };

  /// One combining tenure: up to max_passes scans, stopping early once
  /// a scan finds nothing. The caller's own record is guaranteed served
  /// before return — normally by the first scan; by direct application
  /// if an eviction raced with the post and unlinked it.
  void combine(Record* self) {
    // relaxed: eviction clock + stat counter (see unlock()).
    const std::uint64_t t =
        tenure_.fetch_add(1, std::memory_order_relaxed) + 1;
    stat_tenures_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat
    std::size_t passes = 0;
    while (passes < cfg_.max_passes) {
      ++passes;
      if (scan(t) == 0) break;
    }
    stat_passes_.fetch_add(passes, std::memory_order_relaxed);  // relaxed: stat
    // relaxed: self is this thread's own record — it posted it, so the
    // kPosted check and the apply read the thread's own writes.
    if (self != nullptr &&
        self->state.load(std::memory_order_relaxed) == kPosted) {
      self->apply(self->ctx);
      // relaxed: eviction bookkeeping; kIdle below is the release edge.
      self->last_active.store(t, std::memory_order_relaxed);
      self->state.store(kIdle, std::memory_order_release);
      stat_applied_.fetch_add(1, std::memory_order_relaxed);  // relaxed: stat
    }
  }

  /// One pass over the publication list: apply every posted op, unlink
  /// stale interior records. Returns ops applied. Caller holds the lock.
  std::size_t scan(std::uint64_t tenure) {
    std::size_t applied = 0;
    Record* prev = nullptr;
    Record* cur = list_.load(std::memory_order_acquire);
    while (cur != nullptr) {
      // relaxed: link walk under the combiner lock (see list_size()).
      Record* next = cur->next.load(std::memory_order_relaxed);
      if (cur->state.load(std::memory_order_acquire) == kPosted) {
        cur->apply(cur->ctx);
        // relaxed: eviction bookkeeping; kIdle below is the release edge.
        cur->last_active.store(tenure, std::memory_order_relaxed);
        cur->state.store(kIdle, std::memory_order_release);
        ++applied;
        prev = cur;
      } else if (prev != nullptr &&
                 // relaxed: eviction heuristic; staleness is harmless.
                 tenure - cur->last_active.load(std::memory_order_relaxed) >
                     cfg_.eviction_idle) {
        // Unlink BEFORE clearing enlisted: the owner's re-enlist
        // acquires `enlisted`, so its head-push happens-after the
        // record left the list. Head records are never unlinked —
        // concurrent enlists CAS the head and that link is theirs.
        // relaxed: unlink under the combiner lock; the owner re-reads
        // its links only after the release store of enlisted below.
        prev->next.store(next, std::memory_order_relaxed);
        cur->next.store(nullptr, std::memory_order_relaxed);  // relaxed: as above
        cur->enlisted.store(false, std::memory_order_release);
      } else {
        prev = cur;
      }
      cur = next;
    }
    stat_applied_.fetch_add(applied, std::memory_order_relaxed);  // relaxed: stat
    return applied;
  }

  /// End a tenure: release the mutex, then advance the epoch and wake
  /// election losers. Order matters — bumping before the release would
  /// let every waiter lose try_lock against us and go back to sleep
  /// with no further wake coming.
  void release_tenure() {
    slot_.lock.unlock();
    epoch_.fetch_add(1, std::memory_order_release);
    waiter_.notify_all(epoch_);
  }

  /// LIFO head push; idempotent per record. The acquire on `enlisted`
  /// pairs with the evicting combiner's release so a re-push never
  /// races the unlink of the same record.
  void enlist(Record* r) {
    if (r->enlisted.load(std::memory_order_acquire)) return;
    // relaxed: only our own record's flag; the head-push CAS below is
    // the release that publishes the record (flag included).
    r->enlisted.store(true, std::memory_order_relaxed);
    // relaxed: head sample; the CAS validates it (failure order too).
    Record* head = list_.load(std::memory_order_relaxed);
    do {
      r->next.store(head, std::memory_order_relaxed);  // relaxed: as above
    } while (!list_.compare_exchange_weak(head, r, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// The calling thread's record for THIS executor: thread-local cache
  /// keyed by a never-reused executor id (an address could be recycled
  /// by a later executor; the id cannot), central storage on first use
  /// only — the NodeArena shape, minus cross-thread recycling, which
  /// list membership forbids.
  Record* my_record() {
    thread_local std::vector<std::pair<std::uint64_t, Record*>> bound;
    for (const auto& [id, rec] : bound) {
      if (id == id_) return rec;
    }
    Record* r = [this] {
      std::lock_guard<std::mutex> g(storage_mu_);
      storage_.push_back(std::make_unique<qsv::platform::Padded<Record>>());
      return &storage_.back()->value;
    }();
    bound.emplace_back(id_, r);
    return r;
  }

  static std::uint64_t next_id() {
    static std::atomic<std::uint64_t> counter{0};
    // relaxed: unique-id draw; only uniqueness matters, not order.
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  FcConfig cfg_;
  mutable qsv::platform::RuntimeWait waiter_;
  detail::LockSlot<Mutex> slot_;
  const std::uint64_t id_ = next_id();

  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<Record*> list_{nullptr};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> epoch_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint64_t> tenure_{0};

  std::atomic<std::uint64_t> stat_tenures_{0};
  std::atomic<std::uint64_t> stat_passes_{0};
  std::atomic<std::uint64_t> stat_applied_{0};

  std::mutex storage_mu_;
  std::vector<std::unique_ptr<qsv::platform::Padded<Record>>> storage_;
};

/// The control executor: identical run() surface, no combining — plain
/// lock, execute, unlock. Every fc/* container has a plain/* twin built
/// on this so the bench isolates the combining effect itself.
template <typename Mutex = qsv::core::QsvMutex<>>
class PlainExecutor {
 public:
  /// Shape-compatible with FcExecutor::Stats; always zero — nothing
  /// combines here.
  using Stats = typename FcExecutor<Mutex>::Stats;

  explicit PlainExecutor(
      qsv::wait_policy policy = qsv::get_default_wait_policy())
      : slot_(policy) {}
  PlainExecutor(const PlainExecutor&) = delete;
  PlainExecutor& operator=(const PlainExecutor&) = delete;

  template <typename F>
  void run(F&& f) {
    slot_.lock.lock();
    std::forward<F>(f)();
    slot_.lock.unlock();
  }

  void lock() { slot_.lock.lock(); }
  void unlock() { slot_.lock.unlock(); }
  bool try_lock()
    requires detail::LockHasTry<Mutex>
  {
    return slot_.lock.try_lock();
  }

  Stats stats() const { return Stats{}; }

  static constexpr const char* name() noexcept { return "plain"; }

 private:
  detail::LockSlot<Mutex> slot_;
};

/// Linearizable fetch&add served by delegation — the canonical "hello
/// world" of flat combining and tab3's fourth counter. The value lives
/// in one atomic word written only under the executor, so read() is a
/// plain acquire load.
template <typename Executor = FcExecutor<>>
class BasicFcCounter {
 public:
  BasicFcCounter() = default;
  explicit BasicFcCounter(qsv::wait_policy policy) : exec_(policy) {}

  /// Returns the value before the addition (linearizable fetch&add).
  std::int64_t fetch_add(std::int64_t delta) noexcept {
    std::int64_t prior = 0;
    exec_.run([&]() noexcept {
      // relaxed: the executor serializes all closures under its lock
      // and run() itself carries the acquire/release handoff.
      prior = value_.load(std::memory_order_relaxed);
      value_.store(prior + delta, std::memory_order_relaxed);  // relaxed: as above
    });
    return prior;
  }

  void add(std::int64_t delta) noexcept { (void)fetch_add(delta); }

  std::int64_t read() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

  typename Executor::Stats stats() const { return exec_.stats(); }

  static constexpr const char* name() noexcept { return "fc-counter"; }

 private:
  mutable Executor exec_;
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::int64_t> value_{0};
};

using FcCounter = BasicFcCounter<>;

}  // namespace qsv::combining
