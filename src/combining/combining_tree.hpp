// combining_tree.hpp — software combining tree fetch&add.
//
// Goodman, Vernon & Woest / Yew, Tzeng & Lawrie's idea, in the standard
// textbook formulation: concurrent additions meet in a binary tree,
// combine their deltas on the way up, apply one combined RMW at the root,
// and distribute the intermediate "prior" values on the way down. Under
// saturation the root sees O(log P)-combined batches instead of P
// serialized RMWs. Linearizable: every caller receives a distinct prior
// value exactly as if the additions were applied one at a time.
//
// Thread placement: the calling thread's dense index (platform
// thread_index) selects a leaf; at most two threads share a leaf, which
// bounds concurrency at every node to the FIRST/SECOND pair the protocol
// expects.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/thread_id.hpp"

namespace qsv::combining {

class CombiningTree {
 public:
  /// `capacity`: maximum dense thread index + 1 that will ever operate on
  /// this counter.
  explicit CombiningTree(std::size_t capacity) {
    const std::size_t leaves = qsv::platform::next_pow2(
        std::max<std::size_t>(1, (capacity + 1) / 2));
    // A perfect binary tree with `leaves` leaves has 2*leaves - 1 nodes;
    // node 0 is the root, children of i are 2i+1 and 2i+2.
    nodes_ = std::vector<Node>(2 * leaves - 1);
    leaf_base_ = leaves - 1;
    nodes_[0].is_root = true;
  }
  CombiningTree(const CombiningTree&) = delete;
  CombiningTree& operator=(const CombiningTree&) = delete;

  /// Linearizable fetch&add: returns the counter value immediately before
  /// this call's delta was applied.
  std::int64_t fetch_add(std::int64_t delta) {
    const std::size_t tid = qsv::platform::thread_index();
    const std::size_t leaf = leaf_base_ + (tid / 2) % (leaf_base_ + 1);

    // --- Precombining: reserve a path upward until someone else already
    // owns the meeting node (we become SECOND there) or we hit the root.
    std::size_t stop = leaf;
    for (std::size_t n = leaf; precombine(n); n = parent(n)) {
      stop = parent(n);
    }

    // --- Combining: climb from the leaf to `stop`, merging deltas of
    // SECOND threads parked along the way.
    std::int64_t combined = delta;
    std::size_t path[kMaxDepth];
    std::size_t depth = 0;
    for (std::size_t n = leaf; n != stop; n = parent(n)) {
      combined = combine(n, combined);
      assert(depth < kMaxDepth);
      path[depth++] = n;
    }

    // --- Operation at the stop node: apply at root, or deposit as the
    // SECOND thread and wait for our result.
    const std::int64_t prior = op(stop, combined);

    // --- Distribution: walk back down handing out priors.
    while (depth > 0) {
      distribute(path[--depth], prior);
    }
    return prior;
  }

  /// Current value (quiescent accuracy; concurrent adds may be in flight).
  std::int64_t read() const noexcept {
    return nodes_[0].result.load(std::memory_order_acquire);
  }

  static constexpr const char* name() noexcept { return "combining-tree"; }

  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  enum class Status : std::uint8_t { kIdle, kFirst, kSecond, kResult };
  static constexpr std::size_t kMaxDepth = 64;

  struct alignas(qsv::platform::kFalseSharingRange) Node {
    // TTAS latch guarding the fields below (the "synchronized" monitor).
    std::atomic<std::uint32_t> latch{0};
    // Protocol state, all accessed under latch_.
    Status status = Status::kIdle;
    bool busy = false;  // "locked" in the textbook: mid-combine, hands off
    std::int64_t first_value = 0;
    std::int64_t second_value = 0;
    bool is_root = false;
    // Root accumulator / per-node result slot. Atomic so read() can peek.
    std::atomic<std::int64_t> result{0};
  };

  static std::size_t parent(std::size_t n) noexcept { return (n - 1) / 2; }

  void lock_node(Node& n) noexcept {
    for (;;) {
      // relaxed: read-only poll; the winning exchange is the acquire.
      while (n.latch.load(std::memory_order_relaxed) != 0) {
        qsv::platform::cpu_relax();
      }
      if (n.latch.exchange(1, std::memory_order_acquire) == 0) return;
    }
  }
  void unlock_node(Node& n) noexcept {
    n.latch.store(0, std::memory_order_release);
  }

  /// Spin until `n.busy` is false, holding the latch on return.
  void lock_when_not_busy(Node& n) noexcept {
    lock_node(n);
    while (n.busy) {
      unlock_node(n);
      qsv::platform::cpu_relax();
      lock_node(n);
    }
  }

  /// True = keep climbing (we are the FIRST thread through this node).
  bool precombine(std::size_t idx) {
    Node& n = nodes_[idx];
    lock_when_not_busy(n);
    bool climb;
    if (n.is_root) {
      // The root never pairs: every climber that reaches it stops and
      // applies its combined delta directly in op(), serialized by the
      // latch. (Pairing at the root would let both climbers believe they
      // were SECOND.)
      climb = false;
    } else {
      switch (n.status) {
        case Status::kIdle:
          n.status = Status::kFirst;
          climb = true;
          break;
        case Status::kFirst:
          // Someone is already climbing through here: park our delta at
          // this node. busy blocks their combine() until op() deposits.
          n.busy = true;
          n.status = Status::kSecond;
          climb = false;
          break;
        default:
          assert(false && "combining tree: >2 concurrent threads at a node");
          climb = false;
          break;
      }
    }
    unlock_node(n);
    return climb;
  }

  /// Merge a parked SECOND's delta (if any) into ours at node idx.
  std::int64_t combine(std::size_t idx, std::int64_t combined) {
    Node& n = nodes_[idx];
    lock_when_not_busy(n);
    n.busy = true;  // we will come back through distribute()
    n.first_value = combined;
    std::int64_t out;
    switch (n.status) {
      case Status::kFirst:
        out = combined;
        break;
      case Status::kSecond:
        out = combined + n.second_value;
        break;
      default:
        assert(false && "combining tree: combine on idle/result node");
        out = combined;
        break;
    }
    unlock_node(n);
    return out;
  }

  /// Apply the combined delta at the stop node.
  std::int64_t op(std::size_t idx, std::int64_t combined) {
    Node& n = nodes_[idx];
    lock_node(n);
    if (n.is_root) {
      // Apply to the accumulator directly, serialized by the latch.
      // relaxed: result is only ever touched under the node latch,
      // whose acquire/release transfer carries the ordering.
      const std::int64_t prior = n.result.load(std::memory_order_relaxed);
      n.result.store(prior + combined, std::memory_order_relaxed);  // relaxed: as above
      unlock_node(n);
      return prior;
    }
    assert(n.status == Status::kSecond);
    // Deposit our combined delta for the FIRST thread to carry up, then
    // wait for it to come back down with our prior.
    n.second_value = combined;
    n.busy = false;  // unblocks FIRST's combine() at this node
    while (n.status != Status::kResult) {
      unlock_node(n);
      qsv::platform::cpu_relax();
      lock_node(n);
    }
    // relaxed: under the node latch (see above).
    const std::int64_t prior = n.result.load(std::memory_order_relaxed);
    n.status = Status::kIdle;
    n.busy = false;
    unlock_node(n);
    return prior;
  }

  /// Hand results down to the SECOND thread parked at node idx (if any).
  void distribute(std::size_t idx, std::int64_t prior) {
    Node& n = nodes_[idx];
    lock_node(n);
    switch (n.status) {
      case Status::kFirst:
        // No one was parked here after all: release the node.
        n.status = Status::kIdle;
        n.busy = false;
        break;
      case Status::kSecond:
        // SECOND's share starts after our own portion (first_value).
        // relaxed: under the node latch (see above).
        n.result.store(prior + n.first_value, std::memory_order_relaxed);
        n.status = Status::kResult;  // op() observes under the latch
        break;
      default:
        assert(false && "combining tree: distribute on idle/result node");
        break;
    }
    unlock_node(n);
  }

  std::vector<Node> nodes_;
  std::size_t leaf_base_ = 0;
};

}  // namespace qsv::combining
