// striped_accumulator.hpp — per-stripe fetch&add, summed on read.
//
// The third point in the combining design space (tab3): the flat
// counter serializes every update on one line, the combining tree and
// the FC counter serialize but batch, the striped accumulator does not
// serialize at all — updates land on one of `stripes` line-padded
// words indexed by the dense thread id, and only read() walks them.
// The trade is exactness of intermediate reads: read() is a sum of
// per-stripe snapshots (each monotone, the total conservatively
// includes every update that completed before the call), and
// fetch_add() returns the *stripe-local* prior, which is the global
// prior only in the 1-stripe configuration.
//
// That 1-stripe configuration IS the old flat counter —
// flat_counter.hpp is now a thin pinned instantiation of this type.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/affinity.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/thread_id.hpp"

namespace qsv::combining {

class StripedAccumulator {
 public:
  /// `stripes` is rounded up to a power of two; 0 means "one stripe per
  /// available processor" (the contention the stripes exist to spread).
  explicit StripedAccumulator(std::size_t stripes = 0)
      : slots_(stripe_count(stripes)) {}
  StripedAccumulator(const StripedAccumulator&) = delete;
  StripedAccumulator& operator=(const StripedAccumulator&) = delete;

  /// Add `delta` to the calling thread's stripe; returns the value of
  /// THAT STRIPE before the addition. Stripe priors are unique and
  /// dense per stripe (each stripe is a linearizable counter); they are
  /// a global fetch&add prior only when stripes() == 1.
  std::int64_t fetch_add(std::int64_t delta) noexcept {
    auto& slot =
        slots_[qsv::platform::thread_index() & (slots_.size() - 1)].value;
    // acq_rel: stripe values order work items exactly like the flat
    // counter's single word did.
    return slot.fetch_add(delta, std::memory_order_acq_rel);
  }

  void add(std::int64_t delta) noexcept { (void)fetch_add(delta); }

  /// Sum of all stripes. Quiescently exact: equals the true total once
  /// updaters are quiesced; mid-run it includes at least every update
  /// that happened-before the call.
  std::int64_t read() const noexcept {
    std::int64_t sum = 0;
    for (const auto& s : slots_) {
      sum += s.value.load(std::memory_order_acquire);
    }
    return sum;
  }

  std::size_t stripes() const noexcept { return slots_.size(); }

  static constexpr const char* name() noexcept { return "striped-acc"; }

 private:
  static std::size_t stripe_count(std::size_t requested) {
    std::size_t n =
        requested != 0 ? requested : qsv::platform::available_cpus();
    if (n == 0) n = 1;
    return static_cast<std::size_t>(
        qsv::platform::next_pow2(static_cast<std::uint64_t>(n)));
  }

  std::vector<qsv::platform::Padded<std::atomic<std::int64_t>>> slots_;
};

}  // namespace qsv::combining
