// battery.hpp — the catalogue-wide qsv::chk battery.
//
// Drives every kCheckable catalogue row through the checker: exhaustive
// DFS at small bounds (2 threads, 2 critical sections each) plus
// seeded-random sampling at slightly larger bounds (3 threads, 2
// iterations), with a reader-writer scenario for the shared-capable
// rows and a permit-bound scenario for the QSV semaphore (which has no
// catalogue row of its own). A row passes when no property violation is
// found; any violation carries a replayable schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.hpp"
#include "chk/check.hpp"

namespace qsv::chk {

/// The catalogue rows the checker can drive (kCheckable), registration
/// order.
std::vector<const catalog::Entry*> checkable_rows();

struct BatteryOptions {
  /// Exhaustive pass: threads and per-thread critical sections. Two
  /// iterations exhaust at ~2.8k executions per lock row (sub-second
  /// native) and cover the release/reacquire handoff single-iteration
  /// bounds cannot reach.
  std::size_t dfs_threads = 2;
  std::size_t dfs_iters = 2;
  /// DFS execution budget per row; exhaustion within it is reported
  /// but not required to pass.
  std::size_t dfs_max_executions = 20000;
  /// Random pass: bounds, sample count, seed.
  std::size_t random_threads = 3;
  std::size_t random_iters = 2;
  std::size_t random_samples = 200;
  std::uint64_t seed = 1;
  /// Per-row progress lines (qsvchk); null for silent (tests).
  std::function<void(const std::string&)> log;

  /// Shrink the exploration budgets ~10x — for sanitizer builds, where
  /// every execution costs an order of magnitude more. Dropping to one
  /// critical section per thread keeps the DFS pass exhaustive (58
  /// executions per lock row) inside the smaller budget.
  void quick() {
    dfs_iters = 1;
    dfs_max_executions /= 10;
    random_samples /= 10;
  }
};

/// One (row, scenario, mode) check and its outcome.
struct BatteryCheck {
  std::string row;       ///< catalogue name (or "qsv-semaphore")
  std::string scenario;  ///< "lock", "rw", or "semaphore"
  std::string mode;      ///< "dfs" or "random"
  Report report;
};

struct BatteryResult {
  bool ok = true;
  std::size_t rows = 0;    ///< catalogue rows driven
  std::size_t checks = 0;  ///< (row, scenario, mode) checks run
  /// Checks whose report is not ok (empty when ok).
  std::vector<BatteryCheck> failures;
};

/// A lock scenario over one catalogue row: `threads` logical threads
/// each take and release the row's lock `iters` times.
Scenario lock_scenario(const catalog::Entry& entry, std::size_t threads,
                       std::size_t iters);

/// A reader-writer scenario: thread 0 writes, the rest read, `iters`
/// critical sections each.
Scenario rw_scenario(const catalog::Entry& entry, std::size_t threads,
                     std::size_t iters);

/// A semaphore scenario: `threads` logical threads each take and drop
/// one of `permits` permits `iters` times.
Scenario semaphore_scenario(std::int64_t permits, std::size_t threads,
                            std::size_t iters);

/// Run the full battery. Every kCheckable lock row gets the lock
/// scenario, every kCheckable shared row additionally the rw scenario,
/// and the QSV semaphore its permit-bound scenario; each under DFS and
/// seeded-random exploration.
BatteryResult run_battery(const BatteryOptions& opts);

}  // namespace qsv::chk
