// mutants.hpp — deliberately broken primitives that qsv::chk must catch.
//
// Test-only. Each mutant carries one classic concurrency bug, seeded at
// a deterministic race window (an explicit chk scheduling point), so
// the checker's exploration modes can reach the violating interleaving
// at tiny bounds and replay it byte-identically:
//
//   BrokenTasLock     check and set decomposed      -> mutual exclusion
//   LostWakeupMutex   waiter-count read before the
//                     waiter registers              -> lost wakeup stall
//   BrokenCohortLock  two-tier release samples the
//                     local pending count early     -> lost wakeup stall
//   BrokenRwLock      reader admission decomposed   -> rw exclusion
//
// The mutants wait exclusively through the chk_hook-instrumented seams
// (cpu_relax and the platform wait classes with wait_policy::spin), so
// every schedule is under the checker's control. They are never
// registered in the catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/any_primitive.hpp"
#include "chk/check.hpp"
#include "platform/arch.hpp"
#include "platform/chk_hook.hpp"
#include "platform/waiter.hpp"
#include "qsv/wait.hpp"

namespace qsv::chk::mutants {

/// The seeded race window: an explicit scheduling point under the
/// checker, nothing outside it.
inline void race_window() noexcept {
  if (qsv::platform::chk_hook::active()) qsv::platform::chk_hook::yield();
}

/// Test-and-set lock with the test and the set decomposed: two threads
/// can both observe the lock free, then both store "held". The checker
/// must report a mutual-exclusion violation.
class BrokenTasLock {
 public:
  void lock() {
    for (;;) {
      if (!locked_.load(std::memory_order_acquire)) {
        race_window();  // another thread may pass the same test here
        locked_.store(true, std::memory_order_release);
        return;
      }
      qsv::platform::cpu_relax();
    }
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

  bool try_lock() {
    if (locked_.load(std::memory_order_acquire)) return false;
    race_window();
    locked_.store(true, std::memory_order_release);
    return true;
  }

  static constexpr const char* name() noexcept { return "broken-tas"; }

 private:
  std::atomic<std::uint32_t> locked_{0};
};

/// Sleeping mutex whose unlock samples the waiter count *before* the
/// release: a waiter that registers inside the window is never woken —
/// its wait predicate can never become true, and the checker must
/// report a lost-wakeup stall.
class LostWakeupMutex {
 public:
  void lock() {
    for (;;) {
      std::uint32_t expect = 0;
      // relaxed: failure order — loop retries; nothing read through it.
      if (state_.compare_exchange_strong(expect, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return;
      }
      const std::uint32_t seen = wakeups_.load(std::memory_order_acquire);
      waiters_.fetch_add(1, std::memory_order_acq_rel);
      if (state_.load(std::memory_order_acquire) != 0) {
        waiter_.wait_while_equal(wakeups_, seen);
      }
      waiters_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  void unlock() {
    const std::uint32_t w = waiters_.load(std::memory_order_acquire);
    race_window();  // a waiter may register right here
    state_.store(0, std::memory_order_release);
    if (w != 0) {
      wakeups_.fetch_add(1, std::memory_order_release);
      waiter_.notify_all(wakeups_);
    }
  }

  static constexpr const char* name() noexcept { return "lost-wakeup"; }

 private:
  qsv::platform::RuntimeWait waiter_{qsv::wait_policy::spin};
  std::atomic<std::uint32_t> state_{0};    ///< 0 free, 1 held
  std::atomic<std::uint32_t> waiters_{0};  ///< registered sleepers
  std::atomic<std::uint32_t> wakeups_{0};  ///< wakeup generation
};

/// Two-tier (cohort-style) lock whose release samples the local pending
/// count before deciding between a local baton pass and a full global
/// release. A local waiter that arrives inside the window sees neither:
/// the global lock is freed, but the waiter sleeps on a baton that is
/// never passed. The checker must report a lost-wakeup stall.
class BrokenCohortLock {
 public:
  void lock() {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    std::uint32_t expect = 0;
    // relaxed: failure order — loop retries; nothing read through it.
    if (global_.compare_exchange_strong(expect, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    // Wait for the local baton: ownership of the still-held global
    // lock transfers with it.
    const std::uint32_t seen = grant_.load(std::memory_order_acquire);
    waiter_.wait_while_equal(grant_, seen);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void unlock() {
    const std::uint32_t p = pending_.load(std::memory_order_acquire);
    race_window();  // a local waiter may register right here
    if (p != 0) {
      grant_.fetch_add(1, std::memory_order_release);  // baton pass
      waiter_.notify_all(grant_);
    } else {
      global_.store(0, std::memory_order_release);
    }
  }

  static constexpr const char* name() noexcept { return "broken-cohort"; }

 private:
  qsv::platform::RuntimeWait waiter_{qsv::wait_policy::spin};
  std::atomic<std::uint32_t> global_{0};   ///< 0 free, 1 held
  std::atomic<std::uint32_t> pending_{0};  ///< local-tier waiters
  std::atomic<std::uint32_t> grant_{0};    ///< local baton counter
};

/// Reader-writer lock with the reader's writer-presence test and the
/// reader-count increment decomposed: a writer can slip in between
/// them, see zero readers, and enter alongside the reader. The checker
/// must report a reader-writer-exclusion violation.
class BrokenRwLock {
 public:
  void lock() {  // writer
    for (;;) {
      std::uint32_t expect = 0;
      // relaxed: failure order — loop retries; nothing read through it.
      if (writer_.compare_exchange_strong(expect, 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        break;
      }
      waiter_.wait_while_equal(writer_, 1u);
    }
    while (readers_.load(std::memory_order_acquire) != 0) {
      qsv::platform::cpu_relax();  // drain readers already inside
    }
  }

  void unlock() {
    writer_.store(0, std::memory_order_release);
    waiter_.notify_all(writer_);
  }

  void lock_shared() {
    for (;;) {
      if (writer_.load(std::memory_order_acquire) == 0) {
        race_window();  // a writer may take the lock right here
        readers_.fetch_add(1, std::memory_order_acq_rel);
        return;
      }
      waiter_.wait_while_equal(writer_, 1u);
    }
  }

  void unlock_shared() { readers_.fetch_sub(1, std::memory_order_release); }

  static constexpr const char* name() noexcept { return "broken-rw"; }

 private:
  qsv::platform::RuntimeWait waiter_{qsv::wait_policy::spin};
  std::atomic<std::uint32_t> writer_{0};
  std::atomic<std::uint32_t> readers_{0};
};

// ------------------------------------------------------- mutant cases
// The canonical "must be caught" list, shared by chk_test and qsvchk
// --mutants: each case names the mutant, the property the checker must
// report, and the scenario + bounds at which exhaustive DFS finds it.

template <typename Mutant>
Scenario mutant_lock_scenario(std::size_t threads, std::size_t iters) {
  return [threads, iters](Ctx& ctx) {
    auto& l = ctx.add_lock(catalog::wrap<Mutant>(), Mutant::name());
    std::vector<std::function<void()>> bodies;
    for (std::size_t t = 0; t < threads; ++t) {
      bodies.push_back([&l, iters] {
        for (std::size_t i = 0; i < iters; ++i) {
          l.lock();
          l.unlock();
        }
      });
    }
    return bodies;
  };
}

inline Scenario broken_rw_scenario(std::size_t threads, std::size_t iters) {
  return [threads, iters](Ctx& ctx) {
    auto& l =
        ctx.add_rwlock(catalog::wrap<BrokenRwLock>(), BrokenRwLock::name());
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&l, iters] {  // thread 0: writer
      for (std::size_t i = 0; i < iters; ++i) {
        l.lock();
        l.unlock();
      }
    });
    for (std::size_t t = 1; t < threads; ++t) {
      bodies.push_back([&l, iters] {
        for (std::size_t i = 0; i < iters; ++i) {
          l.lock_shared();
          l.unlock_shared();
        }
      });
    }
    return bodies;
  };
}

struct MutantCase {
  std::string name;
  std::string expect_property;  ///< the property DFS must report violated
  std::size_t threads;
  std::size_t iters;
  Scenario scenario;
};

inline std::vector<MutantCase> mutant_cases() {
  std::vector<MutantCase> cases;
  cases.push_back({"broken-tas", "mutual exclusion", 2, 1,
                   mutant_lock_scenario<BrokenTasLock>(2, 1)});
  cases.push_back({"lost-wakeup", "lost wakeup", 2, 1,
                   mutant_lock_scenario<LostWakeupMutex>(2, 1)});
  cases.push_back({"broken-cohort", "lost wakeup", 2, 1,
                   mutant_lock_scenario<BrokenCohortLock>(2, 1)});
  cases.push_back(
      {"broken-rw", "rw exclusion", 2, 1, broken_rw_scenario(2, 1)});
  return cases;
}

}  // namespace qsv::chk::mutants
