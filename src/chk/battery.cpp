// battery.cpp — the catalogue-wide qsv::chk battery.
#include "chk/battery.hpp"

#include <utility>

#include "qsv/wait.hpp"

namespace qsv::chk {

std::vector<const catalog::Entry*> checkable_rows() {
  std::vector<const catalog::Entry*> rows;
  for (const auto& e : catalog::all()) {
    if (e.has(catalog::kCheckable)) rows.push_back(&e);
  }
  return rows;
}

Scenario lock_scenario(const catalog::Entry& entry, std::size_t threads,
                       std::size_t iters) {
  // The entry outlives every check (catalogue rows are static); the
  // spin policy keeps even park-preferring rows on the instrumented
  // seam's cheapest path.
  return [&entry, threads, iters](Ctx& ctx) {
    auto& l = ctx.add_lock(entry.make_with(threads, qsv::wait_policy::spin),
                           entry.name);
    std::vector<std::function<void()>> bodies;
    for (std::size_t t = 0; t < threads; ++t) {
      bodies.push_back([&l, iters] {
        for (std::size_t i = 0; i < iters; ++i) {
          l.lock();
          l.unlock();
        }
      });
    }
    return bodies;
  };
}

Scenario rw_scenario(const catalog::Entry& entry, std::size_t threads,
                     std::size_t iters) {
  return [&entry, threads, iters](Ctx& ctx) {
    auto& l = ctx.add_rwlock(entry.make_with(threads, qsv::wait_policy::spin),
                             entry.name);
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&l, iters] {  // thread 0: writer
      for (std::size_t i = 0; i < iters; ++i) {
        l.lock();
        l.unlock();
      }
    });
    for (std::size_t t = 1; t < threads; ++t) {
      bodies.push_back([&l, iters] {
        for (std::size_t i = 0; i < iters; ++i) {
          l.lock_shared();
          l.unlock_shared();
        }
      });
    }
    return bodies;
  };
}

Scenario semaphore_scenario(std::int64_t permits, std::size_t threads,
                            std::size_t iters) {
  return [permits, threads, iters](Ctx& ctx) {
    auto& s = ctx.add_semaphore(permits, "qsv-semaphore");
    std::vector<std::function<void()>> bodies;
    for (std::size_t t = 0; t < threads; ++t) {
      bodies.push_back([&s, iters] {
        for (std::size_t i = 0; i < iters; ++i) {
          s.acquire();
          s.release();
        }
      });
    }
    return bodies;
  };
}

namespace {

void run_check(BatteryResult& result, const BatteryOptions& bopts,
               const std::string& row, const std::string& scenario_name,
               const std::string& mode, const Scenario& scenario,
               const Options& copts) {
  const Report rep = check(scenario, copts);
  ++result.checks;
  if (bopts.log) {
    std::string line = "  " + row + " [" + scenario_name + "/" + mode +
                       "]: " + (rep.ok ? "ok" : "VIOLATION: " + rep.property) +
                       " (" + std::to_string(rep.executions) + " executions" +
                       (rep.exhausted ? ", exhausted" : "") + ")";
    if (rep.lock_order_warnings != 0) {
      line += " [" + std::to_string(rep.lock_order_warnings) +
              " lock-order warning(s)]";
    }
    bopts.log(line);
  }
  if (!rep.ok) {
    result.ok = false;
    result.failures.push_back({row, scenario_name, mode, rep});
  }
}

void drive_scenarios(BatteryResult& result, const BatteryOptions& bopts,
                     const std::string& row, const std::string& scenario_name,
                     const std::function<Scenario(std::size_t, std::size_t)>&
                         make_scenario) {
  {
    Options copts;
    copts.mode = Options::Mode::kDfs;
    copts.threads = bopts.dfs_threads;
    copts.max_executions = bopts.dfs_max_executions;
    run_check(result, bopts, row, scenario_name, "dfs",
              make_scenario(bopts.dfs_threads, bopts.dfs_iters), copts);
  }
  {
    Options copts;
    copts.mode = Options::Mode::kRandom;
    copts.threads = bopts.random_threads;
    copts.samples = bopts.random_samples;
    copts.seed = bopts.seed;
    run_check(result, bopts, row, scenario_name, "random",
              make_scenario(bopts.random_threads, bopts.random_iters), copts);
  }
}

}  // namespace

BatteryResult run_battery(const BatteryOptions& opts) {
  BatteryResult result;
  for (const catalog::Entry* e : checkable_rows()) {
    ++result.rows;
    if (e->family == catalog::Family::kLock) {
      drive_scenarios(result, opts, e->name, "lock",
                      [e](std::size_t threads, std::size_t iters) {
                        return lock_scenario(*e, threads, iters);
                      });
    } else if (e->family == catalog::Family::kRwLock) {
      drive_scenarios(result, opts, e->name, "rw",
                      [e](std::size_t threads, std::size_t iters) {
                        return rw_scenario(*e, threads, iters);
                      });
    }
  }
  // The QSV semaphore has no catalogue row; check it directly with two
  // permits — the bound property is vacuous with one.
  ++result.rows;
  drive_scenarios(result, opts, "qsv-semaphore", "semaphore",
                  [](std::size_t threads, std::size_t iters) {
                    const std::int64_t permits =
                        threads > 1 ? static_cast<std::int64_t>(threads) - 1
                                    : 1;
                    return semaphore_scenario(permits, threads, iters);
                  });
  return result;
}

}  // namespace qsv::chk
