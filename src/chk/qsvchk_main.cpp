// qsvchk_main.cpp — the qsv::chk command-line driver.
//
// Default run: the catalogue-wide battery (every kCheckable row under
// exhaustive DFS and seeded-random exploration) plus the mutant
// self-test (each deliberately broken primitive must be caught and its
// counterexample must replay byte-identically). Exit status 0 iff
// everything holds.
//
//   qsvchk                      battery + mutant self-test
//   qsvchk --battery            battery only
//   qsvchk --mutants            mutant self-test only
//   qsvchk --list               list the checkable catalogue rows
//   qsvchk --row NAME           battery scenarios for one row
//   qsvchk --quick              ~10x smaller exploration budgets
//                               (sanitizer builds)
//   qsvchk --samples N          random-mode sample count
//   qsvchk --dfs-budget N       DFS execution budget per row
//   qsvchk --seed S             random-mode seed
//   qsvchk --replay ROW SCHED   replay a dot-separated schedule against
//                               a row's 2-thread lock scenario
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chk/battery.hpp"
#include "chk/check.hpp"
#include "chk/mutants.hpp"
#include "obs/hook.hpp"

namespace {

using qsv::chk::BatteryOptions;
using qsv::chk::BatteryResult;
using qsv::chk::Options;
using qsv::chk::Report;

void print_failures(const BatteryResult& result) {
  for (const auto& f : result.failures) {
    std::printf("FAILED %s [%s/%s]:\n%s", f.row.c_str(), f.scenario.c_str(),
                f.mode.c_str(), f.report.counterexample().c_str());
  }
}

int run_battery_cmd(const BatteryOptions& opts) {
  const BatteryResult result = qsv::chk::run_battery(opts);
  std::printf("battery: %zu rows, %zu checks, %zu failure(s)\n", result.rows,
              result.checks, result.failures.size());
  print_failures(result);
  return result.ok ? 0 : 1;
}

/// Each mutant must be caught by exhaustive DFS with the expected
/// property, and its schedule must replay to the identical
/// counterexample — the checker checking itself.
int run_mutants_cmd() {
  int failures = 0;
  for (const auto& mc : qsv::chk::mutants::mutant_cases()) {
    Options opts;
    opts.mode = Options::Mode::kDfs;
    opts.threads = mc.threads;
    const Report found = qsv::chk::check(mc.scenario, opts);
    if (found.ok || found.property != mc.expect_property) {
      std::printf("FAILED %s: expected a \"%s\" violation, got %s\n",
                  mc.name.c_str(), mc.expect_property.c_str(),
                  found.ok ? "no violation" : found.property.c_str());
      ++failures;
      continue;
    }
    Options ropts;
    ropts.mode = Options::Mode::kReplay;
    ropts.threads = mc.threads;
    ropts.replay_schedule = found.schedule;
    const Report replayed = qsv::chk::check(mc.scenario, ropts);
    if (replayed.counterexample() != found.counterexample()) {
      std::printf("FAILED %s: replay did not reproduce the counterexample\n",
                  mc.name.c_str());
      ++failures;
      continue;
    }
    std::printf("caught %s (\"%s\", %zu executions, replay verified)\n",
                mc.name.c_str(), found.property.c_str(), found.executions);
    std::printf("%s", found.counterexample().c_str());
  }
  return failures == 0 ? 0 : 1;
}

int run_row_cmd(const BatteryOptions& opts, const std::string& row) {
  const auto rows = qsv::chk::checkable_rows();
  const qsv::catalog::Entry* entry = nullptr;
  for (const auto* e : rows) {
    if (e->name == row) entry = e;
  }
  if (entry == nullptr) {
    std::fprintf(stderr, "qsvchk: \"%s\" is not a checkable row\n",
                 row.c_str());
    return 2;
  }
  BatteryResult result;
  result.rows = 1;
  const bool shared = entry->family == qsv::catalog::Family::kRwLock;
  Options dfs;
  dfs.mode = Options::Mode::kDfs;
  dfs.threads = opts.dfs_threads;
  dfs.max_executions = opts.dfs_max_executions;
  Options random;
  random.mode = Options::Mode::kRandom;
  random.threads = opts.random_threads;
  random.samples = opts.random_samples;
  random.seed = opts.seed;
  const char* scen = shared ? "rw" : "lock";
  auto make = [&](std::size_t threads, std::size_t iters) {
    return shared ? qsv::chk::rw_scenario(*entry, threads, iters)
                  : qsv::chk::lock_scenario(*entry, threads, iters);
  };
  for (const auto& [mode, o, threads, iters] :
       {std::tuple{"dfs", dfs, opts.dfs_threads, opts.dfs_iters},
        std::tuple{"random", random, opts.random_threads,
                   opts.random_iters}}) {
    const Report rep = qsv::chk::check(make(threads, iters), o);
    ++result.checks;
    std::printf("%s [%s/%s]: %s (%zu executions%s)\n", entry->name.c_str(),
                scen, mode, rep.ok ? "ok" : "VIOLATION", rep.executions,
                rep.exhausted ? ", exhausted" : "");
    if (!rep.ok) {
      result.ok = false;
      result.failures.push_back({entry->name, scen, mode, rep});
    }
  }
  print_failures(result);
  return result.ok ? 0 : 1;
}

int run_replay_cmd(const std::string& row, const std::string& sched) {
  const auto rows = qsv::chk::checkable_rows();
  const qsv::catalog::Entry* entry = nullptr;
  for (const auto* e : rows) {
    if (e->name == row) entry = e;
  }
  if (entry == nullptr) {
    std::fprintf(stderr, "qsvchk: \"%s\" is not a checkable row\n",
                 row.c_str());
    return 2;
  }
  Options opts;
  opts.mode = Options::Mode::kReplay;
  opts.threads = 2;
  opts.replay_schedule = Report::parse_schedule(sched);
  const Report rep =
      qsv::chk::check(qsv::chk::lock_scenario(*entry, 2, 1), opts);
  if (rep.ok) {
    std::printf("replay of %s: no violation\n", entry->name.c_str());
    return 0;
  }
  std::printf("replay of %s:\n%s", entry->name.c_str(),
              rep.counterexample().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // The checker constructs thousands of short-lived primitives per
  // battery; registering each in the telemetry registry would only
  // churn its map. Nothing here reads telemetry — switch it off for
  // everything the checker constructs.
  qsv::obs::set_enabled(false);
  BatteryOptions opts;
  opts.log = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  };
  bool battery = false;
  bool mutants = false;
  std::string row;
  std::string replay_row;
  std::string replay_sched;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qsvchk: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--battery") {
      battery = true;
    } else if (arg == "--mutants") {
      mutants = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--row") {
      row = next();
    } else if (arg == "--quick") {
      opts.quick();
    } else if (arg == "--samples") {
      opts.random_samples = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--dfs-budget") {
      opts.dfs_max_executions = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--replay") {
      replay_row = next();
      replay_sched = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: qsvchk [--battery] [--mutants] [--list] [--row NAME]\n"
          "              [--quick] [--samples N] [--dfs-budget N] "
          "[--seed S]\n"
          "              [--replay ROW SCHEDULE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "qsvchk: unknown option %s (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (list) {
    for (const auto* e : qsv::chk::checkable_rows()) {
      std::printf("%-24s %s\n", e->name.c_str(),
                  qsv::catalog::family_name(e->family));
    }
    return 0;
  }
  if (!replay_row.empty()) return run_replay_cmd(replay_row, replay_sched);
  if (!row.empty()) return run_row_cmd(opts, row);

  int rc = 0;
  if (battery || !mutants) rc |= run_battery_cmd(opts);
  if (mutants || !battery) rc |= run_mutants_cmd();
  return rc;
}
