// check.hpp — qsv::chk's property checkers and exploration drivers.
//
// A *scenario* builds one execution's worth of state — instrumented
// wrappers around fresh primitive instances — and returns the logical
// thread bodies. check() runs the scenario under the serializing
// scheduler over and over, steering the schedule per the chosen
// exploration mode:
//
//   kDfs           exhaustive depth-first enumeration of every schedule
//                  at the scenario's bounds (prefix-replay
//                  backtracking), up to max_executions
//   kPreemptBound  the same enumeration restricted to schedules with at
//                  most k preemptions, iterating k = 0..preemption_bound
//                  (most real bugs need very few preemptions)
//   kRandom        seeded uniform sampling of schedules
//   kReplay        one execution forced through replay_schedule — the
//                  counterexample replayer
//
// Properties are enforced by the wrappers while executions run:
//   * mutual exclusion      (CheckedLock: at most one owner)
//   * reader-writer exclusion (CheckedSharedLock: no reader-writer or
//                            writer-writer overlap)
//   * semaphore bound       (CheckedSemaphore: holders <= permits)
//   * deadlock / lost wakeup (scheduler stall + waits-for cycle)
//   * lock-order inversion  (trace/lock_order.hpp, enabled for every
//                            check and surfaced in the report)
//
// Every report is deterministic — names and logical thread ids only —
// so replaying a counterexample's schedule reproduces the identical
// report bytes. That round trip is the checker's own correctness test.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/any_primitive.hpp"
#include "chk/scheduler.hpp"
#include "core/semaphore.hpp"

namespace qsv::chk {

class Ctx;

/// Mutual-exclusion-checked wrapper over an erased lock face.
class CheckedLock {
 public:
  CheckedLock(Ctx& ctx, std::unique_ptr<catalog::AnyPrimitive> impl,
              std::string name);
  void lock();
  void unlock();
  bool try_lock();
  const std::string& name() const { return name_; }

 private:
  Ctx& ctx_;
  std::unique_ptr<catalog::AnyPrimitive> impl_;
  std::string name_;
  std::size_t owner_;
};

/// Reader-writer-exclusion-checked wrapper over an erased shared face.
class CheckedSharedLock {
 public:
  CheckedSharedLock(Ctx& ctx, std::unique_ptr<catalog::AnyPrimitive> impl,
                    std::string name, std::size_t nthreads);
  void lock();
  void unlock();
  void lock_shared();
  void unlock_shared();
  const std::string& name() const { return name_; }

 private:
  Ctx& ctx_;
  std::unique_ptr<catalog::AnyPrimitive> impl_;
  std::string name_;
  std::size_t writer_;
  std::vector<bool> reader_;
  std::size_t reader_count_ = 0;
};

/// Permit-bound-checked wrapper over the QSV counting semaphore
/// (constructed with spin waiting so every wait goes through the
/// scheduler seam deterministically).
class CheckedSemaphore {
 public:
  CheckedSemaphore(Ctx& ctx, std::int64_t permits, std::string name);
  void acquire();
  void release();
  const std::string& name() const { return name_; }

 private:
  Ctx& ctx_;
  core::QsvSemaphore sem_;
  std::string name_;
  std::int64_t permits_;
  std::int64_t holders_ = 0;
};

/// Per-execution context: owns the wrappers (stable addresses for the
/// bodies' captures) and records the first property violation.
class Ctx {
 public:
  explicit Ctx(Scheduler& sched) : sched_(sched) {}
  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  Scheduler& sched() { return sched_; }
  std::size_t self() const { return Scheduler::current_index(); }
  std::size_t threads() const { return sched_.size(); }

  CheckedLock& add_lock(std::unique_ptr<catalog::AnyPrimitive> impl,
                        std::string name);
  CheckedSharedLock& add_rwlock(std::unique_ptr<catalog::AnyPrimitive> impl,
                                std::string name);
  CheckedSemaphore& add_semaphore(std::int64_t permits, std::string name);

  /// Record a violation (first one wins; the execution keeps running to
  /// completion so the worker pool stays reusable).
  void fail(std::string_view property, std::string detail);
  bool failed() const { return failed_; }
  const std::string& property() const { return property_; }
  const std::string& detail() const { return detail_; }

 private:
  Scheduler& sched_;
  std::deque<CheckedLock> locks_;
  std::deque<CheckedSharedLock> rwlocks_;
  std::deque<CheckedSemaphore> sems_;
  bool failed_ = false;
  std::string property_;
  std::string detail_;
};

/// Builds one execution: allocate wrappers via ctx, return the logical
/// thread bodies (size = Options::threads). Called once per explored
/// schedule with a fresh Ctx.
using Scenario =
    std::function<std::vector<std::function<void()>>(Ctx& ctx)>;

struct Options {
  enum class Mode { kDfs, kPreemptBound, kRandom, kReplay };
  Mode mode = Mode::kDfs;
  std::size_t threads = 2;
  /// Exploration budget: executions across the whole check (DFS stops
  /// with exhausted=false when it runs out).
  std::size_t max_executions = 50000;
  /// Scheduling-decision cap per execution (runaway backstop).
  std::size_t max_steps = 100000;
  /// kPreemptBound: explore k = 0..preemption_bound preemptions.
  unsigned preemption_bound = 2;
  /// kRandom: sample count and seed.
  std::size_t samples = 500;
  std::uint64_t seed = 1;
  /// kReplay: the forced schedule.
  std::vector<std::size_t> replay_schedule;
};

struct Report {
  bool ok = true;
  /// DFS/PB only: the full (bounded) schedule space was enumerated.
  bool exhausted = false;
  std::size_t executions = 0;
  std::string property;  ///< violated property ("" when ok)
  std::string detail;    ///< deterministic description
  std::vector<std::size_t> schedule;  ///< counterexample schedule
  std::size_t lock_order_warnings = 0;
  std::string lock_order_last;

  /// Canonical counterexample text; replaying `schedule` must
  /// reproduce it byte-identically. Empty when ok.
  std::string counterexample() const;

  static std::string schedule_string(const std::vector<std::size_t>& s);
  static std::vector<std::size_t> parse_schedule(std::string_view s);
};

/// Explore `scenario` per `opts`. The lock-order detector is enabled
/// (and reset) for the duration of the check.
Report check(const Scenario& scenario, const Options& opts);

}  // namespace qsv::chk
