// scheduler.hpp — the qsv::chk cooperative virtual-thread scheduler.
//
// Serializes N logical threads so that exactly one runs at any moment,
// and takes a scheduling decision at every synchronization boundary:
// the chk_hook seam (platform/chk_hook.hpp) hands it every spin poll
// and every terminal wait of every primitive, and the checker's
// instrumented wrappers (check.hpp) add explicit yield points at
// lock/unlock/try edges. The set of runnable logical threads at each
// decision plus the chooser's pick IS the schedule — a deterministic,
// replayable sequence of thread ids.
//
// Mechanically the logical threads are real OS threads, each parked on
// its own binary semaphore; the scheduler thread and the single running
// worker alternate via semaphore handoffs. This keeps every execution
// genuinely data-race-free (the handoffs carry happens-before), so the
// checker itself is clean under TSan, at the price of a semaphore
// round-trip (~1us) per scheduling decision. Checker bounds are small
// by design; see DESIGN.md "Checking the protocols".
//
// Waiting model:
//   * A terminal wait (wait_while_equal / wait_until) parks the logical
//     thread until its predicate holds; the scheduler re-evaluates
//     predicates of parked threads at every decision (the caller's
//     frame is frozen, so the captured state is safe to read).
//   * A raw spin poll (cpu_relax) parks the logical thread until any
//     other thread passes a scheduling point ("shared state may have
//     changed"); on resume it is granted a window of free polls so
//     bounded backoff loops run through and re-poll their condition.
//
// Stalls: if no logical thread is runnable and some are not finished,
// the execution is stalled. The scheduler classifies it — a cycle in
// the waits-for graph (threads -> wanted lock -> holders) is a
// deadlock, anything else a lost wakeup / missed grant — and reports a
// deterministic description. Stalled workers are frozen inside noexcept
// wait code and cannot be unwound; the scheduler abandons them (threads
// detached, their parked state intentionally leaked) and marks itself
// poisoned. Exploration stops at the first stall, which is always a
// reported violation, so the leak is one worker pool per failing check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <string_view>
#include <vector>

namespace qsv::chk {

class Scheduler {
 public:
  /// Picks the next thread to run from `runnable` (logical thread ids,
  /// ascending). Must return an element of `runnable`.
  using Chooser = std::function<std::size_t(
      const std::vector<std::size_t>& runnable)>;

  /// The result of one serialized execution.
  struct Outcome {
    bool completed = false;    ///< every body ran to the end
    bool stalled = false;      ///< no runnable thread before completion
    bool step_capped = false;  ///< runaway-schedule backstop hit
    std::string stall_kind;    ///< "deadlock" or "lost wakeup"
    std::string stall_detail;  ///< deterministic description (names + ids)
    std::vector<std::size_t> schedule;  ///< chosen thread id per decision
  };

  explicit Scheduler(std::size_t nthreads);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t size() const noexcept { return n_; }

  /// True after a stall abandoned the worker pool; the scheduler can
  /// run no further executions (build a fresh one).
  bool poisoned() const noexcept { return poisoned_; }

  /// Per-execution decision cap (backstop against runaway schedules;
  /// hitting it poisons the pool and is reported, never silent).
  void set_step_cap(std::size_t cap) noexcept { step_cap_ = cap; }

  /// Run one execution: bodies[i] becomes logical thread i
  /// (bodies.size() <= size()). Serialized, deterministic given the
  /// chooser's picks.
  Outcome run(std::vector<std::function<void()>> bodies,
              const Chooser& choose);

  // ---- worker-context API (used by check.hpp's wrappers) ----

  /// Explicit scheduling point; the calling logical thread stays
  /// runnable. Counts as progress: spin-parked threads may re-poll
  /// after it. Use after any store that can affect another thread's
  /// spin condition (the instrumented wrappers call it after every
  /// primitive operation; mutants use it around seeded race windows).
  void yield();
  /// Scheduling point that is NOT progress: nothing observable changed
  /// since the last point (the wrappers' pre-operation edges). Keeps
  /// spin-parked threads from waking — and the DFS from branching — at
  /// points where a re-poll is guaranteed to see the same state.
  void yield_quiet();
  /// Annotate the waits-for graph: the calling logical thread is about
  /// to acquire `res` (cleared by clear_wanted after the acquisition).
  void set_wanted(const void* res, std::string_view name);
  void clear_wanted();
  /// Maintain resource -> holders for stall classification.
  void add_holder(const void* res, std::string_view name);
  void remove_holder(const void* res);

  /// The logical thread id driving the calling OS thread (worker
  /// context only).
  static std::size_t current_index();

 private:
  struct VThread;
  struct Resource {
    std::string name;
    std::vector<std::size_t> holders;
  };

  /// The VThread driving the calling OS thread (worker context).
  static thread_local VThread* t_current_;

  static void hook_spin(void* ctx);
  static void hook_block(void* ctx, bool (*pred)(void*), void* pred_ctx);
  static void hook_yield(void* ctx);
  void worker_main(VThread* vt);
  void analyze_stall(std::size_t nbodies, Outcome& out) const;
  void poison();

  std::size_t n_;
  std::size_t step_cap_ = 100000;
  bool poisoned_ = false;
  bool shutdown_ = false;
  /// Bumped whenever shared state may have changed (op-edge yields,
  /// wait entries, body completion); spin-parked threads wake when it
  /// moves past their snapshot. Plain field: scheduler and the single
  /// running worker alternate via semaphore handoffs.
  std::uint64_t progress_ = 0;
  std::vector<std::unique_ptr<VThread>> threads_;
  std::vector<std::pair<const void*, Resource>> resources_;
  /// Parks the scheduler thread while a worker runs. A stalled run
  /// abandons workers only after their final release of this semaphore,
  /// so the member may outlive them safely.
  std::counting_semaphore<1> sched_sem_{0};
};

}  // namespace qsv::chk
