// scheduler.cpp — serialized virtual-thread execution for qsv::chk.
#include "chk/scheduler.hpp"

#include <cstdio>
#include <cstdlib>
#include <semaphore>
#include <set>
#include <thread>
#include <utility>

#include "platform/chk_hook.hpp"

namespace qsv::chk {

namespace {
/// Free cpu_relax() returns granted to a spin-parked thread on resume:
/// enough for any bounded backoff loop in the library (the proportional
/// backoff's worst pause is thousands of polls) to run through and
/// re-poll its real condition. Granted polls do nothing — no PAUSE, no
/// scheduling — so the window costs microseconds.
constexpr std::uint32_t kSpinGrant = 1u << 16;

[[noreturn]] void chk_fatal(const char* what) {
  std::fprintf(stderr, "qsv::chk scheduler: %s\n", what);
  std::abort();
}
}  // namespace

struct Scheduler::VThread {
  enum class St { kReady, kRunning, kBlocked, kSpin, kDone };

  Scheduler* sched = nullptr;
  std::size_t idx = 0;
  qsv::platform::chk_hook::Hooks hooks;
  std::binary_semaphore resume{0};
  std::thread os;

  // Handoff-protected state: written only by the side that currently
  // runs (the worker before releasing sched_sem_, the scheduler before
  // releasing resume), so plain fields are race-free.
  St st = St::kDone;
  std::function<void()> body;
  bool (*pred)(void*) = nullptr;
  void* pred_ctx = nullptr;
  std::uint64_t spin_seen = 0;
  std::uint32_t spin_grant = 0;
  const void* wanted = nullptr;
  std::string wanted_name;
};

thread_local Scheduler::VThread* Scheduler::t_current_ = nullptr;

Scheduler::Scheduler(std::size_t nthreads) : n_(nthreads) {
  if (n_ == 0) chk_fatal("scheduler needs at least one logical thread");
  threads_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    auto vt = std::make_unique<VThread>();
    vt->sched = this;
    vt->idx = i;
    vt->hooks.ctx = vt.get();
    vt->hooks.spin = &Scheduler::hook_spin;
    vt->hooks.block = &Scheduler::hook_block;
    vt->hooks.yield = &Scheduler::hook_yield;
    threads_.push_back(std::move(vt));
  }
  // Workers park immediately on their resume semaphores; they hold
  // stable dense platform thread ids for the scheduler's lifetime, so
  // id-indexed primitives behave identically across executions.
  for (auto& vt : threads_) {
    vt->os = std::thread([this, v = vt.get()] { worker_main(v); });
  }
}

Scheduler::~Scheduler() {
  if (poisoned_) return;  // workers already detached, state leaked
  shutdown_ = true;
  for (auto& vt : threads_) vt->resume.release();
  for (auto& vt : threads_) vt->os.join();
}

void Scheduler::worker_main(VThread* vt) {
  qsv::platform::chk_hook::tls() = &vt->hooks;
  t_current_ = vt;
  for (;;) {
    vt->resume.acquire();
    if (shutdown_) return;
    vt->body();
    vt->body = nullptr;
    vt->st = VThread::St::kDone;
    ++progress_;
    sched_sem_.release();
  }
}

void Scheduler::hook_spin(void* ctx) {
  auto* vt = static_cast<VThread*>(ctx);
  if (vt->spin_grant > 0) {
    --vt->spin_grant;
    return;
  }
  Scheduler* s = vt->sched;
  vt->st = VThread::St::kSpin;
  vt->spin_seen = s->progress_;
  s->sched_sem_.release();
  vt->resume.acquire();
}

void Scheduler::hook_block(void* ctx, bool (*pred)(void*), void* pred_ctx) {
  auto* vt = static_cast<VThread*>(ctx);
  Scheduler* s = vt->sched;
  // Entering a wait means the enqueue/announce stores before it are
  // published: count it as progress so spin-parked threads re-poll.
  ++s->progress_;
  if (pred(pred_ctx)) return;  // already satisfied: no scheduling point
  vt->pred = pred;
  vt->pred_ctx = pred_ctx;
  vt->st = VThread::St::kBlocked;
  s->sched_sem_.release();
  vt->resume.acquire();
  // The scheduler resumes a blocked thread only after evaluating its
  // predicate true, and nothing else ran since: the wait is over.
}

void Scheduler::hook_yield(void* ctx) {
  auto* vt = static_cast<VThread*>(ctx);
  Scheduler* s = vt->sched;
  vt->st = VThread::St::kReady;
  ++s->progress_;
  s->sched_sem_.release();
  vt->resume.acquire();
}

void Scheduler::yield() {
  if (t_current_ == nullptr) chk_fatal("yield() outside a logical thread");
  hook_yield(t_current_);
}

void Scheduler::yield_quiet() {
  VThread* vt = t_current_;
  if (vt == nullptr) chk_fatal("yield_quiet() outside a logical thread");
  vt->st = VThread::St::kReady;
  sched_sem_.release();
  vt->resume.acquire();
}

std::size_t Scheduler::current_index() {
  if (t_current_ == nullptr) {
    chk_fatal("current_index() outside a logical thread");
  }
  return t_current_->idx;
}

void Scheduler::set_wanted(const void* res, std::string_view name) {
  t_current_->wanted = res;
  t_current_->wanted_name = std::string(name);
}

void Scheduler::clear_wanted() {
  t_current_->wanted = nullptr;
  t_current_->wanted_name.clear();
}

void Scheduler::add_holder(const void* res, std::string_view name) {
  for (auto& [ptr, r] : resources_) {
    if (ptr == res) {
      r.holders.push_back(current_index());
      return;
    }
  }
  resources_.push_back({res, Resource{std::string(name),
                                      {current_index()}}});
}

void Scheduler::remove_holder(const void* res) {
  const std::size_t self = current_index();
  for (auto& [ptr, r] : resources_) {
    if (ptr != res) continue;
    for (std::size_t i = 0; i < r.holders.size(); ++i) {
      if (r.holders[i] == self) {
        r.holders.erase(r.holders.begin() +
                        static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }
}

Scheduler::Outcome Scheduler::run(std::vector<std::function<void()>> bodies,
                                  const Chooser& choose) {
  Outcome out;
  if (poisoned_) chk_fatal("run() on a poisoned scheduler");
  if (bodies.empty() || bodies.size() > n_) {
    chk_fatal("run() body count out of range");
  }
  const std::size_t k = bodies.size();
  progress_ = 0;
  resources_.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    VThread& vt = *threads_[i];
    vt.pred = nullptr;
    vt.spin_grant = 0;
    vt.wanted = nullptr;
    vt.wanted_name.clear();
    if (i < k) {
      vt.body = std::move(bodies[i]);
      vt.st = VThread::St::kReady;
    } else {
      vt.st = VThread::St::kDone;
    }
  }

  std::vector<std::size_t> runnable;
  for (;;) {
    runnable.clear();
    bool all_done = true;
    for (std::size_t i = 0; i < k; ++i) {
      VThread& vt = *threads_[i];
      switch (vt.st) {
        case VThread::St::kDone:
          continue;
        case VThread::St::kReady:
          runnable.push_back(i);
          break;
        case VThread::St::kBlocked:
          if (vt.pred(vt.pred_ctx)) runnable.push_back(i);
          break;
        case VThread::St::kSpin:
          if (progress_ != vt.spin_seen) runnable.push_back(i);
          break;
        case VThread::St::kRunning:
          chk_fatal("running thread at a scheduling decision");
      }
      all_done = false;
    }
    if (all_done) {
      out.completed = true;
      return out;
    }
    if (runnable.empty()) {
      out.stalled = true;
      analyze_stall(k, out);
      poison();
      return out;
    }
    if (out.schedule.size() >= step_cap_) {
      out.step_capped = true;
      poison();
      return out;
    }

    const std::size_t pick = choose(runnable);
    bool member = false;
    for (std::size_t r : runnable) member = member || (r == pick);
    if (!member) chk_fatal("chooser picked a non-runnable thread");
    out.schedule.push_back(pick);

    VThread& vt = *threads_[pick];
    if (vt.st == VThread::St::kBlocked) vt.pred = nullptr;
    if (vt.st == VThread::St::kSpin) vt.spin_grant = kSpinGrant;
    vt.st = VThread::St::kRunning;
    vt.resume.release();
    sched_sem_.acquire();
  }
}

void Scheduler::analyze_stall(std::size_t nbodies, Outcome& out) const {
  // Waits-for edges: stalled thread -> holders of the lock it wants.
  // A cycle is a deadlock; any other stall is a lost wakeup (a grant
  // or notification the protocol failed to deliver).
  auto holders_of = [&](const void* res) -> const Resource* {
    for (const auto& [ptr, r] : resources_) {
      if (ptr == res) return &r;
    }
    return nullptr;
  };

  // Walk the waits-for graph from the lowest stalled thread id for a
  // deterministic report.
  for (std::size_t start = 0; start < nbodies; ++start) {
    if (threads_[start]->st == VThread::St::kDone) continue;
    std::vector<std::size_t> path{start};
    std::set<std::size_t> on_path{start};
    std::size_t cur = start;
    for (;;) {
      const VThread& vt = *threads_[cur];
      if (vt.wanted == nullptr) break;
      const Resource* r = holders_of(vt.wanted);
      if (r == nullptr || r->holders.empty()) break;
      const std::size_t next = r->holders.front();
      if (on_path.count(next) != 0) {
        // Cycle: report each hop with the lock names involved.
        out.stall_kind = "deadlock";
        std::string d = "waits-for cycle:";
        bool in_cycle = false;
        path.push_back(next);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          if (path[i] == next) in_cycle = true;
          if (!in_cycle) continue;
          const VThread& hop = *threads_[path[i]];
          d += " vthread " + std::to_string(path[i]) + " waits for \"" +
               hop.wanted_name + "\" held by vthread " +
               std::to_string(path[i + 1]) + ";";
        }
        out.stall_detail = d;
        return;
      }
      on_path.insert(next);
      path.push_back(next);
      cur = next;
    }
  }

  out.stall_kind = "lost wakeup";
  std::string d = "no runnable thread and no waits-for cycle:";
  for (std::size_t i = 0; i < nbodies; ++i) {
    const VThread& vt = *threads_[i];
    if (vt.st == VThread::St::kDone) continue;
    d += " vthread " + std::to_string(i);
    if (vt.wanted != nullptr) {
      d += " waits for \"" + vt.wanted_name + "\"";
    } else if (vt.st == VThread::St::kSpin) {
      d += " stalled in a spin loop";
    } else {
      d += " blocked";
    }
    d += ";";
  }
  out.stall_detail = d;
}

void Scheduler::poison() {
  poisoned_ = true;
  // Stalled workers are frozen inside noexcept wait code; they cannot
  // be unwound. Detach them and leak their VThread records (semaphores
  // included) so the parked threads' state stays valid forever.
  for (auto& vt : threads_) {
    vt->os.detach();
    (void)vt.release();  // intentional leak, see header comment
  }
  threads_.clear();
}

}  // namespace qsv::chk
