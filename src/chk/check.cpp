// check.cpp — instrumented wrappers and exploration drivers for qsv::chk.
#include "chk/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <random>
#include <utility>

#include "trace/lock_order.hpp"

namespace qsv::chk {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

[[noreturn]] void drv_fatal(const char* what) {
  std::fprintf(stderr, "qsv::chk driver: %s\n", what);
  std::abort();
}

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  for (std::size_t e : v) {
    if (e == x) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------- wrappers

CheckedLock::CheckedLock(Ctx& ctx,
                         std::unique_ptr<catalog::AnyPrimitive> impl,
                         std::string name)
    : ctx_(ctx), impl_(std::move(impl)), name_(std::move(name)),
      owner_(kNone) {
  trace::lock_order_set_name(this, name_);
}

void CheckedLock::lock() {
  Scheduler& s = ctx_.sched();
  // Pre-operation scheduling point: nothing has changed yet, so it must
  // not count as progress (it would wake every spin-parked thread and
  // blow up the DFS for nothing).
  s.yield_quiet();
  s.set_wanted(this, name_);
  impl_->lock();  // every internal spin/wait is a scheduling point
  s.clear_wanted();
  if (owner_ != kNone) {
    ctx_.fail("mutual exclusion",
              "vthread " + std::to_string(ctx_.self()) + " acquired \"" +
                  name_ + "\" while vthread " + std::to_string(owner_) +
                  " holds it");
  }
  owner_ = ctx_.self();
  s.add_holder(this, name_);
  trace::lock_order_on_acquire(this);
  s.yield();
}

void CheckedLock::unlock() {
  Scheduler& s = ctx_.sched();
  if (owner_ != ctx_.self()) {
    ctx_.fail("lock discipline",
              "vthread " + std::to_string(ctx_.self()) + " released \"" +
                  name_ + "\" without holding it");
  }
  owner_ = kNone;
  s.remove_holder(this);
  trace::lock_order_on_release(this);
  impl_->unlock();
  s.yield();
}

bool CheckedLock::try_lock() {
  Scheduler& s = ctx_.sched();
  s.yield_quiet();
  if (!impl_->try_lock()) return false;
  if (owner_ != kNone) {
    ctx_.fail("mutual exclusion",
              "vthread " + std::to_string(ctx_.self()) +
                  " try-acquired \"" + name_ + "\" while vthread " +
                  std::to_string(owner_) + " holds it");
  }
  owner_ = ctx_.self();
  s.add_holder(this, name_);
  trace::lock_order_on_acquire(this);
  s.yield();
  return true;
}

CheckedSharedLock::CheckedSharedLock(
    Ctx& ctx, std::unique_ptr<catalog::AnyPrimitive> impl, std::string name,
    std::size_t nthreads)
    : ctx_(ctx), impl_(std::move(impl)), name_(std::move(name)),
      writer_(kNone), reader_(nthreads, false) {
  trace::lock_order_set_name(this, name_);
}

void CheckedSharedLock::lock() {
  Scheduler& s = ctx_.sched();
  s.yield_quiet();
  s.set_wanted(this, name_);
  impl_->lock();
  s.clear_wanted();
  if (writer_ != kNone) {
    ctx_.fail("rw exclusion",
              "vthread " + std::to_string(ctx_.self()) +
                  " acquired \"" + name_ + "\" as writer while vthread " +
                  std::to_string(writer_) + " holds it as writer");
  } else if (reader_count_ > 0) {
    ctx_.fail("rw exclusion",
              "vthread " + std::to_string(ctx_.self()) +
                  " acquired \"" + name_ + "\" as writer with " +
                  std::to_string(reader_count_) + " reader(s) inside");
  }
  writer_ = ctx_.self();
  s.add_holder(this, name_);
  trace::lock_order_on_acquire(this);
  s.yield();
}

void CheckedSharedLock::unlock() {
  Scheduler& s = ctx_.sched();
  if (writer_ != ctx_.self()) {
    ctx_.fail("lock discipline",
              "vthread " + std::to_string(ctx_.self()) +
                  " write-released \"" + name_ + "\" without holding it");
  }
  writer_ = kNone;
  s.remove_holder(this);
  trace::lock_order_on_release(this);
  impl_->unlock();
  s.yield();
}

void CheckedSharedLock::lock_shared() {
  Scheduler& s = ctx_.sched();
  s.yield_quiet();
  s.set_wanted(this, name_);
  impl_->lock_shared();
  s.clear_wanted();
  if (writer_ != kNone) {
    ctx_.fail("rw exclusion",
              "vthread " + std::to_string(ctx_.self()) +
                  " entered \"" + name_ + "\" as reader while vthread " +
                  std::to_string(writer_) + " holds it as writer");
  }
  reader_[ctx_.self()] = true;
  ++reader_count_;
  s.add_holder(this, name_);
  trace::lock_order_on_acquire(this);
  s.yield();
}

void CheckedSharedLock::unlock_shared() {
  Scheduler& s = ctx_.sched();
  if (!reader_[ctx_.self()]) {
    ctx_.fail("lock discipline",
              "vthread " + std::to_string(ctx_.self()) +
                  " read-released \"" + name_ + "\" without holding it");
  }
  reader_[ctx_.self()] = false;
  --reader_count_;
  s.remove_holder(this);
  trace::lock_order_on_release(this);
  impl_->unlock_shared();
  s.yield();
}

CheckedSemaphore::CheckedSemaphore(Ctx& ctx, std::int64_t permits,
                                   std::string name)
    : ctx_(ctx), sem_(permits, qsv::wait_policy::spin),
      name_(std::move(name)), permits_(permits) {}

void CheckedSemaphore::acquire() {
  Scheduler& s = ctx_.sched();
  s.yield_quiet();
  s.set_wanted(this, name_);
  sem_.acquire();
  s.clear_wanted();
  ++holders_;
  if (holders_ > permits_) {
    ctx_.fail("semaphore bound",
              "\"" + name_ + "\" admitted " + std::to_string(holders_) +
                  " holders with only " + std::to_string(permits_) +
                  " permit(s)");
  }
  s.add_holder(this, name_);
  s.yield();
}

void CheckedSemaphore::release() {
  Scheduler& s = ctx_.sched();
  if (holders_ <= 0) {
    ctx_.fail("lock discipline",
              "\"" + name_ + "\" released without a held permit");
  }
  --holders_;
  s.remove_holder(this);
  sem_.release();
  s.yield();
}

// --------------------------------------------------------------------- Ctx

CheckedLock& Ctx::add_lock(std::unique_ptr<catalog::AnyPrimitive> impl,
                           std::string name) {
  return locks_.emplace_back(*this, std::move(impl), std::move(name));
}

CheckedSharedLock& Ctx::add_rwlock(std::unique_ptr<catalog::AnyPrimitive> impl,
                                   std::string name) {
  return rwlocks_.emplace_back(*this, std::move(impl), std::move(name),
                               sched_.size());
}

CheckedSemaphore& Ctx::add_semaphore(std::int64_t permits, std::string name) {
  return sems_.emplace_back(*this, permits, std::move(name));
}

void Ctx::fail(std::string_view property, std::string detail) {
  if (failed_) return;  // first violation wins
  failed_ = true;
  property_ = std::string(property);
  detail_ = std::move(detail);
}

// ------------------------------------------------------------------ Report

std::string Report::counterexample() const {
  if (ok) return "";
  return "property: " + property + "\ndetail: " + detail +
         "\nschedule: " + schedule_string(schedule) + "\n";
}

std::string Report::schedule_string(const std::vector<std::size_t>& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(s[i]);
  }
  return out;
}

std::vector<std::size_t> Report::parse_schedule(std::string_view s) {
  std::vector<std::size_t> out;
  std::size_t cur = 0;
  bool have = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else {
      if (have) out.push_back(cur);
      cur = 0;
      have = false;
    }
  }
  if (have) out.push_back(cur);
  return out;
}

// ----------------------------------------------------------------- drivers

namespace {

/// One serialized execution: fresh Ctx, fresh primitive instances (the
/// scenario constructs them), violation extraction. Rebuilds the worker
/// pool if a previous stall poisoned it.
struct ExecResult {
  bool violated = false;
  std::string property;
  std::string detail;
  Scheduler::Outcome out;
};

ExecResult run_one(std::unique_ptr<Scheduler>& sched, const Options& opts,
                   const Scenario& scenario,
                   const Scheduler::Chooser& choose, Report& rep) {
  if (!sched || sched->poisoned()) {
    sched = std::make_unique<Scheduler>(opts.threads);
  }
  sched->set_step_cap(opts.max_steps);
  // Fresh wrapper instances each execution: reset the lock-order graph
  // so reused addresses from a prior execution cannot fabricate edges.
  trace::lock_order_reset();
  ExecResult r;
  Ctx ctx(*sched);
  auto bodies = scenario(ctx);
  r.out = sched->run(std::move(bodies), choose);
  ++rep.executions;
  const auto lo = trace::lock_order_stats();
  rep.lock_order_warnings += lo.warnings;
  if (lo.warnings != 0) {
    rep.lock_order_last = trace::lock_order_last_warning();
  }
  if (ctx.failed()) {
    r.violated = true;
    r.property = ctx.property();
    r.detail = ctx.detail();
  } else if (r.out.stalled) {
    r.violated = true;
    r.property = r.out.stall_kind;
    r.detail = r.out.stall_detail;
  } else if (r.out.step_capped) {
    r.violated = true;
    r.property = "step cap";
    r.detail = "execution exceeded the scheduling-decision cap";
  }
  return r;
}

void record_violation(Report& rep, ExecResult&& r) {
  rep.ok = false;
  rep.property = std::move(r.property);
  rep.detail = std::move(r.detail);
  rep.schedule = std::move(r.out.schedule);
}

/// A decision the DFS may still revisit: the runnable set observed at
/// that depth, the alternative currently taken (index into runnable),
/// and the preemption accounting needed to judge alternatives later.
struct ChoicePoint {
  std::vector<std::size_t> runnable;
  std::size_t k;                 ///< current pick = runnable[k]
  std::size_t prev;              ///< thread that ran before this decision
  unsigned preempt_before;       ///< preemptions spent on the prefix
};

/// Switching away from a still-runnable previous thread is a
/// preemption; resuming it (or switching after it blocked/finished) is
/// free. This is the standard iterative-context-bounding cost model.
unsigned pick_cost(const ChoicePoint& cp, std::size_t k) {
  if (cp.prev == kNone) return 0;
  if (!contains(cp.runnable, cp.prev)) return 0;
  return cp.runnable[k] == cp.prev ? 0u : 1u;
}

bool admissible(const ChoicePoint& cp, std::size_t k, unsigned bound) {
  return cp.preempt_before + pick_cost(cp, k) <= bound;
}

/// Depth-first enumeration of all schedules whose preemption count stays
/// within `bound` (bound = UINT_MAX is plain exhaustive DFS). Returns
/// true when a violation was found (recorded in rep); sets
/// rep.exhausted when the bounded space was fully enumerated within the
/// execution budget.
bool dfs_explore(std::unique_ptr<Scheduler>& sched, const Scenario& scenario,
                 const Options& opts, unsigned bound, Report& rep) {
  std::vector<ChoicePoint> stack;
  rep.exhausted = false;
  while (rep.executions < opts.max_executions) {
    std::size_t depth = 0;
    std::size_t prev = kNone;
    unsigned preempts = 0;
    Scheduler::Chooser choose =
        [&](const std::vector<std::size_t>& runnable) -> std::size_t {
      if (depth < stack.size()) {
        // Replaying the prefix: determinism demands the identical
        // runnable set at the identical depth.
        if (stack[depth].runnable != runnable) {
          drv_fatal("nondeterministic execution: runnable set diverged "
                    "while replaying a DFS prefix");
        }
      } else {
        ChoicePoint cp{runnable, 0, prev, preempts};
        while (!admissible(cp, cp.k, bound)) ++cp.k;  // prev's slot is free
        stack.push_back(std::move(cp));
      }
      ChoicePoint& cp = stack[depth];
      const std::size_t pick = cp.runnable[cp.k];
      preempts += pick_cost(cp, cp.k);
      prev = pick;
      ++depth;
      return pick;
    };
    ExecResult r = run_one(sched, opts, scenario, choose, rep);
    if (r.violated) {
      record_violation(rep, std::move(r));
      return true;
    }
    // Backtrack: advance the deepest decision that still has an
    // admissible untried alternative; everything deeper is discarded.
    bool advanced = false;
    while (!stack.empty()) {
      ChoicePoint& cp = stack.back();
      std::size_t next = cp.k + 1;
      while (next < cp.runnable.size() && !admissible(cp, next, bound)) {
        ++next;
      }
      if (next < cp.runnable.size()) {
        cp.k = next;
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    if (!advanced) {
      rep.exhausted = true;
      return false;
    }
  }
  return false;  // execution budget exhausted, space not fully explored
}

void random_explore(std::unique_ptr<Scheduler>& sched,
                    const Scenario& scenario, const Options& opts,
                    Report& rep) {
  for (std::size_t sample = 0;
       sample < opts.samples && rep.executions < opts.max_executions;
       ++sample) {
    // One generator per execution, seeded from (seed, sample): any
    // single sample is reproducible in isolation.
    std::mt19937_64 rng(opts.seed + sample);
    Scheduler::Chooser choose =
        [&rng](const std::vector<std::size_t>& runnable) -> std::size_t {
      return runnable[rng() % runnable.size()];
    };
    ExecResult r = run_one(sched, opts, scenario, choose, rep);
    if (r.violated) {
      record_violation(rep, std::move(r));
      return;
    }
  }
}

void replay_one(std::unique_ptr<Scheduler>& sched, const Scenario& scenario,
                const Options& opts, Report& rep) {
  std::size_t depth = 0;
  bool diverged = false;
  std::size_t diverged_at = 0;
  Scheduler::Chooser choose =
      [&](const std::vector<std::size_t>& runnable) -> std::size_t {
    if (!diverged && depth < opts.replay_schedule.size()) {
      const std::size_t forced = opts.replay_schedule[depth];
      if (contains(runnable, forced)) {
        ++depth;
        return forced;
      }
    }
    if (!diverged) {
      diverged = true;
      diverged_at = depth;
    }
    ++depth;
    return runnable.front();  // keep going so the pool winds down cleanly
  };
  ExecResult r = run_one(sched, opts, scenario, choose, rep);
  if (diverged) {
    rep.ok = false;
    rep.property = "replay divergence";
    rep.detail = "schedule diverged at decision " +
                 std::to_string(diverged_at) +
                 " (recorded pick not runnable or schedule too short)";
    rep.schedule = std::move(r.out.schedule);
    return;
  }
  if (r.violated) record_violation(rep, std::move(r));
}

}  // namespace

Report check(const Scenario& scenario, const Options& opts) {
  if (opts.threads == 0) drv_fatal("check() needs at least one thread");
  Report rep;
  std::unique_ptr<Scheduler> sched;
  // The lock-order detector runs for every check; its findings ride
  // along in the report even when the primary properties hold. Quiet:
  // the per-execution graph reset would otherwise reprint the same
  // hazard once per execution that reaches it.
  trace::lock_order_enable(true);
  trace::lock_order_quiet(true);
  switch (opts.mode) {
    case Options::Mode::kDfs:
      dfs_explore(sched, scenario, opts,
                  std::numeric_limits<unsigned>::max(), rep);
      break;
    case Options::Mode::kPreemptBound:
      // Iterative bounding: almost every real bug needs only a couple
      // of preemptions, so the cheap low bounds usually finish the job.
      for (unsigned k = 0; k <= opts.preemption_bound; ++k) {
        if (dfs_explore(sched, scenario, opts, k, rep)) break;
        if (rep.executions >= opts.max_executions) {
          rep.exhausted = false;
          break;
        }
      }
      break;
    case Options::Mode::kRandom:
      random_explore(sched, scenario, opts, rep);
      break;
    case Options::Mode::kReplay:
      replay_one(sched, scenario, opts, rep);
      break;
  }
  trace::lock_order_quiet(false);
  trace::lock_order_enable(false);
  trace::lock_order_reset();
  return rep;
}

}  // namespace qsv::chk
