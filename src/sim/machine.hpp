// machine.hpp — discrete-event shared-memory multiprocessor simulator.
//
// The hardware substitution for the paper's 1991 testbeds (DESIGN.md):
// a P-processor machine with per-processor caches kept coherent by
// write-invalidate, over either
//   * a snooping shared bus   (Sequent Symmetry class), or
//   * a NUMA directory fabric (BBN Butterfly class),
// at cache-line granularity with one simulated word per line (all real
// sync variables are padded to a line anyway).
//
// What it measures — the quantities the 1991 evaluation reported and
// modern wall clocks cannot show:
//   * bus transactions        (every miss/upgrade on the bus machine),
//   * invalidation messages   (copies killed by writes),
//   * remote references       (NUMA accesses serviced by a remote node),
//   * stall cycles per processor.
//
// Spin-waiting is modeled faithfully: a waiter holds a cached copy and
// pays nothing while it spins; the releasing write invalidates that copy
// and the waiter pays one transfer to re-fetch. Machine::wait_while is
// the simulator's expression of that pattern (zero events while quiet).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "platform/topology.hpp"
#include "sim/task.hpp"

namespace qsv::sim {

using Addr = std::uint32_t;
using Value = std::uint64_t;
using Cycles = std::uint64_t;

/// Interconnect topology of the simulated machine.
///   kBus          — snooping write-invalidate caches over one shared bus
///                   (Sequent Symmetry class);
///   kNuma         — directory-kept coherent caches with local/remote
///                   miss costs (modern-style ccNUMA);
///   kNumaUncached — remote references are *never cached* (BBN Butterfly
///                   class): a processor spinning on a remote word pays
///                   one network transaction per poll, while spinning on
///                   a local word is free. This machine is what makes
///                   local-spinning algorithms (MCS/QSV) decisive in the
///                   1991 evaluations.
enum class Topology { kBus, kNuma, kNumaUncached };

/// Access latencies in processor cycles (1991-era ratios).
struct CostModel {
  Cycles cache_hit = 1;
  Cycles bus_transaction = 20;    ///< any bus-serviced miss or upgrade
  Cycles numa_local_miss = 20;    ///< miss serviced by the home node
  Cycles numa_remote_miss = 100;  ///< miss crossing packages
  /// Miss leaving the node but staying inside the package (one hop on
  /// the intra-package interconnect). Only reachable on machines built
  /// from a platform::Topology: the flat constructor makes every node
  /// its own package, so every inter-node miss stays the full
  /// numa_remote_miss and the historical two-tier figures reproduce
  /// unchanged.
  Cycles numa_same_package_miss = 60;
  /// CXL-ish asymmetric hop costs: extra service cycles added to any
  /// off-node access *serviced by* home node n (index = dense node id;
  /// nodes beyond the vector pay nothing). Because the surcharge
  /// follows the home, cost(A->B) != cost(B->A) when only one side is
  /// penalized — the far-memory shape of an expansion device.
  std::vector<Cycles> home_penalty;
  /// Model hot-spot contention: a miss occupies its serialization point
  /// (the shared bus on the bus machine; the line's home memory module
  /// on the NUMA machine) for its full service time, and concurrent
  /// misses queue FIFO behind it. This is the effect that made
  /// centralized barriers and TAS locks collapse on real 1991 hardware
  /// (Pfister & Norton's "hot spots"); disable to recover the idealized
  /// infinite-bandwidth model.
  bool model_contention = true;
};

/// Aggregate event counters for one simulation.
struct Counters {
  std::uint64_t bus_transactions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t remote_refs = 0;      ///< any miss serviced off-node
  std::uint64_t cross_package_refs = 0;  ///< subset crossing packages
  std::uint64_t total_accesses = 0;
  std::uint64_t cache_hits = 0;
};

class Machine {
 public:
  /// `procs_per_node` groups processors into NUMA nodes for the remote/
  /// local cost split: an access is remote iff the issuing processor and
  /// the line's home fall in different groups. The default of 1
  /// (processor-per-node) matches the Butterfly-class machine; larger
  /// groups model clustered NUMA (the topology the hierarchical QSV
  /// protocol exploits, experiment F10). Ignored by the bus machine.
  Machine(std::size_t processors, Topology topology,
          CostModel costs = CostModel{}, std::size_t procs_per_node = 1)
      : procs_(processors),
        topology_(topology),
        costs_(std::move(costs)),
        procs_per_node_(procs_per_node == 0 ? 1 : procs_per_node),
        node_slots_(procs_ + 1) {}

  /// Machine shaped like a platform::Topology (discovered or
  /// synthetic_topology()): processor p is logical cpu p, NUMA nodes and
  /// packages come from the topology, and the miss cost is derived from
  /// hop distance — same node = numa_local_miss, same package =
  /// numa_same_package_miss, cross package = numa_remote_miss (each plus
  /// the home node's home_penalty surcharge). `interconnect` selects
  /// the coherent (kNuma) or Butterfly-class uncached (kNumaUncached)
  /// directory machine; the bus machine has no locality to derive.
  Machine(const qsv::platform::Topology& topo, CostModel costs = CostModel{},
          Topology interconnect = Topology::kNuma);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  // ---- memory layout -----------------------------------------------
  /// Allocate one line-sized word homed at node `home` (NUMA placement;
  /// ignored by the bus machine) with initial value `init`.
  Addr alloc(std::size_t home, Value init = 0);

  // ---- awaitable operations (use inside sim::Task coroutines) -------
  enum class Op : std::uint8_t {
    kLoad,
    kStore,
    kExchange,
    kFetchAdd,
    kCas,
    kDelay
  };

  struct Access {
    Machine* machine;
    std::size_t proc;
    Addr addr;
    Op op;
    Value operand = 0;
    Value operand2 = 0;  // CAS desired
    Value result = 0;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      machine->issue(*this, h);
    }
    Value await_resume() const noexcept { return result; }
  };

  struct WaitAccess {
    Machine* machine;
    std::size_t proc;
    Addr addr;
    std::function<bool(Value)> spin_while;  // wait while this holds
    Value result = 0;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      machine->issue_wait(*this, h);
    }
    Value await_resume() const noexcept { return result; }
  };

  Access load(std::size_t proc, Addr a) {
    return Access{this, proc, a, Op::kLoad};
  }
  Access store(std::size_t proc, Addr a, Value v) {
    return Access{this, proc, a, Op::kStore, v};
  }
  Access exchange(std::size_t proc, Addr a, Value v) {
    return Access{this, proc, a, Op::kExchange, v};
  }
  Access fetch_add(std::size_t proc, Addr a, Value d) {
    return Access{this, proc, a, Op::kFetchAdd, d};
  }
  /// Result is the observed prior value; the swap happened iff it equals
  /// `expected`.
  Access cas(std::size_t proc, Addr a, Value expected, Value desired) {
    return Access{this, proc, a, Op::kCas, expected, desired};
  }
  /// Local computation for `c` cycles (no memory traffic).
  Access delay(std::size_t proc, Cycles c) {
    return Access{this, proc, 0, Op::kDelay, c};
  }
  /// Coherent spin: block while `spin_while(value)` holds. Pays one read
  /// at registration and one re-fetch per wake; nothing in between.
  WaitAccess wait_while(std::size_t proc, Addr a,
                        std::function<bool(Value)> spin_while) {
    return WaitAccess{this, proc, a, std::move(spin_while)};
  }

  // ---- running -------------------------------------------------------
  /// Adopt and schedule a processor program (resumed first at time 0).
  void spawn(Task task);
  /// Drive events until quiescence (all programs done or blocked) or
  /// `max_cycles`. Returns false if blocked programs remain (deadlock in
  /// the protocol under test) or the horizon was hit.
  bool run(Cycles max_cycles = ~0ULL);

  Cycles now() const noexcept { return now_; }
  const Counters& counters() const noexcept { return counters_; }
  std::size_t processors() const noexcept { return procs_; }
  std::size_t procs_per_node() const noexcept { return procs_per_node_; }
  /// NUMA node of a processor: the topology's node for topology-shaped
  /// machines, the flat grouping otherwise.
  std::size_t node_of(std::size_t proc) const noexcept {
    return proc < proc_node_.size() ? proc_node_[proc]
                                    : proc / procs_per_node_;
  }
  /// Package of a node. Flat machines give every node its own package,
  /// so the two-tier local/remote split is preserved exactly.
  std::size_t package_of_node(std::size_t node) const noexcept {
    return node < node_package_.size() ? node_package_[node] : node;
  }
  /// Direct peek for test assertions (no traffic charged).
  Value peek(Addr a) const { return lines_[a].value; }

 private:
  struct Waiter {
    std::size_t proc;
    std::coroutine_handle<> handle;
    std::function<bool(Value)> spin_while;
    Value* result_slot;
    /// Uncached remote spinning: time the poll loop has been charged up
    /// to (each numa_remote_miss cycles of spinning = one remote poll).
    Cycles taxed_until = 0;
  };

  struct Line {
    Value value = 0;
    std::size_t home = 0;
    // Coherence metadata: which processors hold a copy, and whether one
    // holds it exclusively (writable).
    std::vector<bool> sharers;
    std::int32_t exclusive = -1;  // proc id or -1
    std::vector<Waiter> waiters;
  };

  struct Event {
    Cycles time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void issue(Access& a, std::coroutine_handle<> h);
  void issue_wait(WaitAccess& w, std::coroutine_handle<> h);
  /// Apply coherence for an access; returns its latency.
  Cycles charge(std::size_t proc, Line& line, bool write);
  /// Service time of an off-node miss: hop-classified (same package vs
  /// cross package, counted) plus the home node's penalty surcharge.
  Cycles remote_service(std::size_t proc_node, std::size_t home_node);
  /// After a write changed `line.value`: wake satisfied waiters.
  void wake_waiters(Line& line);
  void schedule(Cycles at, std::coroutine_handle<> h);

  /// FIFO occupancy of a serialization point: returns the total latency
  /// (queuing delay + service) of an access of `service` cycles issued
  /// now, and advances the point's busy horizon.
  Cycles occupy(Cycles& busy_until, Cycles service);

  std::size_t procs_;
  Topology topology_;
  CostModel costs_;
  std::size_t procs_per_node_ = 1;
  std::size_t node_slots_ = 1;  ///< node_busy_ size when first needed
  std::vector<std::size_t> proc_node_;     ///< topology machines: cpu->node
  std::vector<std::size_t> node_package_;  ///< topology machines: node->pkg
  Cycles bus_busy_ = 0;                ///< bus machine: one shared bus
  std::vector<Cycles> node_busy_;      ///< NUMA: per home-node module
  std::vector<Line> lines_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::coroutine_handle<>> programs_;
  Counters counters_;
  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t blocked_waiters_ = 0;
};

}  // namespace qsv::sim
