#include "sim/replay.hpp"

#include <stdexcept>

namespace qsv::sim {

bool sim_algorithm_budgeted(const std::string& algorithm) {
  return algorithm == "hier-qsv" || algorithm.rfind("cohort/", 0) == 0;
}

std::vector<ReplayTopology> scale_topologies() {
  std::vector<ReplayTopology> t;
  // Near-host shape: 2 sockets × 4 nodes × 8 cpus (64 cpus) — small
  // enough that its trends are checkable against native measurements on
  // a mid-size box.
  t.push_back({"2s4n32c", qsv::platform::synthetic_topology(2, 4, 8),
               CostModel{}});
  // CXL-ish: 4 sockets × 8 nodes × 32 cpus (256 cpus), with the last
  // package's nodes carrying an asymmetric +150-cycle service surcharge
  // (far-memory expansion shape: cost(A->B) != cost(B->A)).
  {
    ReplayTopology cxl{"4s8n256c-cxl",
                       qsv::platform::synthetic_topology(4, 8, 32),
                       CostModel{}};
    cxl.costs.home_penalty.assign(8, 0);
    cxl.costs.home_penalty[6] = 150;
    cxl.costs.home_penalty[7] = 150;
    t.push_back(std::move(cxl));
  }
  // The scale question proper: 8 sockets × 32 nodes × 32 cpus = 1024
  // simulated processors.
  t.push_back({"8s32n1024c", qsv::platform::synthetic_topology(8, 32, 32),
               CostModel{}});
  return t;
}

std::vector<ReplayPoint> replay(const ReplayPlan& plan) {
  std::vector<ReplayPoint> points;
  for (const ReplayTopology& shape : plan.topologies) {
    for (const std::string& algorithm : plan.algorithms) {
      // Non-budgeted algorithms get exactly one run; budgeted ones one
      // per requested budget (an empty budget list means the default).
      std::vector<std::uint64_t> budgets{kSimHierBudget};
      if (sim_algorithm_budgeted(algorithm) && !plan.budgets.empty()) {
        budgets = plan.budgets;
      }
      for (const std::uint64_t budget : budgets) {
        ReplayPoint p;
        p.topology = shape.label;
        p.algorithm = algorithm;
        p.budget = sim_algorithm_budgeted(algorithm) ? budget : 0;
        p.procs = shape.topo.cpu_count();
        p.result = run_lock_sim(algorithm, shape.topo, plan.rounds,
                                plan.cs_cycles, shape.costs, budget,
                                plan.max_cycles, plan.interconnect);
        if (!p.result.completed) {
          throw std::runtime_error(
              "sim replay: '" + algorithm + "' on " + shape.label +
              " did not complete (deadlock or horizon hit) — refusing to "
              "emit an invalid datapoint");
        }
        points.push_back(std::move(p));
      }
    }
  }
  return points;
}

}  // namespace qsv::sim
