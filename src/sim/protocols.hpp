// protocols.hpp — synchronization protocols ported to the simulator.
//
// Each port mirrors its real implementation line for line (compare
// run_mcs with locks/mcs.hpp) but executes on sim::Machine, so the
// figures report the interconnect traffic the 1991 paper measured on
// real hardware. "Pointers" in simulated memory are processor/node ids
// biased by +1 (0 = null).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "platform/topology.hpp"
#include "sim/machine.hpp"

namespace qsv::sim {

/// Outcome of one simulated contention run.
struct SimRunResult {
  std::string algorithm;
  std::size_t processors = 0;
  std::uint64_t operations = 0;  ///< acquisitions or barrier episodes
  Counters counters;
  Cycles elapsed = 0;
  bool completed = false;  ///< false = protocol deadlocked / horizon hit
  /// Handoff locality, filled by the cohort-structured ports (hier-qsv
  /// and the cohort/* combinator): intra-cohort local passes vs
  /// global-tier acquisitions. Zero for flat protocols.
  std::uint64_t local_passes = 0;
  std::uint64_t global_acquires = 0;

  /// An incomplete run (deadlock or horizon) carries partial counters
  /// that look plausible per-op; every derived accessor refuses to
  /// serve them so a bad run can never ride into a figure silently.
  void require_completed() const {
    if (!completed) {
      throw std::logic_error(
          "sim result is not a valid datapoint: '" + algorithm +
          "' did not complete (deadlock or horizon hit)");
    }
  }

  double bus_per_op() const {
    require_completed();
    return operations ? static_cast<double>(counters.bus_transactions) /
                            static_cast<double>(operations)
                      : 0.0;
  }
  double remote_per_op() const {
    require_completed();
    return operations ? static_cast<double>(counters.remote_refs) /
                            static_cast<double>(operations)
                      : 0.0;
  }
  double cross_package_per_op() const {
    require_completed();
    return operations ? static_cast<double>(counters.cross_package_refs) /
                            static_cast<double>(operations)
                      : 0.0;
  }
  double invalidations_per_op() const {
    require_completed();
    return operations ? static_cast<double>(counters.invalidations) /
                            static_cast<double>(operations)
                      : 0.0;
  }
  /// Fraction of acquisitions served by an intra-cohort pass.
  double local_pass_fraction() const {
    require_completed();
    return operations ? static_cast<double>(local_passes) /
                            static_cast<double>(operations)
                      : 0.0;
  }
};

/// Lock algorithms available in the simulator (fig2/fig3/fig10/fig12
/// rows). Includes the cohort combinator compositions under their
/// catalogue names ("cohort/qsv+qsv", "cohort/ticket+mcs", ...): both
/// tiers collapse to the two dialects the sim speaks — queue (the
/// MCS/QSV shape) and ticket.
const std::vector<std::string>& sim_lock_names();

/// Default intra-cohort handoff budget of the cohort-structured sim
/// protocols ("hier-qsv", "cohort/*") — matches CohortLock's tuning.
inline constexpr std::uint64_t kSimHierBudget = 16;

/// Run `procs` simulated processors, each performing `rounds`
/// acquire/hold/release cycles (hold = `cs_cycles` of local work) on the
/// named lock protocol over the given topology. `procs_per_node` groups
/// processors into NUMA nodes (Machine); the "hier-qsv" and "cohort/*"
/// protocols use the same grouping as their cohort maps.
SimRunResult run_lock_sim(const std::string& algorithm, std::size_t procs,
                          std::size_t rounds, Topology topology,
                          Cycles cs_cycles = 50,
                          std::size_t procs_per_node = 1,
                          CostModel costs = CostModel{});

/// Topology-shaped run: the machine is built from `topo` (discovered or
/// synthetic_topology()), cohorts = the topology's NUMA nodes, and miss
/// costs derive from hop distance (see Machine's topology constructor).
/// `budget` is the intra-cohort handoff budget of the cohort-structured
/// protocols (ignored by flat ones); `max_cycles` bounds the run so a
/// deadlocked protocol at 1024 simulated cpus fails fast (completed ==
/// false) instead of spinning the host. `interconnect` picks the
/// coherent or Butterfly-class uncached directory machine.
SimRunResult run_lock_sim(const std::string& algorithm,
                          const qsv::platform::Topology& topo,
                          std::size_t rounds, Cycles cs_cycles = 50,
                          CostModel costs = CostModel{},
                          std::uint64_t budget = kSimHierBudget,
                          Cycles max_cycles = ~0ULL,
                          Topology interconnect = Topology::kNuma);

/// Barrier algorithms available in the simulator (fig5 rows).
const std::vector<std::string>& sim_barrier_names();

/// Run `procs` simulated processors through `episodes` barrier episodes.
SimRunResult run_barrier_sim(const std::string& algorithm, std::size_t procs,
                             std::size_t episodes, Topology topology);

/// Reader-indicator disciplines available in the simulator, under their
/// catalogue names: "qsv-rw" mirrors QsvRwLock's striped per-node
/// reader indicators (each reader RMWs a locally-homed stripe);
/// "qsv-rw/central" is the centralized control — every reader RMWs the
/// one shared count word, so each entry/exit invalidates every other
/// reader's copy.
const std::vector<std::string>& sim_rw_names();

/// Run `procs` simulated readers, each performing `rounds` read
/// acquire/hold/release cycles (hold = `read_cycles`) under the named
/// reader-indicator discipline. Measures the reader-side coherence
/// traffic fig8's throughput curves are downstream of.
SimRunResult run_rw_sim(const std::string& algorithm, std::size_t procs,
                        std::size_t rounds, Topology topology,
                        Cycles read_cycles = 20,
                        std::size_t procs_per_node = 1);

/// Eventcount implementations available in the simulator (F11's sim
/// section): "ec-central" polls one shared count word; "ec-queued"
/// waiters enqueue nodes and spin locally (the QSV protocol applied to
/// condition synchronization).
const std::vector<std::string>& sim_eventcount_names();

/// Run an eventcount rendezvous on `procs` processors: one producer
/// advances `events` times; every other processor awaits each value in
/// turn (a 1-to-(P-1) broadcast repeated `events` times — the worst
/// case for centralized polling, the intended case for queued wakes).
/// `produce_cycles` is the local work per event at the producer: small
/// values stress wake throughput (walk-bound, favors the centralized
/// count), large values stress idle waiting (poll-bound, favors queued
/// local spinning — the crossover experiment F11's sim section shows).
SimRunResult run_eventcount_sim(const std::string& algorithm,
                                std::size_t procs, std::size_t events,
                                Topology topology,
                                Cycles produce_cycles = 30);

}  // namespace qsv::sim
