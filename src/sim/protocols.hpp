// protocols.hpp — synchronization protocols ported to the simulator.
//
// Each port mirrors its real implementation line for line (compare
// run_mcs with locks/mcs.hpp) but executes on sim::Machine, so the
// figures report the interconnect traffic the 1991 paper measured on
// real hardware. "Pointers" in simulated memory are processor/node ids
// biased by +1 (0 = null).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace qsv::sim {

/// Outcome of one simulated contention run.
struct SimRunResult {
  std::string algorithm;
  std::size_t processors = 0;
  std::uint64_t operations = 0;  ///< acquisitions or barrier episodes
  Counters counters;
  Cycles elapsed = 0;
  bool completed = false;  ///< false = protocol deadlocked / horizon hit

  double bus_per_op() const {
    return operations ? static_cast<double>(counters.bus_transactions) /
                            static_cast<double>(operations)
                      : 0.0;
  }
  double remote_per_op() const {
    return operations ? static_cast<double>(counters.remote_refs) /
                            static_cast<double>(operations)
                      : 0.0;
  }
  double invalidations_per_op() const {
    return operations ? static_cast<double>(counters.invalidations) /
                            static_cast<double>(operations)
                      : 0.0;
  }
};

/// Lock algorithms available in the simulator (fig2/fig3/fig10 rows).
const std::vector<std::string>& sim_lock_names();

/// Run `procs` simulated processors, each performing `rounds`
/// acquire/hold/release cycles (hold = `cs_cycles` of local work) on the
/// named lock protocol over the given topology. `procs_per_node` groups
/// processors into NUMA nodes (Machine); the "hier-qsv" protocol uses
/// the same grouping as its cohort map.
SimRunResult run_lock_sim(const std::string& algorithm, std::size_t procs,
                          std::size_t rounds, Topology topology,
                          Cycles cs_cycles = 50,
                          std::size_t procs_per_node = 1,
                          CostModel costs = CostModel{});

/// Barrier algorithms available in the simulator (fig5 rows).
const std::vector<std::string>& sim_barrier_names();

/// Run `procs` simulated processors through `episodes` barrier episodes.
SimRunResult run_barrier_sim(const std::string& algorithm, std::size_t procs,
                             std::size_t episodes, Topology topology);

/// Intra-cohort handoff budget used by the simulated "hier-qsv" protocol.
inline constexpr std::uint64_t kSimHierBudget = 16;

/// Eventcount implementations available in the simulator (F11's sim
/// section): "ec-central" polls one shared count word; "ec-queued"
/// waiters enqueue nodes and spin locally (the QSV protocol applied to
/// condition synchronization).
const std::vector<std::string>& sim_eventcount_names();

/// Run an eventcount rendezvous on `procs` processors: one producer
/// advances `events` times; every other processor awaits each value in
/// turn (a 1-to-(P-1) broadcast repeated `events` times — the worst
/// case for centralized polling, the intended case for queued wakes).
/// `produce_cycles` is the local work per event at the producer: small
/// values stress wake throughput (walk-bound, favors the centralized
/// count), large values stress idle waiting (poll-bound, favors queued
/// local spinning — the crossover experiment F11's sim section shows).
SimRunResult run_eventcount_sim(const std::string& algorithm,
                                std::size_t procs, std::size_t events,
                                Topology topology,
                                Cycles produce_cycles = 30);

}  // namespace qsv::sim
