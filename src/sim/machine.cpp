#include "sim/machine.hpp"

#include <cassert>

namespace qsv::sim {

Machine::Machine(const qsv::platform::Topology& topo, CostModel costs,
                 Topology interconnect)
    : procs_(topo.cpu_count()),
      topology_(interconnect == Topology::kBus ? Topology::kNuma
                                               : interconnect),
      costs_(std::move(costs)),
      node_slots_(topo.node_count()) {
  // Processor p is logical cpu p. Synthetic topologies number their
  // cpus densely; a discovered host with id gaps still resolves through
  // node_of_cpu (unknown ids map to node 0, the topology's own rule).
  proc_node_.reserve(procs_);
  for (std::size_t p = 0; p < procs_; ++p) {
    proc_node_.push_back(topo.node_of_cpu(static_cast<int>(p)));
  }
  node_package_.reserve(topo.node_count());
  for (const auto& node : topo.nodes()) {
    node_package_.push_back(static_cast<std::size_t>(node.package));
  }
}

Machine::~Machine() {
  for (auto h : programs_) {
    if (h) h.destroy();
  }
}

Addr Machine::alloc(std::size_t home, Value init) {
  Line line;
  line.value = init;
  line.home = home % (procs_ == 0 ? 1 : procs_);
  line.sharers.assign(procs_, false);
  lines_.push_back(std::move(line));
  return static_cast<Addr>(lines_.size() - 1);
}

void Machine::schedule(Cycles at, std::coroutine_handle<> h) {
  queue_.push(Event{at, seq_++, h});
}

void Machine::spawn(Task task) {
  auto h = task.release();
  programs_.push_back(h);
  schedule(now_, h);
}

Cycles Machine::occupy(Cycles& busy_until, Cycles service) {
  if (!costs_.model_contention) return service;
  const Cycles start = busy_until > now_ ? busy_until : now_;
  busy_until = start + service;
  return busy_until - now_;  // queuing delay + service time
}

Cycles Machine::remote_service(std::size_t proc_node,
                               std::size_t home_node) {
  Cycles service;
  if (package_of_node(proc_node) != package_of_node(home_node)) {
    ++counters_.cross_package_refs;
    service = costs_.numa_remote_miss;
  } else {
    service = costs_.numa_same_package_miss;
  }
  // CXL-ish surcharge follows the *home*: accesses serviced by a
  // penalized node cost extra in either direction of travel.
  if (home_node < costs_.home_penalty.size()) {
    service += costs_.home_penalty[home_node];
  }
  return service;
}

Cycles Machine::charge(std::size_t proc, Line& line, bool write) {
  ++counters_.total_accesses;
  const std::size_t proc_node = node_of(proc);
  const std::size_t home_node = node_of(line.home);
  const bool is_remote = proc_node != home_node;

  // Resolve the miss service time and serialization point; cache hits
  // short-circuit below without touching either.
  auto miss_latency = [&]() -> Cycles {
    if (topology_ == Topology::kBus) {
      ++counters_.bus_transactions;
      return occupy(bus_busy_, costs_.bus_transaction);
    }
    if (node_busy_.size() < node_slots_) node_busy_.assign(node_slots_, 0);
    Cycles& module = node_busy_[home_node];
    if (is_remote) {
      ++counters_.remote_refs;
      return occupy(module, remote_service(proc_node, home_node));
    }
    return occupy(module, costs_.numa_local_miss);
  };

  // Butterfly-class machine: remote words are never cached — every
  // access crosses the network, and no copy is installed (so no
  // invalidation accounting applies either).
  if (topology_ == Topology::kNumaUncached && is_remote) {
    if (node_busy_.size() < node_slots_) node_busy_.assign(node_slots_, 0);
    ++counters_.remote_refs;
    return occupy(node_busy_[home_node],
                  remote_service(proc_node, home_node));
  }

  if (write) {
    if (line.exclusive == static_cast<std::int32_t>(proc)) {
      ++counters_.cache_hits;
      return costs_.cache_hit;  // already owned exclusively
    }
    // Upgrade/miss: invalidate every other copy.
    for (std::size_t p = 0; p < procs_; ++p) {
      if (p != proc && line.sharers[p]) {
        line.sharers[p] = false;
        ++counters_.invalidations;
      }
    }
    line.sharers.assign(procs_, false);
    line.sharers[proc] = true;
    line.exclusive = static_cast<std::int32_t>(proc);
    return miss_latency();
  }

  // Read path.
  if (line.sharers[proc]) {
    ++counters_.cache_hits;
    return costs_.cache_hit;
  }
  // Miss: fetch a shared copy; any exclusive owner is downgraded.
  if (line.exclusive >= 0 &&
      line.exclusive != static_cast<std::int32_t>(proc)) {
    line.exclusive = -1;
  }
  line.sharers[proc] = true;
  if (line.exclusive == static_cast<std::int32_t>(proc)) line.exclusive = -1;
  return miss_latency();
}

void Machine::wake_waiters(Line& line) {
  // The write just invalidated every spinner's cached copy. Each spinner
  // re-fetches the line and re-evaluates its condition — that re-fetch is
  // the per-release O(#spinners) traffic that distinguishes centralized
  // spinning (ticket, TTAS) from local spinning (MCS/QSV), so it is
  // charged for *every* waiter, satisfied or not. Satisfied waiters
  // additionally resume; unsatisfied ones go back to quietly holding
  // their refreshed shared copy.
  for (std::size_t i = 0; i < line.waiters.size();) {
    Waiter& w = line.waiters[i];
    // On the uncached NUMA machine a remote spinner holds no copy: it has
    // been polling across the network the whole time. Convert the elapsed
    // spin into its poll count (one remote transaction per round trip).
    const bool remote_uncached =
        topology_ == Topology::kNumaUncached &&
        node_of(w.proc) != node_of(line.home);
    if (remote_uncached) {
      const Cycles since = now_ - w.taxed_until;
      const std::uint64_t polls = since / costs_.numa_remote_miss;
      counters_.remote_refs += polls;
      counters_.total_accesses += polls;
      w.taxed_until = now_;
    }
    const bool satisfied = !w.spin_while(line.value);
    // Coherent machines: every spinner's copy was just invalidated, so
    // every spinner re-fetches (the O(#spinners) release storm). On the
    // uncached machine the tax above already covers the idle polling;
    // only the successful observing poll is charged separately.
    if (satisfied || !remote_uncached) {
      const Cycles latency = charge(w.proc, line, /*write=*/false);
      if (satisfied) {
        *w.result_slot = line.value;
        schedule(now_ + latency, w.handle);
      }
    }
    if (satisfied) {
      --blocked_waiters_;
      line.waiters.erase(line.waiters.begin() +
                         static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Machine::issue(Access& a, std::coroutine_handle<> h) {
  if (a.op == Op::kDelay) {
    schedule(now_ + a.operand, h);
    return;
  }
  assert(a.addr < lines_.size());
  Line& line = lines_[a.addr];
  const bool write = a.op != Op::kLoad;
  Cycles latency = 0;

  switch (a.op) {
    case Op::kLoad:
      latency = charge(a.proc, line, false);
      a.result = line.value;
      break;
    case Op::kStore:
      latency = charge(a.proc, line, true);
      a.result = a.operand;
      line.value = a.operand;
      break;
    case Op::kExchange:
      latency = charge(a.proc, line, true);
      a.result = line.value;
      line.value = a.operand;
      break;
    case Op::kFetchAdd:
      latency = charge(a.proc, line, true);
      a.result = line.value;
      line.value += a.operand;
      break;
    case Op::kCas:
      latency = charge(a.proc, line, true);
      a.result = line.value;
      if (line.value == a.operand) line.value = a.operand2;
      break;
    case Op::kDelay:
      break;  // handled above
  }
  if (write) wake_waiters(line);
  schedule(now_ + latency, h);
}

void Machine::issue_wait(WaitAccess& w, std::coroutine_handle<> h) {
  assert(w.addr < lines_.size());
  Line& line = lines_[w.addr];
  // Registration read: the waiter fetches a copy and then spins on it.
  const Cycles latency = charge(w.proc, line, /*write=*/false);
  if (!w.spin_while(line.value)) {
    w.result = line.value;
    schedule(now_ + latency, h);
    return;
  }
  line.waiters.push_back(
      Waiter{w.proc, h, w.spin_while, &w.result, /*taxed_until=*/now_});
  ++blocked_waiters_;
}

bool Machine::run(Cycles max_cycles) {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.time > max_cycles) return false;
    now_ = ev.time;
    ev.handle.resume();
  }
  return blocked_waiters_ == 0;
}

}  // namespace qsv::sim
