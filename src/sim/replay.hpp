// replay.hpp — the simulator as a scale oracle (fig12).
//
// The native benchmarks stop at the host's core count; the 1991 paper's
// question — which protocol wins at hundreds of processors? — needs
// machines nobody has on their desk. replay() answers it by sweeping
// catalogue protocols × handoff budgets × *synthetic* topologies
// (platform::synthetic_topology) through the discrete-event machine,
// predicting remote references per operation and handoff locality at
// 1024 simulated cpus. Where the sim topology equals the real host
// topology, tests/sim_scale_test.cpp closes the loop: the sim's trend
// ranking must match the measured BENCH_cohort.json /
// BENCH_rw_ratio.json orderings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/topology.hpp"
#include "sim/protocols.hpp"

namespace qsv::sim {

/// One simulated machine shape: a (usually synthetic) topology plus the
/// cost model that shapes its interconnect (home_penalty models CXL-ish
/// asymmetric hops).
struct ReplayTopology {
  std::string label;
  qsv::platform::Topology topo;
  CostModel costs;
};

/// The sweep: every topology × algorithm (× budget, for the
/// cohort-structured algorithms).
struct ReplayPlan {
  std::vector<ReplayTopology> topologies;
  std::vector<std::string> algorithms;  ///< from sim_lock_names()
  std::vector<std::uint64_t> budgets;   ///< for budgeted algorithms only
  std::size_t rounds = 2;               ///< acquisitions per processor
  Cycles cs_cycles = 50;
  /// Event horizon per run: a deadlocked protocol at 1024 simulated
  /// cpus fails fast instead of spinning the host. Generous — the
  /// largest healthy sweep point finishes orders of magnitude sooner.
  Cycles max_cycles = 200'000'000;
  Topology interconnect = Topology::kNuma;
};

/// One datapoint of the sweep. `result.completed` is always true here:
/// replay() refuses to return incomplete runs (see below).
struct ReplayPoint {
  std::string topology;
  std::string algorithm;
  std::uint64_t budget = 0;  ///< 0 for non-budgeted algorithms
  std::size_t procs = 0;
  SimRunResult result;
};

/// Does the algorithm take a handoff budget (hier-qsv and the cohort/*
/// combinator compositions)?
bool sim_algorithm_budgeted(const std::string& algorithm);

/// The standard scale-oracle machine set (docs/BENCHMARKS.md): a
/// near-host 2-socket, a 4-socket with CXL-ish asymmetric hop costs on
/// its far package, and a 1024-cpu 8-socket — all beyond what native
/// runs can measure.
std::vector<ReplayTopology> scale_topologies();

/// Run the sweep. Throws std::runtime_error the moment any run comes
/// back incomplete (deadlock or horizon): an incomplete run carries
/// partial counters that look plausible per-op, and it must never ride
/// into a figure as a valid datapoint.
std::vector<ReplayPoint> replay(const ReplayPlan& plan);

}  // namespace qsv::sim
