// task.hpp — coroutine type for simulated processors.
//
// Each simulated processor executes one `sim::Task` coroutine. Memory
// operations are awaitables supplied by sim::Machine: the coroutine
// suspends at every access and the discrete-event engine resumes it when
// the access completes, so protocol code reads almost exactly like its
// real-hardware counterpart (compare protocols.cpp with locks/mcs.hpp).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace qsv::sim {

class Task {
 public:
  struct promise_type {
    /// Parent coroutine to resume when this task finishes; set when a
    /// Task is co_awaited inside another Task (protocol subroutines,
    /// e.g. the hierarchical lock's release-global step). Null for
    /// top-level tasks driven by the machine.
    std::coroutine_handle<> continuation;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    // Lazy start: the machine (or the awaiting parent) schedules the
    // first resume itself.
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Keep the frame alive after completion (the owner destroys it);
    // hand control back to the awaiting parent if there is one.
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, nullptr);
  }
  std::coroutine_handle<promise_type> handle() const { return handle_; }

  // ---- awaitable: run as a subroutine of another Task -----------------
  // `co_await subprotocol(...)` starts the child immediately (symmetric
  // transfer) and resumes the parent when the child returns. The child's
  // frame is owned by the awaited temporary, which lives until the await
  // expression completes.
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() const noexcept {}

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace qsv::sim
