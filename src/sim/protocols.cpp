#include "sim/protocols.hpp"

#include <cassert>
#include <stdexcept>

namespace qsv::sim {

namespace {

// Pointers in simulated memory: processor/node id + 1; 0 is null.
constexpr Value ptr(std::size_t id) { return static_cast<Value>(id) + 1; }
constexpr std::size_t unptr(Value v) { return static_cast<std::size_t>(v) - 1; }

// ---------------------------------------------------------------------
// Lock protocols. Shared layout structs are allocated host-side; every
// member is an Addr into simulated memory.
// ---------------------------------------------------------------------

struct TasLayout {
  Addr flag;
  static TasLayout make(Machine& m) { return TasLayout{m.alloc(0, 0)}; }
};

Task tas_worker(Machine& m, TasLayout l, std::size_t proc, std::size_t rounds,
                Cycles cs, bool test_first) {
  for (std::size_t r = 0; r < rounds; ++r) {
    for (;;) {
      if (test_first) {
        // TTAS: spin on a cached copy until the lock looks free.
        co_await m.wait_while(proc, l.flag,
                              [](Value v) { return v != 0; });
      }
      const Value old = co_await m.exchange(proc, l.flag, 1);
      if (old == 0) break;
      if (!test_first) {
        // Pure TAS hammers the line; a minimal pause keeps the model
        // honest about instruction issue rate, not a backoff.
        co_await m.delay(proc, 1);
      }
    }
    co_await m.delay(proc, cs);
    co_await m.store(proc, l.flag, 0);
  }
}

struct TicketLayout {
  Addr next_ticket;
  Addr now_serving;
  static TicketLayout make(Machine& m) {
    return TicketLayout{m.alloc(0, 0), m.alloc(0, 0)};
  }
};

Task ticket_worker(Machine& m, TicketLayout l, std::size_t proc,
                   std::size_t rounds, Cycles cs) {
  for (std::size_t r = 0; r < rounds; ++r) {
    const Value me = co_await m.fetch_add(proc, l.next_ticket, 1);
    co_await m.wait_while(proc, l.now_serving,
                          [me](Value v) { return v != me; });
    co_await m.delay(proc, cs);
    const Value s = co_await m.load(proc, l.now_serving);
    co_await m.store(proc, l.now_serving, s + 1);
  }
}

struct AndersonLayout {
  Addr next_slot;
  std::vector<Addr> slots;  // one line per processor, homed round-robin
  static AndersonLayout make(Machine& m, std::size_t procs) {
    AndersonLayout l;
    l.next_slot = m.alloc(0, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      l.slots.push_back(m.alloc(p, p == 0 ? 1 : 0));
    }
    return l;
  }
};

Task anderson_worker(Machine& m, const AndersonLayout* l, std::size_t proc,
                     std::size_t rounds, Cycles cs) {
  const std::size_t n = l->slots.size();
  for (std::size_t r = 0; r < rounds; ++r) {
    const Value pos = co_await m.fetch_add(proc, l->next_slot, 1);
    const std::size_t slot = static_cast<std::size_t>(pos) % n;
    co_await m.wait_while(proc, l->slots[slot],
                          [](Value v) { return v == 0; });
    co_await m.delay(proc, cs);
    co_await m.store(proc, l->slots[slot], 0);          // re-arm mine
    co_await m.store(proc, l->slots[(slot + 1) % n], 1);  // grant next
  }
}

struct McsLayout {
  Addr tail;
  std::vector<Addr> node_next;   // per proc, homed locally
  std::vector<Addr> node_state;  // per proc, homed locally
  static McsLayout make(Machine& m, std::size_t procs) {
    McsLayout l;
    l.tail = m.alloc(0, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      l.node_next.push_back(m.alloc(p, 0));
      l.node_state.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

/// MCS and the QSV exclusive protocol share this shape: one fetch&store
/// to enqueue, spin in the waiter's own (locally homed) node, one store
/// to hand off.
Task mcs_worker(Machine& m, const McsLayout* l, std::size_t proc,
                std::size_t rounds, Cycles cs) {
  for (std::size_t r = 0; r < rounds; ++r) {
    co_await m.store(proc, l->node_next[proc], 0);
    co_await m.store(proc, l->node_state[proc], 0);
    const Value pred = co_await m.exchange(proc, l->tail, ptr(proc));
    if (pred != 0) {
      co_await m.store(proc, l->node_next[unptr(pred)], ptr(proc));
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
    }
    co_await m.delay(proc, cs);
    Value next = co_await m.load(proc, l->node_next[proc]);
    if (next == 0) {
      const Value observed =
          co_await m.cas(proc, l->tail, ptr(proc), 0);
      if (observed == ptr(proc)) continue;  // queue empty: released
      co_await m.wait_while(proc, l->node_next[proc],
                            [](Value v) { return v == 0; });
      next = co_await m.load(proc, l->node_next[proc]);
    }
    co_await m.store(proc, l->node_state[unptr(next)], 1);
  }
}

struct ClhLayout {
  Addr tail;
  std::vector<Addr> node_state;       // procs + 1 nodes (one sentinel)
  std::vector<std::size_t> my_node;   // host-side: current node of proc
  static ClhLayout make(Machine& m, std::size_t procs) {
    ClhLayout l;
    for (std::size_t i = 0; i < procs + 1; ++i) {
      // Node i initially owned by proc i (sentinel homed at 0).
      l.node_state.push_back(m.alloc(i < procs ? i : 0, 0));
    }
    // Sentinel (index procs) starts released (state 0 = released).
    l.tail = m.alloc(0, ptr(procs));
    for (std::size_t p = 0; p < procs; ++p) l.my_node.push_back(p);
    return l;
  }
};

/// CLH contrast: the waiter spins on its *predecessor's* node, which on
/// the NUMA machine is usually remote — the deficiency MCS/QSV fix.
Task clh_worker(Machine& m, ClhLayout* l, std::size_t proc,
                std::size_t rounds, Cycles cs) {
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t mine = l->my_node[proc];
    co_await m.store(proc, l->node_state[mine], 1);  // waiting/held
    const Value pred = co_await m.exchange(proc, l->tail, ptr(mine));
    const std::size_t pred_node = unptr(pred);
    co_await m.wait_while(proc, l->node_state[pred_node],
                          [](Value v) { return v != 0; });
    l->my_node[proc] = pred_node;  // adopt (host-side bookkeeping)
    co_await m.delay(proc, cs);
    co_await m.store(proc, l->node_state[mine], 0);
  }
}

struct GraunkeThakkarLayout {
  Addr tail;
  std::vector<Addr> flags;  // one per proc + trailing init flag
  static GraunkeThakkarLayout make(Machine& m, std::size_t procs) {
    GraunkeThakkarLayout l;
    for (std::size_t p = 0; p < procs; ++p) l.flags.push_back(m.alloc(p, 0));
    l.flags.push_back(m.alloc(0, 0));  // init flag, value 0
    // Tail packs (flag index, recorded parity). The recorded parity must
    // differ from the init flag's value so the first locker enters.
    l.tail = m.alloc(0, pack(procs, 1));
    return l;
  }
  static Value pack(std::size_t flag_idx, Value parity) {
    return (static_cast<Value>(flag_idx) << 1) | parity;
  }
};

/// Graunke-Thakkar contrast: like Anderson the flags are per-processor,
/// but the waiter spins on its *predecessor's* flag — remote on the NUMA
/// machine, which is exactly the deficiency MCS/QSV fix.
Task graunke_thakkar_worker(Machine& m, const GraunkeThakkarLayout* l,
                            std::size_t proc, std::size_t rounds,
                            Cycles cs) {
  for (std::size_t r = 0; r < rounds; ++r) {
    const Value mine = co_await m.load(proc, l->flags[proc]);
    const Value self = GraunkeThakkarLayout::pack(proc, mine & 1);
    const Value prev = co_await m.exchange(proc, l->tail, self);
    const std::size_t prev_flag = static_cast<std::size_t>(prev >> 1);
    const Value prev_val = prev & 1;
    co_await m.wait_while(proc, l->flags[prev_flag], [prev_val](Value v) {
      return (v & 1) == prev_val;
    });
    co_await m.delay(proc, cs);
    co_await m.store(proc, l->flags[proc], mine + 1);
  }
}

struct HierQsvLayout {
  Addr global_tail;
  std::vector<Addr> local_tail;   // per cohort, homed at cohort lead
  std::vector<Addr> rep;          // per cohort: proc holding global (+1)
  std::vector<Addr> passes;       // per cohort pass counter
  std::vector<Addr> node_next;    // local-queue node, per proc
  std::vector<Addr> node_state;   // 0 wait, 1 must-acquire, 2 global-passed
  std::vector<Addr> gnode_next;   // global-queue node, per proc
  std::vector<Addr> gnode_state;  // 0 wait, 1 granted
  static HierQsvLayout make(Machine& m, std::size_t procs,
                            std::size_t cohorts, std::size_t ppn) {
    HierQsvLayout l;
    l.global_tail = m.alloc(0, 0);
    for (std::size_t c = 0; c < cohorts; ++c) {
      const std::size_t lead = c * ppn;
      l.local_tail.push_back(m.alloc(lead, 0));
      l.rep.push_back(m.alloc(lead, 0));
      l.passes.push_back(m.alloc(lead, 0));
    }
    for (std::size_t p = 0; p < procs; ++p) {
      l.node_next.push_back(m.alloc(p, 0));
      l.node_state.push_back(m.alloc(p, 0));
      l.gnode_next.push_back(m.alloc(p, 0));
      l.gnode_state.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

constexpr Value kHierMustAcquire = 1;
constexpr Value kHierGlobalPassed = 2;

/// Release the global queue on behalf of cohort `c` (mirrors
/// HierQsvMutex::release_global; the representative's global node is
/// recorded in `rep[c]`).
Task hier_release_global(Machine& m, const HierQsvLayout* l,
                         std::size_t proc, std::size_t c) {
  const Value r = co_await m.load(proc, l->rep[c]);
  const std::size_t owner = unptr(r);
  Value next = co_await m.load(proc, l->gnode_next[owner]);
  if (next == 0) {
    const Value observed =
        co_await m.cas(proc, l->global_tail, ptr(owner), 0);
    if (observed == ptr(owner)) co_return;
    co_await m.wait_while(proc, l->gnode_next[owner],
                          [](Value v) { return v == 0; });
    next = co_await m.load(proc, l->gnode_next[owner]);
  }
  co_await m.store(proc, l->gnode_state[unptr(next)], 1);
}

/// Hierarchical QSV port (mirrors hier/hier_qsv.hpp): cohort = NUMA node.
Task hier_qsv_worker(Machine& m, const HierQsvLayout* l, std::size_t proc,
                     std::size_t rounds, Cycles cs, std::uint64_t budget) {
  const std::size_t c = m.node_of(proc);
  for (std::size_t r = 0; r < rounds; ++r) {
    // ---- acquire ----------------------------------------------------
    co_await m.store(proc, l->node_next[proc], 0);
    co_await m.store(proc, l->node_state[proc], 0);
    const Value pred = co_await m.exchange(proc, l->local_tail[c], ptr(proc));
    bool have_global = false;
    if (pred != 0) {
      co_await m.store(proc, l->node_next[unptr(pred)], ptr(proc));
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
      const Value s = co_await m.load(proc, l->node_state[proc]);
      have_global = s == kHierGlobalPassed;
    }
    if (!have_global) {
      co_await m.store(proc, l->gnode_next[proc], 0);
      co_await m.store(proc, l->gnode_state[proc], 0);
      const Value gpred = co_await m.exchange(proc, l->global_tail, ptr(proc));
      if (gpred != 0) {
        co_await m.store(proc, l->gnode_next[unptr(gpred)], ptr(proc));
        co_await m.wait_while(proc, l->gnode_state[proc],
                              [](Value v) { return v == 0; });
      }
      co_await m.store(proc, l->rep[c], ptr(proc));
      co_await m.store(proc, l->passes[c], 0);
    }
    // ---- critical section -------------------------------------------
    co_await m.delay(proc, cs);
    // ---- release -----------------------------------------------------
    Value next = co_await m.load(proc, l->node_next[proc]);
    if (next == 0) {
      const Value observed =
          co_await m.cas(proc, l->local_tail[c], ptr(proc), 0);
      if (observed == ptr(proc)) {
        co_await hier_release_global(m, l, proc, c);
        continue;
      }
      co_await m.wait_while(proc, l->node_next[proc],
                            [](Value v) { return v == 0; });
      next = co_await m.load(proc, l->node_next[proc]);
    }
    const Value p = co_await m.load(proc, l->passes[c]);
    if (p < budget) {
      co_await m.store(proc, l->passes[c], p + 1);
      co_await m.store(proc, l->node_state[unptr(next)], kHierGlobalPassed);
    } else {
      co_await hier_release_global(m, l, proc, c);
      co_await m.store(proc, l->node_state[unptr(next)], kHierMustAcquire);
    }
  }
}

// ---------------------------------------------------------------------
// Barrier protocols.
// ---------------------------------------------------------------------

struct CentralBarrierLayout {
  Addr arrived;
  Addr episode;
  static CentralBarrierLayout make(Machine& m) {
    return CentralBarrierLayout{m.alloc(0, 0), m.alloc(0, 0)};
  }
};

Task central_barrier_worker(Machine& m, CentralBarrierLayout l,
                            std::size_t proc, std::size_t procs,
                            std::size_t episodes) {
  for (std::size_t e = 0; e < episodes; ++e) {
    const Value epoch = co_await m.load(proc, l.episode);
    const Value c = co_await m.fetch_add(proc, l.arrived, 1);
    if (c + 1 == procs) {
      co_await m.store(proc, l.arrived, 0);
      co_await m.store(proc, l.episode, epoch + 1);
    } else {
      co_await m.wait_while(proc, l.episode,
                            [epoch](Value v) { return v == epoch; });
    }
  }
}

struct DisseminationLayout {
  // flags[round][proc], each homed at its reader.
  std::vector<std::vector<Addr>> flags;
  std::size_t rounds;
  static DisseminationLayout make(Machine& m, std::size_t procs) {
    DisseminationLayout l;
    l.rounds = 0;
    for (std::size_t w = 1; w < procs; w <<= 1) ++l.rounds;
    l.flags.resize(l.rounds);
    for (std::size_t k = 0; k < l.rounds; ++k) {
      for (std::size_t p = 0; p < procs; ++p) {
        l.flags[k].push_back(m.alloc(p, 0));
      }
    }
    return l;
  }
};

Task dissemination_worker(Machine& m, const DisseminationLayout* l,
                          std::size_t proc, std::size_t procs,
                          std::size_t episodes) {
  for (std::size_t e = 1; e <= episodes; ++e) {
    std::size_t dist = 1;
    for (std::size_t k = 0; k < l->rounds; ++k, dist <<= 1) {
      co_await m.store(proc, l->flags[k][(proc + dist) % procs],
                       static_cast<Value>(e));
      co_await m.wait_while(proc, l->flags[k][proc],
                            [e](Value v) { return v < e; });
    }
  }
}

struct McsTreeLayout {
  std::vector<Addr> arrival;  // per proc, homed locally
  std::vector<Addr> release;  // per proc, homed locally
  static McsTreeLayout make(Machine& m, std::size_t procs) {
    McsTreeLayout l;
    for (std::size_t p = 0; p < procs; ++p) {
      l.arrival.push_back(m.alloc(p, 0));
      l.release.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

Task mcs_tree_worker(Machine& m, const McsTreeLayout* l, std::size_t proc,
                     std::size_t procs, std::size_t episodes) {
  constexpr std::size_t kFanIn = 4;
  for (std::size_t e = 1; e <= episodes; ++e) {
    for (std::size_t c = 0; c < kFanIn; ++c) {
      const std::size_t child = proc * kFanIn + 1 + c;
      if (child >= procs) break;
      co_await m.wait_while(proc, l->arrival[child],
                            [e](Value v) { return v < e; });
    }
    if (proc != 0) {
      co_await m.store(proc, l->arrival[proc], static_cast<Value>(e));
      co_await m.wait_while(proc, l->release[proc],
                            [e](Value v) { return v < e; });
    }
    for (std::size_t c = 1; c <= 2; ++c) {
      const std::size_t child = 2 * proc + c;
      if (child >= procs) break;
      co_await m.store(proc, l->release[child], static_cast<Value>(e));
    }
  }
}

struct TournamentLayout {
  // arrival[k][w]: loser of round k signals winner w (homed at winner —
  // the winner spins locally, the loser pays one remote write).
  // release[k][p]: winner of round k wakes loser p (homed at the loser).
  std::vector<std::vector<Addr>> arrival;
  std::vector<std::vector<Addr>> release;
  std::size_t rounds;
  static TournamentLayout make(Machine& m, std::size_t procs) {
    TournamentLayout l;
    l.rounds = 0;
    for (std::size_t w = 1; w < procs; w <<= 1) ++l.rounds;
    l.arrival.resize(l.rounds);
    l.release.resize(l.rounds);
    for (std::size_t k = 0; k < l.rounds; ++k) {
      for (std::size_t p = 0; p < procs; ++p) {
        l.arrival[k].push_back(m.alloc(p, 0));
        l.release[k].push_back(m.alloc(p, 0));
      }
    }
    return l;
  }
};

/// Tournament barrier: processors pair off in log P rounds; the loser
/// reports to the statically-known winner and blocks, the champion
/// releases the losers in reverse order. All spins are on locally-homed
/// flags; total traffic is O(P) stores per episode with O(log P) depth.
Task tournament_worker(Machine& m, const TournamentLayout* l,
                       std::size_t proc, std::size_t procs,
                       std::size_t episodes) {
  for (std::size_t e = 1; e <= episodes; ++e) {
    const Value ev = static_cast<Value>(e);
    std::size_t k = 0;
    std::size_t dist = 1;
    std::ptrdiff_t lost_round = -1;
    for (; dist < procs; dist <<= 1, ++k) {
      if ((proc & (2 * dist - 1)) == 0) {
        const std::size_t peer = proc + dist;
        if (peer < procs) {
          // Winner: wait for the loser's report on our own line.
          co_await m.wait_while(proc, l->arrival[k][proc],
                                [ev](Value v) { return v < ev; });
        }
      } else {
        // Loser: report to the winner and drop out of the tournament.
        const std::size_t winner = proc - dist;
        co_await m.store(proc, l->arrival[k][winner], ev);
        lost_round = static_cast<std::ptrdiff_t>(k);
        break;
      }
    }
    if (lost_round >= 0) {
      co_await m.wait_while(proc,
                            l->release[static_cast<std::size_t>(lost_round)]
                                      [proc],
                            [ev](Value v) { return v < ev; });
      k = static_cast<std::size_t>(lost_round);
    }
    // Wake the losers we beat, in reverse round order.
    while (k-- > 0) {
      const std::size_t loser = proc + (static_cast<std::size_t>(1) << k);
      if (loser < procs) {
        co_await m.store(proc, l->release[k][loser], ev);
      }
    }
  }
}

struct QsvBarrierLayout {
  Addr var;      // queue tail (the synchronization variable)
  Addr arrived;  // episode arrival count
  std::vector<Addr> node_prev;   // per proc, homed locally
  std::vector<Addr> node_state;  // per proc, homed locally
  static QsvBarrierLayout make(Machine& m, std::size_t procs) {
    QsvBarrierLayout l;
    l.var = m.alloc(0, 0);
    l.arrived = m.alloc(0, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      l.node_prev.push_back(m.alloc(p, 0));
      l.node_state.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

Task qsv_barrier_worker(Machine& m, const QsvBarrierLayout* l,
                        std::size_t proc, std::size_t procs,
                        std::size_t episodes) {
  for (std::size_t e = 0; e < episodes; ++e) {
    co_await m.store(proc, l->node_state[proc], 0);
    const Value prev = co_await m.exchange(proc, l->var, ptr(proc));
    co_await m.store(proc, l->node_prev[proc], prev);
    const Value c = co_await m.fetch_add(proc, l->arrived, 1);
    if (c + 1 == procs) {
      co_await m.store(proc, l->arrived, 0);
      Value chain = co_await m.exchange(proc, l->var, 0);
      while (chain != 0) {
        const std::size_t node = unptr(chain);
        const Value p = co_await m.load(proc, l->node_prev[node]);
        if (node != proc) {
          co_await m.store(proc, l->node_state[node], 1);
        }
        chain = p;
      }
    } else {
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
    }
  }
}

// ---------------------------------------------------------------------
// Eventcount protocols (F11 sim section).
// ---------------------------------------------------------------------

struct EcCentralLayout {
  Addr count;
  static EcCentralLayout make(Machine& m) {
    return EcCentralLayout{m.alloc(0, 0)};
  }
};

/// Centralized eventcount: every waiter spins on the count word, so each
/// advance invalidates every waiter's copy and they all re-fetch.
Task ec_central_producer(Machine& m, EcCentralLayout l, std::size_t proc,
                         std::size_t events, Cycles produce_cycles) {
  for (std::size_t e = 0; e < events; ++e) {
    co_await m.delay(proc, produce_cycles);  // produce something
    co_await m.fetch_add(proc, l.count, 1);
  }
}

Task ec_central_consumer(Machine& m, EcCentralLayout l, std::size_t proc,
                         std::size_t events) {
  for (std::size_t e = 1; e <= events; ++e) {
    co_await m.wait_while(proc, l.count, [e](Value v) { return v < e; });
    co_await m.delay(proc, 10);  // consume
  }
}

struct EcQueuedLayout {
  Addr count;
  Addr head;                      // Treiber stack of waiting nodes
  Addr done;                      // consumers finished (shepherd exit)
  std::vector<Addr> node_next;    // per proc, homed locally
  std::vector<Addr> node_state;   // per proc: 0 idle/waiting, 1 granted
  std::vector<Addr> node_target;  // per proc: awaited value
  static EcQueuedLayout make(Machine& m, std::size_t procs) {
    EcQueuedLayout l;
    l.count = m.alloc(0, 0);
    l.head = m.alloc(0, 0);
    l.done = m.alloc(0, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      l.node_next.push_back(m.alloc(p, 0));
      l.node_state.push_back(m.alloc(p, 0));
      l.node_target.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

/// Pushers swap the head first and link their `next` a step later (the
/// sim's exchange-based push), so a node's next can transiently read as
/// "not yet linked"; walkers wait out that window, exactly like the MCS
/// release waiting for its successor's link.
constexpr Value kEcUnlinked = ~Value{0};

/// Push `node` onto the waiter stack (head swap, then link).
Task ec_queued_push(Machine& m, const EcQueuedLayout* l, std::size_t proc,
                    std::size_t node) {
  co_await m.store(proc, l->node_next[node], kEcUnlinked);
  const Value old = co_await m.exchange(proc, l->head, ptr(node));
  co_await m.store(proc, l->node_next[node], old);
}

/// Walk the waiter stack once, granting satisfied nodes. Shared by the
/// advance path and the end-of-run shepherd loop.
Task ec_queued_walk(Machine& m, const EcQueuedLayout* l, std::size_t proc,
                    Value now) {
  Value chain = co_await m.exchange(proc, l->head, 0);
  while (chain != 0) {
    const std::size_t node = unptr(chain);
    co_await m.wait_while(proc, l->node_next[node],
                          [](Value v) { return v == kEcUnlinked; });
    const Value next = co_await m.load(proc, l->node_next[node]);
    const Value target = co_await m.load(proc, l->node_target[node]);
    if (target <= now) {
      co_await m.store(proc, l->node_state[node], 1);
    } else {
      co_await ec_queued_push(m, l, proc, node);  // re-push unsatisfied
    }
    chain = next;
  }
}

/// Queued eventcount: waiters push their node (one exchange) and spin on
/// it locally; the producer's advance detaches the stack and wakes the
/// satisfied waiters with one store each. A consumer that pushes just
/// after the satisfying walk is caught by the producer's shepherd loop,
/// which keeps walking until every consumer has reported done — the
/// sim-side analogue of the native implementation's withdraw-under-
/// walk-lock discipline (per-proc node reuse makes withdrawal unsafe
/// here: a withdrawn node could still sit in a detached chain when its
/// owner re-pushes it).
Task ec_queued_producer(Machine& m, const EcQueuedLayout* l,
                        std::size_t proc, std::size_t events,
                        std::size_t consumers, Cycles produce_cycles) {
  for (std::size_t e = 0; e < events; ++e) {
    co_await m.delay(proc, produce_cycles);
    const Value now = co_await m.fetch_add(proc, l->count, 1) + 1;
    co_await ec_queued_walk(m, l, proc, now);
  }
  // Shepherd: late pushers (who raced the final walks) still get woken.
  for (;;) {
    const Value finished = co_await m.load(proc, l->done);
    if (finished == consumers) co_return;
    co_await ec_queued_walk(m, l, proc, static_cast<Value>(events));
    co_await m.delay(proc, 50);
  }
}

Task ec_queued_consumer(Machine& m, const EcQueuedLayout* l,
                        std::size_t proc, std::size_t events) {
  for (std::size_t e = 1; e <= events; ++e) {
    const Value seen = co_await m.load(proc, l->count);
    if (seen < e) {
      co_await m.store(proc, l->node_state[proc], 0);
      co_await m.store(proc, l->node_target[proc], static_cast<Value>(e));
      co_await ec_queued_push(m, l, proc, proc);
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
    }
    co_await m.delay(proc, 10);
  }
  co_await m.fetch_add(proc, l->done, 1);
}

/// Drain the event queue and harvest counters while the layout objects
/// (captured by reference in the coroutines) are still in scope.
void finish(Machine& m, SimRunResult& result) {
  result.completed = m.run();
  result.counters = m.counters();
  result.elapsed = m.now();
}

}  // namespace

const std::vector<std::string>& sim_lock_names() {
  static const std::vector<std::string> names = {
      "tas",      "ttas", "ticket", "anderson", "graunke-thakkar",
      "clh",      "mcs",  "qsv",    "hier-qsv"};
  return names;
}

SimRunResult run_lock_sim(const std::string& algorithm, std::size_t procs,
                          std::size_t rounds, Topology topology,
                          Cycles cs_cycles, std::size_t procs_per_node,
                          CostModel costs) {
  Machine m(procs, topology, costs, procs_per_node);
  SimRunResult result;
  result.algorithm = algorithm;
  result.processors = procs;
  result.operations = procs * rounds;

  if (algorithm == "tas" || algorithm == "ttas") {
    const auto l = TasLayout::make(m);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(tas_worker(m, l, p, rounds, cs_cycles, algorithm == "ttas"));
    }
    finish(m, result);
  } else if (algorithm == "ticket") {
    const auto l = TicketLayout::make(m);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(ticket_worker(m, l, p, rounds, cs_cycles));
    }
    finish(m, result);
  } else if (algorithm == "anderson") {
    const auto l = AndersonLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(anderson_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result);
  } else if (algorithm == "mcs" || algorithm == "qsv") {
    const auto l = McsLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(mcs_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result);
  } else if (algorithm == "clh") {
    auto l = ClhLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(clh_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result);
  } else if (algorithm == "graunke-thakkar") {
    const auto l = GraunkeThakkarLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(graunke_thakkar_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result);
  } else if (algorithm == "hier-qsv") {
    const std::size_t ppn = m.procs_per_node();
    const std::size_t cohorts = (procs + ppn - 1) / ppn;
    const auto l = HierQsvLayout::make(m, procs, cohorts, ppn);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(hier_qsv_worker(m, &l, p, rounds, cs_cycles, kSimHierBudget));
    }
    finish(m, result);
  } else {
    throw std::invalid_argument("unknown sim lock: " + algorithm);
  }
  return result;
}

const std::vector<std::string>& sim_eventcount_names() {
  static const std::vector<std::string> names = {"ec-central", "ec-queued"};
  return names;
}

SimRunResult run_eventcount_sim(const std::string& algorithm,
                                std::size_t procs, std::size_t events,
                                Topology topology, Cycles produce_cycles) {
  Machine m(procs, topology);
  SimRunResult result;
  result.algorithm = algorithm;
  result.processors = procs;
  result.operations = events;

  if (algorithm == "ec-central") {
    const auto l = EcCentralLayout::make(m);
    m.spawn(ec_central_producer(m, l, 0, events, produce_cycles));
    for (std::size_t p = 1; p < procs; ++p) {
      m.spawn(ec_central_consumer(m, l, p, events));
    }
    finish(m, result);
  } else if (algorithm == "ec-queued") {
    const auto l = EcQueuedLayout::make(m, procs);
    m.spawn(ec_queued_producer(m, &l, 0, events, procs - 1,
                                produce_cycles));
    for (std::size_t p = 1; p < procs; ++p) {
      m.spawn(ec_queued_consumer(m, &l, p, events));
    }
    finish(m, result);
  } else {
    throw std::invalid_argument("unknown sim eventcount: " + algorithm);
  }
  return result;
}

const std::vector<std::string>& sim_barrier_names() {
  static const std::vector<std::string> names = {
      "central", "dissemination", "tournament", "mcs-tree", "qsv-episode"};
  return names;
}

SimRunResult run_barrier_sim(const std::string& algorithm, std::size_t procs,
                             std::size_t episodes, Topology topology) {
  Machine m(procs, topology);
  SimRunResult result;
  result.algorithm = algorithm;
  result.processors = procs;
  result.operations = episodes;

  if (algorithm == "central") {
    const auto l = CentralBarrierLayout::make(m);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(central_barrier_worker(m, l, p, procs, episodes));
    }
    finish(m, result);
  } else if (algorithm == "dissemination") {
    const auto l = DisseminationLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(dissemination_worker(m, &l, p, procs, episodes));
    }
    finish(m, result);
  } else if (algorithm == "tournament") {
    const auto l = TournamentLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(tournament_worker(m, &l, p, procs, episodes));
    }
    finish(m, result);
  } else if (algorithm == "mcs-tree") {
    const auto l = McsTreeLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(mcs_tree_worker(m, &l, p, procs, episodes));
    }
    finish(m, result);
  } else if (algorithm == "qsv-episode") {
    const auto l = QsvBarrierLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(qsv_barrier_worker(m, &l, p, procs, episodes));
    }
    finish(m, result);
  } else {
    throw std::invalid_argument("unknown sim barrier: " + algorithm);
  }
  return result;
}

}  // namespace qsv::sim
