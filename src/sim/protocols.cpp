#include "sim/protocols.hpp"

#include <cassert>
#include <stdexcept>

namespace qsv::sim {

namespace {

// Pointers in simulated memory: processor/node id + 1; 0 is null.
constexpr Value ptr(std::size_t id) { return static_cast<Value>(id) + 1; }
constexpr std::size_t unptr(Value v) { return static_cast<std::size_t>(v) - 1; }

// ---------------------------------------------------------------------
// Lock protocols. Shared layout structs are allocated host-side; every
// member is an Addr into simulated memory.
// ---------------------------------------------------------------------

struct TasLayout {
  Addr flag;
  static TasLayout make(Machine& m) { return TasLayout{m.alloc(0, 0)}; }
};

Task tas_worker(Machine& m, TasLayout l, std::size_t proc, std::size_t rounds,
                Cycles cs, bool test_first) {
  for (std::size_t r = 0; r < rounds; ++r) {
    for (;;) {
      if (test_first) {
        // TTAS: spin on a cached copy until the lock looks free.
        co_await m.wait_while(proc, l.flag,
                              [](Value v) { return v != 0; });
      }
      const Value old = co_await m.exchange(proc, l.flag, 1);
      if (old == 0) break;
      if (!test_first) {
        // Pure TAS hammers the line; a minimal pause keeps the model
        // honest about instruction issue rate, not a backoff.
        co_await m.delay(proc, 1);
      }
    }
    co_await m.delay(proc, cs);
    co_await m.store(proc, l.flag, 0);
  }
}

struct TicketLayout {
  Addr next_ticket;
  Addr now_serving;
  static TicketLayout make(Machine& m) {
    return TicketLayout{m.alloc(0, 0), m.alloc(0, 0)};
  }
};

Task ticket_worker(Machine& m, TicketLayout l, std::size_t proc,
                   std::size_t rounds, Cycles cs) {
  for (std::size_t r = 0; r < rounds; ++r) {
    const Value me = co_await m.fetch_add(proc, l.next_ticket, 1);
    co_await m.wait_while(proc, l.now_serving,
                          [me](Value v) { return v != me; });
    co_await m.delay(proc, cs);
    const Value s = co_await m.load(proc, l.now_serving);
    co_await m.store(proc, l.now_serving, s + 1);
  }
}

struct AndersonLayout {
  Addr next_slot;
  std::vector<Addr> slots;  // one line per processor, homed round-robin
  static AndersonLayout make(Machine& m, std::size_t procs) {
    AndersonLayout l;
    l.next_slot = m.alloc(0, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      l.slots.push_back(m.alloc(p, p == 0 ? 1 : 0));
    }
    return l;
  }
};

Task anderson_worker(Machine& m, const AndersonLayout* l, std::size_t proc,
                     std::size_t rounds, Cycles cs) {
  const std::size_t n = l->slots.size();
  for (std::size_t r = 0; r < rounds; ++r) {
    const Value pos = co_await m.fetch_add(proc, l->next_slot, 1);
    const std::size_t slot = static_cast<std::size_t>(pos) % n;
    co_await m.wait_while(proc, l->slots[slot],
                          [](Value v) { return v == 0; });
    co_await m.delay(proc, cs);
    co_await m.store(proc, l->slots[slot], 0);          // re-arm mine
    co_await m.store(proc, l->slots[(slot + 1) % n], 1);  // grant next
  }
}

struct McsLayout {
  Addr tail;
  std::vector<Addr> node_next;   // per proc, homed locally
  std::vector<Addr> node_state;  // per proc, homed locally
  static McsLayout make(Machine& m, std::size_t procs) {
    McsLayout l;
    l.tail = m.alloc(0, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      l.node_next.push_back(m.alloc(p, 0));
      l.node_state.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

/// MCS and the QSV exclusive protocol share this shape: one fetch&store
/// to enqueue, spin in the waiter's own (locally homed) node, one store
/// to hand off.
Task mcs_worker(Machine& m, const McsLayout* l, std::size_t proc,
                std::size_t rounds, Cycles cs) {
  for (std::size_t r = 0; r < rounds; ++r) {
    co_await m.store(proc, l->node_next[proc], 0);
    co_await m.store(proc, l->node_state[proc], 0);
    const Value pred = co_await m.exchange(proc, l->tail, ptr(proc));
    if (pred != 0) {
      co_await m.store(proc, l->node_next[unptr(pred)], ptr(proc));
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
    }
    co_await m.delay(proc, cs);
    Value next = co_await m.load(proc, l->node_next[proc]);
    if (next == 0) {
      const Value observed =
          co_await m.cas(proc, l->tail, ptr(proc), 0);
      if (observed == ptr(proc)) continue;  // queue empty: released
      co_await m.wait_while(proc, l->node_next[proc],
                            [](Value v) { return v == 0; });
      next = co_await m.load(proc, l->node_next[proc]);
    }
    co_await m.store(proc, l->node_state[unptr(next)], 1);
  }
}

struct ClhLayout {
  Addr tail;
  std::vector<Addr> node_state;       // procs + 1 nodes (one sentinel)
  std::vector<std::size_t> my_node;   // host-side: current node of proc
  static ClhLayout make(Machine& m, std::size_t procs) {
    ClhLayout l;
    for (std::size_t i = 0; i < procs + 1; ++i) {
      // Node i initially owned by proc i (sentinel homed at 0).
      l.node_state.push_back(m.alloc(i < procs ? i : 0, 0));
    }
    // Sentinel (index procs) starts released (state 0 = released).
    l.tail = m.alloc(0, ptr(procs));
    for (std::size_t p = 0; p < procs; ++p) l.my_node.push_back(p);
    return l;
  }
};

/// CLH contrast: the waiter spins on its *predecessor's* node, which on
/// the NUMA machine is usually remote — the deficiency MCS/QSV fix.
Task clh_worker(Machine& m, ClhLayout* l, std::size_t proc,
                std::size_t rounds, Cycles cs) {
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t mine = l->my_node[proc];
    co_await m.store(proc, l->node_state[mine], 1);  // waiting/held
    const Value pred = co_await m.exchange(proc, l->tail, ptr(mine));
    const std::size_t pred_node = unptr(pred);
    co_await m.wait_while(proc, l->node_state[pred_node],
                          [](Value v) { return v != 0; });
    l->my_node[proc] = pred_node;  // adopt (host-side bookkeeping)
    co_await m.delay(proc, cs);
    co_await m.store(proc, l->node_state[mine], 0);
  }
}

struct GraunkeThakkarLayout {
  Addr tail;
  std::vector<Addr> flags;  // one per proc + trailing init flag
  static GraunkeThakkarLayout make(Machine& m, std::size_t procs) {
    GraunkeThakkarLayout l;
    for (std::size_t p = 0; p < procs; ++p) l.flags.push_back(m.alloc(p, 0));
    l.flags.push_back(m.alloc(0, 0));  // init flag, value 0
    // Tail packs (flag index, recorded parity). The recorded parity must
    // differ from the init flag's value so the first locker enters.
    l.tail = m.alloc(0, pack(procs, 1));
    return l;
  }
  static Value pack(std::size_t flag_idx, Value parity) {
    return (static_cast<Value>(flag_idx) << 1) | parity;
  }
};

/// Graunke-Thakkar contrast: like Anderson the flags are per-processor,
/// but the waiter spins on its *predecessor's* flag — remote on the NUMA
/// machine, which is exactly the deficiency MCS/QSV fix.
Task graunke_thakkar_worker(Machine& m, const GraunkeThakkarLayout* l,
                            std::size_t proc, std::size_t rounds,
                            Cycles cs) {
  for (std::size_t r = 0; r < rounds; ++r) {
    const Value mine = co_await m.load(proc, l->flags[proc]);
    const Value self = GraunkeThakkarLayout::pack(proc, mine & 1);
    const Value prev = co_await m.exchange(proc, l->tail, self);
    const std::size_t prev_flag = static_cast<std::size_t>(prev >> 1);
    const Value prev_val = prev & 1;
    co_await m.wait_while(proc, l->flags[prev_flag], [prev_val](Value v) {
      return (v & 1) == prev_val;
    });
    co_await m.delay(proc, cs);
    co_await m.store(proc, l->flags[proc], mine + 1);
  }
}

/// Cohort seating of a machine: cohorts = the machine's NUMA nodes,
/// lead[c] = first processor of cohort c (homes the per-cohort lines,
/// like TopologyCohortMap homing a cohort's slab on its node).
struct CohortSeating {
  std::size_t cohorts = 1;
  std::vector<std::size_t> lead;
};

CohortSeating seat_cohorts(const Machine& m) {
  CohortSeating s;
  const std::size_t procs = m.processors();
  for (std::size_t p = 0; p < procs; ++p) {
    if (m.node_of(p) + 1 > s.cohorts) s.cohorts = m.node_of(p) + 1;
  }
  s.lead.assign(s.cohorts, 0);
  std::vector<bool> seen(s.cohorts, false);
  for (std::size_t p = 0; p < procs; ++p) {
    const std::size_t c = m.node_of(p);
    if (!seen[c]) {
      seen[c] = true;
      s.lead[c] = p;
    }
  }
  return s;
}

struct HierQsvLayout {
  Addr global_tail;
  std::vector<Addr> local_tail;   // per cohort, homed at cohort lead
  std::vector<Addr> rep;          // per cohort: proc holding global (+1)
  std::vector<Addr> passes;       // per cohort pass counter
  std::vector<Addr> node_next;    // local-queue node, per proc
  std::vector<Addr> node_state;   // 0 wait, 1 must-acquire, 2 global-passed
  std::vector<Addr> gnode_next;   // global-queue node, per proc
  std::vector<Addr> gnode_state;  // 0 wait, 1 granted
  // Host-side handoff-locality instrumentation (the sim is single-
  // threaded and deterministic, so plain counters are exact).
  std::uint64_t local_passes = 0;
  std::uint64_t global_acquires = 0;
  static HierQsvLayout make(Machine& m, std::size_t procs,
                            const CohortSeating& seat) {
    HierQsvLayout l;
    l.global_tail = m.alloc(0, 0);
    for (std::size_t c = 0; c < seat.cohorts; ++c) {
      const std::size_t lead = seat.lead[c];
      l.local_tail.push_back(m.alloc(lead, 0));
      l.rep.push_back(m.alloc(lead, 0));
      l.passes.push_back(m.alloc(lead, 0));
    }
    for (std::size_t p = 0; p < procs; ++p) {
      l.node_next.push_back(m.alloc(p, 0));
      l.node_state.push_back(m.alloc(p, 0));
      l.gnode_next.push_back(m.alloc(p, 0));
      l.gnode_state.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

constexpr Value kHierMustAcquire = 1;
constexpr Value kHierGlobalPassed = 2;

/// Release the global queue on behalf of cohort `c` (mirrors
/// HierQsvMutex::release_global; the representative's global node is
/// recorded in `rep[c]`).
Task hier_release_global(Machine& m, const HierQsvLayout* l,
                         std::size_t proc, std::size_t c) {
  const Value r = co_await m.load(proc, l->rep[c]);
  const std::size_t owner = unptr(r);
  Value next = co_await m.load(proc, l->gnode_next[owner]);
  if (next == 0) {
    const Value observed =
        co_await m.cas(proc, l->global_tail, ptr(owner), 0);
    if (observed == ptr(owner)) co_return;
    co_await m.wait_while(proc, l->gnode_next[owner],
                          [](Value v) { return v == 0; });
    next = co_await m.load(proc, l->gnode_next[owner]);
  }
  co_await m.store(proc, l->gnode_state[unptr(next)], 1);
}

/// Hierarchical QSV port (mirrors hier/hier_qsv.hpp): cohort = NUMA node.
Task hier_qsv_worker(Machine& m, HierQsvLayout* l, std::size_t proc,
                     std::size_t rounds, Cycles cs, std::uint64_t budget) {
  const std::size_t c = m.node_of(proc);
  for (std::size_t r = 0; r < rounds; ++r) {
    // ---- acquire ----------------------------------------------------
    co_await m.store(proc, l->node_next[proc], 0);
    co_await m.store(proc, l->node_state[proc], 0);
    const Value pred = co_await m.exchange(proc, l->local_tail[c], ptr(proc));
    bool have_global = false;
    if (pred != 0) {
      co_await m.store(proc, l->node_next[unptr(pred)], ptr(proc));
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
      const Value s = co_await m.load(proc, l->node_state[proc]);
      have_global = s == kHierGlobalPassed;
    }
    if (!have_global) {
      co_await m.store(proc, l->gnode_next[proc], 0);
      co_await m.store(proc, l->gnode_state[proc], 0);
      const Value gpred = co_await m.exchange(proc, l->global_tail, ptr(proc));
      if (gpred != 0) {
        co_await m.store(proc, l->gnode_next[unptr(gpred)], ptr(proc));
        co_await m.wait_while(proc, l->gnode_state[proc],
                              [](Value v) { return v == 0; });
      }
      co_await m.store(proc, l->rep[c], ptr(proc));
      co_await m.store(proc, l->passes[c], 0);
      ++l->global_acquires;
    }
    // ---- critical section -------------------------------------------
    co_await m.delay(proc, cs);
    // ---- release -----------------------------------------------------
    Value next = co_await m.load(proc, l->node_next[proc]);
    if (next == 0) {
      const Value observed =
          co_await m.cas(proc, l->local_tail[c], ptr(proc), 0);
      if (observed == ptr(proc)) {
        co_await hier_release_global(m, l, proc, c);
        continue;
      }
      co_await m.wait_while(proc, l->node_next[proc],
                            [](Value v) { return v == 0; });
      next = co_await m.load(proc, l->node_next[proc]);
    }
    const Value p = co_await m.load(proc, l->passes[c]);
    if (p < budget) {
      co_await m.store(proc, l->passes[c], p + 1);
      ++l->local_passes;
      co_await m.store(proc, l->node_state[unptr(next)], kHierGlobalPassed);
    } else {
      co_await hier_release_global(m, l, proc, c);
      co_await m.store(proc, l->node_state[unptr(next)], kHierMustAcquire);
    }
  }
}

// ---------------------------------------------------------------------
// Cohort combinator port (mirrors hier/cohort_lock.hpp). Where
// HierQsvMutex fuses both tiers into one queue dialect, CohortLock
// layers the budgeted local-handoff protocol over any tier pair; in the
// sim every catalogue component collapses to one of two dialects —
// queue (the MCS/QSV shape: exchange to enqueue, spin on your own
// locally-homed node) and ticket (fetch&add, spin on the shared serving
// word). "cohort/qsv+ticket" therefore simulates a queue global tier
// over per-cohort ticket locks, and so on.
// ---------------------------------------------------------------------

enum class TierKind { kQueue, kTicket };

/// "<global>+<local>" after the "cohort/" prefix; qsv and mcs both name
/// the queue dialect, ticket the centralized one.
bool parse_tier(const std::string& token, TierKind& out) {
  if (token == "qsv" || token == "mcs") {
    out = TierKind::kQueue;
    return true;
  }
  if (token == "ticket") {
    out = TierKind::kTicket;
    return true;
  }
  return false;
}

bool parse_cohort_name(const std::string& algorithm, TierKind& global_kind,
                       TierKind& local_kind) {
  if (algorithm.rfind("cohort/", 0) != 0) return false;
  const std::string tiers = algorithm.substr(7);
  const auto plus = tiers.find('+');
  if (plus == std::string::npos) return false;
  return parse_tier(tiers.substr(0, plus), global_kind) &&
         parse_tier(tiers.substr(plus + 1), local_kind);
}

struct CohortSimLayout {
  TierKind global_kind;
  TierKind local_kind;
  std::uint64_t budget;
  // Global queue tier (MCS shape). `rep[c]` records which proc's node
  // heads the queue — the sim's export_hold()/adopt_hold() token, so a
  // cohort-mate that inherited the grant can release on the acquirer's
  // behalf.
  Addr global_tail = 0;
  std::vector<Addr> gnode_next;   // per proc, homed locally
  std::vector<Addr> gnode_state;  // 0 wait, 1 granted
  // Global ticket tier: thread-oblivious unlock (any proc may advance
  // now_serving), so no hold token is needed — CohortLock's
  // ThreadObliviousUnlock escape hatch.
  Addr gnext_ticket = 0;
  Addr gnow_serving = 0;
  // Local tier, queue dialect: one tail per cohort, nodes per proc.
  std::vector<Addr> local_tail;  // per cohort, homed at cohort lead
  std::vector<Addr> node_next;   // per proc, homed locally
  std::vector<Addr> node_state;  // 0 wait, 1 granted
  // Local tier, ticket dialect (both words homed at the cohort lead, as
  // the padded per-cohort slab is in the native lock).
  std::vector<Addr> lnext_ticket;
  std::vector<Addr> lnow_serving;
  // Combinator state, one line each per cohort at the cohort lead:
  // mirrors Cohort{pending, top_granted, passes} + the traveling hold.
  std::vector<Addr> pending;
  std::vector<Addr> top_granted;
  std::vector<Addr> passes;
  std::vector<Addr> rep;
  // Host-side handoff-locality instrumentation (exact: the sim is
  // single-threaded and deterministic).
  std::uint64_t local_passes = 0;
  std::uint64_t global_acquires = 0;

  static CohortSimLayout make(Machine& m, const CohortSeating& seat,
                              TierKind global_kind, TierKind local_kind,
                              std::uint64_t budget) {
    const std::size_t procs = m.processors();
    CohortSimLayout l;
    l.global_kind = global_kind;
    l.local_kind = local_kind;
    l.budget = budget;
    if (global_kind == TierKind::kQueue) {
      l.global_tail = m.alloc(0, 0);
      for (std::size_t p = 0; p < procs; ++p) {
        l.gnode_next.push_back(m.alloc(p, 0));
        l.gnode_state.push_back(m.alloc(p, 0));
      }
    } else {
      l.gnext_ticket = m.alloc(0, 0);
      l.gnow_serving = m.alloc(0, 0);
    }
    for (std::size_t c = 0; c < seat.cohorts; ++c) {
      const std::size_t lead = seat.lead[c];
      if (local_kind == TierKind::kQueue) {
        l.local_tail.push_back(m.alloc(lead, 0));
      } else {
        l.lnext_ticket.push_back(m.alloc(lead, 0));
        l.lnow_serving.push_back(m.alloc(lead, 0));
      }
      l.pending.push_back(m.alloc(lead, 0));
      l.top_granted.push_back(m.alloc(lead, 0));
      l.passes.push_back(m.alloc(lead, 0));
      l.rep.push_back(m.alloc(lead, 0));
    }
    if (local_kind == TierKind::kQueue) {
      for (std::size_t p = 0; p < procs; ++p) {
        l.node_next.push_back(m.alloc(p, 0));
        l.node_state.push_back(m.alloc(p, 0));
      }
    }
    return l;
  }
};

/// GlobalLock::lock() for cohort `c`: queue dialect records the hold
/// token in rep[c] (export_hold at acquisition — the grant may be
/// released by whichever cohort-mate holds the local lock last).
Task cohort_global_lock(Machine& m, const CohortSimLayout* l,
                        std::size_t proc, std::size_t c) {
  if (l->global_kind == TierKind::kQueue) {
    co_await m.store(proc, l->gnode_next[proc], 0);
    co_await m.store(proc, l->gnode_state[proc], 0);
    const Value gpred = co_await m.exchange(proc, l->global_tail, ptr(proc));
    if (gpred != 0) {
      co_await m.store(proc, l->gnode_next[unptr(gpred)], ptr(proc));
      co_await m.wait_while(proc, l->gnode_state[proc],
                            [](Value v) { return v == 0; });
    }
    co_await m.store(proc, l->rep[c], ptr(proc));
  } else {
    const Value me = co_await m.fetch_add(proc, l->gnext_ticket, 1);
    co_await m.wait_while(proc, l->gnow_serving,
                          [me](Value v) { return v != me; });
  }
}

/// GlobalLock::unlock() on behalf of cohort `c` — possibly by a
/// different proc than acquired it (the cross-thread-release contract).
Task cohort_global_unlock(Machine& m, const CohortSimLayout* l,
                          std::size_t proc, std::size_t c) {
  if (l->global_kind == TierKind::kQueue) {
    const Value r = co_await m.load(proc, l->rep[c]);
    const std::size_t owner = unptr(r);
    Value next = co_await m.load(proc, l->gnode_next[owner]);
    if (next == 0) {
      const Value observed =
          co_await m.cas(proc, l->global_tail, ptr(owner), 0);
      if (observed == ptr(owner)) co_return;
      co_await m.wait_while(proc, l->gnode_next[owner],
                            [](Value v) { return v == 0; });
      next = co_await m.load(proc, l->gnode_next[owner]);
    }
    co_await m.store(proc, l->gnode_state[unptr(next)], 1);
  } else {
    const Value s = co_await m.load(proc, l->gnow_serving);
    co_await m.store(proc, l->gnow_serving, s + 1);
  }
}

/// LocalLock::lock() for cohort `c` (always same-thread, any dialect).
Task cohort_local_lock(Machine& m, const CohortSimLayout* l,
                       std::size_t proc, std::size_t c) {
  if (l->local_kind == TierKind::kQueue) {
    co_await m.store(proc, l->node_next[proc], 0);
    co_await m.store(proc, l->node_state[proc], 0);
    const Value pred = co_await m.exchange(proc, l->local_tail[c], ptr(proc));
    if (pred != 0) {
      co_await m.store(proc, l->node_next[unptr(pred)], ptr(proc));
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
    }
  } else {
    const Value me = co_await m.fetch_add(proc, l->lnext_ticket[c], 1);
    co_await m.wait_while(proc, l->lnow_serving[c],
                          [me](Value v) { return v != me; });
  }
}

/// LocalLock::unlock() for cohort `c`.
Task cohort_local_unlock(Machine& m, const CohortSimLayout* l,
                         std::size_t proc, std::size_t c) {
  if (l->local_kind == TierKind::kQueue) {
    Value next = co_await m.load(proc, l->node_next[proc]);
    if (next == 0) {
      const Value observed =
          co_await m.cas(proc, l->local_tail[c], ptr(proc), 0);
      if (observed == ptr(proc)) co_return;
      co_await m.wait_while(proc, l->node_next[proc],
                            [](Value v) { return v == 0; });
      next = co_await m.load(proc, l->node_next[proc]);
    }
    co_await m.store(proc, l->node_state[unptr(next)], 1);
  } else {
    const Value s = co_await m.load(proc, l->lnow_serving[c]);
    co_await m.store(proc, l->lnow_serving[c], s + 1);
  }
}

/// The combinator protocol, mirroring CohortLock::lock()/unlock() line
/// for line: pending announce, local tier, top_granted adoption or
/// global acquisition; release leaves the grant behind while the budget
/// allows and a cohort-mate is committed, else global-first release.
Task cohort_worker(Machine& m, CohortSimLayout* l, std::size_t proc,
                   std::size_t rounds, Cycles cs) {
  const std::size_t c = m.node_of(proc);
  for (std::size_t r = 0; r < rounds; ++r) {
    // ---- lock() ------------------------------------------------------
    // Commit before touching the local lock: a releasing holder that
    // reads pending > 0 may leave the global grant behind for us.
    co_await m.fetch_add(proc, l->pending[c], 1);
    co_await cohort_local_lock(m, l, proc, c);
    co_await m.fetch_add(proc, l->pending[c], Value(0) - 1);
    const Value tg = co_await m.load(proc, l->top_granted[c]);
    if (tg != 0) {
      // The previous holder passed the global lock with the local one
      // (rep[c] is the adopted hold — it already names the right node).
      co_await m.store(proc, l->top_granted[c], 0);
    } else {
      co_await cohort_global_lock(m, l, proc, c);
      co_await m.store(proc, l->passes[c], 0);
      ++l->global_acquires;
    }
    // ---- critical section -------------------------------------------
    co_await m.delay(proc, cs);
    // ---- unlock() ----------------------------------------------------
    // pending is decremented only while holding the local lock — which
    // we hold — so a nonzero reading proves a committed cohort-mate.
    const Value p = co_await m.load(proc, l->passes[c]);
    const Value pend = co_await m.load(proc, l->pending[c]);
    if (p < l->budget && pend > 0) {
      co_await m.store(proc, l->passes[c], p + 1);
      co_await m.store(proc, l->top_granted[c], 1);
      ++l->local_passes;
      co_await cohort_local_unlock(m, l, proc, c);
    } else {
      // Budget spent or cohort drained: let other cohorts in. Global
      // first, so a cohort-mate that sneaks in never waits on a global
      // lock we still hold.
      co_await m.store(proc, l->passes[c], 0);
      co_await cohort_global_unlock(m, l, proc, c);
      co_await cohort_local_unlock(m, l, proc, c);
    }
  }
}

// ---------------------------------------------------------------------
// Reader-indicator protocols (the QSV read-side discipline fig8's
// throughput curves are downstream of).
// ---------------------------------------------------------------------

struct RwSimLayout {
  std::vector<Addr> stripes;           // per cohort (striped) or just one
  std::vector<std::size_t> stripe_of;  // per proc
  static RwSimLayout make(Machine& m, bool striped) {
    const std::size_t procs = m.processors();
    RwSimLayout l;
    if (striped) {
      const CohortSeating seat = seat_cohorts(m);
      for (std::size_t c = 0; c < seat.cohorts; ++c) {
        l.stripes.push_back(m.alloc(seat.lead[c], 0));
      }
      for (std::size_t p = 0; p < procs; ++p) {
        l.stripe_of.push_back(m.node_of(p));
      }
    } else {
      l.stripes.push_back(m.alloc(0, 0));
      l.stripe_of.assign(procs, 0);
    }
    return l;
  }
};

/// One reader: arrive on my stripe, read, depart. Central puts every
/// RMW on one word (each arrival/departure invalidates every other
/// reader's copy — O(P) coherence per op); striping homes the stripe on
/// the reader's own node, so reader traffic stays node-local.
Task rw_reader_worker(Machine& m, const RwSimLayout* l, std::size_t proc,
                      std::size_t rounds, Cycles read_cycles) {
  const Addr stripe = l->stripes[l->stripe_of[proc]];
  for (std::size_t r = 0; r < rounds; ++r) {
    co_await m.fetch_add(proc, stripe, 1);
    co_await m.delay(proc, read_cycles);
    co_await m.fetch_add(proc, stripe, Value(0) - 1);
  }
}

// ---------------------------------------------------------------------
// Barrier protocols.
// ---------------------------------------------------------------------

struct CentralBarrierLayout {
  Addr arrived;
  Addr episode;
  static CentralBarrierLayout make(Machine& m) {
    return CentralBarrierLayout{m.alloc(0, 0), m.alloc(0, 0)};
  }
};

Task central_barrier_worker(Machine& m, CentralBarrierLayout l,
                            std::size_t proc, std::size_t procs,
                            std::size_t episodes) {
  for (std::size_t e = 0; e < episodes; ++e) {
    const Value epoch = co_await m.load(proc, l.episode);
    const Value c = co_await m.fetch_add(proc, l.arrived, 1);
    if (c + 1 == procs) {
      co_await m.store(proc, l.arrived, 0);
      co_await m.store(proc, l.episode, epoch + 1);
    } else {
      co_await m.wait_while(proc, l.episode,
                            [epoch](Value v) { return v == epoch; });
    }
  }
}

struct DisseminationLayout {
  // flags[round][proc], each homed at its reader.
  std::vector<std::vector<Addr>> flags;
  std::size_t rounds;
  static DisseminationLayout make(Machine& m, std::size_t procs) {
    DisseminationLayout l;
    l.rounds = 0;
    for (std::size_t w = 1; w < procs; w <<= 1) ++l.rounds;
    l.flags.resize(l.rounds);
    for (std::size_t k = 0; k < l.rounds; ++k) {
      for (std::size_t p = 0; p < procs; ++p) {
        l.flags[k].push_back(m.alloc(p, 0));
      }
    }
    return l;
  }
};

Task dissemination_worker(Machine& m, const DisseminationLayout* l,
                          std::size_t proc, std::size_t procs,
                          std::size_t episodes) {
  for (std::size_t e = 1; e <= episodes; ++e) {
    std::size_t dist = 1;
    for (std::size_t k = 0; k < l->rounds; ++k, dist <<= 1) {
      co_await m.store(proc, l->flags[k][(proc + dist) % procs],
                       static_cast<Value>(e));
      co_await m.wait_while(proc, l->flags[k][proc],
                            [e](Value v) { return v < e; });
    }
  }
}

struct McsTreeLayout {
  std::vector<Addr> arrival;  // per proc, homed locally
  std::vector<Addr> release;  // per proc, homed locally
  static McsTreeLayout make(Machine& m, std::size_t procs) {
    McsTreeLayout l;
    for (std::size_t p = 0; p < procs; ++p) {
      l.arrival.push_back(m.alloc(p, 0));
      l.release.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

Task mcs_tree_worker(Machine& m, const McsTreeLayout* l, std::size_t proc,
                     std::size_t procs, std::size_t episodes) {
  constexpr std::size_t kFanIn = 4;
  for (std::size_t e = 1; e <= episodes; ++e) {
    for (std::size_t c = 0; c < kFanIn; ++c) {
      const std::size_t child = proc * kFanIn + 1 + c;
      if (child >= procs) break;
      co_await m.wait_while(proc, l->arrival[child],
                            [e](Value v) { return v < e; });
    }
    if (proc != 0) {
      co_await m.store(proc, l->arrival[proc], static_cast<Value>(e));
      co_await m.wait_while(proc, l->release[proc],
                            [e](Value v) { return v < e; });
    }
    for (std::size_t c = 1; c <= 2; ++c) {
      const std::size_t child = 2 * proc + c;
      if (child >= procs) break;
      co_await m.store(proc, l->release[child], static_cast<Value>(e));
    }
  }
}

struct TournamentLayout {
  // arrival[k][w]: loser of round k signals winner w (homed at winner —
  // the winner spins locally, the loser pays one remote write).
  // release[k][p]: winner of round k wakes loser p (homed at the loser).
  std::vector<std::vector<Addr>> arrival;
  std::vector<std::vector<Addr>> release;
  std::size_t rounds;
  static TournamentLayout make(Machine& m, std::size_t procs) {
    TournamentLayout l;
    l.rounds = 0;
    for (std::size_t w = 1; w < procs; w <<= 1) ++l.rounds;
    l.arrival.resize(l.rounds);
    l.release.resize(l.rounds);
    for (std::size_t k = 0; k < l.rounds; ++k) {
      for (std::size_t p = 0; p < procs; ++p) {
        l.arrival[k].push_back(m.alloc(p, 0));
        l.release[k].push_back(m.alloc(p, 0));
      }
    }
    return l;
  }
};

/// Tournament barrier: processors pair off in log P rounds; the loser
/// reports to the statically-known winner and blocks, the champion
/// releases the losers in reverse order. All spins are on locally-homed
/// flags; total traffic is O(P) stores per episode with O(log P) depth.
Task tournament_worker(Machine& m, const TournamentLayout* l,
                       std::size_t proc, std::size_t procs,
                       std::size_t episodes) {
  for (std::size_t e = 1; e <= episodes; ++e) {
    const Value ev = static_cast<Value>(e);
    std::size_t k = 0;
    std::size_t dist = 1;
    std::ptrdiff_t lost_round = -1;
    for (; dist < procs; dist <<= 1, ++k) {
      if ((proc & (2 * dist - 1)) == 0) {
        const std::size_t peer = proc + dist;
        if (peer < procs) {
          // Winner: wait for the loser's report on our own line.
          co_await m.wait_while(proc, l->arrival[k][proc],
                                [ev](Value v) { return v < ev; });
        }
      } else {
        // Loser: report to the winner and drop out of the tournament.
        const std::size_t winner = proc - dist;
        co_await m.store(proc, l->arrival[k][winner], ev);
        lost_round = static_cast<std::ptrdiff_t>(k);
        break;
      }
    }
    if (lost_round >= 0) {
      co_await m.wait_while(proc,
                            l->release[static_cast<std::size_t>(lost_round)]
                                      [proc],
                            [ev](Value v) { return v < ev; });
      k = static_cast<std::size_t>(lost_round);
    }
    // Wake the losers we beat, in reverse round order.
    while (k-- > 0) {
      const std::size_t loser = proc + (static_cast<std::size_t>(1) << k);
      if (loser < procs) {
        co_await m.store(proc, l->release[k][loser], ev);
      }
    }
  }
}

struct QsvBarrierLayout {
  Addr var;      // queue tail (the synchronization variable)
  Addr arrived;  // episode arrival count
  std::vector<Addr> node_prev;   // per proc, homed locally
  std::vector<Addr> node_state;  // per proc, homed locally
  static QsvBarrierLayout make(Machine& m, std::size_t procs) {
    QsvBarrierLayout l;
    l.var = m.alloc(0, 0);
    l.arrived = m.alloc(0, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      l.node_prev.push_back(m.alloc(p, 0));
      l.node_state.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

Task qsv_barrier_worker(Machine& m, const QsvBarrierLayout* l,
                        std::size_t proc, std::size_t procs,
                        std::size_t episodes) {
  for (std::size_t e = 0; e < episodes; ++e) {
    co_await m.store(proc, l->node_state[proc], 0);
    const Value prev = co_await m.exchange(proc, l->var, ptr(proc));
    co_await m.store(proc, l->node_prev[proc], prev);
    const Value c = co_await m.fetch_add(proc, l->arrived, 1);
    if (c + 1 == procs) {
      co_await m.store(proc, l->arrived, 0);
      Value chain = co_await m.exchange(proc, l->var, 0);
      while (chain != 0) {
        const std::size_t node = unptr(chain);
        const Value p = co_await m.load(proc, l->node_prev[node]);
        if (node != proc) {
          co_await m.store(proc, l->node_state[node], 1);
        }
        chain = p;
      }
    } else {
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
    }
  }
}

// ---------------------------------------------------------------------
// Eventcount protocols (F11 sim section).
// ---------------------------------------------------------------------

struct EcCentralLayout {
  Addr count;
  static EcCentralLayout make(Machine& m) {
    return EcCentralLayout{m.alloc(0, 0)};
  }
};

/// Centralized eventcount: every waiter spins on the count word, so each
/// advance invalidates every waiter's copy and they all re-fetch.
Task ec_central_producer(Machine& m, EcCentralLayout l, std::size_t proc,
                         std::size_t events, Cycles produce_cycles) {
  for (std::size_t e = 0; e < events; ++e) {
    co_await m.delay(proc, produce_cycles);  // produce something
    co_await m.fetch_add(proc, l.count, 1);
  }
}

Task ec_central_consumer(Machine& m, EcCentralLayout l, std::size_t proc,
                         std::size_t events) {
  for (std::size_t e = 1; e <= events; ++e) {
    co_await m.wait_while(proc, l.count, [e](Value v) { return v < e; });
    co_await m.delay(proc, 10);  // consume
  }
}

struct EcQueuedLayout {
  Addr count;
  Addr head;                      // Treiber stack of waiting nodes
  Addr done;                      // consumers finished (shepherd exit)
  std::vector<Addr> node_next;    // per proc, homed locally
  std::vector<Addr> node_state;   // per proc: 0 idle/waiting, 1 granted
  std::vector<Addr> node_target;  // per proc: awaited value
  static EcQueuedLayout make(Machine& m, std::size_t procs) {
    EcQueuedLayout l;
    l.count = m.alloc(0, 0);
    l.head = m.alloc(0, 0);
    l.done = m.alloc(0, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      l.node_next.push_back(m.alloc(p, 0));
      l.node_state.push_back(m.alloc(p, 0));
      l.node_target.push_back(m.alloc(p, 0));
    }
    return l;
  }
};

/// Pushers swap the head first and link their `next` a step later (the
/// sim's exchange-based push), so a node's next can transiently read as
/// "not yet linked"; walkers wait out that window, exactly like the MCS
/// release waiting for its successor's link.
constexpr Value kEcUnlinked = ~Value{0};

/// Push `node` onto the waiter stack (head swap, then link).
Task ec_queued_push(Machine& m, const EcQueuedLayout* l, std::size_t proc,
                    std::size_t node) {
  co_await m.store(proc, l->node_next[node], kEcUnlinked);
  const Value old = co_await m.exchange(proc, l->head, ptr(node));
  co_await m.store(proc, l->node_next[node], old);
}

/// Walk the waiter stack once, granting satisfied nodes. Shared by the
/// advance path and the end-of-run shepherd loop.
Task ec_queued_walk(Machine& m, const EcQueuedLayout* l, std::size_t proc,
                    Value now) {
  Value chain = co_await m.exchange(proc, l->head, 0);
  while (chain != 0) {
    const std::size_t node = unptr(chain);
    co_await m.wait_while(proc, l->node_next[node],
                          [](Value v) { return v == kEcUnlinked; });
    const Value next = co_await m.load(proc, l->node_next[node]);
    const Value target = co_await m.load(proc, l->node_target[node]);
    if (target <= now) {
      co_await m.store(proc, l->node_state[node], 1);
    } else {
      co_await ec_queued_push(m, l, proc, node);  // re-push unsatisfied
    }
    chain = next;
  }
}

/// Queued eventcount: waiters push their node (one exchange) and spin on
/// it locally; the producer's advance detaches the stack and wakes the
/// satisfied waiters with one store each. A consumer that pushes just
/// after the satisfying walk is caught by the producer's shepherd loop,
/// which keeps walking until every consumer has reported done — the
/// sim-side analogue of the native implementation's withdraw-under-
/// walk-lock discipline (per-proc node reuse makes withdrawal unsafe
/// here: a withdrawn node could still sit in a detached chain when its
/// owner re-pushes it).
Task ec_queued_producer(Machine& m, const EcQueuedLayout* l,
                        std::size_t proc, std::size_t events,
                        std::size_t consumers, Cycles produce_cycles) {
  for (std::size_t e = 0; e < events; ++e) {
    co_await m.delay(proc, produce_cycles);
    const Value now = co_await m.fetch_add(proc, l->count, 1) + 1;
    co_await ec_queued_walk(m, l, proc, now);
  }
  // Shepherd: late pushers (who raced the final walks) still get woken.
  for (;;) {
    const Value finished = co_await m.load(proc, l->done);
    if (finished == consumers) co_return;
    co_await ec_queued_walk(m, l, proc, static_cast<Value>(events));
    co_await m.delay(proc, 50);
  }
}

Task ec_queued_consumer(Machine& m, const EcQueuedLayout* l,
                        std::size_t proc, std::size_t events) {
  for (std::size_t e = 1; e <= events; ++e) {
    const Value seen = co_await m.load(proc, l->count);
    if (seen < e) {
      co_await m.store(proc, l->node_state[proc], 0);
      co_await m.store(proc, l->node_target[proc], static_cast<Value>(e));
      co_await ec_queued_push(m, l, proc, proc);
      co_await m.wait_while(proc, l->node_state[proc],
                            [](Value v) { return v == 0; });
    }
    co_await m.delay(proc, 10);
  }
  co_await m.fetch_add(proc, l->done, 1);
}

/// Drain the event queue and harvest counters while the layout objects
/// (captured by reference in the coroutines) are still in scope.
void finish(Machine& m, SimRunResult& result, Cycles max_cycles = ~0ULL) {
  result.completed = m.run(max_cycles);
  result.counters = m.counters();
  result.elapsed = m.now();
}

/// Shared lock dispatch for both run_lock_sim overloads. Layouts live
/// on this frame, so finish() runs before they go out of scope.
void run_lock_protocols(Machine& m, SimRunResult& result,
                        const std::string& algorithm, std::size_t rounds,
                        Cycles cs_cycles, std::uint64_t budget,
                        Cycles max_cycles) {
  const std::size_t procs = m.processors();
  TierKind global_kind = TierKind::kQueue;
  TierKind local_kind = TierKind::kQueue;

  if (algorithm == "tas" || algorithm == "ttas") {
    const auto l = TasLayout::make(m);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(tas_worker(m, l, p, rounds, cs_cycles, algorithm == "ttas"));
    }
    finish(m, result, max_cycles);
  } else if (algorithm == "ticket") {
    const auto l = TicketLayout::make(m);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(ticket_worker(m, l, p, rounds, cs_cycles));
    }
    finish(m, result, max_cycles);
  } else if (algorithm == "anderson") {
    const auto l = AndersonLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(anderson_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result, max_cycles);
  } else if (algorithm == "mcs" || algorithm == "qsv") {
    const auto l = McsLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(mcs_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result, max_cycles);
  } else if (algorithm == "clh") {
    auto l = ClhLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(clh_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result, max_cycles);
  } else if (algorithm == "graunke-thakkar") {
    const auto l = GraunkeThakkarLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(graunke_thakkar_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result, max_cycles);
  } else if (algorithm == "hier-qsv") {
    auto l = HierQsvLayout::make(m, procs, seat_cohorts(m));
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(hier_qsv_worker(m, &l, p, rounds, cs_cycles, budget));
    }
    finish(m, result, max_cycles);
    result.local_passes = l.local_passes;
    result.global_acquires = l.global_acquires;
  } else if (parse_cohort_name(algorithm, global_kind, local_kind)) {
    auto l = CohortSimLayout::make(m, seat_cohorts(m), global_kind,
                                   local_kind, budget);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(cohort_worker(m, &l, p, rounds, cs_cycles));
    }
    finish(m, result, max_cycles);
    result.local_passes = l.local_passes;
    result.global_acquires = l.global_acquires;
  } else {
    throw std::invalid_argument("unknown sim lock: " + algorithm);
  }
}

}  // namespace

const std::vector<std::string>& sim_lock_names() {
  static const std::vector<std::string> names = {
      "tas",      "ttas", "ticket", "anderson", "graunke-thakkar",
      "clh",      "mcs",  "qsv",    "hier-qsv",
      "cohort/qsv+qsv",    "cohort/mcs+mcs",       "cohort/qsv+ticket",
      "cohort/ticket+mcs", "cohort/ticket+ticket"};
  return names;
}

SimRunResult run_lock_sim(const std::string& algorithm, std::size_t procs,
                          std::size_t rounds, Topology topology,
                          Cycles cs_cycles, std::size_t procs_per_node,
                          CostModel costs) {
  Machine m(procs, topology, std::move(costs), procs_per_node);
  SimRunResult result;
  result.algorithm = algorithm;
  result.processors = procs;
  result.operations = procs * rounds;
  run_lock_protocols(m, result, algorithm, rounds, cs_cycles, kSimHierBudget,
                     ~0ULL);
  return result;
}

SimRunResult run_lock_sim(const std::string& algorithm,
                          const qsv::platform::Topology& topo,
                          std::size_t rounds, Cycles cs_cycles,
                          CostModel costs, std::uint64_t budget,
                          Cycles max_cycles, Topology interconnect) {
  Machine m(topo, std::move(costs), interconnect);
  SimRunResult result;
  result.algorithm = algorithm;
  result.processors = m.processors();
  result.operations = m.processors() * rounds;
  run_lock_protocols(m, result, algorithm, rounds, cs_cycles, budget,
                     max_cycles);
  return result;
}

const std::vector<std::string>& sim_rw_names() {
  static const std::vector<std::string> names = {"qsv-rw", "qsv-rw/central"};
  return names;
}

SimRunResult run_rw_sim(const std::string& algorithm, std::size_t procs,
                        std::size_t rounds, Topology topology,
                        Cycles read_cycles, std::size_t procs_per_node) {
  Machine m(procs, topology, CostModel{}, procs_per_node);
  SimRunResult result;
  result.algorithm = algorithm;
  result.processors = procs;
  result.operations = procs * rounds;
  if (algorithm == "qsv-rw" || algorithm == "qsv-rw/central") {
    const auto l = RwSimLayout::make(m, algorithm == "qsv-rw");
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(rw_reader_worker(m, &l, p, rounds, read_cycles));
    }
    finish(m, result);
  } else {
    throw std::invalid_argument("unknown sim rw: " + algorithm);
  }
  return result;
}

const std::vector<std::string>& sim_eventcount_names() {
  static const std::vector<std::string> names = {"ec-central", "ec-queued"};
  return names;
}

SimRunResult run_eventcount_sim(const std::string& algorithm,
                                std::size_t procs, std::size_t events,
                                Topology topology, Cycles produce_cycles) {
  Machine m(procs, topology);
  SimRunResult result;
  result.algorithm = algorithm;
  result.processors = procs;
  result.operations = events;

  if (algorithm == "ec-central") {
    const auto l = EcCentralLayout::make(m);
    m.spawn(ec_central_producer(m, l, 0, events, produce_cycles));
    for (std::size_t p = 1; p < procs; ++p) {
      m.spawn(ec_central_consumer(m, l, p, events));
    }
    finish(m, result);
  } else if (algorithm == "ec-queued") {
    const auto l = EcQueuedLayout::make(m, procs);
    m.spawn(ec_queued_producer(m, &l, 0, events, procs - 1,
                                produce_cycles));
    for (std::size_t p = 1; p < procs; ++p) {
      m.spawn(ec_queued_consumer(m, &l, p, events));
    }
    finish(m, result);
  } else {
    throw std::invalid_argument("unknown sim eventcount: " + algorithm);
  }
  return result;
}

const std::vector<std::string>& sim_barrier_names() {
  static const std::vector<std::string> names = {
      "central", "dissemination", "tournament", "mcs-tree", "qsv-episode"};
  return names;
}

SimRunResult run_barrier_sim(const std::string& algorithm, std::size_t procs,
                             std::size_t episodes, Topology topology) {
  Machine m(procs, topology);
  SimRunResult result;
  result.algorithm = algorithm;
  result.processors = procs;
  result.operations = episodes;

  if (algorithm == "central") {
    const auto l = CentralBarrierLayout::make(m);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(central_barrier_worker(m, l, p, procs, episodes));
    }
    finish(m, result);
  } else if (algorithm == "dissemination") {
    const auto l = DisseminationLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(dissemination_worker(m, &l, p, procs, episodes));
    }
    finish(m, result);
  } else if (algorithm == "tournament") {
    const auto l = TournamentLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(tournament_worker(m, &l, p, procs, episodes));
    }
    finish(m, result);
  } else if (algorithm == "mcs-tree") {
    const auto l = McsTreeLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(mcs_tree_worker(m, &l, p, procs, episodes));
    }
    finish(m, result);
  } else if (algorithm == "qsv-episode") {
    const auto l = QsvBarrierLayout::make(m, procs);
    for (std::size_t p = 0; p < procs; ++p) {
      m.spawn(qsv_barrier_worker(m, &l, p, procs, episodes));
    }
    finish(m, result);
  } else {
    throw std::invalid_argument("unknown sim barrier: " + algorithm);
  }
  return result;
}

}  // namespace qsv::sim
