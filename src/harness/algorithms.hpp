// algorithms.hpp — combined catalogues: baselines + the QSV mechanism.
//
// The per-module registries (locks/, barriers/, rwlocks/) list only the
// 1991 baselines; this header overlays the reconstructed contribution so
// every figure compares "the field" against QSV with one loop.
#pragma once

#include <memory>
#include <vector>

#include "barriers/registry.hpp"
#include "core/syncvar.hpp"
#include "locks/registry.hpp"
#include "rwlocks/registry.hpp"

namespace qsv::harness {

/// Locks: baselines followed by QSV variants (spin / yield / park).
const std::vector<qsv::locks::LockFactory>& all_locks();

/// Barriers: baselines followed by the QSV episode barrier.
const std::vector<qsv::barriers::BarrierFactory>& all_barriers();

/// Reader-writer locks: baselines followed by QSV shared mode.
const std::vector<qsv::rwlocks::RwFactory>& all_rwlocks();

}  // namespace qsv::harness
