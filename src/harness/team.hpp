// team.hpp — pinned thread teams with aligned start.
//
// Every figure in the evaluation runs a fixed team of threads through the
// same loop. ThreadTeam pins member i to processor i, lines all members
// up on a start barrier so measurement begins simultaneously, and joins
// with exception propagation.
#pragma once

#include <atomic>
#include <barrier>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "platform/affinity.hpp"

namespace qsv::harness {

class ThreadTeam {
 public:
  /// Runs `body(rank)` on `n` threads, pinned round-robin, all released
  /// together after every member is pinned and warmed. Blocks until all
  /// bodies return; rethrows the first member exception, if any.
  static void run(std::size_t n, const std::function<void(std::size_t)>& body,
                  bool pin = true) {
    std::barrier<> start(static_cast<std::ptrdiff_t>(n));
    std::vector<std::thread> members;
    members.reserve(n);
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;

    for (std::size_t rank = 0; rank < n; ++rank) {
      members.emplace_back([&, rank] {
        if (pin) (void)qsv::platform::pin_to_cpu(rank);
        start.arrive_and_wait();
        try {
          body(rank);
        } catch (...) {
          std::lock_guard<std::mutex> g(error_mu);
          if (!failed.exchange(true)) first_error = std::current_exception();
        }
      });
    }
    for (auto& t : members) t.join();
    if (failed.load()) std::rethrow_exception(first_error);
  }
};

/// Cooperative stop flag for duration-bounded runs: workers loop
/// `while (!stop.requested())`, the harness arms a timer thread.
class StopFlag {
 public:
  bool requested() const noexcept {
    // relaxed: stop flag — workers need only eventual visibility, and
    // results are read after the join.
    return flag_.load(std::memory_order_relaxed);
  }
  void request() noexcept { flag_.store(true, std::memory_order_relaxed); }   // relaxed: as above
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }    // relaxed: as above

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace qsv::harness
