// options.hpp — minimal command-line parsing for bench binaries.
//
// Every bench accepts the same style of flags: --threads=8 --seconds=0.5
// --csv. Unknown flags abort with a usage message so typos never silently
// fall back to defaults.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace qsv::harness {

class Options {
 public:
  Options(int argc, char** argv, std::vector<std::string> known) {
    for (const auto& k : known) known_.insert({k, true});
    known_.insert({"csv", true});
    known_.insert({"help", true});
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        die(arg, argv[0]);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      const std::string key = arg.substr(0, eq);
      if (known_.find(key) == known_.end()) die(key, argv[0]);
      values_[key] =
          eq == std::string::npos ? std::string("1") : arg.substr(eq + 1);
    }
    if (has("help")) {
      std::cerr << "flags: --csv --help";
      for (const auto& [k, v] : known_) {
        if (k != "csv" && k != "help") std::cerr << " --" << k << "=...";
      }
      std::cerr << '\n';
      std::exit(0);
    }
  }

  bool has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  std::string get_string(const std::string& key,
                         const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool csv() const { return has("csv"); }

 private:
  [[noreturn]] void die(const std::string& key, const char* prog) const {
    std::cerr << prog << ": unknown flag '" << key << "' (try --help)\n";
    std::exit(2);
  }

  std::map<std::string, bool> known_;
  std::map<std::string, std::string> values_;
};

}  // namespace qsv::harness
