#include "harness/algorithms.hpp"

#include "hier/hier_qsv.hpp"
#include "platform/wait.hpp"

namespace qsv::harness {

namespace {

template <typename L>
class ErasedLock final : public qsv::locks::AnyLock {
 public:
  void lock() override { impl_.lock(); }
  void unlock() override { impl_.unlock(); }
  std::size_t footprint() const override { return sizeof(L); }

 private:
  L impl_;
};

template <typename L>
qsv::locks::LockFactory lock_entry(const char* display) {
  return qsv::locks::LockFactory{
      display, [](std::size_t) -> std::unique_ptr<qsv::locks::AnyLock> {
        return std::make_unique<ErasedLock<L>>();
      }};
}

template <typename B>
class ErasedBarrier final : public qsv::barriers::AnyBarrier {
 public:
  explicit ErasedBarrier(std::size_t team) : impl_(team) {}
  void arrive_and_wait(std::size_t rank) override {
    impl_.arrive_and_wait(rank);
  }
  std::size_t team_size() const override { return impl_.team_size(); }

 private:
  B impl_;
};

template <typename B>
qsv::barriers::BarrierFactory barrier_entry(const char* display) {
  return qsv::barriers::BarrierFactory{
      display,
      [](std::size_t team) -> std::unique_ptr<qsv::barriers::AnyBarrier> {
        return std::make_unique<ErasedBarrier<B>>(team);
      }};
}

template <typename L>
class ErasedRw final : public qsv::rwlocks::AnyRwLock {
 public:
  void lock() override { impl_.lock(); }
  void unlock() override { impl_.unlock(); }
  void lock_shared() override { impl_.lock_shared(); }
  void unlock_shared() override { impl_.unlock_shared(); }

 private:
  L impl_;
};

template <typename L>
qsv::rwlocks::RwFactory rw_entry(const char* display) {
  return qsv::rwlocks::RwFactory{
      display, []() -> std::unique_ptr<qsv::rwlocks::AnyRwLock> {
        return std::make_unique<ErasedRw<L>>();
      }};
}

}  // namespace

const std::vector<qsv::locks::LockFactory>& all_locks() {
  static const std::vector<qsv::locks::LockFactory> catalogue = [] {
    std::vector<qsv::locks::LockFactory> v = qsv::locks::lock_registry();
    v.push_back(lock_entry<qsv::core::QsvMutex<qsv::platform::SpinWait>>(
        "qsv"));
    v.push_back(lock_entry<qsv::core::QsvMutex<qsv::platform::SpinYieldWait>>(
        "qsv/yield"));
    v.push_back(lock_entry<qsv::core::QsvMutex<qsv::platform::ParkWait>>(
        "qsv/park"));
    v.push_back(lock_entry<qsv::core::QsvTimeoutMutex>("qsv-timeout"));
    v.push_back(lock_entry<qsv::hier::HierQsvMutex<>>("hier-qsv"));
    return v;
  }();
  return catalogue;
}

const std::vector<qsv::barriers::BarrierFactory>& all_barriers() {
  static const std::vector<qsv::barriers::BarrierFactory> catalogue = [] {
    std::vector<qsv::barriers::BarrierFactory> v =
        qsv::barriers::barrier_registry();
    v.push_back(barrier_entry<qsv::core::QsvBarrier<qsv::platform::SpinWait>>(
        "qsv-episode"));
    v.push_back(
        barrier_entry<qsv::core::QsvBarrier<qsv::platform::ParkWait>>(
            "qsv-episode/park"));
    return v;
  }();
  return catalogue;
}

const std::vector<qsv::rwlocks::RwFactory>& all_rwlocks() {
  static const std::vector<qsv::rwlocks::RwFactory> catalogue = [] {
    std::vector<qsv::rwlocks::RwFactory> v = qsv::rwlocks::rw_registry();
    // Both QSV shared-mode variants stay selectable so F8/A2 can compare
    // the striped redesign against the centralized-counter original.
    v.push_back(rw_entry<qsv::core::QsvRwLock<>>("qsv-rw"));
    v.push_back(
        rw_entry<qsv::core::QsvRwLockCentral<>>("qsv-rw/central"));
    return v;
  }();
  return catalogue;
}

}  // namespace qsv::harness
