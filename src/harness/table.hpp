// table.hpp — paper-style aligned tables and CSV output.
//
// Every bench binary prints (a) a human-readable aligned table mirroring
// the reconstructed figure/table and (b) optional CSV for replotting.
#pragma once

#include <cstddef>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace qsv::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append a row; cells are preformatted strings.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Format a double with fixed precision (helper for cells).
  static std::string num(double v, int precision = 1) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string integer(std::uint64_t v) { return std::to_string(v); }

  /// Render aligned columns to `out`.
  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(out, headers_, width);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(out, row, width);
    out.flush();
  }

  /// Render as CSV (comma-separated, no quoting needed for our cells).
  void print_csv(std::ostream& out) const {
    print_csv_row(out, headers_);
    for (const auto& row : rows_) print_csv_row(out, row);
  }

 private:
  static void print_row(std::ostream& out, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(width[c])) << row[c] << "  ";
    }
    out << '\n';
  }
  static void print_csv_row(std::ostream& out,
                            const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qsv::harness
