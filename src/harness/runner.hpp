// runner.hpp — standard measurement loops for the evaluation suite.
#pragma once

#include <cstdint>
#include <vector>

#include "catalog/any_primitive.hpp"
#include "harness/team.hpp"
#include "platform/histogram.hpp"
#include "platform/stats.hpp"
#include "platform/timing.hpp"
#include "workload/critical_section.hpp"

namespace qsv::harness {

/// Result of one contention run.
struct LockRunResult {
  std::uint64_t total_ops = 0;                 ///< acquire/release pairs
  double duration_s = 0.0;                     ///< measured wall time
  std::vector<std::uint64_t> per_thread_ops;   ///< fairness raw data
  qsv::platform::LogHistogram latency;         ///< merged handoff latency
  bool mutual_exclusion_ok = true;             ///< integrity check result

  double throughput_mops() const {
    return duration_s > 0.0
               ? static_cast<double>(total_ops) / duration_s * 1e-6
               : 0.0;
  }
};

struct LockRunConfig {
  std::size_t threads = 4;
  double seconds = 0.5;             ///< steady-state measurement window
  std::uint64_t cs_ns = 0;          ///< busy time inside the lock
  std::uint64_t pause_ns = 0;       ///< busy time between acquisitions
  bool record_latency = false;      ///< per-op timing (adds ~25ns/op)
  bool pin = true;
};

/// Drive `threads` workers through acquire/work/release cycles against a
/// type-erased lock for `seconds`. All workers run identical loops; the
/// integrity counter detects any mutual-exclusion violation.
inline LockRunResult run_lock_contention(qsv::catalog::AnyPrimitive& lock,
                                         const LockRunConfig& cfg) {
  LockRunResult result;
  result.per_thread_ops.assign(cfg.threads, 0);
  std::vector<qsv::platform::LogHistogram> histograms(cfg.threads);
  qsv::workload::GuardedCounter integrity;
  StopFlag stop;

  const std::uint64_t t0 = qsv::platform::now_ns();
  const std::uint64_t deadline =
      t0 + static_cast<std::uint64_t>(cfg.seconds * 1e9);

  ThreadTeam::run(
      cfg.threads,
      [&](std::size_t rank) {
        std::uint64_t ops = 0;
        auto& hist = histograms[rank];
        while (!stop.requested()) {
          const std::uint64_t begin =
              cfg.record_latency ? qsv::platform::now_ns() : 0;
          lock.lock();
          if (cfg.record_latency) {
            hist.add(qsv::platform::now_ns() - begin);
          }
          integrity.bump();
          if (cfg.cs_ns != 0) qsv::workload::busy_wait_ns(cfg.cs_ns);
          lock.unlock();
          if (cfg.pause_ns != 0) qsv::workload::busy_wait_ns(cfg.pause_ns);
          ++ops;
          // Rank 0 doubles as the timer to avoid an extra thread.
          if (rank == 0 && (ops & 0xff) == 0 &&
              qsv::platform::now_ns() >= deadline) {
            stop.request();
          }
        }
        result.per_thread_ops[rank] = ops;
      },
      cfg.pin);

  result.duration_s =
      static_cast<double>(qsv::platform::now_ns() - t0) * 1e-9;
  for (auto ops : result.per_thread_ops) result.total_ops += ops;
  for (auto& h : histograms) result.latency.merge(h);
  result.mutual_exclusion_ok =
      integrity.consistent() && integrity.value() == result.total_ops;
  return result;
}

}  // namespace qsv::harness
