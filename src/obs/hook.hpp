// hook.hpp — the one narrow seam between the primitives and the
// telemetry registry (src/obs/registry.hpp).
//
// This header replaces the four scattered event seams that grew up
// around the catalogue (the core NullEvents/CountingEvents static
// sinks, the hier NullHierEvents/CountingHierEvents statics, the trace
// session's private counters, and ad-hoc stderr prints): every
// instrumented primitive owns a Handle, the Handle registers one
// LockRec in the process-wide TelemetryRegistry, and every protocol
// event lands on that record through the inline counting helpers
// below. The old sinks were process-global and compile-time; LockRec
// is per *instance* and always on, which is what a live introspection
// endpoint needs.
//
// Layering: this is the only obs/ header the platform and primitive
// layers may include (qsvlint's layering rule carves out exactly this
// file, the same dependency-inversion move as platform/chk_hook.hpp
// and platform/hazard_hook.hpp). It defines the hot-path record inline
// and *declares* the cold registration entry points, which live in
// registry.cpp — so including it pulls in no registry machinery.
//
// Hot-path budget: one relaxed increment per event. Uncontended
// acquisitions touch the caller's own stripe of a striped counter;
// uncontended releases pay one relaxed increment plus one relaxed load
// of the hold timestamp (zero unless the acquisition was contended).
// Clock reads happen only on contended paths, which already cost a
// cache-miss chain. The whole layer compiles out under -DQSV_OBS=0
// (CMake option QSV_OBS=OFF): Handle::rec() becomes a constant
// nullptr and every helper folds away.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "platform/histogram.hpp"
#include "platform/striped_counter.hpp"
#include "platform/timing.hpp"

#ifndef QSV_OBS
#define QSV_OBS 1
#endif

namespace qsv::obs {

namespace detail {
/// Runtime master switch, consulted at *registration* (construction)
/// time only: a primitive constructed while disabled carries a null
/// record for its whole life and pays only a dead null-check per
/// event. Default on — the point of the refactor is always-on
/// production observability; the BENCH_obs gate proves the cost.
inline std::atomic<bool> g_enabled{true};

/// When set, adaptive waiters bound to a record derive their spin
/// budget from the record's measured handoff-wait EWMA (nanoseconds)
/// instead of their private poll-count EWMA — the "registry-adaptive"
/// arm of the abl7 ablation. Read once per wait entry (contended path
/// only), never on the uncontended path.
inline std::atomic<bool> g_adaptive_from_registry{false};
}  // namespace detail

inline bool enabled() noexcept {
  // relaxed: construction-time gate; no data is published under it.
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  // relaxed: as above — affects only future registrations.
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

inline bool adaptive_from_registry() noexcept {
  // relaxed: tuning-mode gate; budgets are heuristics, never safety.
  return detail::g_adaptive_from_registry.load(std::memory_order_relaxed);
}
inline void set_adaptive_from_registry(bool on) noexcept {
  // relaxed: as above.
  detail::g_adaptive_from_registry.store(on, std::memory_order_relaxed);
}

/// One primitive instance's telemetry record. Owned by the registry
/// (stable address from registration to unregistration); the owning
/// primitive keeps only the pointer. All counters are monotonic and
/// relaxed: telemetry orders nothing, and a reader of a moving record
/// sees a slightly stale but never torn view.
class LockRec {
 public:
  /// Stripes for the entry-side counters: reader entry on a shared
  /// lock is concurrent by design, so the count must not re-create the
  /// hot line the striped rwlock exists to avoid.
  static constexpr std::size_t kStripes = 8;

  LockRec() = default;
  LockRec(const LockRec&) = delete;
  LockRec& operator=(const LockRec&) = delete;

  // ------------------------------------------------------ hot hooks

  /// Uncontended exclusive acquisition: the one-relaxed-increment path.
  void count_acquire() noexcept {
    // relaxed: monotonic tally on the caller's own stripe.
    acquisitions_.slot().fetch_add(1, std::memory_order_relaxed);
  }

  /// Uncontended shared (reader) acquisition.
  void count_shared_acquire() noexcept {
    // relaxed: monotonic tally on the caller's own stripe.
    shared_.slot().fetch_add(1, std::memory_order_relaxed);
  }

  /// Contended exclusive acquisition: the waiter measured `wait_ns`
  /// between enqueue and grant, and `now_ns` is the grant timestamp.
  /// Feeds the handoff-wait EWMA + histogram + watermark and stamps
  /// the hold timestamp (holder-owned: written here under the lock,
  /// cleared by the same holder's release).
  void count_contended_acquire(std::uint64_t wait_ns,
                               std::uint64_t now_ns) noexcept {
    count_wait(wait_ns);
    // relaxed: holder-owned stamp; the lock's own handoff ordering
    // carries it to the releasing (same) holder.
    held_since_ns_.store(now_ns, std::memory_order_relaxed);
  }

  /// Contended shared acquisition (a reader that had to park). Feeds
  /// the wait statistics but not the hold stamp — shared holds overlap
  /// and a single word cannot speak for a batch.
  void count_contended_shared(std::uint64_t wait_ns) noexcept {
    // relaxed: monotonic tally on the caller's own stripe.
    shared_.slot().fetch_add(1, std::memory_order_relaxed);
    count_wait_stats(wait_ns);
  }

  /// Release that granted a queued waiter.
  void count_handoff() noexcept {
    note_release();
    // relaxed: monotonic tally (release side is serialized by the lock).
    handoffs_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Release that found the queue empty.
  void count_free_release() noexcept {
    note_release();
    // relaxed: monotonic tally (release side is serialized by the lock).
    free_releases_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Release on protocols that cannot tell handoff from free release
  /// (the CLH-style timeout lock): updates only the hold watermark.
  void note_release() noexcept {
    // relaxed: holder-owned stamp (see count_contended_acquire); zero
    // unless this acquisition was contended, so the uncontended
    // release pays one relaxed load and a never-taken branch.
    const std::uint64_t t = held_since_ns_.load(std::memory_order_relaxed);
    if (t != 0) {
      max_relaxed(max_hold_ns_, qsv::platform::now_ns() - t);
      // relaxed: clearing our own stamp.
      held_since_ns_.store(0, std::memory_order_relaxed);
    }
  }

  // ------------------------------------------- cohort (hier) hooks

  /// Intra-cohort handoff: local and global lock passed in one store.
  void count_local_pass() noexcept {
    // relaxed: monotonic tally (the releasing holder is serialized).
    local_passes_.fetch_add(1, std::memory_order_relaxed);
  }
  /// The cohort acquired the global tier (a "cohort miss").
  void count_global_acquire() noexcept {
    // relaxed: monotonic tally.
    global_acquires_.fetch_add(1, std::memory_order_relaxed);
  }
  /// The cohort released the global tier.
  void count_global_release() noexcept {
    // relaxed: monotonic tally.
    global_releases_.fetch_add(1, std::memory_order_relaxed);
  }

  // ------------------------------------------------- cold snapshots

  std::uint64_t acquisitions() const noexcept {
    // relaxed: statistical read of moving stripes.
    return static_cast<std::uint64_t>(
        acquisitions_.sum(std::memory_order_relaxed));
  }
  std::uint64_t shared_acquisitions() const noexcept {
    // relaxed: statistical read of moving stripes.
    return static_cast<std::uint64_t>(
        shared_.sum(std::memory_order_relaxed));
  }
  std::uint64_t contended() const noexcept {
    return contended_.load(std::memory_order_relaxed);  // relaxed: stat read
  }
  std::uint64_t handoffs() const noexcept {
    return handoffs_.load(std::memory_order_relaxed);  // relaxed: stat read
  }
  std::uint64_t free_releases() const noexcept {
    // relaxed: statistical read of a moving counter.
    return free_releases_.load(std::memory_order_relaxed);
  }
  std::uint64_t local_passes() const noexcept {
    // relaxed: statistical read of a moving counter.
    return local_passes_.load(std::memory_order_relaxed);
  }
  std::uint64_t global_acquires() const noexcept {
    // relaxed: statistical read of a moving counter.
    return global_acquires_.load(std::memory_order_relaxed);
  }
  std::uint64_t global_releases() const noexcept {
    // relaxed: statistical read of a moving counter.
    return global_releases_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_wait_ns() const noexcept {
    return max_wait_ns_.load(std::memory_order_relaxed);  // relaxed: stat read
  }
  std::uint64_t max_hold_ns() const noexcept {
    return max_hold_ns_.load(std::memory_order_relaxed);  // relaxed: stat read
  }
  /// Nonzero while the lock is held by an acquisition that was
  /// contended: the live long-hold signal (hazard detection compares
  /// it against now).
  std::uint64_t held_since_ns() const noexcept {
    // relaxed: statistical read of the holder-owned stamp.
    return held_since_ns_.load(std::memory_order_relaxed);
  }

  /// Smoothed contended-wait (handoff) latency in nanoseconds — the
  /// value the registry-consulting adaptive mode reads.
  std::uint64_t wait_ewma_ns() const noexcept {
    // relaxed: calibration estimate; any recent value serves.
    return wait_ewma_ns_.load(std::memory_order_relaxed);
  }

  std::uint64_t wait_count() const noexcept {
    // relaxed: statistical read.
    return contended_.load(std::memory_order_relaxed);
  }
  /// Upper bound of the histogram bucket holding the q-quantile
  /// contended wait (0 when no waits were recorded).
  std::uint64_t wait_quantile_ns(double q) const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < qsv::platform::LogHistogram::kBuckets; ++i) {
      // relaxed: statistical read of a moving bucket.
      total += wait_hist_[i].load(std::memory_order_relaxed);
    }
    if (total == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < qsv::platform::LogHistogram::kBuckets; ++i) {
      // relaxed: statistical read (as above).
      seen += wait_hist_[i].load(std::memory_order_relaxed);
      if (seen > target) {
        return qsv::platform::LogHistogram::bucket_upper(i);
      }
    }
    return qsv::platform::LogHistogram::bucket_upper(
        qsv::platform::LogHistogram::kBuckets - 1);
  }

 private:
  void count_wait(std::uint64_t wait_ns) noexcept {
    // relaxed: monotonic tally on the caller's own stripe.
    acquisitions_.slot().fetch_add(1, std::memory_order_relaxed);
    count_wait_stats(wait_ns);
  }

  void count_wait_stats(std::uint64_t wait_ns) noexcept {
    // relaxed: monotonic tally.
    contended_.fetch_add(1, std::memory_order_relaxed);
    wait_hist_[qsv::platform::LogHistogram::bucket_of(wait_ns)].fetch_add(
        1, std::memory_order_relaxed);  // relaxed: moving bucket tally
    // EWMA with alpha = 1/8, the same step rule as AdaptiveWait's
    // poll-count word but in nanoseconds; racy updates drop a sample,
    // which the smoothing absorbs.
    // relaxed: calibration estimate, not protocol state.
    const std::uint64_t e = wait_ewma_ns_.load(std::memory_order_relaxed);
    const auto delta =
        static_cast<std::int64_t>(wait_ns) - static_cast<std::int64_t>(e);
    std::int64_t step = delta >> 3;
    if (step == 0 && delta > 0) step = 1;
    wait_ewma_ns_.store(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(e) + step),
        std::memory_order_relaxed);  // relaxed: as above
    max_relaxed(max_wait_ns_, wait_ns);
  }

  /// Racy-but-monotone watermark: a lost race can only lose a sample
  /// to a *larger* concurrent one, never lower the watermark.
  static void max_relaxed(std::atomic<std::uint64_t>& w,
                          std::uint64_t v) noexcept {
    // relaxed: watermark is statistics; CAS retries preserve monotony.
    std::uint64_t cur = w.load(std::memory_order_relaxed);
    // relaxed: both CAS orders — as above.
    while (v > cur &&
           !w.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
    }
  }

  /// Entry-side striped tallies (hot, possibly concurrent).
  qsv::platform::StripedCounter<kStripes> acquisitions_;
  qsv::platform::StripedCounter<kStripes> shared_;
  /// Contended/release-side tallies: serialized by the lock itself, so
  /// plain relaxed words suffice.
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> handoffs_{0};
  std::atomic<std::uint64_t> free_releases_{0};
  std::atomic<std::uint64_t> local_passes_{0};
  std::atomic<std::uint64_t> global_acquires_{0};
  std::atomic<std::uint64_t> global_releases_{0};
  std::atomic<std::uint64_t> wait_ewma_ns_{0};
  std::atomic<std::uint64_t> max_wait_ns_{0};
  std::atomic<std::uint64_t> max_hold_ns_{0};
  std::atomic<std::uint64_t> held_since_ns_{0};
  /// Log2-bucketed contended-wait histogram (platform/histogram.hpp
  /// bucketing, atomic buckets because waiters record concurrently).
  std::atomic<std::uint64_t>
      wait_hist_[qsv::platform::LogHistogram::kBuckets]{};
};

namespace detail {
/// Cold registration entry points, defined in obs/registry.cpp. The
/// declarations live here so primitives (and trace/) never include
/// registry machinery: this header is the whole surface. The instance
/// is an identity token (set_name correlation), never dereferenced —
/// passed as uintptr_t because registration happens mid-construction,
/// before the owning object is fully initialized.
LockRec* registry_register(const char* kind, std::uintptr_t instance) noexcept;
void registry_unregister(LockRec* rec) noexcept;
}  // namespace detail

/// Append one line to the registry's historical hazard log (the
/// `hazards` face of the introspection endpoint). trace/lock_order.cpp
/// routes every inversion warning here so embedders see warnings that
/// previously went only to stderr. Defined in obs/registry.cpp.
void record_hazard(std::string_view text);

#if QSV_OBS

/// RAII registration: a primitive owns one Handle, constructed with
/// its catalogue kind string; the record lives until destruction.
class Handle {
 public:
  Handle(const char* kind, const void* instance) noexcept
      : rec_(detail::registry_register(
            kind, reinterpret_cast<std::uintptr_t>(instance))) {}
  ~Handle() {
    if (rec_ != nullptr) detail::registry_unregister(rec_);
  }
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  /// The instance's record; null when telemetry was disabled at
  /// construction. Callers hoist this once per operation.
  LockRec* rec() const noexcept { return rec_; }

 private:
  LockRec* rec_ = nullptr;
};

#else  // QSV_OBS == 0: the compile-out arm — everything folds away.

class Handle {
 public:
  constexpr Handle(const char*, const void*) noexcept {}
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;
  static constexpr LockRec* rec() noexcept { return nullptr; }
};

#endif  // QSV_OBS

// ------------------------------------------------- call-site helpers
// Null-tolerant wrappers so instrumented call sites stay one line and
// fold to nothing under QSV_OBS=0 (rec() is a constant nullptr).

inline void count_acquire(LockRec* r) noexcept {
  if (r != nullptr) r->count_acquire();
}
inline void count_shared_acquire(LockRec* r) noexcept {
  if (r != nullptr) r->count_shared_acquire();
}
/// Contended-acquire bracket: call wait_begin_ns() before the wait
/// (returns 0 when unrecorded) and count_contended_acquire after.
inline std::uint64_t wait_begin_ns(const LockRec* r) noexcept {
  return r != nullptr ? qsv::platform::now_ns() : 0;
}
inline void count_contended_acquire(LockRec* r, std::uint64_t t0) noexcept {
  if (r != nullptr) {
    const std::uint64_t now = qsv::platform::now_ns();
    r->count_contended_acquire(now - t0, now);
  }
}
inline void count_contended_shared(LockRec* r, std::uint64_t t0) noexcept {
  if (r != nullptr) {
    r->count_contended_shared(qsv::platform::now_ns() - t0);
  }
}
inline void count_handoff(LockRec* r) noexcept {
  if (r != nullptr) r->count_handoff();
}
inline void count_free_release(LockRec* r) noexcept {
  if (r != nullptr) r->count_free_release();
}
inline void note_release(LockRec* r) noexcept {
  if (r != nullptr) r->note_release();
}
inline void count_local_pass(LockRec* r) noexcept {
  if (r != nullptr) r->count_local_pass();
}
inline void count_global_acquire(LockRec* r) noexcept {
  if (r != nullptr) r->count_global_acquire();
}
inline void count_global_release(LockRec* r) noexcept {
  if (r != nullptr) r->count_global_release();
}

}  // namespace qsv::obs
