// registry.cpp — telemetry registry storage, snapshots, hazard log.
#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace qsv::obs {

namespace {

struct Entry {
  std::unique_ptr<LockRec> rec;
  std::string name;
  const char* kind = nullptr;
  const void* instance = nullptr;
  std::uint64_t seq = 0;  ///< registration order for stable listings
};

/// Registry state behind one mutex: registration/unregistration and
/// snapshots are cold (construction, destruction, introspection); the
/// hot path never comes here — it increments the LockRec directly.
struct State {
  std::mutex mu;
  std::map<const LockRec*, Entry> records;
  /// Per-kind sequence numbers for generated names ("qsv#0", "qsv#1").
  std::map<std::string, std::uint64_t> kind_seq;
  std::uint64_t next_seq = 0;
  std::deque<std::string> hazards;
};

State& state() {
  static State* s = new State();  // leaked: usable during late teardown
  return *s;
}

void fill_stats(const Entry& e, LockStats& out) {
  const LockRec& r = *e.rec;
  out.name = e.name;
  out.kind = e.kind != nullptr ? e.kind : "?";
  out.instance = e.instance;
  out.acquisitions = r.acquisitions();
  out.contended = r.contended();
  out.shared_acquisitions = r.shared_acquisitions();
  out.handoffs = r.handoffs();
  out.free_releases = r.free_releases();
  out.local_passes = r.local_passes();
  out.global_acquires = r.global_acquires();
  out.global_releases = r.global_releases();
  out.wait_ewma_ns = r.wait_ewma_ns();
  out.wait_p50_ns = r.wait_quantile_ns(0.50);
  out.wait_p99_ns = r.wait_quantile_ns(0.99);
  out.max_wait_ns = r.max_wait_ns();
  out.max_hold_ns = r.max_hold_ns();
  const std::uint64_t since = r.held_since_ns();
  if (since != 0) {
    const std::uint64_t now = qsv::platform::now_ns();
    out.held_for_ns = now > since ? now - since : 0;
  } else {
    out.held_for_ns = 0;
  }
  const std::uint64_t cohort_total = out.global_acquires + out.local_passes;
  out.cohort_miss_rate =
      cohort_total != 0 ? static_cast<double>(out.global_acquires) /
                              static_cast<double>(cohort_total)
                        : 0.0;
}

/// Registration-order view of the record map (the map itself is keyed
/// by pointer, which would make listings nondeterministic).
std::vector<const Entry*> ordered_locked(const State& s) {
  std::vector<const Entry*> v;
  v.reserve(s.records.size());
  for (const auto& [rec, e] : s.records) v.push_back(&e);
  std::sort(v.begin(), v.end(), [](const Entry* a, const Entry* b) {
    return a->seq < b->seq;
  });
  return v;
}

std::string list_line(const LockStats& st) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "lock %s kind=%s acq=%llu contended=%llu shared=%llu "
                "handoffs=%llu free=%llu",
                st.name.c_str(), st.kind.c_str(),
                static_cast<unsigned long long>(st.acquisitions),
                static_cast<unsigned long long>(st.contended),
                static_cast<unsigned long long>(st.shared_acquisitions),
                static_cast<unsigned long long>(st.handoffs),
                static_cast<unsigned long long>(st.free_releases));
  return buf;
}

}  // namespace

namespace detail {

LockRec* registry_register(const char* kind,
                           std::uintptr_t instance) noexcept {
  if (!enabled()) return nullptr;
  // Telemetry must never take the process down: allocation failure
  // degrades to an uninstrumented instance.
  try {
    auto rec = std::make_unique<LockRec>();
    LockRec* raw = rec.get();
    State& s = state();
    std::lock_guard<std::mutex> guard(s.mu);
    Entry e;
    e.rec = std::move(rec);
    e.kind = kind;
    e.instance = reinterpret_cast<const void*>(instance);
    e.seq = s.next_seq++;
    const std::uint64_t n = s.kind_seq[kind != nullptr ? kind : "?"]++;
    e.name = std::string(kind != nullptr ? kind : "?") + "#" +
             std::to_string(n);
    s.records.emplace(raw, std::move(e));
    return raw;
  } catch (...) {
    return nullptr;
  }
}

void registry_unregister(LockRec* rec) noexcept {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  s.records.erase(rec);
}

}  // namespace detail

std::vector<LockStats> snapshot() {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  std::vector<LockStats> out;
  out.reserve(s.records.size());
  for (const Entry* e : ordered_locked(s)) {
    LockStats st;
    fill_stats(*e, st);
    out.push_back(std::move(st));
  }
  return out;
}

bool stat_by_name(std::string_view name, LockStats& out) {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  for (const auto& [rec, e] : s.records) {
    if (e.name == name) {
      fill_stats(e, out);
      return true;
    }
  }
  return false;
}

void set_name(const void* instance, std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  for (auto& [rec, e] : s.records) {
    if (e.instance == instance) {
      e.name = std::string(name);
      return;
    }
  }
}

std::size_t size() {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  return s.records.size();
}

std::string dump() {
  std::string out;
  for (const LockStats& st : snapshot()) {
    out += list_line(st);
    out += '\n';
  }
  return out;
}

std::string dump_stat(std::string_view name) {
  LockStats st;
  if (!stat_by_name(name, st)) return {};
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "name %s\n"
      "kind %s\n"
      "acquisitions %llu\n"
      "contended %llu\n"
      "shared_acquisitions %llu\n"
      "handoffs %llu\n"
      "free_releases %llu\n"
      "local_passes %llu\n"
      "global_acquires %llu\n"
      "global_releases %llu\n"
      "cohort_miss_rate %.4f\n"
      "wait_ewma_ns %llu\n"
      "wait_p50_ns %llu\n"
      "wait_p99_ns %llu\n"
      "max_wait_ns %llu\n"
      "max_hold_ns %llu\n"
      "held_for_ns %llu\n",
      st.name.c_str(), st.kind.c_str(),
      static_cast<unsigned long long>(st.acquisitions),
      static_cast<unsigned long long>(st.contended),
      static_cast<unsigned long long>(st.shared_acquisitions),
      static_cast<unsigned long long>(st.handoffs),
      static_cast<unsigned long long>(st.free_releases),
      static_cast<unsigned long long>(st.local_passes),
      static_cast<unsigned long long>(st.global_acquires),
      static_cast<unsigned long long>(st.global_releases),
      st.cohort_miss_rate,
      static_cast<unsigned long long>(st.wait_ewma_ns),
      static_cast<unsigned long long>(st.wait_p50_ns),
      static_cast<unsigned long long>(st.wait_p99_ns),
      static_cast<unsigned long long>(st.max_wait_ns),
      static_cast<unsigned long long>(st.max_hold_ns),
      static_cast<unsigned long long>(st.held_for_ns));
  return buf;
}

void record_hazard(std::string_view text) {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  s.hazards.emplace_back(text);
  while (s.hazards.size() > kHazardLogCap) s.hazards.pop_front();
}

std::vector<std::string> hazard_log() {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  return {s.hazards.begin(), s.hazards.end()};
}

void clear_hazard_log() {
  State& s = state();
  std::lock_guard<std::mutex> guard(s.mu);
  s.hazards.clear();
}

std::vector<std::string> detect_hazards(std::uint64_t long_hold_ns,
                                        std::uint64_t starvation_ns) {
  std::vector<std::string> out;
  char buf[512];
  for (const LockStats& st : snapshot()) {
    if (st.held_for_ns > long_hold_ns) {
      std::snprintf(buf, sizeof(buf),
                    "long-hold: %s held for %llu ns with waiters seen "
                    "(threshold %llu ns)",
                    st.name.c_str(),
                    static_cast<unsigned long long>(st.held_for_ns),
                    static_cast<unsigned long long>(long_hold_ns));
      out.emplace_back(buf);
    }
    if (st.max_wait_ns > starvation_ns) {
      std::snprintf(buf, sizeof(buf),
                    "starvation: %s worst contended wait %llu ns "
                    "(threshold %llu ns)",
                    st.name.c_str(),
                    static_cast<unsigned long long>(st.max_wait_ns),
                    static_cast<unsigned long long>(starvation_ns));
      out.emplace_back(buf);
    }
  }
  return out;
}

}  // namespace qsv::obs
