// registry.hpp — the process-wide telemetry registry.
//
// Every instrumented primitive registers one obs::LockRec at
// construction (through the narrow seam in obs/hook.hpp) and
// unregisters at destruction. This header is the *reading* side: name
// assignment, stable snapshots for tools, the text dump the
// introspection endpoint serves, the historical hazard log that
// lock_order warnings are routed into, and live starvation/long-hold
// detection over the current records.
//
// Layering: obs/ sits beside the catalogue — reachable from
// catalog/toolkit/facade/top, never included by platform/ or the
// primitives (they see only obs/hook.hpp; qsvlint enforces both
// directions).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hook.hpp"

namespace qsv::obs {

/// One record, frozen at snapshot time. Counters may trail the hot
/// path by a few events (relaxed reads of moving stripes); names are
/// exact.
struct LockStats {
  std::string name;          ///< registry name ("qsv#3" until set_name)
  std::string kind;          ///< the primitive's static name() string
  const void* instance = nullptr;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t shared_acquisitions = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t free_releases = 0;
  std::uint64_t local_passes = 0;
  std::uint64_t global_acquires = 0;
  std::uint64_t global_releases = 0;
  std::uint64_t wait_ewma_ns = 0;
  std::uint64_t wait_p50_ns = 0;
  std::uint64_t wait_p99_ns = 0;
  std::uint64_t max_wait_ns = 0;
  std::uint64_t max_hold_ns = 0;
  /// Nanoseconds the current (contended) holder has held the lock so
  /// far; 0 when free or held uncontended.
  std::uint64_t held_for_ns = 0;
  /// global_acquires / (global_acquires + local_passes); 0 when the
  /// record has no cohort traffic.
  double cohort_miss_rate = 0.0;
};

/// Snapshot of every live record, registration order.
std::vector<LockStats> snapshot();

/// Snapshot one record by registry name. False when no live record
/// carries `name`.
bool stat_by_name(std::string_view name, LockStats& out);

/// Give the record registered for `instance` a display name (replaces
/// the generated "kind#N"). No-op when the instance carries no record
/// (telemetry disabled, or QSV_OBS=0).
void set_name(const void* instance, std::string_view name);

/// Number of live records.
std::size_t size();

/// The `list` face as text: one "lock <name> kind=<kind> acq=... "
/// line per record (the format documented in docs/INTROSPECTION.md).
std::string dump();

/// Detailed multi-line text for one record (the `stat` face); empty
/// string when the name is unknown.
std::string dump_stat(std::string_view name);

// ---------------------------------------------------------- hazards

/// Historical hazard log (lock-order inversions and anything else
/// routed through obs::record_hazard), oldest first. Bounded: the log
/// keeps the most recent kHazardLogCap entries.
std::vector<std::string> hazard_log();
inline constexpr std::size_t kHazardLogCap = 256;

/// Drop the historical hazard log (tests).
void clear_hazard_log();

/// Live detection over current records: a "long-hold" line for every
/// lock whose current contended holder has exceeded `long_hold_ns`,
/// and a "starvation" line for every lock whose worst observed
/// contended wait exceeds `starvation_ns`.
std::vector<std::string> detect_hazards(std::uint64_t long_hold_ns,
                                        std::uint64_t starvation_ns);

/// Default thresholds for the endpoint's `hazards` command.
inline constexpr std::uint64_t kDefaultLongHoldNs = 100'000'000;    // 100ms
inline constexpr std::uint64_t kDefaultStarvationNs = 1'000'000'000;  // 1s

}  // namespace qsv::obs
