// introspect.cpp — loopback TCP server for the introspection protocol.
#include "obs/introspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "platform/arch.hpp"

namespace qsv::obs {

namespace {

/// Server state. One server per process; `stop` is the only word
/// touched cross-thread after start.
struct Server {
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::thread thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop{false};
  std::atomic<bool> shutdown_requested{false};
};

Server& server() {
  static Server* s = new Server();  // leaked: joins are explicit
  return *s;
}

/// Full send (loopback; short writes only under memory pressure).
/// MSG_NOSIGNAL: a vanished client must not SIGPIPE the host process.
bool send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool reply(int fd, const std::string& payload) {
  return send_all(fd, payload + ".\n");
}

bool reply_err(int fd, const std::string& why) {
  return send_all(fd, "err " + why + "\n.\n");
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) words.push_back(line.substr(i, j - i));
    i = j;
  }
  return words;
}

bool parse_ms(const std::string& word, std::uint64_t& out) {
  if (word.empty() ||
      word.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out = std::strtoull(word.c_str(), nullptr, 10);
  return true;
}

/// Aggregate acquisition counters across all records (stream deltas).
void totals(std::uint64_t& acq, std::uint64_t& contended) {
  acq = 0;
  contended = 0;
  for (const LockStats& st : snapshot()) {
    acq += st.acquisitions + st.shared_acquisitions;
    contended += st.contended;
  }
}

/// Handle `stream <n> [interval_ms]`: n ticks of aggregate deltas,
/// one line per tick, flushed as they happen.
bool handle_stream(Server& srv, int fd, const std::vector<std::string>& w) {
  std::uint64_t ticks = 0, interval_ms = 200;
  if (w.size() < 2 || !parse_ms(w[1], ticks) || ticks == 0) {
    return reply_err(fd, "stream needs a tick count >= 1");
  }
  if (w.size() >= 3 && (!parse_ms(w[2], interval_ms) || interval_ms == 0)) {
    return reply_err(fd, "bad stream interval");
  }
  if (ticks > 1000) ticks = 1000;
  if (interval_ms > 10'000) interval_ms = 10'000;
  std::uint64_t prev_acq = 0, prev_con = 0;
  totals(prev_acq, prev_con);
  for (std::uint64_t i = 0; i < ticks; ++i) {
    // relaxed: stop gate; the join in introspect_stop synchronizes.
    if (srv.stop.load(std::memory_order_relaxed)) break;
    qsv::platform::thread_sleep(std::chrono::milliseconds(interval_ms));
    std::uint64_t acq = 0, con = 0;
    totals(acq, con);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "tick %llu acq=%llu contended=%llu locks=%zu\n",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(acq - prev_acq),
                  static_cast<unsigned long long>(con - prev_con),
                  size());
    prev_acq = acq;
    prev_con = con;
    if (!send_all(fd, buf)) return false;
  }
  return send_all(fd, ".\n");
}

/// Dispatch one command line. Returns false when the connection is
/// done (quit/shutdown/IO error).
bool handle_line(Server& srv, int fd, const std::string& line) {
  const std::vector<std::string> w = split_words(line);
  if (w.empty()) return reply(fd, "");
  const std::string& cmd = w[0];
  if (cmd == "help") {
    return reply(fd,
                 "commands: help | list | stat <lock> | hazards "
                 "[hold_ms [starve_ms]] | stream <n> [interval_ms] | "
                 "shutdown | quit\n");
  }
  if (cmd == "list") {
    return reply(fd, dump());
  }
  if (cmd == "stat") {
    if (w.size() < 2) return reply_err(fd, "stat needs a lock name");
    const std::string text = dump_stat(w[1]);
    if (text.empty()) return reply_err(fd, "no such lock '" + w[1] + "'");
    return reply(fd, text);
  }
  if (cmd == "hazards") {
    std::uint64_t hold_ms = kDefaultLongHoldNs / 1'000'000;
    std::uint64_t starve_ms = kDefaultStarvationNs / 1'000'000;
    if (w.size() >= 2 && !parse_ms(w[1], hold_ms)) {
      return reply_err(fd, "bad hold threshold");
    }
    if (w.size() >= 3 && !parse_ms(w[2], starve_ms)) {
      return reply_err(fd, "bad starvation threshold");
    }
    std::string out;
    for (const std::string& h : hazard_log()) {
      out += "history " + h + "\n";
    }
    for (const std::string& h :
         detect_hazards(hold_ms * 1'000'000, starve_ms * 1'000'000)) {
      out += "live " + h + "\n";
    }
    return reply(fd, out);
  }
  if (cmd == "stream") {
    return handle_stream(srv, fd, w);
  }
  if (cmd == "shutdown") {
    // relaxed: advisory flag polled by the hosting serve loop.
    srv.shutdown_requested.store(true, std::memory_order_relaxed);
    reply(fd, "ok shutting down\n");
    return false;
  }
  if (cmd == "quit") {
    reply(fd, "ok bye\n");
    return false;
  }
  return reply_err(fd, "unknown command '" + cmd + "'");
}

/// Serve one client: buffered line reads, poll so stop stays
/// responsive, hard cap on line length (malformed input is rejected,
/// never buffered without bound).
void serve_client(Server& srv, int fd) {
  constexpr std::size_t kMaxLine = 512;
  std::string buf;
  char chunk[256];
  // relaxed: stop gate (see introspect_stop).
  while (!srv.stop.load(std::memory_order_relaxed)) {
    struct pollfd p {};
    p.fd = fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, 200);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!handle_line(srv, fd, line)) {
        ::close(fd);
        return;
      }
    }
    if (buf.size() > kMaxLine) {
      reply_err(fd, "line too long");
      break;
    }
  }
  ::close(fd);
}

void accept_loop(Server& srv) {
  // relaxed: stop gate (see introspect_stop).
  while (!srv.stop.load(std::memory_order_relaxed)) {
    struct pollfd p {};
    p.fd = srv.listen_fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, 200);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    const int client = ::accept(srv.listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    serve_client(srv, client);
  }
}

}  // namespace

std::uint16_t introspect_start(std::uint16_t port) {
  Server& srv = server();
  // relaxed: start/stop are caller-serialized; the thread join carries
  // any needed ordering.
  if (srv.running.load(std::memory_order_relaxed)) return srv.port;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 4) < 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    ::close(fd);
    return 0;
  }
  srv.listen_fd = fd;
  srv.port = ntohs(addr.sin_port);
  // relaxed: flags read by the new thread; std::thread construction
  // carries the happens-before.
  srv.stop.store(false, std::memory_order_relaxed);
  srv.shutdown_requested.store(false, std::memory_order_relaxed);  // relaxed: as above
  srv.thread = std::thread([&srv] { accept_loop(srv); });
  srv.running.store(true, std::memory_order_relaxed);  // relaxed: as above
  return srv.port;
}

void introspect_stop() {
  Server& srv = server();
  // relaxed: start/stop caller-serialized (see introspect_start).
  if (!srv.running.load(std::memory_order_relaxed)) return;
  srv.stop.store(true, std::memory_order_relaxed);  // relaxed: poll-gated
  if (srv.thread.joinable()) srv.thread.join();
  ::close(srv.listen_fd);
  srv.listen_fd = -1;
  srv.running.store(false, std::memory_order_relaxed);  // relaxed: as above
}

bool introspect_running() {
  // relaxed: advisory query.
  return server().running.load(std::memory_order_relaxed);
}

bool introspect_shutdown_requested() {
  // relaxed: advisory flag polled by the hosting serve loop.
  return server().shutdown_requested.load(std::memory_order_relaxed);
}

}  // namespace qsv::obs
