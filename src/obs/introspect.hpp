// introspect.hpp — the live introspection endpoint.
//
// A minimal line-oriented text protocol over a loopback TCP socket
// (the deployable shape: attach to a live process, list its locks,
// stream contention — no debugger, no restart). One server per
// process, one client at a time; the protocol is specified in
// docs/INTROSPECTION.md and exercised by tests/introspect_test.cpp.
//
// Commands: help, list, stat <lock>, hazards [hold_ms [starve_ms]],
// stream <n> [interval_ms], shutdown, quit. Every response ends with a
// line containing a single "."; errors are one "err ..." line.
#pragma once

#include <cstdint>

namespace qsv::obs {

/// Start serving on 127.0.0.1:`port` (0 picks an ephemeral port).
/// Returns the bound port, or 0 on failure (socket unavailable, port
/// in use). Idempotent: a second call while running returns the
/// current port.
std::uint16_t introspect_start(std::uint16_t port);

/// Stop the server and join its thread. Safe to call when not running.
void introspect_stop();

/// True between a successful start and stop.
bool introspect_running();

/// True once a client has issued the `shutdown` command — the hosting
/// process (qsvbench --introspect) watches this to exit its serve
/// loop. Cleared by introspect_start.
bool introspect_shutdown_requested();

}  // namespace qsv::obs
