// tas.hpp — test-and-set spin lock.
//
// The 1991 strawman baseline: one shared flag, every waiter hammers it
// with atomic exchanges. Each failed exchange still acquires the cache
// line exclusively, so P waiters generate O(P) coherence transactions per
// handoff and the bus saturates. Kept deliberately naive.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"

namespace qsv::locks {

class TasLock {
 public:
  TasLock() = default;
  TasLock(const TasLock&) = delete;
  TasLock& operator=(const TasLock&) = delete;

  void lock() noexcept {
    // acquire on success orders the critical section after the exchange.
    if (flag_.exchange(1, std::memory_order_acquire) == 0) {
      qsv::obs::count_acquire(obs_.rec());
      return;
    }
    const std::uint64_t t0 = qsv::obs::wait_begin_ns(obs_.rec());
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      qsv::platform::cpu_relax();
    }
    qsv::obs::count_contended_acquire(obs_.rec(), t0);
  }

  bool try_lock() noexcept {
    if (flag_.exchange(1, std::memory_order_acquire) == 0) {
      qsv::obs::count_acquire(obs_.rec());
      return true;
    }
    return false;
  }

  void unlock() noexcept {
    qsv::obs::note_release(obs_.rec());
    // release publishes the critical section to the next acquirer.
    flag_.store(0, std::memory_order_release);
  }

  /// unlock() touches no per-thread state (see hier/cohort_lock.hpp).
  static constexpr bool kThreadObliviousUnlock = true;

  static constexpr const char* name() noexcept { return "tas"; }

  /// Space occupied by the lock itself (Table 2).
  static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(std::atomic<std::uint32_t>);
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> flag_{0};
};

}  // namespace qsv::locks
