// detail.hpp — alias of the shared node machinery for the lock baselines.
#pragma once

#include "platform/node_arena.hpp"

namespace qsv::locks::detail {

using qsv::platform::HeldMap;
using qsv::platform::NodeArena;

}  // namespace qsv::locks::detail
