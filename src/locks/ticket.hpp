// ticket.hpp — FIFO ticket lock with optional proportional backoff.
//
// fetch&add hands out tickets; a single "now serving" word grants them in
// order. Fair by construction, O(1) RMWs per acquisition, but every
// release invalidates the serving word in *all* waiters' caches, so
// traffic is O(P) per handoff — the precise deficiency queue locks fix.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"

namespace qsv::locks {

/// Plain ticket lock: head-of-line waiter polls continuously.
class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() noexcept {
    // relaxed: ticket draw; the acquire spin on now_serving_ is the
    // synchronization point.
    const std::uint32_t me =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    if (now_serving_.load(std::memory_order_acquire) == me) {
      qsv::obs::count_acquire(obs_.rec());
      return;
    }
    const std::uint64_t t0 = qsv::obs::wait_begin_ns(obs_.rec());
    while (now_serving_.load(std::memory_order_acquire) != me) {
      qsv::platform::cpu_relax();
    }
    qsv::obs::count_contended_acquire(obs_.rec(), t0);
  }

  bool try_lock() noexcept {
    // relaxed: sample only; the CAS below validates it.
    std::uint32_t serving = now_serving_.load(std::memory_order_relaxed);
    std::uint32_t expected = serving;
    // Succeed only if no ticket is outstanding: next == serving and we can
    // claim it.
    // relaxed: failure order — a failed try_lock reads nothing.
    if (next_ticket_.compare_exchange_strong(
            expected, serving + 1, std::memory_order_acquire,
            std::memory_order_relaxed) &&
        expected == serving) {
      qsv::obs::count_acquire(obs_.rec());
      return true;
    }
    return false;
  }

  void unlock() noexcept {
    qsv::obs::note_release(obs_.rec());
    // Only the holder writes now_serving_, so a plain add-and-store works.
    // relaxed: reading back our own exclusive word.
    now_serving_.store(now_serving_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
  }

  /// unlock() touches no per-thread state, so any thread may release a
  /// held ticket lock — the property the cohort combinator needs from
  /// its global tier when no hold transfer is available
  /// (hier/cohort_lock.hpp).
  static constexpr bool kThreadObliviousUnlock = true;

  static constexpr const char* name() noexcept { return "ticket"; }
  static constexpr std::size_t footprint_bytes() noexcept {
    return 2 * sizeof(std::atomic<std::uint32_t>);
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  // Ticket dispenser and grant word on separate line pairs: waiters'
  // fetch&adds must not steal the line the head waiter is polling.
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> next_ticket_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> now_serving_{0};
};

/// Ticket lock with proportional backoff: a waiter k positions from the
/// head pauses ~k slots between polls (Anderson 1990, MCS '91 §2.2).
class TicketLockProportional {
 public:
  explicit TicketLockProportional(std::uint32_t slot = 32) noexcept
      : backoff_(slot) {}
  TicketLockProportional(const TicketLockProportional&) = delete;
  TicketLockProportional& operator=(const TicketLockProportional&) = delete;

  void lock() noexcept {
    // relaxed: ticket draw; the acquire spin on now_serving_ is the
    // synchronization point.
    const std::uint32_t me =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t t0 = 0;
    for (;;) {
      const std::uint32_t serving =
          now_serving_.load(std::memory_order_acquire);
      if (serving == me) break;
      if (t0 == 0) t0 = qsv::obs::wait_begin_ns(obs_.rec());
      backoff_.wait(me - serving);  // wraparound-safe distance
    }
    if (t0 != 0) {
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    } else {
      qsv::obs::count_acquire(obs_.rec());
    }
  }

  void unlock() noexcept {
    qsv::obs::note_release(obs_.rec());
    // relaxed: reading back our own exclusive word.
    now_serving_.store(now_serving_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
  }

  static constexpr const char* name() noexcept { return "ticket+prop"; }
  static constexpr std::size_t footprint_bytes() noexcept {
    return 2 * sizeof(std::atomic<std::uint32_t>);
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> next_ticket_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> now_serving_{0};
  qsv::platform::ProportionalBackoff backoff_;
};

}  // namespace qsv::locks
