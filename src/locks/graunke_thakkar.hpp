// graunke_thakkar.hpp — Graunke & Thakkar's array queue lock (1990).
//
// Like Anderson's lock, waiters spin on per-thread flags; unlike it, the
// queue is threaded through a single fetch&store word carrying (pointer to
// predecessor's flag, predecessor's flag value at enqueue). Each thread
// owns a permanent flag per lock, indexed by its dense thread id, and
// releases by flipping its own flag — release writes only thread-local
// state.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/node_arena.hpp"
#include "platform/thread_id.hpp"

namespace qsv::locks {

class GraunkeThakkarLock {
 public:
  /// `capacity` = maximum dense thread index + 1 that may ever use this
  /// lock instance.
  explicit GraunkeThakkarLock(std::size_t capacity)
      : flags_(capacity), init_flag_(0) {
    for (std::size_t i = 0; i < capacity; ++i) {
      flags_[i].store(0, std::memory_order_relaxed);  // relaxed: ctor
    }
    // Tail starts pointing at a dedicated always-"released" flag. The
    // spin condition waits until the predecessor's flag *differs* from
    // the recorded parity, so the recorded parity (1) must be the
    // opposite of the flag's actual value (0): the first locker then
    // sees its predecessor as already done and enters immediately.
    // relaxed: single-threaded construction.
    tail_.store(pack(&init_flag_, 1), std::memory_order_relaxed);
  }
  GraunkeThakkarLock(const GraunkeThakkarLock&) = delete;
  GraunkeThakkarLock& operator=(const GraunkeThakkarLock&) = delete;

  void lock() noexcept {
    const std::size_t me = qsv::platform::thread_index();
    // Deterministic abort rather than release-build UB: `me` is the
    // dense thread index — recycled at thread exit, so bounded by the
    // process's *concurrent*-thread high-water mark, not by this run's
    // contender count. An instance sized to the latter silently
    // corrupts the heap once higher indices exist. The catalogue
    // therefore sizes GT by kMaxThreads; direct users get the same
    // loud contract.
    if (me >= flags_.size()) {
      qsv::platform::detail::node_fatal(
          "GraunkeThakkarLock: dense thread index exceeds capacity");
    }
    auto& my_flag = flags_[me];
    // relaxed: reading back our own flag (only we ever write it).
    const std::uint64_t self =
        pack(&my_flag, my_flag.load(std::memory_order_relaxed) & 1u);
    // Swap myself in; learn who is ahead and what their flag looked like
    // when they enqueued. acq_rel: acquire their published node, release
    // my own flag state to my successor.
    const std::uint64_t prev = tail_.exchange(self, std::memory_order_acq_rel);
    const auto* prev_flag = flag_of(prev);
    const std::uint32_t prev_val = value_of(prev);
    // Predecessor releases by flipping its flag away from the recorded
    // value. acquire pairs with their release store.
    std::uint64_t t0 = 0;
    while ((prev_flag->load(std::memory_order_acquire) & 1u) == prev_val) {
      if (t0 == 0) t0 = qsv::obs::wait_begin_ns(obs_.rec());
      qsv::platform::cpu_relax();
    }
    if (t0 != 0) {
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    } else {
      qsv::obs::count_acquire(obs_.rec());
    }
  }

  void unlock() noexcept {
    qsv::obs::note_release(obs_.rec());
    const std::size_t me = qsv::platform::thread_index();
    auto& my_flag = flags_[me];
    // Flip my own flag: one write, to a line only my successor polls.
    // relaxed: reading back our own flag; the release store publishes.
    my_flag.store(my_flag.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
  }

  static constexpr const char* name() noexcept { return "graunke-thakkar"; }

  std::size_t footprint_bytes() const noexcept {
    return flags_.footprint_bytes() + 2 * qsv::platform::kFalseSharingRange;
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  using Flag = std::atomic<std::uint32_t>;

  // Flags are >= 4-byte aligned, so bit 0 of the pointer is free to carry
  // the recorded parity.
  static std::uint64_t pack(const Flag* f, std::uint32_t parity) noexcept {
    return reinterpret_cast<std::uint64_t>(f) | parity;
  }
  static const Flag* flag_of(std::uint64_t packed) noexcept {
    return reinterpret_cast<const Flag*>(packed & ~1ULL);
  }
  static std::uint32_t value_of(std::uint64_t packed) noexcept {
    return static_cast<std::uint32_t>(packed & 1ULL);
  }

  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  qsv::platform::PaddedArray<Flag> flags_;
  alignas(qsv::platform::kFalseSharingRange) Flag init_flag_;
  alignas(qsv::platform::kFalseSharingRange) std::atomic<std::uint64_t> tail_;
};

}  // namespace qsv::locks
