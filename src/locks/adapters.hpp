// adapters.hpp — standard-library locks behind the qsv Lockable concept.
#pragma once

#include <mutex>

namespace qsv::locks {

/// std::mutex (glibc: futex-based) — the "what the mechanism became"
/// modern baseline for every wall-clock experiment.
class StdMutexAdapter {
 public:
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  static constexpr const char* name() noexcept { return "std::mutex"; }
  static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(std::mutex);
  }

 private:
  std::mutex mu_;
};

}  // namespace qsv::locks
