// mcs.hpp — Mellor-Crummey & Scott list-based queue lock (1991).
//
// The contemporaneous rival of the reconstructed QSV mechanism. Waiters
// enqueue with fetch&store and spin on a flag in their *own* node (unlike
// CLH's predecessor spin), which makes it the right base for NUMA
// machines where a thread's own node can live in local memory. Release
// must handle the "no successor visible yet" race with compare&swap.
#pragma once

#include <atomic>
#include <cstdint>

#include "locks/detail.hpp"
#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::locks {

template <typename Wait = qsv::platform::RuntimeWait>
class McsLock {
 public:
  explicit McsLock(Wait waiter = Wait{}) : waiter_(waiter) {
    if constexpr (requires { waiter_.consult_telemetry(obs_.rec()); }) {
      waiter_.consult_telemetry(obs_.rec());
    }
  }
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock() {
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel exchange below publishes it.
    n->next.store(nullptr, std::memory_order_relaxed);
    n->granted.store(0, std::memory_order_relaxed);  // relaxed: as above
    // acq_rel: publish my node, observe predecessor's.
    Node* pred = tail_.exchange(n, std::memory_order_acq_rel);
    if (pred != nullptr) {
      const std::uint64_t t0 = qsv::obs::wait_begin_ns(obs_.rec());
      // Link myself; predecessor's unlock will grant me. release pairs
      // with the unlock's acquire load of next.
      pred->next.store(n, std::memory_order_release);
      waiter_.wait_while_equal(n->granted, 0u);
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    } else {
      qsv::obs::count_acquire(obs_.rec());
    }
    Held::local().insert(this, n);
  }

  bool try_lock() {
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel CAS below publishes it on success.
    n->next.store(nullptr, std::memory_order_relaxed);
    n->granted.store(0, std::memory_order_relaxed);  // relaxed: as above
    Node* expected = nullptr;
    // relaxed: failure order — a failed try_lock reads nothing.
    if (tail_.compare_exchange_strong(expected, n, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      qsv::obs::count_acquire(obs_.rec());
      Held::local().insert(this, n);
      return true;
    }
    Arena::instance().release(n);
    return false;
  }

  void unlock() {
    auto& e = Held::local().find(this);
    Node* n = e.node;
    Held::local().erase(e);
    Node* next = n->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      // No successor linked yet. If the tail is still me, the queue is
      // empty: swing it back to null and we are done.
      Node* expected = n;
      // relaxed: failure order — failure only means a successor is
      // linking; the acquire re-load of next carries the ordering.
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        qsv::obs::count_free_release(obs_.rec());
        Arena::instance().release(n);
        return;
      }
      // A successor swapped the tail but has not stored next yet: wait
      // out the tiny window.
      while ((next = n->next.load(std::memory_order_acquire)) == nullptr) {
        qsv::platform::cpu_relax();
      }
    }
    qsv::obs::count_handoff(obs_.rec());
    next->granted.store(1, std::memory_order_release);
    waiter_.notify_all(next->granted);
    Arena::instance().release(n);
  }

  /// Hand the unlock obligation to another thread (the cohort
  /// combinator's hook — see QsvMutex::export_hold for the contract).
  void* export_hold() {
    auto& e = Held::local().find(this);
    Node* n = e.node;
    Held::local().erase(e);
    return n;
  }
  void adopt_hold(void* hold) {
    Held::local().insert(this, static_cast<Node*>(hold));
  }

  static constexpr const char* name() noexcept { return "mcs"; }
  static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(std::atomic<void*>);  // tail; one node per waiting thread
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  friend struct qsv::platform::LayoutAuditAccess;

  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> granted{0};
  };
  using Arena = detail::NodeArena<Node>;
  using Held = detail::HeldMap<Node>;

  /// How this instance's waiters wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<Node*> tail_{nullptr};
};

}  // namespace qsv::locks
