// clh.hpp — Craig / Landin & Hagersten list-based queue lock.
//
// Each waiter enqueues a node via one fetch&store on the tail and spins
// on its *predecessor's* node. Release is a single store to the node the
// successor is already watching. After release a thread's own node is
// still being polled by its successor, so the releaser adopts the
// predecessor's (now quiescent) node for future use — the famous CLH
// node-recycling trick, hidden here behind the arena/held-map machinery.
#pragma once

#include <atomic>
#include <cstdint>

#include "locks/detail.hpp"
#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::locks {

template <typename Wait = qsv::platform::RuntimeWait>
class ClhLock {
 public:
  explicit ClhLock(Wait waiter = Wait{}) : waiter_(waiter) {
    if constexpr (requires { waiter_.consult_telemetry(obs_.rec()); }) {
      waiter_.consult_telemetry(obs_.rec());
    }
    // The queue needs a sentinel "already released" node for the first
    // arrival to observe.
    Node* sentinel = Arena::instance().acquire();
    // relaxed: single-threaded construction.
    sentinel->released.store(1, std::memory_order_relaxed);
    tail_.store(sentinel, std::memory_order_relaxed);  // relaxed: ctor
  }
  ClhLock(const ClhLock&) = delete;
  ClhLock& operator=(const ClhLock&) = delete;
  ~ClhLock() {
    // When no one holds or waits, tail_ points at a quiescent node that
    // now belongs to nobody; return it to the arena's global pool via the
    // destructing thread's cache.
    // relaxed: destructor runs quiescent by precondition.
    Arena::instance().release(tail_.load(std::memory_order_relaxed));
  }

  void lock() {
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel exchange below publishes it.
    n->released.store(0, std::memory_order_relaxed);
    // acq_rel: release publishes my node's init; acquire receives the
    // predecessor's node contents.
    Node* pred = tail_.exchange(n, std::memory_order_acq_rel);
    // One extra acquire load classifies the acquisition for telemetry;
    // the wait below re-checks, so the protocol is unchanged.
    std::uint64_t t0 = 0;
    if (pred->released.load(std::memory_order_acquire) == 0) {
      t0 = qsv::obs::wait_begin_ns(obs_.rec());
    }
    waiter_.wait_while_equal(pred->released, 0u);
    if (t0 != 0) {
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    } else {
      qsv::obs::count_acquire(obs_.rec());
    }
    auto& e = Held::local().insert(this, n);
    e.aux = pred;  // adopt on unlock
  }

  void unlock() {
    qsv::obs::note_release(obs_.rec());
    auto& e = Held::local().find(this);
    Node* mine = e.node;
    Node* adopted = e.aux;
    Held::local().erase(e);
    // Single store the successor is spinning on; release publishes CS.
    mine->released.store(1, std::memory_order_release);
    waiter_.notify_all(mine->released);
    Arena::instance().release(adopted);
  }

  static constexpr const char* name() noexcept { return "clh"; }
  static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(std::atomic<void*>);  // tail word; nodes accounted per waiter
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  friend struct qsv::platform::LayoutAuditAccess;

  struct Node {
    std::atomic<std::uint32_t> released{0};
  };
  using Arena = detail::NodeArena<Node>;
  using Held = detail::HeldMap<Node>;

  /// How this instance's waiters wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  alignas(qsv::platform::kFalseSharingRange) std::atomic<Node*> tail_;
};

}  // namespace qsv::locks
