// lock_concept.hpp — the mutual-exclusion interface all locks implement.
#pragma once

#include <concepts>
#include <cstddef>
#include <utility>

namespace qsv::locks {

/// Minimal mutual-exclusion interface. Matches the BasicLockable pieces of
/// the standard library so std types drop in via adapters.
template <typename L>
concept Lockable = requires(L l) {
  { l.lock() } -> std::same_as<void>;
  { l.unlock() } -> std::same_as<void>;
  { L::name() } -> std::convertible_to<const char*>;
};

/// Locks that additionally support a non-blocking attempt.
template <typename L>
concept TryLockable = Lockable<L> && requires(L l) {
  { l.try_lock() } -> std::same_as<bool>;
};

/// RAII critical-section guard (scoped_lock equivalent for our concept).
template <Lockable L>
class Guard {
 public:
  explicit Guard(L& lock) : lock_(&lock) { lock_->lock(); }
  ~Guard() {
    if (lock_ != nullptr) lock_->unlock();
  }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
  Guard(Guard&& o) noexcept : lock_(std::exchange(o.lock_, nullptr)) {}
  Guard& operator=(Guard&&) = delete;

  /// Release early (idempotent with destruction).
  void unlock() {
    if (lock_ != nullptr) {
      lock_->unlock();
      lock_ = nullptr;
    }
  }

 private:
  L* lock_;
};

}  // namespace qsv::locks
