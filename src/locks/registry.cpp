#include "locks/registry.hpp"

#include "locks/adapters.hpp"
#include "locks/anderson.hpp"
#include "locks/clh.hpp"
#include "locks/graunke_thakkar.hpp"
#include "locks/mcs.hpp"
#include "locks/tas.hpp"
#include "locks/ticket.hpp"
#include "locks/ttas.hpp"

namespace qsv::locks {

namespace {

/// Wrap a concrete lock type (constructed with no arguments).
template <typename L>
class Erased final : public AnyLock {
 public:
  Erased() = default;
  template <typename... Args>
  explicit Erased(Args&&... args) : impl_(std::forward<Args>(args)...) {}
  void lock() override { impl_.lock(); }
  void unlock() override { impl_.unlock(); }
  std::size_t footprint() const override { return sizeof(L); }

 private:
  L impl_;
};

template <typename L>
LockFactory make_simple(const char* display) {
  return LockFactory{display, [](std::size_t) -> std::unique_ptr<AnyLock> {
                       return std::make_unique<Erased<L>>();
                     }};
}

template <typename L>
LockFactory make_with_capacity(const char* display) {
  return LockFactory{display,
                     [](std::size_t capacity) -> std::unique_ptr<AnyLock> {
                       return std::make_unique<Erased<L>>(capacity);
                     }};
}

}  // namespace

const std::vector<LockFactory>& lock_registry() {
  static const std::vector<LockFactory> registry = {
      make_simple<TasLock>("tas"),
      make_simple<TtasNoBackoffLock>("ttas"),
      make_simple<TtasLock<>>("ttas+backoff"),
      make_simple<TicketLock>("ticket"),
      make_simple<TicketLockProportional>("ticket+prop"),
      make_with_capacity<AndersonLock<>>("anderson"),
      make_with_capacity<GraunkeThakkarLock>("graunke-thakkar"),
      make_simple<ClhLock<>>("clh"),
      make_simple<McsLock<>>("mcs"),
      make_simple<StdMutexAdapter>("std::mutex"),
  };
  return registry;
}

const LockFactory* find_lock(const std::string& name) {
  for (const auto& f : lock_registry()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace qsv::locks
