// ttas.hpp — test-and-test-and-set lock with pluggable backoff.
//
// The classic fix to TAS: poll with plain loads (shared cache-line state,
// no bus traffic while the lock is held) and attempt the exchange only on
// observing it free. With capped exponential backoff this was the best
// *non-queue* lock of the era and is the main rival of the queue locks in
// experiments F1/F6/A3.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"

namespace qsv::locks {

template <typename Backoff = qsv::platform::ExponentialBackoff>
class TtasLock {
 public:
  TtasLock() = default;
  explicit TtasLock(Backoff proto) : backoff_proto_(proto) {}
  TtasLock(const TtasLock&) = delete;
  TtasLock& operator=(const TtasLock&) = delete;

  void lock() noexcept {
    Backoff backoff = backoff_proto_;
    std::uint64_t t0 = 0;
    for (;;) {
      // Read-only poll phase: stays in cache until the holder releases.
      // relaxed: poll only; the winning exchange is the acquire.
      while (flag_.load(std::memory_order_relaxed) != 0) {
        if (t0 == 0) t0 = qsv::obs::wait_begin_ns(obs_.rec());
        qsv::platform::cpu_relax();
      }
      if (flag_.exchange(1, std::memory_order_acquire) == 0) {
        if (t0 != 0) {
          qsv::obs::count_contended_acquire(obs_.rec(), t0);
        } else {
          qsv::obs::count_acquire(obs_.rec());
        }
        return;
      }
      backoff();  // lost the race to another poller: back off
    }
  }

  bool try_lock() noexcept {
    // relaxed: pre-check to avoid a doomed RMW; the acquire exchange
    // is the entry point.
    if (flag_.load(std::memory_order_relaxed) == 0 &&
        flag_.exchange(1, std::memory_order_acquire) == 0) {
      qsv::obs::count_acquire(obs_.rec());
      return true;
    }
    return false;
  }

  void unlock() noexcept {
    qsv::obs::note_release(obs_.rec());
    flag_.store(0, std::memory_order_release);
  }

  static constexpr const char* name() noexcept { return "ttas+backoff"; }
  static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(std::atomic<std::uint32_t>);
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> flag_{0};
  Backoff backoff_proto_{};
};

/// TTAS without backoff — the A3 ablation floor.
using TtasNoBackoffLock = TtasLock<qsv::platform::NoBackoff>;

}  // namespace qsv::locks
