// registry.hpp — type-erased catalogue of every mutual-exclusion
// algorithm in libqsv, so benches, examples, and integration tests can
// iterate "all locks" uniformly. Hot micro-benchmarks use the concrete
// types directly; the registry's virtual dispatch (~1ns) is identical
// across algorithms so comparative shapes are preserved.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace qsv::locks {

/// Type-erased mutual-exclusion handle.
class AnyLock {
 public:
  virtual ~AnyLock() = default;
  virtual void lock() = 0;
  virtual void unlock() = 0;
  /// Bytes of fixed per-instance state (Table 2's first column).
  virtual std::size_t footprint() const = 0;
};

/// Catalogue entry: display name + factory. `capacity` is the maximum
/// number of contending threads (array locks need it; others ignore it).
struct LockFactory {
  std::string name;
  std::function<std::unique_ptr<AnyLock>(std::size_t capacity)> make;
};

/// All algorithms, in the order the paper-style tables list them:
/// strawmen, array queue locks, list queue locks, QSV, modern baseline.
const std::vector<LockFactory>& lock_registry();

/// Look up one algorithm by name (returns nullptr factory on miss).
const LockFactory* find_lock(const std::string& name);

}  // namespace qsv::locks
