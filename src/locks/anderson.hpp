// anderson.hpp — Anderson's array-based queue lock (1990).
//
// The first lock with local spinning: each waiter spins on its own padded
// slot of a circular flag array, and release touches exactly one remote
// slot. Costs: the array must be sized for the maximum number of
// concurrent waiters, per *lock instance* — the space deficiency the
// list-based queue locks (CLH/MCS/QSV) repair.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::locks {

template <typename Wait = qsv::platform::RuntimeWait>
class AndersonLock {
 public:
  /// `capacity` must be >= the maximum number of threads that may contend
  /// simultaneously; rounded up to a power of two for cheap modulo.
  explicit AndersonLock(std::size_t capacity, Wait waiter = Wait{})
      : waiter_(waiter),
        mask_(qsv::platform::next_pow2(capacity) - 1),
        slots_(mask_ + 1) {
    if constexpr (requires { waiter_.consult_telemetry(obs_.rec()); }) {
      waiter_.consult_telemetry(obs_.rec());
    }
    // Slot 0 starts "granted": the first arrival proceeds immediately.
    // relaxed: single-threaded construction.
    slots_[0].store(kGranted, std::memory_order_relaxed);
    for (std::size_t i = 1; i <= mask_; ++i) {
      slots_[i].store(kWait, std::memory_order_relaxed);  // relaxed: ctor
    }
  }
  AndersonLock(const AndersonLock&) = delete;
  AndersonLock& operator=(const AndersonLock&) = delete;

  void lock() noexcept {
    // relaxed: slot draw; the acquire spin on the slot itself is the
    // synchronization point.
    const std::uint32_t pos =
        next_slot_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t slot = pos & mask_;
    // One extra acquire load classifies the acquisition for telemetry;
    // the wait below re-checks, so the protocol is unchanged.
    std::uint64_t t0 = 0;
    if (slots_[slot].load(std::memory_order_acquire) == kWait) {
      t0 = qsv::obs::wait_begin_ns(obs_.rec());
    }
    waiter_.wait_while_equal(slots_[slot], kWait);
    if (t0 != 0) {
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    } else {
      qsv::obs::count_acquire(obs_.rec());
    }
    // Only the holder reads/writes holder_slot_, inside the CS.
    holder_slot_ = slot;
  }

  void unlock() noexcept {
    qsv::obs::note_release(obs_.rec());
    const std::size_t slot = holder_slot_;
    // Re-arm my slot for its next lap around the ring...
    // relaxed: no waiter polls this slot until a full lap from now,
    // and every lap crosses the grant's release/acquire edge below.
    slots_[slot].store(kWait, std::memory_order_relaxed);
    // ...then grant the successor slot. Release publishes the CS.
    auto& next = slots_[(slot + 1) & mask_];
    next.store(kGranted, std::memory_order_release);
    waiter_.notify_all(next);
  }

  static constexpr const char* name() noexcept { return "anderson"; }

  std::size_t footprint_bytes() const noexcept {
    return slots_.footprint_bytes() + 2 * qsv::platform::kFalseSharingRange;
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  static constexpr std::uint32_t kWait = 0;
  static constexpr std::uint32_t kGranted = 1;

  /// How this instance's waiters wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> next_slot_{0};
  std::size_t mask_;
  qsv::platform::PaddedArray<std::atomic<std::uint32_t>> slots_;
  std::size_t holder_slot_ = 0;  // written only while holding the lock
};

}  // namespace qsv::locks
