// node_arena.hpp — node management shared by the queue-based primitives.
//
// MCS and CLH need one queue node per (thread, held lock). Exposing nodes
// in the public API is error-prone, so the locks draw nodes from a
// per-thread cache backed by a global arena and remember which node
// belongs to which lock in a small per-thread "held map". Nodes may
// migrate between threads (CLH adoption), so ultimate ownership rests
// with the arena, which frees everything at process exit.
//
// Fast paths: the arena fronts its per-thread vector cache with a
// single-slot cache, so the uncontended lock/unlock cycle — acquire one
// node, release one node — performs no vector operation and no
// allocation in steady state. The held map keeps a last-acquired hint
// and a free-slot hint, so the same cycle performs no linear scan.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "platform/cache.hpp"
#include "platform/hazard_hook.hpp"

namespace qsv::platform {

namespace detail {
/// Contract violations in the node layer (capacity overflow, unmatched
/// unlock) corrupt the queue protocols if allowed to continue; abort
/// deterministically in every build mode rather than fall into UB.
[[noreturn]] inline void node_fatal(const char* what) noexcept {
  std::fprintf(stderr, "libqsv node layer: %s\n", what);
  std::abort();
}
}  // namespace detail

/// Global allocator of line-aligned nodes of type `Node`. Allocation hits
/// the central mutex only when a thread's local caches are empty; steady
/// state is allocation-free. Nodes live until process exit, which makes
/// cross-thread node migration (CLH) safe by construction.
template <typename Node>
class NodeArena {
 public:
  static NodeArena& instance() {
    static NodeArena arena;
    return arena;
  }

  /// Get a node: single-slot fast cache, then the thread's vector cache,
  /// then the central arena.
  Node* acquire() {
    Node*& fast = fast_slot();
    if (fast != nullptr) {
      Node* n = fast;
      fast = nullptr;
      return n;
    }
    auto& cache = local_cache();
    if (!cache.empty()) {
      Node* n = cache.back();
      cache.pop_back();
      return n;
    }
    std::lock_guard<std::mutex> g(mu_);
    storage_.push_back(
        std::make_unique<Padded<Node>>());
    return &storage_.back()->value;
  }

  /// Return a node to the calling thread's caches. The single slot takes
  /// it when empty (the common un-nested case); overflow spills to the
  /// vector.
  void release(Node* n) {
    Node*& fast = fast_slot();
    if (fast == nullptr) {
      fast = n;
      return;
    }
    local_cache().push_back(n);
  }

  /// Total nodes ever created (space accounting for Table 2).
  std::size_t allocated() const {
    std::lock_guard<std::mutex> g(mu_);
    return storage_.size();
  }

 private:
  NodeArena() = default;

  static Node*& fast_slot() {
    thread_local Node* slot = nullptr;
    return slot;
  }

  static std::vector<Node*>& local_cache() {
    thread_local std::vector<Node*> cache;
    return cache;
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Padded<Node>>> storage_;
};

/// Per-thread map from lock instance to the node (and auxiliary pointer)
/// used for the in-flight acquisition. The last-acquired hint makes the
/// lock/unlock cycle O(1); deeper nesting falls back to a bounded linear
/// scan over thread-local memory (lock nesting depth in real programs is
/// tiny).
template <typename Node, std::size_t kMaxHeld = 32>
class HeldMap {
 public:
  struct Entry {
    const void* owner = nullptr;  ///< lock instance key
    Node* node = nullptr;         ///< node enqueued for this acquisition
    Node* aux = nullptr;          ///< CLH: predecessor node to adopt
  };

  /// Record an acquisition. The free-slot hint points at the most
  /// recently vacated slot, so the un-nested cycle never scans.
  /// Doubles as the hazard detectors' production feed: every node-based
  /// lock records held-while-acquiring edges through the platform-owned
  /// hazard_hook seam (one relaxed load when no detector is enabled,
  /// the default). The lock-order-inversion detector in src/trace/
  /// installs itself there — platform/ never includes upward.
  Entry& insert(const void* owner, Node* node) {
    if (hazard_hook::enabled()) hazard_hook::on_acquire(owner);
    std::size_t i = free_hint_;
    if (entries_[i].owner != nullptr) {
      i = kMaxHeld;
      for (std::size_t j = 0; j < kMaxHeld; ++j) {
        if (entries_[j].owner == nullptr) {
          i = j;
          break;
        }
      }
      if (i == kMaxHeld) {
        detail::node_fatal("lock nesting depth exceeds HeldMap capacity");
      }
    }
    Entry& e = entries_[i];
    e.owner = owner;
    e.node = node;
    e.aux = nullptr;
    last_ = i;
    return e;
  }

  /// Find the entry for `owner`; the lock must be held by this thread.
  /// O(1) when `owner` was the most recent insert (the uncontended
  /// lock/unlock cycle and well-nested critical sections).
  Entry& find(const void* owner) {
    Entry& hint = entries_[last_];
    if (hint.owner == owner) return hint;
    for (std::size_t j = 0; j < kMaxHeld; ++j) {
      if (entries_[j].owner == owner) {
        last_ = j;
        return entries_[j];
      }
    }
    detail::node_fatal("unlock of a lock this thread does not hold");
  }

  /// Erase after release; the vacated slot becomes the next insert's
  /// first candidate.
  void erase(Entry& e) {
    if (hazard_hook::enabled()) hazard_hook::on_release(e.owner);
    e.owner = nullptr;
    e.node = nullptr;
    e.aux = nullptr;
    free_hint_ = static_cast<std::size_t>(&e - entries_);
  }

  /// Access the calling thread's map for a given (Node, lock-type) pair.
  static HeldMap& local() {
    thread_local HeldMap map;
    return map;
  }

 private:
  Entry entries_[kMaxHeld]{};
  std::size_t last_ = 0;       ///< slot of the most recent insert/find
  std::size_t free_hint_ = 0;  ///< slot of the most recent erase
};

}  // namespace qsv::platform
