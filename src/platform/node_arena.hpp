// node_arena.hpp — node management shared by the queue-based primitives.
//
// MCS and CLH need one queue node per (thread, held lock). Exposing nodes
// in the public API is error-prone, so the locks draw nodes from a
// per-thread cache backed by a global arena and remember which node
// belongs to which lock in a small per-thread "held map". Nodes may
// migrate between threads (CLH adoption), so ultimate ownership rests
// with the arena, which frees everything at process exit.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "platform/cache.hpp"

namespace qsv::platform {

/// Global allocator of line-aligned nodes of type `Node`. Allocation hits
/// the central mutex only when a thread's local cache is empty; steady
/// state is allocation-free. Nodes live until process exit, which makes
/// cross-thread node migration (CLH) safe by construction.
template <typename Node>
class NodeArena {
 public:
  static NodeArena& instance() {
    static NodeArena arena;
    return arena;
  }

  /// Get a node, preferring the calling thread's cache.
  Node* acquire() {
    auto& cache = local_cache();
    if (!cache.empty()) {
      Node* n = cache.back();
      cache.pop_back();
      return n;
    }
    std::lock_guard<std::mutex> g(mu_);
    storage_.push_back(
        std::make_unique<Padded<Node>>());
    return &storage_.back()->value;
  }

  /// Return a node to the calling thread's cache.
  void release(Node* n) { local_cache().push_back(n); }

  /// Total nodes ever created (space accounting for Table 2).
  std::size_t allocated() const {
    std::lock_guard<std::mutex> g(mu_);
    return storage_.size();
  }

 private:
  NodeArena() = default;

  static std::vector<Node*>& local_cache() {
    thread_local std::vector<Node*> cache;
    return cache;
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Padded<Node>>> storage_;
};

/// Per-thread map from lock instance to the node (and auxiliary pointer)
/// used for the in-flight acquisition. Bounded linear scan: lock nesting
/// depth in real programs is tiny, and the scan touches only thread-local
/// memory.
template <typename Node, std::size_t kMaxHeld = 32>
class HeldMap {
 public:
  struct Entry {
    const void* owner = nullptr;  ///< lock instance key
    Node* node = nullptr;         ///< node enqueued for this acquisition
    Node* aux = nullptr;          ///< CLH: predecessor node to adopt
  };

  /// Record an acquisition in the first free slot.
  Entry& insert(const void* owner, Node* node) {
    for (auto& e : entries_) {
      if (e.owner == nullptr) {
        e.owner = owner;
        e.node = node;
        e.aux = nullptr;
        return e;
      }
    }
    assert(false && "lock nesting depth exceeds HeldMap capacity");
    __builtin_unreachable();
  }

  /// Find the entry for `owner`; the lock must be held by this thread.
  Entry& find(const void* owner) {
    for (auto& e : entries_) {
      if (e.owner == owner) return e;
    }
    assert(false && "unlock of a lock this thread does not hold");
    __builtin_unreachable();
  }

  /// Erase after release.
  void erase(Entry& e) {
    e.owner = nullptr;
    e.node = nullptr;
    e.aux = nullptr;
  }

  /// Access the calling thread's map for a given (Node, lock-type) pair.
  static HeldMap& local() {
    thread_local HeldMap map;
    return map;
  }

 private:
  Entry entries_[kMaxHeld]{};
};

}  // namespace qsv::platform
