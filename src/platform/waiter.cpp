// waiter.cpp — process-wide waiting defaults (qsv/wait.hpp), their
// QSV_WAIT environment seeding, and the poll-cost calibration behind
// the registry-consulting adaptive mode.
#include "platform/waiter.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "platform/arch.hpp"
#include "platform/timing.hpp"
#include "qsv/wait.hpp"

namespace qsv::platform {

std::uint64_t ns_per_poll() noexcept {
  // Calibrated once, on first use: time a burst of cpu_relax polls.
  // The measurement is coarse (scheduling noise folds in), but the
  // consumer only needs the right order of magnitude to turn the
  // registry's nanosecond EWMA into a poll budget, and the result is
  // clamped there anyway.
  static const std::uint64_t per = [] {
    constexpr std::uint32_t kPolls = 4096;
    const std::uint64_t t0 = now_ns();
    for (std::uint32_t i = 0; i < kPolls; ++i) cpu_relax();
    const std::uint64_t t1 = now_ns();
    const std::uint64_t v = (t1 - t0) / kPolls;
    return v == 0 ? std::uint64_t{1} : v;
  }();
  return per;
}

}  // namespace qsv::platform

namespace qsv {
namespace {

struct Defaults {
  std::atomic<std::uint8_t> policy{
      static_cast<std::uint8_t>(wait_policy::spin)};
  std::atomic<std::uint32_t> spin_budget{1024};
};

/// The one mutable process state. Seeded from QSV_WAIT exactly once, on
/// first touch — before any get OR set, so a set_default_wait_policy()
/// call in main() is never clobbered by a later lazy env read.
Defaults& defaults() {
  static Defaults d;
  // Seed from the environment exactly once, before the first get or
  // set returns — so a set_default_wait_policy() call in main() is
  // never clobbered by a later lazy env read. apply_wait_env cannot be
  // reused here (it reads back through defaults(), which would
  // recurse), so parse into locals and store directly.
  static const bool seeded = [] {
    if (const char* env = std::getenv("QSV_WAIT")) {
      wait_policy p = wait_policy::spin;
      std::uint32_t budget = 1024;
      if (detail::parse_wait_env(env, p, budget)) {
        // relaxed: one-time init under the static-local guard, whose
        // release/acquire already orders it for every later reader.
        d.policy.store(static_cast<std::uint8_t>(p),
                       std::memory_order_relaxed);
        d.spin_budget.store(budget, std::memory_order_relaxed);  // relaxed: as above
      } else {
        std::fprintf(stderr,
                     "qsv: ignoring unrecognized QSV_WAIT value '%s' "
                     "(want spin|spin_yield|park|adaptive[:polls])\n",
                     env);
      }
    }
    return true;
  }();
  (void)seeded;
  return d;
}

}  // namespace

namespace detail {

/// Parse "policy" or "policy:polls" into (p, budget). On a plain
/// policy name the budget is left at its incoming value.
bool parse_wait_env(std::string_view value, wait_policy& p,
                    std::uint32_t& budget) noexcept {
  std::string_view name = value;
  std::string_view polls;
  if (const auto colon = value.find(':'); colon != std::string_view::npos) {
    name = value.substr(0, colon);
    polls = value.substr(colon + 1);
    if (polls.empty()) return false;
  }
  wait_policy parsed;
  if (!wait_policy_from_string(name, parsed)) return false;
  std::uint32_t parsed_budget = budget;
  if (!polls.empty()) {
    std::uint64_t v = 0;
    for (const char c : polls) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
      if (v > 0xFFFFFFFFull) return false;
    }
    if (v == 0) return false;  // a zero budget would mean "never spin,
                               // never yield" for spin_yield — reject
    parsed_budget = static_cast<std::uint32_t>(v);
  }
  p = parsed;
  budget = parsed_budget;
  return true;
}

bool apply_wait_env(std::string_view value) noexcept {
  wait_policy p = get_default_wait_policy();
  std::uint32_t budget = get_default_spin_budget();
  if (!parse_wait_env(value, p, budget)) return false;
  set_default_wait_policy(p);
  set_default_spin_budget(budget);
  return true;
}

}  // namespace detail

const char* wait_policy_name(wait_policy p) noexcept {
  switch (p) {
    case wait_policy::spin: return "spin";
    case wait_policy::spin_yield: return "spin_yield";
    case wait_policy::park: return "park";
    case wait_policy::adaptive: return "adaptive";
  }
  return "?";
}

bool wait_policy_from_string(std::string_view text,
                             wait_policy& out) noexcept {
  if (text == "spin") {
    out = wait_policy::spin;
  } else if (text == "spin_yield" || text == "yield") {
    out = wait_policy::spin_yield;
  } else if (text == "park") {
    out = wait_policy::park;
  } else if (text == "adaptive") {
    out = wait_policy::adaptive;
  } else {
    return false;
  }
  return true;
}

wait_policy get_default_wait_policy() noexcept {
  // relaxed: process-wide tuning default; a racing set just means one
  // construction sees the old policy — both are valid configurations.
  return static_cast<wait_policy>(
      defaults().policy.load(std::memory_order_relaxed));
}

void set_default_wait_policy(wait_policy p) noexcept {
  // relaxed: tuning default (see get_default_wait_policy).
  defaults().policy.store(static_cast<std::uint8_t>(p),
                          std::memory_order_relaxed);
}

std::uint32_t get_default_spin_budget() noexcept {
  // relaxed: tuning default (see get_default_wait_policy).
  return defaults().spin_budget.load(std::memory_order_relaxed);
}

void set_default_spin_budget(std::uint32_t polls) noexcept {
  // relaxed: tuning default (see get_default_wait_policy).
  defaults().spin_budget.store(polls == 0 ? 1 : polls,
                               std::memory_order_relaxed);
}

}  // namespace qsv
