#include "platform/histogram.hpp"

#include <sstream>

namespace qsv::platform {

std::string LogHistogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << static_cast<std::uint64_t>(mean())
     << " p50<=" << quantile_upper_bound(0.50)
     << " p90<=" << quantile_upper_bound(0.90)
     << " p99<=" << quantile_upper_bound(0.99)
     << " p999<=" << quantile_upper_bound(0.999);
  return os.str();
}

}  // namespace qsv::platform
