// topology.hpp — runtime discovery of the machine's locality structure.
//
// The hierarchical (cohort) locks need to know which processors are
// "near" each other: handoffs inside a NUMA node or package are cheap,
// handoffs across them are the expensive traffic the cohort protocol
// exists to avoid. The 1991 testbeds had this structure wired into the
// machine description; on Linux it is discoverable at runtime from
// sysfs:
//
//   /sys/devices/system/node/node<N>/cpulist          node -> cpus
//   /sys/devices/system/cpu/cpu<C>/topology/physical_package_id
//
// discover_topology() parses both into a Topology (packages -> nodes ->
// cpus). The sysfs root is injectable so tests can feed fixture trees
// (multi-node, single-node, malformed); production callers use the
// cached process-wide topology(). Hosts without a node directory — the
// common container case — fall back gracefully to one node spanning
// every online cpu, so a Topology is never empty and cohort code needs
// no special case.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qsv::platform {

/// The machine's locality structure: packages contain nodes, nodes
/// contain cpus. Always well-formed — at least one node with at least
/// one cpu (the single-node fallback), node ids dense in [0, nodes()).
class Topology {
 public:
  struct Node {
    std::size_t id = 0;        ///< dense node index (not the sysfs id)
    int sysfs_id = 0;          ///< the node<N> number sysfs reported
    int package = 0;           ///< physical_package_id of its first cpu
    std::vector<int> cpus;     ///< logical cpu ids, ascending
  };

  explicit Topology(std::vector<Node> nodes);

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Number of distinct physical packages across the nodes.
  std::size_t package_count() const noexcept { return packages_; }

  /// Total cpus across all nodes.
  std::size_t cpu_count() const noexcept { return cpu_count_; }

  /// Dense node index owning logical cpu `cpu`; cpus sysfs did not list
  /// (hotplugged after discovery, fixture gaps) map to node 0 so the
  /// cohort layer never indexes out of range.
  std::size_t node_of_cpu(int cpu) const noexcept;

  /// True when discovery found no multi-node structure and fell back to
  /// the single all-cpus node.
  bool is_fallback() const noexcept { return fallback_; }

 private:
  friend Topology discover_topology(const std::string& root);

  std::vector<Node> nodes_;
  std::vector<std::size_t> cpu_to_node_;  ///< index = cpu id
  std::size_t packages_ = 1;
  std::size_t cpu_count_ = 0;
  bool fallback_ = false;
};

/// Largest logical cpu id discovery will believe. Fragments beyond it
/// are malformed by definition: real machines stay far below, and an
/// unbounded id would size cpu-indexed tables from garbage input.
inline constexpr int kMaxCpuId = 4095;

/// Parse the cpulist syntax sysfs uses ("0-3,8,10-11"). Returns the ids
/// in ascending order; malformed fragments — including ids beyond
/// kMaxCpuId — are skipped rather than trusted (a garbage sysfs must
/// not produce a garbage cohort map).
std::vector<int> parse_cpulist(const std::string& text);

/// Discover the topology under `root` (default the real sysfs). A tree
/// without node directories — or an unreadable one — yields the
/// single-node fallback over the online cpus (hardware_concurrency when
/// even the cpu directories are missing).
Topology discover_topology(const std::string& root = "/sys");

/// The process-wide topology, discovered once from the real sysfs.
const Topology& topology();

/// Build a synthetic machine for the simulator's scale-oracle runs:
/// `packages` physical packages, `nodes` NUMA nodes spread evenly
/// across them, `cpus_per_node` cpus per node with dense logical ids
/// [0, nodes*cpus_per_node). The result is indistinguishable from a
/// discovered Topology, so the cohort layer and sim::Machine consume
/// machines we do not have (4-socket, 1024-cpu fabrics) through the
/// same interface as the real host. Input that cannot form a
/// well-formed machine aborts deterministically (the cohort-layer
/// precedent, see cohort_map.hpp): zero packages/nodes/cpus, a node
/// count not divisible across packages, or more total cpus than
/// kMaxCpuId+1.
Topology synthetic_topology(std::size_t packages, std::size_t nodes,
                            std::size_t cpus_per_node);

}  // namespace qsv::platform
