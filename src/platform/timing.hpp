// timing.hpp — monotonic time sources and scoped measurement.
#pragma once

#include <chrono>
#include <cstdint>

#include "platform/arch.hpp"

namespace qsv::platform {

/// Nanoseconds from the steady clock. The benchmark harness's primary
/// time source: monotonic, immune to NTP slew.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Serialize-free cycle counter for very short intervals (single
/// acquire/release pairs). Not comparable across sockets; used only for
/// deltas on a pinned thread.
inline std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return now_ns();
#endif
}

/// Measures wall time between construction and `elapsed_ns()` calls.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now_ns()) {}
  void restart() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

/// Estimate cycles per nanosecond by sampling tsc against the steady
/// clock. Cached after the first call; benches use it to convert rdtsc
/// deltas into nanoseconds.
double tsc_ghz();

}  // namespace qsv::platform
