// rng.hpp — small, fast, deterministic PRNGs for workloads and tests.
//
// Tests and benchmark workloads must be reproducible, so nothing in libqsv
// touches std::random_device. Every consumer takes an explicit seed.
#pragma once

#include <cstdint>

namespace qsv::platform {

/// SplitMix64 — tiny generator used to seed others and for cheap
/// per-thread decision streams. Passes BigCrush when used as a stream.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator for workload mixes.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (biased by < 2^-64; irrelevant for workload mixing).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace qsv::platform
