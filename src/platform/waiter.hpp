// waiter.hpp — the runtime waiting layer: AdaptiveWait and the
// RuntimeWait dispatcher behind qsv::wait_policy (include/qsv/wait.hpp).
//
// Every primitive used to be a template over a compile-time WaitPolicy
// (platform/wait.hpp), so the library shipped each lock three times and
// the choice was frozen into the binary. RuntimeWait makes the decision
// per *instance*, at construction: it carries the policy enum and
// dispatches on it with the spin fast-path inlined, so a spin-policy
// poll loop pays exactly one predictable branch on entry to the wait —
// not one per poll — and the non-spin paths live out of line.
//
// The static policies in platform/wait.hpp remain as the pinned,
// zero-state strategies (the ablation controls and the building blocks
// this dispatcher reuses); RuntimeWait is what the facade and the
// catalogue construct.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "qsv/wait.hpp"

namespace qsv::platform {

/// Measured cost of one spin poll (one load + cpu_relax) in
/// nanoseconds, calibrated once per process on first use (waiter.cpp).
/// Converts the registry's nanosecond wait EWMA into a poll budget.
std::uint64_t ns_per_poll() noexcept;

/// Adaptive spin-then-park: the spin budget is calibrated, per lock
/// instance, from an exponentially weighted moving average of observed
/// wake latency, and the waiter parks beyond it.
///
/// Rationale: parking costs a futex round trip (~2–10us). If grants
/// typically arrive sooner than that, spinning through them is cheaper
/// than sleeping; if they typically take longer, every poll past the
/// park cost is burned CPU (and on an oversubscribed machine, CPU
/// stolen from the very thread being waited on). So the budget tracks
/// 2x the typical observed wake latency, clamped to
/// [kMinSpinPolls, kMaxSpinPolls]: short-grant instances converge to
/// near-pure spinning, long-grant instances converge to spinning only
/// about as long as a park costs, then sleeping. A wait that outlives
/// the budget records the saturating sample kParkSamplePolls, so one
/// oversubscribed phase quickly drags the budget down to the park
/// regime and a later dedicated phase pulls it back up.
///
/// The EWMA word is shared by every thread waiting on the same
/// instance and updated with relaxed RMWs; races between samples are
/// benign (it is a heuristic, not a protocol state).
class AdaptiveWait {
 public:
  /// Calibration floor: never burn fewer polls than a cache miss is
  /// worth measuring against.
  static constexpr std::uint32_t kMinSpinPolls = 64;
  /// Calibration ceiling ~ the cost of a park/unpark round trip; the
  /// budget saturates here because spinning longer than parking costs
  /// can never win.
  static constexpr std::uint32_t kMaxSpinPolls = 8192;
  /// Sample recorded when a wait had to park (its true latency is
  /// unknown, only "longer than the budget").
  static constexpr std::uint32_t kParkSamplePolls = kMaxSpinPolls;
  /// EWMA smoothing: alpha = 1/8 per sample.
  static constexpr std::uint32_t kEwmaShift = 3;

  AdaptiveWait() = default;
  explicit AdaptiveWait(std::uint32_t seed_budget) { set_spin_budget(seed_budget); }
  // relaxed: copying a calibration sample; any torn-free value works.
  AdaptiveWait(const AdaptiveWait& other)
      : rec_(other.rec_),
        ewma_polls_(other.ewma_polls_.load(std::memory_order_relaxed)) {}
  AdaptiveWait& operator=(const AdaptiveWait&) = delete;

  /// Bind this waiter to its primitive's telemetry record. Closing the
  /// observability feedback loop: when obs::adaptive_from_registry()
  /// is on, the budget derives from the record's measured
  /// handoff-wait EWMA (wall nanoseconds, fed by every contended
  /// acquisition) instead of the private poll-count EWMA. Called once
  /// at primitive construction; a null record keeps private mode.
  void consult_telemetry(const qsv::obs::LockRec* rec) noexcept {
    rec_ = rec;
  }

  /// The calibrated budget: 2x the smoothed observed wake latency,
  /// clamped. This is the live value — it moves as waits are observed.
  std::uint32_t spin_budget() const noexcept {
    if (rec_ != nullptr && qsv::obs::adaptive_from_registry()) {
      const std::uint64_t ewma_ns = rec_->wait_ewma_ns();
      if (ewma_ns != 0) {
        // Same 2x-the-typical-wait rule as the private EWMA, but the
        // estimate is the registry's nanosecond measurement converted
        // through the calibrated poll cost.
        const std::uint64_t polls = 2 * ewma_ns / ns_per_poll();
        if (polls >= kMaxSpinPolls) return kMaxSpinPolls;
        return polls < kMinSpinPolls ? kMinSpinPolls
                                     : static_cast<std::uint32_t>(polls);
      }
    }
    // relaxed: calibration estimate — any recent value is as good as
    // the latest; the budget only shapes spin length, never safety.
    const std::uint32_t ewma = ewma_polls_.load(std::memory_order_relaxed);
    const std::uint32_t b = ewma >= kMaxSpinPolls / 2 ? kMaxSpinPolls
                                                      : 2 * ewma;
    return b < kMinSpinPolls ? kMinSpinPolls : b;
  }

  /// Reseed the calibration so the next wait spins ~`polls` before
  /// parking (the EWMA keeps adapting from there).
  void set_spin_budget(std::uint32_t polls) noexcept {
    // relaxed: calibration reseed; see spin_budget().
    ewma_polls_.store(polls / 2, std::memory_order_relaxed);
  }

  template <typename T>
  void wait_while_equal(const std::atomic<T>& flag, T expected) noexcept {
    if (chk_hook::active()) {
      // Under a chk scheduler (test builds only) the whole wait is the
      // scheduler's; calibration records nothing — there is no real
      // latency to observe.
      auto ready = [&flag, expected]() noexcept {
        return flag.load(std::memory_order_acquire) != expected;
      };
      chk_hook::block(ready);
      return;
    }
    const std::uint32_t budget = spin_budget();
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (flag.load(std::memory_order_acquire) != expected) {
        record(i);
        return;
      }
      cpu_relax();
    }
    record(kParkSamplePolls);
    while (flag.load(std::memory_order_acquire) == expected) {
      flag.wait(expected, std::memory_order_acquire);
    }
  }

  /// Predicate form: calibrated spin, then sleep on `word` between
  /// checks (whoever can make `done()` true must change `word` and
  /// notify). Parked predicate waits feed the calibration exactly like
  /// equality waits.
  template <typename T, typename Pred>
  void wait_until(const std::atomic<T>& word, Pred done) noexcept {
    if (chk_hook::active()) {
      chk_hook::block(done);
      return;
    }
    const std::uint32_t budget = spin_budget();
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (done()) {
        record(i);
        return;
      }
      cpu_relax();
    }
    record(kParkSamplePolls);
    for (;;) {
      const T v = word.load(std::memory_order_acquire);
      if (done()) return;
      word.wait(v, std::memory_order_acquire);
    }
  }

  /// Adaptive waiters may be parked, so wakes must be issued.
  template <typename T>
  void notify_one(std::atomic<T>& flag) noexcept {
    flag.notify_one();
  }
  template <typename T>
  void notify_all(std::atomic<T>& flag) noexcept {
    flag.notify_all();
  }

  static constexpr const char* name() noexcept { return "adaptive"; }

 private:
  void record(std::uint32_t polls) noexcept {
    // relaxed: EWMA update — a lost race drops one sample, which the
    // smoothing absorbs by design; ordering buys nothing here.
    const std::uint32_t ewma = ewma_polls_.load(std::memory_order_relaxed);
    const std::int32_t delta =
        static_cast<std::int32_t>(polls) - static_cast<std::int32_t>(ewma);
    // Arithmetic shift (C++20-defined on negatives) gives the EWMA
    // step; the +1 nudge keeps tiny positive deltas from stalling the
    // climb out of the all-zero-sample floor.
    std::int32_t step = delta >> kEwmaShift;
    if (step == 0 && delta > 0) step = 1;
    ewma_polls_.store(static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(ewma) + step),
                      std::memory_order_relaxed);  // relaxed: as above
  }

  /// The bound telemetry record (null = private calibration only).
  const qsv::obs::LockRec* rec_ = nullptr;
  /// Smoothed wake latency in polls. Seeded low so a fresh instance
  /// behaves like a short spinner until evidence says otherwise.
  std::atomic<std::uint32_t> ewma_polls_{kMinSpinPolls};
};

/// The runtime dispatcher: one waiting object that is any of the four
/// qsv::wait_policy strategies, chosen at construction. This is the
/// default `Wait` of every primitive — `qsv::mutex mu(wait_policy::park)`
/// plumbs the enum here — while the compile-time policies in
/// platform/wait.hpp stay usable for pinned instantiations.
class RuntimeWait {
 public:
  /// Defaults to the process-wide policy (qsv::get_default_wait_policy,
  /// seeded from QSV_WAIT) and the process-wide spin budget.
  RuntimeWait() : RuntimeWait(qsv::get_default_wait_policy()) {}

  /// Implicit on purpose: primitives take `Wait` by value, so the enum
  /// flows through constructors — QsvMutex<>(wait_policy::park).
  RuntimeWait(qsv::wait_policy policy)  // NOLINT(google-explicit-constructor)
      : policy_(policy),
        spin_budget_(qsv::get_default_spin_budget()),
        adaptive_(qsv::get_default_spin_budget()) {}

  // relaxed: copying a tuning knob; any torn-free value works.
  RuntimeWait(const RuntimeWait& other)
      : policy_(other.policy_),
        spin_budget_(other.spin_budget_.load(std::memory_order_relaxed)),
        adaptive_(other.adaptive_) {}
  RuntimeWait& operator=(const RuntimeWait&) = delete;

  qsv::wait_policy policy() const noexcept { return policy_; }

  /// Forward the telemetry binding to the adaptive arm (the only
  /// policy that consults it). Primitives call this unconditionally at
  /// construction via an `if constexpr (requires ...)` probe.
  void consult_telemetry(const qsv::obs::LockRec* rec) noexcept {
    adaptive_.consult_telemetry(rec);
  }

  /// The spin budget in polls: how long spin_yield and park spin before
  /// giving the processor away. For adaptive this is the live
  /// calibrated value. (This replaces the old hardwired
  /// SpinYieldWait::kSpinPolls = 1024; the default is
  /// qsv::get_default_spin_budget().)
  std::uint32_t spin_budget() const noexcept {
    // relaxed: tuning knob — shapes spin length only, never safety.
    return policy_ == qsv::wait_policy::adaptive
               ? adaptive_.spin_budget()
               : spin_budget_.load(std::memory_order_relaxed);
  }
  void set_spin_budget(std::uint32_t polls) noexcept {
    // relaxed: tuning knob (see spin_budget()).
    spin_budget_.store(polls == 0 ? 1 : polls, std::memory_order_relaxed);
    adaptive_.set_spin_budget(polls == 0 ? 1 : polls);
  }

  /// Block while `flag == expected`. The spin fast path is inlined
  /// behind one predictable branch; everything else is out of line.
  /// Under a chk scheduler (test builds only) the wait is handed to the
  /// scheduler whole — this entry IS the model checker's seam, the one
  /// point every primitive's terminal wait already funnels through.
  template <typename T>
  void wait_while_equal(const std::atomic<T>& flag, T expected) noexcept {
    if (chk_hook::active()) {
      auto ready = [&flag, expected]() noexcept {
        return flag.load(std::memory_order_acquire) != expected;
      };
      chk_hook::block(ready);
      return;
    }
    if (policy_ == qsv::wait_policy::spin) {
      while (flag.load(std::memory_order_acquire) == expected) cpu_relax();
      return;
    }
    wait_slow(flag, expected);
  }

  /// Predicate wait for protocol states that are not a single
  /// equality (masked bits, counters): spin on `done()`, and beyond
  /// the budget yield — or, for parking policies, sleep on `word`,
  /// whose writers must notify through this object. `word` must
  /// change whenever `done()` can become true.
  template <typename T, typename Pred>
  void wait_until(const std::atomic<T>& word, Pred done) noexcept {
    if (chk_hook::active()) {
      chk_hook::block(done);
      return;
    }
    if (policy_ == qsv::wait_policy::spin) {
      while (!done()) cpu_relax();
      return;
    }
    if (policy_ == qsv::wait_policy::adaptive) {
      adaptive_.wait_until(word, done);  // predicate waits calibrate too
      return;
    }
    const std::uint32_t budget = spin_budget();
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (done()) return;
      cpu_relax();
    }
    if (!may_park()) {
      while (!done()) thread_yield();
      return;
    }
    for (;;) {
      const T v = word.load(std::memory_order_acquire);
      if (done()) return;
      word.wait(v, std::memory_order_acquire);
    }
  }

  /// Wakes are no-ops for the polling policies (their stores are
  /// observed by spinning) — one predictable branch, zero syscalls.
  template <typename T>
  void notify_one(std::atomic<T>& flag) noexcept {
    if (may_park()) flag.notify_one();
  }
  template <typename T>
  void notify_all(std::atomic<T>& flag) noexcept {
    if (may_park()) flag.notify_all();
  }

  const char* name() const noexcept { return qsv::wait_policy_name(policy_); }

 private:
  bool may_park() const noexcept {
    return policy_ == qsv::wait_policy::park ||
           policy_ == qsv::wait_policy::adaptive;
  }

  template <typename T>
  void wait_slow(const std::atomic<T>& flag, T expected) noexcept {
    if (policy_ == qsv::wait_policy::adaptive) {
      adaptive_.wait_while_equal(flag, expected);
      return;
    }
    // relaxed: tuning knob (see spin_budget()).
    const std::uint32_t budget = spin_budget_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (flag.load(std::memory_order_acquire) != expected) return;
      cpu_relax();
    }
    if (policy_ == qsv::wait_policy::spin_yield) {
      while (flag.load(std::memory_order_acquire) == expected) {
        thread_yield();
      }
      return;
    }
    while (flag.load(std::memory_order_acquire) == expected) {
      flag.wait(expected, std::memory_order_acquire);
    }
  }

  const qsv::wait_policy policy_;
  /// Tunable budget for spin_yield/park (adaptive calibrates its own).
  std::atomic<std::uint32_t> spin_budget_;
  AdaptiveWait adaptive_;
};

}  // namespace qsv::platform
