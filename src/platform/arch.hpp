// arch.hpp — architecture-level constants and primitive hints.
//
// Part of libqsv, a reconstruction of "A New Synchronization Mechanism"
// (ICPP 1991). This header isolates every assumption we make about the
// physical machine so the rest of the library stays portable.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

#include "platform/chk_hook.hpp"

namespace qsv::platform {

/// Size in bytes of the unit of cache coherence. All mutable state shared
/// between threads is padded to this granularity to avoid false sharing
/// (two logically independent variables bouncing one physical line between
/// processors — the dominant accidental cost in 1991 and still today).
inline constexpr std::size_t kCacheLine = 64;

/// Destructive interference distance used for padding decisions. We pad to
/// two lines on x86 because adjacent-line prefetchers pair lines.
inline constexpr std::size_t kFalseSharingRange = 128;

/// Tell the processor we are in a spin-wait loop. On x86 this lowers to
/// PAUSE, which (a) releases pipeline resources to the sibling hyperthread
/// and (b) avoids the memory-order mis-speculation flush on loop exit.
/// On other ISAs it is a compiler barrier only.
///
/// Every raw spin loop in the library polls through here, which makes
/// this the universal choke point the qsv::chk model checker needs: when
/// a checker scheduler drives the calling thread (chk_hook::active(),
/// never in production), the poll is handed to the scheduler instead of
/// the pipeline. The inactive cost is one thread-local load and a
/// predicted branch per poll, confined to waiting code.
inline void cpu_relax() noexcept {
  if (chk_hook::active()) {
    chk_hook::spin();
    return;
  }
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Donate the calling thread's quantum to the OS scheduler. Spin loops
/// that outlive their poll budget fall back to this instead of raw
/// std::this_thread::yield() for the same reason cpu_relax() exists:
/// under the qsv::chk model checker (chk_hook::active(), never in
/// production) the donation must reach the checker's scheduler — a raw
/// sched_yield never would, and a serialized thread that loops on one
/// livelocks the whole exploration.
inline void thread_yield() noexcept {
  if (chk_hook::active()) {
    chk_hook::spin();
    return;
  }
  std::this_thread::yield();
}

/// Put the calling thread to sleep for (at least) `d`. The library's
/// only sanctioned sleep: code above platform/ must route naps through
/// here rather than call std::this_thread::sleep_for directly, so that
/// under the qsv::chk model checker (chk_hook::active(), never in
/// production) a nap becomes a schedule point instead of a wall-clock
/// stall — the checker runs in virtual time, and a serialized thread
/// sleeping for real would only slow exploration without changing any
/// reachable interleaving. qsvlint's seam rule enforces the routing.
inline void thread_sleep(std::chrono::nanoseconds d) noexcept {
  if (chk_hook::active()) {
    chk_hook::spin();
    return;
  }
  std::this_thread::sleep_for(d);
}

/// Compiler-only fence: forbids reordering of surrounding code by the
/// optimizer without emitting a hardware fence. Used in timing harnesses.
inline void compiler_fence() noexcept { asm volatile("" ::: "memory"); }

/// Round `n` up to the next multiple of `alignment` (a power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t alignment) noexcept {
  return (n + alignment - 1) & ~(alignment - 1);
}

/// True if `n` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n must be >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t n) noexcept {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Integer log2 for a power of two.
constexpr unsigned log2_pow2(std::uint64_t n) noexcept {
  unsigned l = 0;
  while (n > 1) {
    n >>= 1;
    ++l;
  }
  return l;
}

/// ceil(log2(n)) for n >= 1: number of rounds a dissemination barrier or
/// tournament needs among n participants.
constexpr unsigned ceil_log2(std::uint64_t n) noexcept {
  unsigned l = 0;
  std::uint64_t p = 1;
  while (p < n) {
    p <<= 1;
    ++l;
  }
  return l;
}

}  // namespace qsv::platform
