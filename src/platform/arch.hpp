// arch.hpp — architecture-level constants and primitive hints.
//
// Part of libqsv, a reconstruction of "A New Synchronization Mechanism"
// (ICPP 1991). This header isolates every assumption we make about the
// physical machine so the rest of the library stays portable.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace qsv::platform {

/// Size in bytes of the unit of cache coherence. All mutable state shared
/// between threads is padded to this granularity to avoid false sharing
/// (two logically independent variables bouncing one physical line between
/// processors — the dominant accidental cost in 1991 and still today).
inline constexpr std::size_t kCacheLine = 64;

/// Destructive interference distance used for padding decisions. We pad to
/// two lines on x86 because adjacent-line prefetchers pair lines.
inline constexpr std::size_t kFalseSharingRange = 128;

/// Tell the processor we are in a spin-wait loop. On x86 this lowers to
/// PAUSE, which (a) releases pipeline resources to the sibling hyperthread
/// and (b) avoids the memory-order mis-speculation flush on loop exit.
/// On other ISAs it is a compiler barrier only.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Compiler-only fence: forbids reordering of surrounding code by the
/// optimizer without emitting a hardware fence. Used in timing harnesses.
inline void compiler_fence() noexcept { asm volatile("" ::: "memory"); }

/// Round `n` up to the next multiple of `alignment` (a power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t alignment) noexcept {
  return (n + alignment - 1) & ~(alignment - 1);
}

/// True if `n` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n must be >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t n) noexcept {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Integer log2 for a power of two.
constexpr unsigned log2_pow2(std::uint64_t n) noexcept {
  unsigned l = 0;
  while (n > 1) {
    n >>= 1;
    ++l;
  }
  return l;
}

/// ceil(log2(n)) for n >= 1: number of rounds a dissemination barrier or
/// tournament needs among n participants.
constexpr unsigned ceil_log2(std::uint64_t n) noexcept {
  unsigned l = 0;
  std::uint64_t p = 1;
  while (p < n) {
    p <<= 1;
    ++l;
  }
  return l;
}

}  // namespace qsv::platform
