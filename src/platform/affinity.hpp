// affinity.hpp — thread placement.
//
// Handoff-latency figures are meaningless if the scheduler migrates
// threads mid-run, so the harness pins each team member to a distinct
// processor (round-robin over the allowed set).
#pragma once

#include <cstddef>
#include <optional>

namespace qsv::platform {

/// Number of processors available to this process (respects taskset).
std::size_t available_cpus();

/// The logical cpu id that pin_to_cpu(index) would choose — the
/// round-robin placement rule, without the pinning side effect. The
/// topology-aware cohort map uses this to predict where a dense thread
/// index runs.
int cpu_for_index(std::size_t index);

/// Pin the calling thread to logical cpu `index % available` within the
/// process's allowed set. Returns the actual cpu id chosen, or nullopt if
/// pinning is unsupported/failed (the run proceeds unpinned).
std::optional<int> pin_to_cpu(std::size_t index);

/// Undo pinning: restore the full allowed set. Best effort.
void unpin();

}  // namespace qsv::platform
