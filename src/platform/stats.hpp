// stats.hpp — online statistics and fairness metrics for the harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace qsv::platform {

/// Welford online mean/variance accumulator. Numerically stable; merging
/// supported so per-thread accumulators can be combined after a run.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  /// Chan et al. parallel merge of two accumulators.
  void merge(const OnlineStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double d = o.mean_ - mean_;
    const auto n = n_ + o.n_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += d * static_cast<double>(o.n_) / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ = n;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile from a sample (sorts a copy; fine at harness scale).
inline double quantile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] + (s[hi] - s[lo]) * frac;
}

/// Jain's fairness index over per-thread counts: 1.0 = perfectly fair,
/// 1/n = one thread got everything. The fairness metric of experiment F7.
inline double jain_index(std::span<const std::uint64_t> counts) {
  if (counts.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (auto c : counts) {
    const auto x = static_cast<double>(c);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(counts.size()) * sum_sq);
}

/// Coefficient of variation of per-thread counts (0 = perfectly fair).
inline double cv(std::span<const std::uint64_t> counts) {
  OnlineStats s;
  for (auto c : counts) s.add(static_cast<double>(c));
  return s.mean() > 0.0 ? s.stddev() / s.mean() : 0.0;
}

}  // namespace qsv::platform
