#include "platform/topology.hpp"

#include <algorithm>
#include <cctype>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

namespace qsv::platform {

namespace {

/// First line of a file, or empty when unreadable.
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return {};
  return line;
}

/// Parse a non-negative integer; returns -1 on anything else.
int parse_int(const std::string& text) {
  if (text.empty()) return -1;
  int value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
    if (value > (INT_MAX - (c - '0')) / 10) return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

/// physical_package_id of one cpu under `root`, 0 when missing (the
/// fallback mirrors sysfs's own default on single-package machines).
int package_of_cpu(const std::string& root, int cpu) {
  const int id = parse_int(read_line(root + "/devices/system/cpu/cpu" +
                                     std::to_string(cpu) +
                                     "/topology/physical_package_id"));
  return id < 0 ? 0 : id;
}

/// The online cpus under `root`: the "online" cpulist when present,
/// else an enumeration probe of cpu<N> directories, else
/// hardware_concurrency. Never empty.
std::vector<int> online_cpus(const std::string& root) {
  auto cpus = parse_cpulist(read_line(root + "/devices/system/cpu/online"));
  if (cpus.empty()) {
    for (int c = 0; c < 4096; ++c) {
      std::ifstream probe(root + "/devices/system/cpu/cpu" +
                          std::to_string(c) +
                          "/topology/physical_package_id");
      if (probe) cpus.push_back(c);
    }
  }
  if (cpus.empty()) {
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < n; ++c) cpus.push_back(static_cast<int>(c));
  }
  return cpus;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ',')) {
    // Trim whitespace (sysfs lines end in '\n'; fixtures may add spaces).
    const auto begin = token.find_first_not_of(" \t\r\n");
    const auto end = token.find_last_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    token = token.substr(begin, end - begin + 1);
    const auto dash = token.find('-');
    if (dash == std::string::npos) {
      const int cpu = parse_int(token);
      if (cpu >= 0 && cpu <= kMaxCpuId) cpus.push_back(cpu);
      continue;
    }
    const int lo = parse_int(token.substr(0, dash));
    const int hi = parse_int(token.substr(dash + 1));
    // Malformed, inverted, or absurdly large ranges are dropped, not
    // "repaired": a fixture like "3-", "7-2", or "0-2000000000" yields
    // nothing from this fragment (an unbounded id would size
    // cpu-indexed tables from garbage).
    if (lo < 0 || hi < lo || hi > kMaxCpuId) continue;
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology::Topology(std::vector<Node> nodes) : nodes_(std::move(nodes)) {
  // Hand-built nodes (tests, future providers) get the same id bound
  // discovery applies — out-of-range cpu ids must not size the
  // cpu-indexed table — and a cpu claimed by two nodes belongs to the
  // first (later claims are dropped, so cpu_count() counts distinct
  // cpus and node_of_cpu() agrees with the printed node lists).
  std::vector<bool> seen(static_cast<std::size_t>(kMaxCpuId) + 1, false);
  for (Node& node : nodes_) {
    std::erase_if(node.cpus, [&](int c) {
      if (c < 0 || c > kMaxCpuId) return true;
      if (seen[static_cast<std::size_t>(c)]) return true;
      seen[static_cast<std::size_t>(c)] = true;
      return false;
    });
  }
  // Never empty: degenerate input gets the one-node shape the fallback
  // produces, so every consumer can rely on node_count() >= 1.
  if (nodes_.empty() || (nodes_.size() == 1 && nodes_[0].cpus.empty())) {
    nodes_.clear();
    Node all;
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < n; ++c) all.cpus.push_back(static_cast<int>(c));
    nodes_.push_back(std::move(all));
    fallback_ = true;
  }
  int max_cpu = 0;
  std::vector<int> packages;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].id = i;
    packages.push_back(nodes_[i].package);
    for (int c : nodes_[i].cpus) max_cpu = std::max(max_cpu, c);
    cpu_count_ += nodes_[i].cpus.size();
  }
  std::sort(packages.begin(), packages.end());
  packages.erase(std::unique(packages.begin(), packages.end()),
                 packages.end());
  packages_ = packages.size();
  cpu_to_node_.assign(static_cast<std::size_t>(max_cpu) + 1, 0);
  for (const Node& node : nodes_) {
    for (int c : node.cpus) cpu_to_node_[static_cast<std::size_t>(c)] = node.id;
  }
}

std::size_t Topology::node_of_cpu(int cpu) const noexcept {
  if (cpu < 0 || static_cast<std::size_t>(cpu) >= cpu_to_node_.size()) {
    return 0;
  }
  return cpu_to_node_[static_cast<std::size_t>(cpu)];
}

Topology discover_topology(const std::string& root) {
  std::vector<Topology::Node> nodes;
  // Probe the whole id range rather than stopping at the first gap:
  // memory-only nodes (Optane/CXL) have an *empty* cpulist and offline
  // nodes no directory at all, and either may sit between cpu-bearing
  // nodes. 1024 existence checks happen once per process.
  for (int n = 0; n < 1024; ++n) {
    auto cpus = parse_cpulist(read_line(
        root + "/devices/system/node/node" + std::to_string(n) + "/cpulist"));
    if (cpus.empty()) continue;  // absent, memory-only, or malformed node
    Topology::Node node;
    node.sysfs_id = n;
    node.package = package_of_cpu(root, cpus.front());
    node.cpus = std::move(cpus);
    nodes.push_back(std::move(node));
  }
  if (nodes.empty()) {
    // No node directory (or nothing usable in it): one node, all cpus.
    Topology::Node all;
    all.cpus = online_cpus(root);
    Topology topo({std::move(all)});
    topo.fallback_ = true;
    return topo;
  }
  return Topology(std::move(nodes));
}

const Topology& topology() {
  static const Topology topo = discover_topology();
  return topo;
}

namespace {

/// Synthetic-topology contract violations feed into cpu-indexed tables
/// and cohort seating exactly like cohort-map violations do; abort
/// deterministically in every build mode rather than fall into UB.
[[noreturn]] void synthetic_fatal(const char* what) noexcept {
  std::fprintf(stderr, "libqsv synthetic topology: %s\n", what);
  std::abort();
}

}  // namespace

Topology synthetic_topology(std::size_t packages, std::size_t nodes,
                            std::size_t cpus_per_node) {
  if (packages == 0) {
    synthetic_fatal("package count must be at least 1");
  }
  if (nodes == 0) {
    synthetic_fatal("node count must be at least 1");
  }
  if (cpus_per_node == 0) {
    synthetic_fatal("each node needs at least one cpu");
  }
  if (nodes % packages != 0) {
    synthetic_fatal("node count must divide evenly across packages");
  }
  if (nodes > (static_cast<std::size_t>(kMaxCpuId) + 1) / cpus_per_node) {
    synthetic_fatal("total cpus exceed kMaxCpuId+1");
  }
  const std::size_t nodes_per_package = nodes / packages;
  std::vector<Topology::Node> built;
  built.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    Topology::Node node;
    node.sysfs_id = static_cast<int>(n);
    node.package = static_cast<int>(n / nodes_per_package);
    for (std::size_t c = 0; c < cpus_per_node; ++c) {
      node.cpus.push_back(static_cast<int>(n * cpus_per_node + c));
    }
    built.push_back(std::move(node));
  }
  return Topology(std::move(built));
}

}  // namespace qsv::platform
