// striped_counter.hpp — distributed reader indicator (a striped counter).
//
// A single shared counter turns every increment into an RMW on one hot
// cache line: P readers entering and leaving a lock generate O(P) remote
// references *each*, the invalidation storm the QSV mechanism exists to
// avoid. A StripedCounter splits the count across line-padded stripes
// selected by the calling thread's dense index, so the common-case
// increment/decrement is an RMW on a line shared only with the (few)
// threads that hash to the same stripe — with at least as many stripes as
// processors, a line the thread effectively owns.
//
// The cost is moved to the aggregating side: a reader of the total must
// walk all stripes. That is the right trade for reader-writer admission,
// where entries/exits are the hot path and the total is only needed at
// writer phase boundaries (cf. BRAVO's distributed reader indicators and
// SNZI's tree variant).
//
// `sum()` over concurrently moving stripes is not a snapshot. It is exact
// under the quiescing protocol the rwlock uses: once new increments are
// sealed off (writer-present gate), every active entry sits stably in the
// stripe it was counted into — entry and exit always touch the *same*
// stripe because a thread's index never changes — so a single pass that
// reads zero everywhere proves the count is drained.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/thread_id.hpp"

namespace qsv::platform {

template <std::size_t kStripes = 16>
class StripedCounter {
  static_assert(is_pow2(kStripes), "stripe count must be a power of two");

 public:
  StripedCounter() = default;
  StripedCounter(const StripedCounter&) = delete;
  StripedCounter& operator=(const StripedCounter&) = delete;

  /// The calling thread's stripe. Stable for the thread's lifetime, so an
  /// increment here can always be undone on the same line later.
  std::atomic<std::int64_t>& slot() noexcept {
    return slots_[thread_index() & (kStripes - 1)].value;
  }

  /// Sharded add on the calling thread's stripe. seq_cst so the classic
  /// store-buffering handshake ("count myself in, then check the gate" vs
  /// "close the gate, then read the counts") cannot lose the increment.
  void add(std::int64_t delta) noexcept {
    slot().fetch_add(delta, std::memory_order_seq_cst);
  }

  /// One pass over all stripes. Exact only once stripe writers are
  /// quiesced (see file comment); `order` is applied to every stripe load.
  std::int64_t sum(std::memory_order order =
                       std::memory_order_acquire) const noexcept {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < kStripes; ++i) {
      total += slots_[i].value.load(order);
    }
    return total;
  }

  static constexpr std::size_t stripes() noexcept { return kStripes; }

  /// Space cost including padding (Table 2 accounting).
  static constexpr std::size_t footprint_bytes() noexcept {
    return kStripes * sizeof(Padded<std::atomic<std::int64_t>>);
  }

 private:
  Padded<std::atomic<std::int64_t>> slots_[kStripes]{};
};

}  // namespace qsv::platform
