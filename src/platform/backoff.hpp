// backoff.hpp — contention backoff policies.
//
// Anderson (1990) showed that a test-and-set lock is usable only with
// bounded exponential backoff, and that a ticket lock wants *proportional*
// backoff (wait time proportional to distance from the head of the queue).
// Both appear here as small value types; locks take them as template
// policies so the bench suite can ablate the parameters (experiment A3).
#pragma once

#include <cstdint>

#include "platform/arch.hpp"

namespace qsv::platform {

/// Busy-wait for approximately `spins` executions of cpu_relax.
inline void spin_for(std::uint32_t spins) noexcept {
  for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
}

/// No backoff at all: re-poll as fast as possible. The degenerate policy
/// that makes TAS collapse under contention — kept as the ablation floor.
class NoBackoff {
 public:
  void operator()() noexcept { cpu_relax(); }
  void reset() noexcept {}
  static constexpr const char* name() noexcept { return "none"; }
};

/// Capped exponential backoff: wait 1, 2, 4, ... up to `cap` pause slots,
/// doubling after each failed attempt. `reset()` after success.
///
/// The cap bounds worst-case handoff latency; the floor bounds the rate of
/// coherence traffic a failing waiter can generate.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(std::uint32_t floor = 4,
                              std::uint32_t cap = 1024) noexcept
      : floor_(floor), cap_(cap), current_(floor) {}

  void operator()() noexcept {
    spin_for(current_);
    current_ = current_ < cap_ / 2 ? current_ * 2 : cap_;
  }

  void reset() noexcept { current_ = floor_; }

  std::uint32_t current() const noexcept { return current_; }
  static constexpr const char* name() noexcept { return "exponential"; }

 private:
  std::uint32_t floor_;
  std::uint32_t cap_;
  std::uint32_t current_;
};

/// Proportional backoff for ticket-style locks: a waiter that is `k`
/// positions from the head sleeps ~`k * slot` pause slots between polls,
/// so the head-of-line waiter polls fast and deep waiters poll rarely.
class ProportionalBackoff {
 public:
  explicit ProportionalBackoff(std::uint32_t slot = 32) noexcept
      : slot_(slot) {}

  /// `distance` = my_ticket - now_serving (positions until my turn).
  void wait(std::uint32_t distance) const noexcept {
    spin_for(distance * slot_);
  }

  std::uint32_t slot() const noexcept { return slot_; }
  static constexpr const char* name() noexcept { return "proportional"; }

 private:
  std::uint32_t slot_;
};

}  // namespace qsv::platform
