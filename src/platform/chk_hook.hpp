// chk_hook.hpp — the test-only scheduling seam for the qsv::chk model
// checker (src/chk/).
//
// The checker serializes N logical threads and must take control at
// every point where a thread either (a) burns a poll in a spin loop or
// (b) enters a terminal wait. Both already funnel through two choke
// points: cpu_relax() (platform/arch.hpp) for every raw spin loop, and
// the wait_while_equal/wait_until entries of the waiting layer
// (platform/wait.hpp, platform/waiter.hpp). This header is the
// indirection those choke points consult: a thread-local pointer to a
// table of scheduler callbacks, null in every normal build and run.
//
// Cost when inactive (always, outside checker tests): one thread-local
// load and a predicted-not-taken branch per spin poll or wait entry —
// noise next to the cache traffic those paths already pay, and confined
// to waiting code (never on uncontended fast paths).
//
// Everything here is noexcept by design: the hooks are called from
// noexcept wait paths, so a scheduler implementation must never throw
// through them (the checker reports violations by recording them and
// letting the execution run out — see src/chk/check.hpp).
#pragma once

namespace qsv::platform::chk_hook {

/// Scheduler callback table. Installed per OS thread by the checker's
/// worker threads; `ctx` identifies the (scheduler, logical thread)
/// pair.
struct Hooks {
  void* ctx = nullptr;
  /// One poll of a spin loop (from cpu_relax). May grant the poll
  /// immediately or park the logical thread until shared state can
  /// have changed.
  void (*spin)(void* ctx) = nullptr;
  /// A terminal wait: park the logical thread until pred(pred_ctx) is
  /// true. pred is evaluated by the scheduler while the caller's frame
  /// is frozen, so capturing locals by reference is safe.
  void (*block)(void* ctx, bool (*pred)(void*), void* pred_ctx) = nullptr;
  /// An explicit schedule point (lock/unlock edges, mutant race
  /// windows): the thread stays runnable, but the scheduler may run
  /// someone else first.
  void (*yield)(void* ctx) = nullptr;
};

/// The calling OS thread's hook table; null when no checker drives this
/// thread (every production and ordinary-test context).
inline Hooks*& tls() noexcept {
  thread_local Hooks* h = nullptr;
  return h;
}

inline bool active() noexcept { return tls() != nullptr; }

/// Forward one spin poll to the scheduler. Pre: active().
inline void spin() noexcept {
  Hooks* h = tls();
  h->spin(h->ctx);
}

/// Park the logical thread until `pred()` is true. Pre: active().
/// `pred` must be race-free to evaluate from the scheduler thread while
/// the caller is parked (atomic loads and checker-owned state are).
template <typename Pred>
inline void block(Pred& pred) noexcept {
  Hooks* h = tls();
  h->block(
      h->ctx,
      [](void* p) noexcept {
        return static_cast<bool>((*static_cast<Pred*>(p))());
      },
      static_cast<void*>(&pred));
}

/// Explicit schedule point. Pre: active().
inline void yield() noexcept {
  Hooks* h = tls();
  h->yield(h->ctx);
}

}  // namespace qsv::platform::chk_hook
