#include "platform/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <thread>
#include <vector>

namespace qsv::platform {

namespace {
/// CPUs in this process's original affinity mask, captured once.
const std::vector<int>& allowed_cpus() {
  static const std::vector<int> cpus = [] {
    std::vector<int> out;
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
      for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &set)) out.push_back(c);
      }
    }
    if (out.empty()) {
      const unsigned n = std::max(1u, std::thread::hardware_concurrency());
      for (unsigned c = 0; c < n; ++c) out.push_back(static_cast<int>(c));
    }
    return out;
  }();
  return cpus;
}
}  // namespace

std::size_t available_cpus() { return allowed_cpus().size(); }

int cpu_for_index(std::size_t index) {
  const auto& cpus = allowed_cpus();
  return cpus[index % cpus.size()];
}

std::optional<int> pin_to_cpu(std::size_t index) {
  const int cpu = cpu_for_index(index);
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    return std::nullopt;
  }
  return cpu;
}

void unpin() {
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : allowed_cpus()) CPU_SET(c, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

}  // namespace qsv::platform
