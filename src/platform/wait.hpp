// wait.hpp — pluggable waiting strategies ("how do I spin on a flag?").
//
// The original 1991 mechanism spins in user space because that is all the
// hardware offered. The calibration band notes the mechanism was
// "superseded by modern futex/atomics"; this header makes that statement
// precise. Every queue-based primitive in libqsv spins through a
// WaitPolicy, so the identical protocol can wait by
//   * pure spinning            (1991 behaviour, dedicated processors),
//   * spin-then-yield          (time-shared machines),
//   * spin-then-park           (modern futex via std::atomic::wait).
// Experiment A1 ablates the three.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <thread>

#include "platform/arch.hpp"

namespace qsv::platform {

/// A WaitPolicy blocks the calling thread while `flag == expected` and is
/// woken by a releaser that stores a new value and calls `notify`.
/// `notify` may be a no-op for spin policies (stores are observed by
/// polling); park policies must issue the wake.
template <typename P>
concept WaitPolicy = requires(const std::atomic<std::uint32_t>& flag,
                              std::atomic<std::uint32_t>& mut_flag,
                              std::uint32_t expected) {
  { P::wait_while_equal(flag, expected) } -> std::same_as<void>;
  { P::notify_one(mut_flag) } -> std::same_as<void>;
  { P::notify_all(mut_flag) } -> std::same_as<void>;
  { P::name() } -> std::convertible_to<const char*>;
};

/// Pure busy-wait. Each poll is an acquire load so the protected data
/// written before the releasing store is visible on wake.
struct SpinWait {
  static void wait_while_equal(const std::atomic<std::uint32_t>& flag,
                               std::uint32_t expected) noexcept {
    while (flag.load(std::memory_order_acquire) == expected) cpu_relax();
  }
  static void notify_one(std::atomic<std::uint32_t>&) noexcept {}
  static void notify_all(std::atomic<std::uint32_t>&) noexcept {}
  static constexpr const char* name() noexcept { return "spin"; }
};

/// Spin a bounded number of polls, then fall back to yielding the
/// processor. Appropriate when threads may outnumber processors: a waiter
/// stuck behind a descheduled lock holder donates its quantum instead of
/// burning it.
struct SpinYieldWait {
  static constexpr std::uint32_t kSpinPolls = 1024;

  static void wait_while_equal(const std::atomic<std::uint32_t>& flag,
                               std::uint32_t expected) noexcept {
    for (std::uint32_t i = 0; i < kSpinPolls; ++i) {
      if (flag.load(std::memory_order_acquire) != expected) return;
      cpu_relax();
    }
    while (flag.load(std::memory_order_acquire) == expected) {
      std::this_thread::yield();
    }
  }
  static void notify_one(std::atomic<std::uint32_t>&) noexcept {}
  static void notify_all(std::atomic<std::uint32_t>&) noexcept {}
  static constexpr const char* name() noexcept { return "yield"; }
};

/// Spin briefly, then park on the futex word via C++20 atomic wait.
/// This is "what the 1991 mechanism became": the queue protocol is
/// unchanged, only the terminal wait migrates into the kernel.
struct ParkWait {
  static constexpr std::uint32_t kSpinPolls = 256;

  static void wait_while_equal(const std::atomic<std::uint32_t>& flag,
                               std::uint32_t expected) noexcept {
    for (std::uint32_t i = 0; i < kSpinPolls; ++i) {
      if (flag.load(std::memory_order_acquire) != expected) return;
      cpu_relax();
    }
    // atomic::wait loops internally on spurious wakes; re-check anyway to
    // keep the contract independent of library quality-of-implementation.
    while (flag.load(std::memory_order_acquire) == expected) {
      flag.wait(expected, std::memory_order_acquire);
    }
  }
  static void notify_one(std::atomic<std::uint32_t>& flag) noexcept {
    flag.notify_one();
  }
  static void notify_all(std::atomic<std::uint32_t>& flag) noexcept {
    flag.notify_all();
  }
  static constexpr const char* name() noexcept { return "park"; }
};

static_assert(WaitPolicy<SpinWait>);
static_assert(WaitPolicy<SpinYieldWait>);
static_assert(WaitPolicy<ParkWait>);

}  // namespace qsv::platform
