// wait.hpp — pluggable waiting strategies ("how do I spin on a flag?").
//
// The original 1991 mechanism spins in user space because that is all the
// hardware offered. The calibration band notes the mechanism was
// "superseded by modern futex/atomics"; this header makes that statement
// precise. Every queue-based primitive in libqsv waits through a
// WaitPolicy *instance* it carries, so the identical protocol can wait by
//   * pure spinning            (1991 behaviour, dedicated processors),
//   * spin-then-yield          (time-shared machines),
//   * spin-then-park           (modern futex via std::atomic::wait),
//   * runtime/adaptive choice  (platform/waiter.hpp, the default).
//
// The structs here are the compile-time-pinned strategies: zero-state
// (SpinWait) or one tunable word of state (the spin budget — formerly
// the hardwired kSpinPolls = 1024). They remain for pinned
// instantiations and the A1/A4 ablations; the facade and the catalogue
// construct RuntimeWait (re-exported below), which dispatches on
// qsv::wait_policy at runtime.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <thread>

#include "platform/arch.hpp"

namespace qsv::platform {

/// A WaitPolicy instance blocks the calling thread while
/// `flag == expected` and is woken by a releaser that stores a new value
/// and calls `notify` on the same instance. `notify` may be a no-op for
/// spin policies (stores are observed by polling); park policies must
/// issue the wake. Policies are carried *by value* inside each
/// primitive, so stateful policies (tunable budgets, adaptive
/// calibration) and stateless ones plug into the same slot.
template <typename P>
concept WaitPolicy = requires(P& p, const std::atomic<std::uint32_t>& flag,
                              std::atomic<std::uint32_t>& mut_flag,
                              std::uint32_t expected) {
  { p.wait_while_equal(flag, expected) } -> std::same_as<void>;
  { p.notify_one(mut_flag) } -> std::same_as<void>;
  { p.notify_all(mut_flag) } -> std::same_as<void>;
  { p.name() } -> std::convertible_to<const char*>;
};

/// Pure busy-wait. Each poll is an acquire load so the protected data
/// written before the releasing store is visible on wake.
///
/// All three pinned policies hand the whole wait to a chk scheduler
/// when one drives the calling thread (platform/chk_hook.hpp, test
/// builds only) — same seam as RuntimeWait, so pinned instantiations
/// (e.g. the central rwlock's drain wait) stay checkable.
struct SpinWait {
  template <typename T>
  static void wait_while_equal(const std::atomic<T>& flag,
                               T expected) noexcept {
    if (chk_hook::active()) {
      auto ready = [&flag, expected]() noexcept {
        return flag.load(std::memory_order_acquire) != expected;
      };
      chk_hook::block(ready);
      return;
    }
    while (flag.load(std::memory_order_acquire) == expected) cpu_relax();
  }
  /// Predicate form for waits that are not a single equality.
  template <typename T, typename Pred>
  static void wait_until(const std::atomic<T>&, Pred done) noexcept {
    if (chk_hook::active()) {
      chk_hook::block(done);
      return;
    }
    while (!done()) cpu_relax();
  }
  template <typename T>
  static void notify_one(std::atomic<T>&) noexcept {}
  template <typename T>
  static void notify_all(std::atomic<T>&) noexcept {}
  static constexpr const char* name() noexcept { return "spin"; }
};

/// Spin a bounded number of polls, then fall back to yielding the
/// processor. Appropriate when threads may outnumber processors: a waiter
/// stuck behind a descheduled lock holder donates its quantum instead of
/// burning it. The budget is per-instance state (construct with the
/// polls you want); kDefaultSpinPolls documents the default.
struct SpinYieldWait {
  static constexpr std::uint32_t kDefaultSpinPolls = 1024;

  std::uint32_t spin_polls = kDefaultSpinPolls;

  template <typename T>
  void wait_while_equal(const std::atomic<T>& flag, T expected) const noexcept {
    if (chk_hook::active()) {
      auto ready = [&flag, expected]() noexcept {
        return flag.load(std::memory_order_acquire) != expected;
      };
      chk_hook::block(ready);
      return;
    }
    for (std::uint32_t i = 0; i < spin_polls; ++i) {
      if (flag.load(std::memory_order_acquire) != expected) return;
      cpu_relax();
    }
    while (flag.load(std::memory_order_acquire) == expected) {
      thread_yield();
    }
  }
  /// Predicate form for waits that are not a single equality.
  template <typename T, typename Pred>
  void wait_until(const std::atomic<T>&, Pred done) const noexcept {
    if (chk_hook::active()) {
      chk_hook::block(done);
      return;
    }
    for (std::uint32_t i = 0; i < spin_polls; ++i) {
      if (done()) return;
      cpu_relax();
    }
    while (!done()) thread_yield();
  }
  template <typename T>
  static void notify_one(std::atomic<T>&) noexcept {}
  template <typename T>
  static void notify_all(std::atomic<T>&) noexcept {}
  static constexpr const char* name() noexcept { return "yield"; }
};

/// Spin briefly, then park on the futex word via C++20 atomic wait.
/// This is "what the 1991 mechanism became": the queue protocol is
/// unchanged, only the terminal wait migrates into the kernel.
struct ParkWait {
  static constexpr std::uint32_t kDefaultSpinPolls = 256;

  std::uint32_t spin_polls = kDefaultSpinPolls;

  template <typename T>
  void wait_while_equal(const std::atomic<T>& flag, T expected) const noexcept {
    if (chk_hook::active()) {
      auto ready = [&flag, expected]() noexcept {
        return flag.load(std::memory_order_acquire) != expected;
      };
      chk_hook::block(ready);
      return;
    }
    for (std::uint32_t i = 0; i < spin_polls; ++i) {
      if (flag.load(std::memory_order_acquire) != expected) return;
      cpu_relax();
    }
    // atomic::wait loops internally on spurious wakes; re-check anyway to
    // keep the contract independent of library quality-of-implementation.
    while (flag.load(std::memory_order_acquire) == expected) {
      flag.wait(expected, std::memory_order_acquire);
    }
  }
  /// Predicate form: sleep on `word` between checks; whoever can make
  /// `done()` true must change `word` and notify through this policy.
  template <typename T, typename Pred>
  void wait_until(const std::atomic<T>& word, Pred done) const noexcept {
    if (chk_hook::active()) {
      chk_hook::block(done);
      return;
    }
    for (std::uint32_t i = 0; i < spin_polls; ++i) {
      if (done()) return;
      cpu_relax();
    }
    for (;;) {
      const T v = word.load(std::memory_order_acquire);
      if (done()) return;
      word.wait(v, std::memory_order_acquire);
    }
  }
  template <typename T>
  static void notify_one(std::atomic<T>& flag) noexcept {
    flag.notify_one();
  }
  template <typename T>
  static void notify_all(std::atomic<T>& flag) noexcept {
    flag.notify_all();
  }
  static constexpr const char* name() noexcept { return "park"; }
};

static_assert(WaitPolicy<SpinWait>);
static_assert(WaitPolicy<SpinYieldWait>);
static_assert(WaitPolicy<ParkWait>);

}  // namespace qsv::platform

// The runtime dispatcher (RuntimeWait, AdaptiveWait) lives in
// platform/waiter.hpp and is the default Wait of every primitive;
// re-export it so `#include "platform/wait.hpp"` keeps meaning "the
// waiting layer".
#include "platform/waiter.hpp"  // IWYU pragma: export

namespace qsv::platform {
static_assert(WaitPolicy<AdaptiveWait>);
static_assert(WaitPolicy<RuntimeWait>);
}  // namespace qsv::platform
