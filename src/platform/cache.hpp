// cache.hpp — cache-line aware storage helpers.
//
// The 1991 synchronization literature's central lesson is that *where a
// flag lives* matters as much as the algorithm: a waiter must spin on a
// location no other processor writes except to release it. These helpers
// make that property easy to state in types.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "platform/arch.hpp"

namespace qsv::platform {

/// Friend hook for the generated false-sharing layout audit
/// (`qsvlint --gen-layout`): hot structs whose node/record types are
/// private befriend this so the audit TU can static_assert on them
/// without widening any real API.
struct LayoutAuditAccess;

/// A `T` padded out to its own cache-line pair so that arrays of
/// `Padded<T>` exhibit no false sharing between adjacent elements.
///
/// `Padded<T>` is the standard building block for "one slot per thread"
/// structures (Anderson lock slots, per-thread statistics, sense flags).
template <typename T>
struct alignas(kFalseSharingRange) Padded {
  T value{};

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(Padded<char>) == kFalseSharingRange);
static_assert(sizeof(Padded<char>) >= kFalseSharingRange);

/// Fixed-size array of per-thread slots, each on its own line pair.
/// Allocated once at construction; never resized (resizing would move
/// slots out from under spinning threads).
template <typename T>
class PaddedArray {
 public:
  PaddedArray() = default;
  explicit PaddedArray(std::size_t n) : slots_(n) {}

  T& operator[](std::size_t i) noexcept { return slots_[i].value; }
  const T& operator[](std::size_t i) const noexcept { return slots_[i].value; }

  std::size_t size() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return slots_.empty(); }

  /// Bytes consumed including padding: the "space cost" column of Table 2.
  std::size_t footprint_bytes() const noexcept {
    return slots_.size() * sizeof(Padded<T>);
  }

 private:
  std::vector<Padded<T>> slots_;
};

/// Heap storage aligned to `kFalseSharingRange`, for structures whose
/// first member is a hot atomic (locks, barrier hubs). Returns a
/// unique_ptr with a deleter that calls operator delete with alignment.
template <typename T, typename... Args>
std::unique_ptr<T> make_line_aligned(Args&&... args) {
  static_assert(alignof(T) <= kFalseSharingRange,
                "type requires stricter alignment than line pair");
  void* mem = ::operator new(sizeof(T), std::align_val_t{kFalseSharingRange});
  try {
    return std::unique_ptr<T>(new (mem) T(std::forward<Args>(args)...));
  } catch (...) {
    ::operator delete(mem, std::align_val_t{kFalseSharingRange});
    throw;
  }
}

}  // namespace qsv::platform
