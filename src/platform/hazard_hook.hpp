// hazard_hook.hpp — the platform-side seam for hazard detectors.
//
// The per-thread HeldMap (node_arena.hpp) sees every node-based lock
// acquisition and release, which makes it the natural production feed
// for hazard detectors such as the lock-order-inversion graph in
// src/trace/lock_order.cpp. But platform/ is the bottom layer of the
// tree: it must not include trace/ (qsvlint's layering rule makes that
// a build failure). This header inverts the dependency — platform owns
// two callback slots and a cheap enable flag, and the detector above
// installs itself at enable time.
//
// Cost when disabled (the default): one relaxed load per acquisition
// and one per release, exactly what the direct call into
// trace::lock_order_enabled() used to cost. The acquire load on the
// callback pointer pairs with the release store in install(), so a
// thread that observes enabled() == true also observes the callbacks
// the installer published before flipping the flag.
#pragma once

#include <atomic>

namespace qsv::platform::hazard_hook {

using Callback = void (*)(const void* lock);

namespace detail {
// relaxed: flag is a pure on/off gate; the acquire load on the callback
// pointer below provides the ordering for everything behind it.
inline std::atomic<bool> g_enabled{false};
inline std::atomic<Callback> g_on_acquire{nullptr};
inline std::atomic<Callback> g_on_release{nullptr};
}  // namespace detail

/// Publish the detector's callbacks. Called by the detector (under its
/// own serialization) before it flips enabled(); callbacks stay
/// installed across disable/re-enable cycles.
inline void install(Callback on_acquire, Callback on_release) noexcept {
  detail::g_on_acquire.store(on_acquire, std::memory_order_release);
  detail::g_on_release.store(on_release, std::memory_order_release);
}

/// Gate the per-acquisition feed. The detector mirrors its own enable
/// state here so the HeldMap fast path stays a single inlined load.
inline void set_enabled(bool on) noexcept {
  // relaxed: see g_enabled above — ordering comes from the callback
  // pointer's release/acquire pair, not from this flag.
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

inline bool enabled() noexcept {
  // relaxed: stale false skips one observation window; stale true costs
  // one acquire load that finds the callbacks already published.
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Feed one acquisition to the installed detector. Pre: enabled().
inline void on_acquire(const void* lock) {
  Callback cb = detail::g_on_acquire.load(std::memory_order_acquire);
  if (cb != nullptr) cb(lock);
}

/// Feed one release to the installed detector. Pre: enabled().
inline void on_release(const void* lock) {
  Callback cb = detail::g_on_release.load(std::memory_order_acquire);
  if (cb != nullptr) cb(lock);
}

}  // namespace qsv::platform::hazard_hook
