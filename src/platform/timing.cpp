#include "platform/timing.hpp"

#include <thread>

namespace qsv::platform {

namespace {
double measure_tsc_ghz() {
  // One short calibration: sample (tsc, ns) twice around a 20 ms sleep.
  const std::uint64_t t0 = rdtsc();
  const std::uint64_t n0 = now_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint64_t t1 = rdtsc();
  const std::uint64_t n1 = now_ns();
  if (n1 <= n0) return 1.0;
  return static_cast<double>(t1 - t0) / static_cast<double>(n1 - n0);
}
}  // namespace

double tsc_ghz() {
  static const double ghz = measure_tsc_ghz();
  return ghz;
}

}  // namespace qsv::platform
