// histogram.hpp — log-scale latency histogram.
//
// Latencies under contention are heavy-tailed; a log2-bucketed histogram
// captures the tail in constant space and merges cheaply across threads.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace qsv::platform {

/// 64-bucket histogram where bucket i counts values in [2^i, 2^(i+1)).
/// Values are typically nanoseconds. Not thread-safe; keep one per thread
/// and merge() after the run (the harness does this).
class LogHistogram {
 public:
  void add(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
  }

  void merge(const LogHistogram& o) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Upper bound of the bucket containing the q-quantile observation.
  /// Quantized to a factor of two — precise enough to compare tails.
  std::uint64_t quantile_upper_bound(double q) const noexcept {
    if (count_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) return bucket_upper(i);
    }
    return bucket_upper(kBuckets - 1);
  }

  /// Render "p50=..., p99=..., max-bucket=..." for table output.
  std::string summary() const;

  static constexpr std::size_t kBuckets = 64;

  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i];
  }

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    return static_cast<std::size_t>(63 - __builtin_clzll(v));
  }
  static std::uint64_t bucket_upper(std::size_t i) noexcept {
    return i >= 63 ? ~0ULL : (2ULL << i) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace qsv::platform
