// thread_id.hpp — dense small-integer thread identities.
//
// Several 1991 algorithms (Anderson's array lock, Graunke-Thakkar,
// dissemination and tournament barriers) statically assign each thread a
// slot. libqsv gives every thread a dense index on first use; structures
// sized with `kMaxThreads` slots can then be indexed directly.
#pragma once

#include <atomic>
#include <cstddef>

namespace qsv::platform {

/// Upper bound on concurrently *registered* threads across the process
/// lifetime. Statically sized algorithm state uses this bound.
inline constexpr std::size_t kMaxThreads = 512;

namespace detail {
inline std::atomic<std::size_t> g_next_thread_index{0};
}  // namespace detail

/// Dense index of the calling thread: 0 for the first thread that asks,
/// 1 for the second, ... Stable for the thread's lifetime. Indices are
/// not recycled; a process that churns through > kMaxThreads threads and
/// uses slot-indexed algorithms is out of contract (asserted by callers).
inline std::size_t thread_index() noexcept {
  thread_local const std::size_t idx =
      detail::g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

/// Number of thread indices handed out so far (diagnostic).
inline std::size_t thread_index_watermark() noexcept {
  return detail::g_next_thread_index.load(std::memory_order_relaxed);
}

}  // namespace qsv::platform
