// thread_id.hpp — dense small-integer thread identities.
//
// Several 1991 algorithms (Graunke-Thakkar's flag array, hierarchical
// cohort maps) statically assign each thread a slot. libqsv gives every
// thread a dense index on first use; structures sized with
// `kMaxThreads` slots can then be indexed directly.
//
// Indices are *recycled*: a thread returns its index to a free pool at
// exit, so the watermark tracks the maximum number of concurrently
// registered threads, not the process-lifetime churn. Test and bench
// binaries spawn thousands of short-lived team threads; without
// recycling every slot-indexed structure would need an unbounded
// capacity. An index is stable for its thread's entire lifetime.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

namespace qsv::platform {

/// Upper bound on *concurrently* registered threads. Statically sized
/// algorithm state uses this bound.
inline constexpr std::size_t kMaxThreads = 512;

namespace detail {

inline std::atomic<std::size_t> g_next_thread_index{0};

/// Free pool of recycled indices. Deliberately leaked (never destroyed)
/// so main-thread TLS destructors that run during process teardown can
/// still push into it safely.
inline std::mutex& thread_index_pool_mutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
inline std::vector<std::size_t>& thread_index_pool() {
  static std::vector<std::size_t>* pool = new std::vector<std::size_t>();
  return *pool;
}

/// RAII slot: drawn from the pool (else minted fresh) on the thread's
/// first use, returned at thread exit.
struct ThreadIndexSlot {
  std::size_t index;

  ThreadIndexSlot() {
    std::lock_guard<std::mutex> g(thread_index_pool_mutex());
    auto& pool = thread_index_pool();
    if (!pool.empty()) {
      index = pool.back();
      pool.pop_back();
    } else {
      // relaxed: unique-index draw; only uniqueness matters.
      index = g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ~ThreadIndexSlot() {
    std::lock_guard<std::mutex> g(thread_index_pool_mutex());
    thread_index_pool().push_back(index);
  }
};

}  // namespace detail

/// Dense index of the calling thread, stable for the thread's lifetime
/// and recycled at thread exit. Two concurrently live threads never
/// share an index; a sequentially later thread may reuse an earlier
/// thread's.
inline std::size_t thread_index() noexcept {
  thread_local const detail::ThreadIndexSlot slot;
  return slot.index;
}

/// High-water mark of concurrently registered threads (diagnostic).
inline std::size_t thread_index_watermark() noexcept {
  // relaxed: diagnostic snapshot.
  return detail::g_next_thread_index.load(std::memory_order_relaxed);
}

}  // namespace qsv::platform
