#include "rwlocks/registry.hpp"

#include "rwlocks/adapters.hpp"
#include "rwlocks/central_rw.hpp"

namespace qsv::rwlocks {

namespace {

template <typename L>
class Erased final : public AnyRwLock {
 public:
  void lock() override { impl_.lock(); }
  void unlock() override { impl_.unlock(); }
  void lock_shared() override { impl_.lock_shared(); }
  void unlock_shared() override { impl_.unlock_shared(); }

 private:
  L impl_;
};

template <typename L>
RwFactory make(const char* display) {
  return RwFactory{display, []() -> std::unique_ptr<AnyRwLock> {
                     return std::make_unique<Erased<L>>();
                   }};
}

}  // namespace

const std::vector<RwFactory>& rw_registry() {
  static const std::vector<RwFactory> registry = {
      make<ReaderPrefRwLock>("central-rw/reader-pref"),
      make<WriterPrefRwLock>("central-rw/writer-pref"),
      make<StdSharedMutexAdapter>("std::shared_mutex"),
  };
  return registry;
}

const RwFactory* find_rw(const std::string& name) {
  for (const auto& f : rw_registry()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace qsv::rwlocks
