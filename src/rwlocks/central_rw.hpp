// central_rw.hpp — centralized reader-writer locks (MCS '91 §4 baselines).
//
// One packed state word carries (writer-active bit, waiting-writer count,
// active-reader count). Two preference policies:
//   * kReader: readers join whenever no writer is *active*; writers wait
//     for a reader-free instant. Readers can starve writers — the classic
//     anomaly experiment F8 demonstrates at high read ratios.
//   * kWriter: readers defer to both active and waiting writers; a steady
//     write stream starves readers instead.
// Both are O(P) traffic per operation on the shared word; the queue-based
// QSV reader-writer lock removes that and the starvation.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"

namespace qsv::rwlocks {

enum class Preference { kReader, kWriter };

template <Preference kPref>
class CentralRwLock {
 public:
  CentralRwLock() = default;
  CentralRwLock(const CentralRwLock&) = delete;
  CentralRwLock& operator=(const CentralRwLock&) = delete;

  void lock_shared() noexcept {
    qsv::platform::ExponentialBackoff backoff;
    for (;;) {
      // relaxed: sample only; the acquire CAS below validates it.
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      const bool blocked = kPref == Preference::kReader
                               ? writer_active(s)
                               : writer_active(s) || writers_waiting(s) > 0;
      if (!blocked) {
        // acquire pairs with a releasing writer's unlock.
        // relaxed: failure order — loop resamples.
        if (state_.compare_exchange_weak(s, s + kReaderOne,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;  // CAS raced; re-read without backing off
      }
      backoff();
    }
  }

  void unlock_shared() noexcept {
    // release publishes the read section's end to a waiting writer.
    state_.fetch_sub(kReaderOne, std::memory_order_release);
  }

  void lock() noexcept {
    qsv::platform::ExponentialBackoff backoff;
    if (kPref == Preference::kWriter) {
      // relaxed: the waiting-writer count only biases admission; the
      // acquire CAS that actually enters carries the ordering.
      state_.fetch_add(kWriterWaitOne, std::memory_order_relaxed);
    }
    for (;;) {
      // relaxed: sample only; the acquire CAS below validates it.
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if (!writer_active(s) && readers(s) == 0) {
        std::uint32_t target = s | kWriterActive;
        if (kPref == Preference::kWriter) target -= kWriterWaitOne;
        // relaxed: failure order — loop resamples.
        if (state_.compare_exchange_weak(s, target,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      backoff();
    }
  }

  void unlock() noexcept {
    state_.fetch_and(~kWriterActive, std::memory_order_release);
  }

  static constexpr const char* name() noexcept {
    return kPref == Preference::kReader ? "central-rw/reader-pref"
                                        : "central-rw/writer-pref";
  }

 private:
  // Layout: bit 31 writer-active | bits 16..30 waiting writers |
  //         bits 0..15 active readers.
  static constexpr std::uint32_t kWriterActive = 1u << 31;
  static constexpr std::uint32_t kWriterWaitOne = 1u << 16;
  static constexpr std::uint32_t kReaderOne = 1u;

  static constexpr bool writer_active(std::uint32_t s) noexcept {
    return (s & kWriterActive) != 0;
  }
  static constexpr std::uint32_t writers_waiting(std::uint32_t s) noexcept {
    return (s >> 16) & 0x7fffu;
  }
  static constexpr std::uint32_t readers(std::uint32_t s) noexcept {
    return s & 0xffffu;
  }

  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> state_{0};
};

using ReaderPrefRwLock = CentralRwLock<Preference::kReader>;
using WriterPrefRwLock = CentralRwLock<Preference::kWriter>;

}  // namespace qsv::rwlocks
