// registry.hpp — type-erased catalogue of reader-writer algorithms.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace qsv::rwlocks {

class AnyRwLock {
 public:
  virtual ~AnyRwLock() = default;
  virtual void lock() = 0;
  virtual void unlock() = 0;
  virtual void lock_shared() = 0;
  virtual void unlock_shared() = 0;
};

struct RwFactory {
  std::string name;
  std::function<std::unique_ptr<AnyRwLock>()> make;
};

const std::vector<RwFactory>& rw_registry();
const RwFactory* find_rw(const std::string& name);

}  // namespace qsv::rwlocks
