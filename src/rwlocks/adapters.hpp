// adapters.hpp — std::shared_mutex behind the SharedLockable concept.
#pragma once

#include <shared_mutex>

namespace qsv::rwlocks {

class StdSharedMutexAdapter {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }
  void lock_shared() { mu_.lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }
  static constexpr const char* name() noexcept { return "std::shared_mutex"; }

 private:
  std::shared_mutex mu_;
};

}  // namespace qsv::rwlocks
