// rw_concept.hpp — reader-writer lock interface.
#pragma once

#include <concepts>
#include <utility>

namespace qsv::rwlocks {

/// Writer side is the Lockable pair; reader side adds the _shared pair.
/// Matches std::shared_mutex naming so adapters are trivial.
template <typename L>
concept SharedLockable = requires(L l) {
  { l.lock() } -> std::same_as<void>;
  { l.unlock() } -> std::same_as<void>;
  { l.lock_shared() } -> std::same_as<void>;
  { l.unlock_shared() } -> std::same_as<void>;
  { L::name() } -> std::convertible_to<const char*>;
};

/// RAII shared (reader) guard.
template <SharedLockable L>
class SharedGuard {
 public:
  explicit SharedGuard(L& lock) : lock_(&lock) { lock_->lock_shared(); }
  ~SharedGuard() {
    if (lock_ != nullptr) lock_->unlock_shared();
  }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;
  SharedGuard(SharedGuard&& o) noexcept
      : lock_(std::exchange(o.lock_, nullptr)) {}
  SharedGuard& operator=(SharedGuard&&) = delete;

 private:
  L* lock_;
};

/// RAII exclusive (writer) guard.
template <SharedLockable L>
class ExclusiveGuard {
 public:
  explicit ExclusiveGuard(L& lock) : lock_(&lock) { lock_->lock(); }
  ~ExclusiveGuard() {
    if (lock_ != nullptr) lock_->unlock();
  }
  ExclusiveGuard(const ExclusiveGuard&) = delete;
  ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;
  ExclusiveGuard(ExclusiveGuard&& o) noexcept
      : lock_(std::exchange(o.lock_, nullptr)) {}
  ExclusiveGuard& operator=(ExclusiveGuard&&) = delete;

 private:
  L* lock_;
};

}  // namespace qsv::rwlocks
