// qsv_rwlock.hpp — shared entry with batched reader admission, striped
// reader indicators, and local spinning for blocked readers.
//
// QSV's shared mode admits readers in *batches*: all readers parked at a
// phase boundary enter together, writers take strict FIFO turns between
// batches, and neither side can starve the other (phase-fair admission,
// the policy Brandenburg & Anderson later formalized as "Pf").
//
// This is the striped redesign that restores the mechanism's headline
// O(1)-remote-reference property to the read side (the original
// centralized reconstruction is preserved as QsvRwLockCentral for the
// F8/A2 ablation):
//
//   * Reader entry/exit in the no-writer case is one RMW on the thread's
//     own StripedCounter stripe plus one load of the writer gate — no
//     shared hot line, so read throughput scales with reader count.
//   * Readers that find the gate closed retreat from their stripe and
//     park on a private node drawn from the NodeArena, spinning (or
//     futex-parking, per WaitPolicy) on a flag only their granting writer
//     writes: local spinning, as in the exclusive protocol.
//   * Writers aggregate the stripes only at phase boundaries: seal the
//     gate, wait for the previous batch to confirm, then drain the
//     stripe sum to zero. Writer FIFO is the same ticket/grant pair as
//     before.
//
// Admission protocol (correctness sketch):
//
//   reader fast path:  stripe.fetch_add(1, sc); if gate open -> in;
//                      else stripe.fetch_sub(1), park.
//   writer seal:       gate.store(closed, sc); then read stripes (sc).
//   The seq_cst pair forbids the store-buffering outcome where the
//   reader misses the seal *and* the writer misses the increment.
//
//   parking handshake: the parking reader pushes a node, then re-checks
//   the gate. If it observes the gate closed after its push, the writer
//   present at that moment has not yet collected the stack (collection
//   happens after gate-open at unlock), so the node is guaranteed to be
//   collected and granted — no lost wakeup. If it observes the gate
//   open, the reader withdraws its node with a state CAS and retries the
//   fast path; a node whose withdraw-CAS loses was already claimed into
//   the batch and its owner simply takes the grant.
//
//   batch accounting:  the unlocking writer claims parked nodes
//   (kWaiting -> kClaimed), publishes the exact batch size, opens the
//   gate, then grants (kClaimed -> kGranted). A granted reader counts
//   itself into its own stripe and only then decrements the batch count,
//   so the next writer — which waits for the batch count to reach zero
//   before trusting the stripe drain — can never slip between a grant
//   and its confirmation.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/node_arena.hpp"
#include "platform/striped_counter.hpp"
#include "platform/wait.hpp"

namespace qsv::core {

template <typename Wait = qsv::platform::RuntimeWait,
          std::size_t kStripes = 16>
class QsvRwLock {
 public:
  /// The waiting strategy (for parked readers) is per-instance state,
  /// fixed at construction; RuntimeWait instances default to the
  /// process-wide qsv::wait_policy.
  explicit QsvRwLock(Wait waiter = Wait{}) : waiter_(waiter) {
    if constexpr (requires { waiter_.consult_telemetry(obs_.rec()); }) {
      waiter_.consult_telemetry(obs_.rec());
    }
  }
  QsvRwLock(const QsvRwLock&) = delete;
  QsvRwLock& operator=(const QsvRwLock&) = delete;

  void lock_shared() noexcept {
    // Count ourselves into our own stripe, then check the gate. seq_cst
    // on both sides of the handshake (see file comment).
    auto& slot = readers_.slot();
    slot.fetch_add(1, std::memory_order_seq_cst);
    if ((gate_.load(std::memory_order_seq_cst) & kClosed) == 0) {
      qsv::obs::count_shared_acquire(obs_.rec());
      return;
    }
    // A writer phase is in progress: retreat and park.
    slot.fetch_sub(1, std::memory_order_seq_cst);
    const std::uint64_t t0 = qsv::obs::wait_begin_ns(obs_.rec());
    lock_shared_slow(slot);
    qsv::obs::count_contended_shared(obs_.rec(), t0);
  }

  /// Non-blocking shared entry: the fast path *is* a try — count into
  /// the stripe, admit if the gate is open, retreat otherwise. A
  /// closed gate refuses *before* touching the stripe: a polling
  /// try-reader must not keep injecting transient counts into the sum
  /// the draining writer is waiting to see reach zero.
  bool try_lock_shared() noexcept {
    if ((gate_.load(std::memory_order_seq_cst) & kClosed) != 0) return false;
    auto& slot = readers_.slot();
    slot.fetch_add(1, std::memory_order_seq_cst);
    if ((gate_.load(std::memory_order_seq_cst) & kClosed) == 0) {
      qsv::obs::count_shared_acquire(obs_.rec());
      return true;
    }
    slot.fetch_sub(1, std::memory_order_seq_cst);
    return false;
  }

  void unlock_shared() noexcept {
    // Exit lands on the same stripe the entry (or grant confirmation)
    // counted into; release pairs with the draining writer's loads.
    readers_.slot().fetch_sub(1, std::memory_order_release);
  }

  void lock() noexcept {
    // FIFO among writers via ticket/grant words.
    // relaxed: ticket draw; the acquire spin on writer_grant_ below is
    // the synchronization point for entering the phase.
    const std::uint32_t ticket =
        writer_ticket_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t t0 = 0;
    if (writer_grant_.load(std::memory_order_acquire) != ticket) {
      t0 = qsv::obs::wait_begin_ns(obs_.rec());
      spin_until([&] {
        return writer_grant_.load(std::memory_order_acquire) == ticket;
      });
    }
    // Seal the gate: fast-path readers arriving from here on retreat.
    gate_.store(kClosed, std::memory_order_seq_cst);
    // The batch granted at the previous boundary must have confirmed
    // (counted into its stripes) before the stripe drain means anything.
    spin_until([&] {
      return batch_pending_.load(std::memory_order_acquire) == 0;
    });
    // Drain in-flight readers. Every active entry sits stably in one
    // stripe, so a single all-zero pass proves quiescence.
    spin_until([&] {
      return readers_.sum(std::memory_order_seq_cst) == 0;
    });
    if (t0 != 0) {
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    } else {
      qsv::obs::count_acquire(obs_.rec());
    }
  }

  /// Non-blocking exclusive entry: succeeds only when no writer holds
  /// or awaits the baton AND no reader phase is in flight. On a reader
  /// collision the already-sealed gate is unwound through the normal
  /// release path so parked readers cannot be stranded.
  bool try_lock() noexcept {
    // Claim the baton only if it is immediately ours: grant == ticket
    // means no writer holds or waits; winning the ticket CAS at that
    // value hands us the baton without spinning.
    std::uint32_t g = writer_grant_.load(std::memory_order_acquire);
    // relaxed: pre-check only; a stale read just fails the CAS below.
    if (writer_ticket_.load(std::memory_order_relaxed) != g) return false;
    // relaxed: both orders — the happens-before with the previous phase
    // came through the acquire load of writer_grant_ above; failure
    // publishes nothing.
    if (!writer_ticket_.compare_exchange_strong(g, g + 1,
                                                std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
      return false;
    }
    gate_.store(kClosed, std::memory_order_seq_cst);
    // Same two conditions lock() waits out, checked once: the previous
    // batch fully confirmed, and every stripe quiescent.
    if (batch_pending_.load(std::memory_order_acquire) == 0 &&
        readers_.sum(std::memory_order_seq_cst) == 0) {
      qsv::obs::count_acquire(obs_.rec());
      return true;
    }
    // Readers are inside (or confirming): withdraw the phase.
    release_phase();
    return false;
  }

  void unlock() noexcept {
    qsv::obs::note_release(obs_.rec());
    release_phase();
  }

  static constexpr const char* name() noexcept { return "qsv-rw"; }

  /// Space cost (Table 2): the striped indicator dominates — the price
  /// of scalable reads, paid per lock instance.
  static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(QsvRwLock);
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  static constexpr std::uint32_t kClosed = 1;

  static constexpr std::uint32_t kWaiting = 0;
  static constexpr std::uint32_t kClaimed = 1;
  static constexpr std::uint32_t kGranted = 2;
  static constexpr std::uint32_t kAbandoned = 3;

  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> state{kWaiting};
  };
  using Arena = qsv::platform::NodeArena<Node>;

  /// End a writer phase: open the gate, admit the parked batch, pass
  /// the baton. Shared by unlock() and the try_lock() backout (which
  /// is why step 4 accumulates instead of storing: on backout the
  /// previous batch may still be confirming, so batch_pending_ can be
  /// nonzero here).
  void release_phase() noexcept {
    // Order matters throughout; see the admission protocol above.
    // 1. Open the gate *before* collecting the stack, so a reader that
    //    pushes too late to be collected observes the open gate on its
    //    post-push check and withdraws instead of waiting.
    gate_.store(0, std::memory_order_seq_cst);
    // 2. Collect the parked readers.
    Node* chain = rwaiters_.exchange(nullptr, std::memory_order_seq_cst);
    // 3. Claim pass: fix the batch membership and count. Withdrawn
    //    corpses are recycled here.
    Node* claimed = nullptr;
    std::uint32_t batch = 0;
    while (chain != nullptr) {
      // relaxed: the seq_cst exchange that took the stack already
      // synchronized with every push; the links are visible.
      Node* next = chain->next.load(std::memory_order_relaxed);
      std::uint32_t expected = kWaiting;
      // relaxed: failure order — a lost claim means the owner withdrew;
      // the corpse is recycled without reading through it.
      if (chain->state.compare_exchange_strong(expected, kClaimed,
                                               std::memory_order_seq_cst,
                                               std::memory_order_relaxed)) {
        // Park policies sleep on kWaiting; wake the owner so it advances
        // to waiting on kClaimed (no-op for spin policies).
        waiter_.notify_all(chain->state);
        // relaxed: claimed-list link, private to this writer until the
        // release grant below.
        chain->next.store(claimed, std::memory_order_relaxed);
        claimed = chain;
        ++batch;
      } else {
        Arena::instance().release(chain);
      }
      chain = next;
    }
    // 4. Publish the exact batch size before any grant. No reader can
    //    decrement until step 5.
    if (batch != 0) {
      // relaxed: RMW atomicity keeps the count exact; the next writer's
      // acquire load pairs with the readers' release decrements.
      batch_pending_.fetch_add(batch, std::memory_order_relaxed);
    }
    // 5. Grant: one store per node, each to the line its owner watches.
    while (claimed != nullptr) {
      // relaxed: still walking this writer's private claimed list.
      Node* next = claimed->next.load(std::memory_order_relaxed);
      claimed->state.store(kGranted, std::memory_order_release);
      waiter_.notify_all(claimed->state);
      claimed = next;
    }
    // 6. Pass the writer baton. Only the holder writes writer_grant_.
    // relaxed: reading back our own exclusive word.
    writer_grant_.store(writer_grant_.load(std::memory_order_relaxed) + 1,
                        std::memory_order_release);
  }

  void lock_shared_slow(std::atomic<std::int64_t>& slot) noexcept {
    for (;;) {
      // Retry the fast path: the phase may already be over.
      slot.fetch_add(1, std::memory_order_seq_cst);
      if ((gate_.load(std::memory_order_seq_cst) & kClosed) == 0) return;
      slot.fetch_sub(1, std::memory_order_seq_cst);

      // Park on a private node.
      Node* n = Arena::instance().acquire();
      // relaxed: node init; the seq_cst push CAS publishes it.
      n->state.store(kWaiting, std::memory_order_relaxed);
      // relaxed: head sample; the CAS validates it.
      Node* head = rwaiters_.load(std::memory_order_relaxed);
      do {
        n->next.store(head, std::memory_order_relaxed);  // relaxed: as above
      } while (!rwaiters_.compare_exchange_weak(head, n,
                                                std::memory_order_seq_cst,
                                                std::memory_order_relaxed));
      // relaxed: (failure order above) retry republishes via the CAS.

      if ((gate_.load(std::memory_order_seq_cst) & kClosed) == 0) {
        // The phase ended between our retreat and our push, so the
        // draining writer may have collected the stack without us.
        // Withdraw; if the CAS loses, we *were* collected and claimed,
        // and the grant is coming — fall through and take it.
        std::uint32_t expected = kWaiting;
        if (n->state.compare_exchange_strong(expected, kAbandoned,
                                             std::memory_order_seq_cst,
                                             std::memory_order_acquire)) {
          continue;  // corpse recycled by a later collection
        }
      }
      // Local wait: kWaiting -> kClaimed -> kGranted, every transition
      // written only by the granting writer.
      std::uint32_t s = n->state.load(std::memory_order_acquire);
      while (s != kGranted) {
        waiter_.wait_while_equal(n->state, s);
        s = n->state.load(std::memory_order_acquire);
      }
      Arena::instance().release(n);
      // Confirm admission: count into our own stripe first, then report
      // in; the next writer waits out batch_pending_ before draining.
      slot.fetch_add(1, std::memory_order_seq_cst);
      batch_pending_.fetch_sub(1, std::memory_order_release);
      return;
    }
  }

  /// Writer-side waits: spin briefly, then donate the quantum — phase
  /// boundaries are rare and may wait on preempted threads.
  template <typename Pred>
  static void spin_until(Pred&& pred) noexcept {
    for (std::uint32_t polls = 0; !pred(); ++polls) {
      if (polls < kSpinPollsBeforeYield) {
        qsv::platform::cpu_relax();
      } else {
        qsv::platform::thread_yield();
      }
    }
  }
  static constexpr std::uint32_t kSpinPollsBeforeYield = 4096;

  /// How this instance's parked readers wait (and are woken). Writer
  /// phase-boundary waits stay on spin_until: the stripe drain watches
  /// a distributed sum no single futex word can stand for.
  [[no_unique_address]] Wait waiter_;

  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};

  /// Distributed reader indicator: entry/exit touch one stripe.
  qsv::platform::StripedCounter<kStripes> readers_;
  /// Writer gate: nonzero while a writer phase is in progress. Written
  /// only by the phase's writer.
  alignas(qsv::platform::kFalseSharingRange) std::atomic<std::uint32_t>
      gate_{0};
  /// Treiber stack of parked reader nodes, drained at every unlock().
  alignas(qsv::platform::kFalseSharingRange) std::atomic<Node*>
      rwaiters_{nullptr};
  /// Readers granted at the last boundary that have not yet confirmed.
  alignas(qsv::platform::kFalseSharingRange) std::atomic<std::uint32_t>
      batch_pending_{0};
  alignas(qsv::platform::kFalseSharingRange) std::atomic<std::uint32_t>
      writer_ticket_{0};
  alignas(qsv::platform::kFalseSharingRange) std::atomic<std::uint32_t>
      writer_grant_{0};
};

}  // namespace qsv::core
