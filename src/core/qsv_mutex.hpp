// qsv_mutex.hpp — exclusive entry on a synchronization variable.
//
// The QSV exclusive protocol: the variable holds the queue tail (null =
// free). Acquire is one fetch&store; if a predecessor exists, link behind
// it and wait on a flag in our own node (local spinning). Release grants
// the successor with one store to the flag it is watching, or swings the
// variable back to null with compare&swap when no successor is queued.
//
// Per-thread queue nodes come from the platform arena and are tracked in
// a thread-local held map, so the public interface is node-free:
// lock()/unlock() like any mutex, and one word of per-variable state.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/node_arena.hpp"
#include "platform/wait.hpp"

namespace qsv::core {

template <typename Wait = qsv::platform::RuntimeWait>
class QsvMutex {
 public:
  /// The waiting strategy is per-instance state, fixed at construction:
  /// default-constructing a RuntimeWait-based mutex picks up the
  /// process-wide qsv::wait_policy, and qsv::mutex(wait_policy::park)
  /// pins this instance regardless of the process default.
  explicit QsvMutex(Wait waiter = Wait{}) : waiter_(waiter) {
    if constexpr (requires { waiter_.consult_telemetry(obs_.rec()); }) {
      waiter_.consult_telemetry(obs_.rec());
    }
  }
  QsvMutex(const QsvMutex&) = delete;
  QsvMutex& operator=(const QsvMutex&) = delete;

  void lock() {
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel exchange below publishes it.
    n->next.store(nullptr, std::memory_order_relaxed);
    n->state.store(kWaiting, std::memory_order_relaxed);  // relaxed: as above
    // acq_rel: publish our initialized node to the successor-side, and
    // observe the predecessor node published by the previous fetch&store.
    Node* pred = var_.exchange(n, std::memory_order_acq_rel);
    if (pred == nullptr) {
      qsv::obs::count_acquire(obs_.rec());
    } else {
      const std::uint64_t t0 = qsv::obs::wait_begin_ns(obs_.rec());
      // Make ourselves visible to the predecessor's release; its acquire
      // load of `next` pairs with this release store.
      pred->next.store(n, std::memory_order_release);
      waiter_.wait_while_equal(n->state, kWaiting);
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    }
    Held::local().insert(this, n);
  }

  bool try_lock() {
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel CAS below publishes it on success.
    n->next.store(nullptr, std::memory_order_relaxed);
    n->state.store(kWaiting, std::memory_order_relaxed);  // relaxed: as above
    Node* expected = nullptr;
    // relaxed: failure order — a failed try_lock reads nothing it
    // needs ordered; the node is recycled untouched.
    if (var_.compare_exchange_strong(expected, n, std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      qsv::obs::count_acquire(obs_.rec());
      Held::local().insert(this, n);
      return true;
    }
    Arena::instance().release(n);
    return false;
  }

  void unlock() {
    auto& e = Held::local().find(this);
    Node* n = e.node;
    Held::local().erase(e);
    Node* next = n->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      // Nobody linked behind us yet. If the variable still points at our
      // node the queue is empty: free the variable.
      Node* expected = n;
      // relaxed: failure order — on failure we fall through to the
      // acquire re-load of next, which carries the needed ordering.
      if (var_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
        qsv::obs::count_free_release(obs_.rec());
        Arena::instance().release(n);
        return;
      }
      // A successor performed the fetch&store but has not linked yet;
      // the window is a handful of instructions.
      while ((next = n->next.load(std::memory_order_acquire)) == nullptr) {
        qsv::platform::cpu_relax();
      }
    }
    qsv::obs::count_handoff(obs_.rec());
    // Grant: single store to the line the successor is spinning on.
    next->state.store(kGranted, std::memory_order_release);
    waiter_.notify_all(next->state);
    Arena::instance().release(n);
  }

  /// Hand the unlock obligation to another thread (the cohort
  /// combinator's hook, hier/cohort_lock.hpp): detach the in-flight
  /// acquisition's queue node from the calling thread's held map and
  /// return it as an opaque token. The lock stays held; whichever
  /// thread adopt_hold()s the token becomes the one that must unlock().
  /// Nodes are arena-owned, so the cross-thread migration is safe by
  /// construction (platform/node_arena.hpp).
  void* export_hold() {
    auto& e = Held::local().find(this);
    Node* n = e.node;
    Held::local().erase(e);
    return n;
  }
  /// Adopt an export_hold() token: the calling thread now holds the
  /// lock and must unlock() it.
  void adopt_hold(void* hold) {
    Held::local().insert(this, static_cast<Node*>(hold));
  }

  static constexpr const char* name() noexcept { return "qsv"; }

  /// Per-variable state is exactly one word (Table 2's headline row).
  static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(std::atomic<void*>);
  }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  static constexpr std::uint32_t kWaiting = 0;
  static constexpr std::uint32_t kGranted = 1;

  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> state{kWaiting};
  };
  using Arena = qsv::platform::NodeArena<Node>;
  using Held = qsv::platform::HeldMap<Node>;

  /// How this instance's blocked threads wait (and are woken).
  [[no_unique_address]] Wait waiter_;

  /// Per-instance telemetry registration (obs/hook.hpp); empty and
  /// folded away under -DQSV_OBS=0.
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};

  /// The synchronization variable itself: queue tail, null when free.
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<Node*> var_{nullptr};
};

}  // namespace qsv::core
