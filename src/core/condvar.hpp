// condvar.hpp — epoch-based condition variable for QSV mutexes.
//
// Minimal condition synchronization on the mechanism: waiting snapshots
// an epoch, releases the mutex, and blocks until the epoch moves; every
// notify advances the epoch. Spurious wakeups are permitted (as in every
// condition variable); use the predicate form. notify_one provides
// at-least-one semantics (with spin waiters it is indistinguishable from
// notify_all; with parked waiters it wakes one).
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::core {

class QsvCondVar {
 public:
  /// The waiting strategy is per-instance, fixed at construction.
  /// Like QsvSemaphore — and unlike the locks and barriers — the
  /// default is wait_policy::park rather than the process default:
  /// condition waits are unbounded, so parking is the only default
  /// that is never wrong, and it matches this class's historical
  /// hardwired spin-then-futex behavior. Pass a policy to override.
  explicit QsvCondVar(qsv::wait_policy policy = qsv::wait_policy::park)
      : waiter_(policy) {}
  QsvCondVar(const QsvCondVar&) = delete;
  QsvCondVar& operator=(const QsvCondVar&) = delete;

  /// `mutex` must be held; it is released while blocked and re-held on
  /// return. May wake spuriously.
  template <typename Mutex>
  void wait(Mutex& mutex) {
    // Snapshot under the mutex: a notifier that runs after our unlock
    // necessarily increments past this value, so no wakeup is lost.
    // relaxed: the held mutex orders this read against any notifier.
    const std::uint32_t e = epoch_.load(std::memory_order_relaxed);
    mutex.unlock();
    waiter_.wait_while_equal(epoch_, e);
    mutex.lock();
  }

  /// Predicate form: loops until `pred()` holds (the only safe idiom).
  template <typename Mutex, typename Pred>
  void wait(Mutex& mutex, Pred pred) {
    while (!pred()) wait(mutex);
  }

  void notify_one() noexcept {
    epoch_.fetch_add(1, std::memory_order_release);
    waiter_.notify_one(epoch_);
  }

  void notify_all() noexcept {
    epoch_.fetch_add(1, std::memory_order_release);
    waiter_.notify_all(epoch_);
  }

  static constexpr const char* name() noexcept { return "qsv-condvar"; }

 private:
  /// How this instance's blocked waiters wait (and are woken).
  qsv::platform::RuntimeWait waiter_;

  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> epoch_{0};
};

}  // namespace qsv::core
