// condvar.hpp — epoch-based condition variable for QSV mutexes.
//
// Minimal condition synchronization on the mechanism: waiting snapshots
// an epoch, releases the mutex, and blocks until the epoch moves; every
// notify advances the epoch. Spurious wakeups are permitted (as in every
// condition variable); use the predicate form. notify_one provides
// at-least-one semantics (with spin waiters it is indistinguishable from
// notify_all; with parked waiters it wakes one).
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"

namespace qsv::core {

class QsvCondVar {
 public:
  QsvCondVar() = default;
  QsvCondVar(const QsvCondVar&) = delete;
  QsvCondVar& operator=(const QsvCondVar&) = delete;

  /// `mutex` must be held; it is released while blocked and re-held on
  /// return. May wake spuriously.
  template <typename Mutex>
  void wait(Mutex& mutex) {
    // Snapshot under the mutex: a notifier that runs after our unlock
    // necessarily increments past this value, so no wakeup is lost.
    const std::uint32_t e = epoch_.load(std::memory_order_relaxed);
    mutex.unlock();
    for (std::uint32_t i = 0; i < kSpinPolls; ++i) {
      if (epoch_.load(std::memory_order_acquire) != e) break;
      qsv::platform::cpu_relax();
    }
    while (epoch_.load(std::memory_order_acquire) == e) {
      epoch_.wait(e, std::memory_order_acquire);
    }
    mutex.lock();
  }

  /// Predicate form: loops until `pred()` holds (the only safe idiom).
  template <typename Mutex, typename Pred>
  void wait(Mutex& mutex, Pred pred) {
    while (!pred()) wait(mutex);
  }

  void notify_one() noexcept {
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_one();
  }

  void notify_all() noexcept {
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
  }

  static constexpr const char* name() noexcept { return "qsv-condvar"; }

 private:
  static constexpr std::uint32_t kSpinPolls = 256;

  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> epoch_{0};
};

}  // namespace qsv::core
