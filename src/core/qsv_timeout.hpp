// qsv_timeout.hpp — exclusive entry with bounded impatience.
//
// QSV's timeout mode lets a queued waiter withdraw: it publishes its
// predecessor in its own node and marks the node abandoned; whichever
// thread was (or becomes) its successor splices around the corpse and
// reclaims it. The protocol is the CLH-style implicit queue — every
// waiter spins on its predecessor's node — extended with the
// {waiting, released, abandoned} state machine (cf. Scott & Scherer's
// later try-lock treatment; here it is QSV's reconstructed abort mode).
//
// Guarantees: FIFO among waiters that do not time out; O(1) amortized
// node reclamation; a timed-out waiter leaves no trace once its successor
// has passed it. Experiment F9 measures throughput under abort storms.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/node_arena.hpp"
#include "platform/timing.hpp"
#include "platform/wait.hpp"

namespace qsv::core {

class QsvTimeoutMutex {
 public:
  /// The waiting strategy is per-instance, fixed at construction, and
  /// governs the *unbounded* wait (lock()). Bounded waits must keep
  /// reading the clock, so they never park: beyond the spin budget
  /// they interleave yields with the deadline checks instead (for
  /// every policy but pure spin).
  explicit QsvTimeoutMutex(
      qsv::wait_policy policy = qsv::get_default_wait_policy())
      : waiter_(policy) {
    waiter_.consult_telemetry(obs_.rec());
    Node* sentinel = Arena::instance().acquire();
    // relaxed: single-threaded construction; publication of the mutex
    // object itself is the caller's problem (as for any std type).
    sentinel->state.store(kReleased, std::memory_order_relaxed);
    var_.store(sentinel, std::memory_order_relaxed);  // relaxed: as above
  }
  QsvTimeoutMutex(const QsvTimeoutMutex&) = delete;
  QsvTimeoutMutex& operator=(const QsvTimeoutMutex&) = delete;

  ~QsvTimeoutMutex() {
    // Quiescent teardown: reclaim the chain hanging off the variable
    // (the released sentinel plus any abandoned nodes threaded onto it).
    // relaxed: destructor runs quiescent — no concurrent users by
    // precondition, so no ordering is needed anywhere in the teardown.
    Node* n = var_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      // relaxed: quiescent teardown (as above).
      Node* pred = n->state.load(std::memory_order_relaxed) == kAbandoned
                       ? n->pred.load(std::memory_order_relaxed)
                       : nullptr;
      Arena::instance().release(n);
      n = pred;
    }
  }

  /// Unbounded acquire (never gives up).
  void lock() { (void)acquire(kNoDeadline); }

  /// Non-blocking acquire: a zero-deadline bounded acquire. We still
  /// enqueue (the queue is how this protocol talks), but withdraw via
  /// the abandon path the moment the predecessor is seen still holding
  /// — no polling loop, no clock read.
  bool try_lock() { return acquire(kImmediate); }

  /// Bounded acquire: true if the variable was acquired before `timeout`
  /// elapsed, false if we withdrew.
  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& timeout) {
    // Compare in floating nanoseconds first: duration_cast of a huge
    // coarse duration (hours::max() and friends) into int64 ns is
    // signed overflow. Anything at or beyond the ns range (~292 years)
    // is an unbounded wait, not an instant refusal.
    const auto ns_approx = std::chrono::duration_cast<
        std::chrono::duration<long double, std::nano>>(timeout);
    if (ns_approx.count() <= 0.0L) return acquire(kImmediate);
    if (ns_approx.count() >= static_cast<long double>(
                                 std::chrono::nanoseconds::max().count())) {
      return acquire(kNoDeadline);
    }
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(timeout);
    return acquire(qsv::platform::now_ns() +
                   static_cast<std::uint64_t>(ns.count()));
  }

  /// Bounded acquire against an absolute deadline on any std clock
  /// (TimedLockable). The wait itself runs on the platform monotonic
  /// clock; the caller's clock is only read to size the wait.
  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& abs) {
    const auto now = Clock::now();
    if (abs <= now) return acquire(kImmediate);
    return try_lock_for(abs - now);
  }

  void unlock() {
    auto& map = qsv::platform::HeldMap<Node>::local();
    auto& e = map.find(this);
    Node* mine = e.node;
    map.erase(e);
    // Successor (spinning on our node) sees the release and reclaims it.
    // The releaser cannot tell handoff from free release (successors
    // are implicit in this protocol): only the hold watermark updates.
    qsv::obs::note_release(obs_.rec());
    mine->state.store(kReleased, std::memory_order_release);
    // A parked successor needs the wake. It may already have observed
    // the store, taken the variable, and recycled the node — benign:
    // arena nodes are never unmapped, and every wait re-checks its
    // predicate on spurious wakes.
    waiter_.notify_all(mine->state);
  }

  static constexpr const char* name() noexcept { return "qsv-timeout"; }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  static constexpr std::uint32_t kWaiting = 0;
  static constexpr std::uint32_t kReleased = 1;
  static constexpr std::uint32_t kAbandoned = 2;
  static constexpr std::uint64_t kNoDeadline = ~0ULL;
  /// Sentinel deadline for try_lock: withdraw on the first still-held
  /// observation without ever reading the clock.
  static constexpr std::uint64_t kImmediate = 0;

  struct Node {
    std::atomic<std::uint32_t> state{kWaiting};
    /// Valid only once state == kAbandoned: where the skipper continues.
    std::atomic<Node*> pred{nullptr};
  };
  using Arena = qsv::platform::NodeArena<Node>;

  bool acquire(std::uint64_t deadline_ns) {
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel exchange below publishes it.
    n->state.store(kWaiting, std::memory_order_relaxed);
    n->pred.store(nullptr, std::memory_order_relaxed);  // relaxed: as above
    // Enqueue: acq_rel publishes our node and imports the predecessor's.
    Node* pred = var_.exchange(n, std::memory_order_acq_rel);

    // Wait on the predecessor chain, skipping abandoned nodes.
    const bool yield_late =
        waiter_.policy() != qsv::wait_policy::spin;
    const std::uint32_t budget = waiter_.spin_budget();
    std::uint32_t polls = 0, spent = 0;
    std::uint64_t t0 = 0;
    for (;;) {
      const std::uint32_t s = pred->state.load(std::memory_order_acquire);
      if (s == kReleased) {
        // We own the variable. Adopt-and-reclaim the predecessor.
        Arena::instance().release(pred);
        qsv::platform::HeldMap<Node>::local().insert(this, n);
        if (t0 != 0) {
          qsv::obs::count_contended_acquire(obs_.rec(), t0);
        } else {
          qsv::obs::count_acquire(obs_.rec());
        }
        return true;
      }
      if (s == kAbandoned) {
        // Splice around the corpse: continue on its predecessor and
        // reclaim it (we are its unique successor).
        Node* pp = pred->pred.load(std::memory_order_acquire);
        Arena::instance().release(pred);
        pred = pp;
        continue;
      }
      // The predecessor still holds: from here on we are a contended
      // waiter. try_lock (kImmediate) withdraws clock-free, so it is
      // exempt from the bracket.
      if (deadline_ns != kImmediate && t0 == 0) {
        t0 = qsv::obs::wait_begin_ns(obs_.rec());
      }
      if (deadline_ns == kNoDeadline) {
        // Unbounded: the full policy applies (a parked waiter is woken
        // by the releaser's or abandoner's notify on the pred node).
        waiter_.wait_while_equal(pred->state, kWaiting);
        continue;
      }
      if (deadline_ns == kImmediate || ++polls >= kPollsPerClock) {
        polls = 0;
        if (deadline_ns == kImmediate ||
            qsv::platform::now_ns() >= deadline_ns) {
          // Withdraw: hand our current predecessor to our successor,
          // then mark ourselves abandoned. Order matters: pred must be
          // visible before the abandoned state (release store).
          // relaxed: ordered by the release store of kAbandoned below;
          // the splicing successor's acquire load of state pairs with it.
          n->pred.store(pred, std::memory_order_relaxed);
          n->state.store(kAbandoned, std::memory_order_release);
          // Wake a parked successor so it can splice past our corpse.
          waiter_.notify_all(n->state);
          return false;
        }
      }
      // Bounded waits stay clock-driven; past the spin budget every
      // non-spin policy donates the quantum between checks.
      if (yield_late && ++spent >= budget) {
        qsv::platform::thread_yield();
      } else {
        qsv::platform::cpu_relax();
      }
    }
  }

  /// Clock reads are ~20ns; amortize them over this many polls.
  static constexpr std::uint32_t kPollsPerClock = 64;

  /// How this instance's blocked threads wait (and are woken).
  qsv::platform::RuntimeWait waiter_;

  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};

  alignas(qsv::platform::kFalseSharingRange) std::atomic<Node*> var_;
};

}  // namespace qsv::core
