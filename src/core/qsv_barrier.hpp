// qsv_barrier.hpp — episode synchronization on a synchronization variable.
//
// The QSV episode protocol reuses the exclusive-mode machinery verbatim:
// arrivers enqueue nodes onto the variable with fetch&store and spin
// locally in their own node. The difference is the grant rule — the
// arrival that completes the episode detaches the whole accumulated queue
// with one exchange and walks it, granting every waiter with one store to
// the line that waiter is watching. Two shared RMWs per arrival, local
// spinning for everyone, and the release fan-out is a linear walk by one
// thread (compare: central barrier's O(P)-wide invalidation storm, tree
// barriers' log-depth handoffs — experiment F4 ranks them).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/node_arena.hpp"
#include "platform/wait.hpp"

namespace qsv::core {

template <typename Wait = qsv::platform::SpinWait>
class QsvBarrier {
 public:
  explicit QsvBarrier(std::size_t n) : n_(static_cast<std::uint32_t>(n)) {}
  QsvBarrier(const QsvBarrier&) = delete;
  QsvBarrier& operator=(const QsvBarrier&) = delete;

  void arrive_and_wait(std::size_t /*rank*/ = 0) {
    Node* n = Arena::instance().acquire();
    n->state.store(kWaiting, std::memory_order_relaxed);
    // Enqueue onto the variable (same fetch&store as the mutex path).
    Node* prev = var_.exchange(n, std::memory_order_acq_rel);
    n->prev.store(prev, std::memory_order_relaxed);
    // Count the arrival. acq_rel makes every earlier arriver's enqueue
    // (and pre-barrier writes) happen-before the closing arrival below.
    const std::uint32_t c = arrived_.fetch_add(1, std::memory_order_acq_rel);
    if (c + 1 == n_) {
      complete_episode(n);
    } else {
      Wait::wait_while_equal(n->state, kWaiting);
      Arena::instance().release(n);
    }
  }

  std::size_t team_size() const noexcept { return n_; }
  static constexpr const char* name() noexcept { return "qsv-episode"; }

 private:
  static constexpr std::uint32_t kWaiting = 0;
  static constexpr std::uint32_t kGranted = 1;

  struct Node {
    std::atomic<Node*> prev{nullptr};
    std::atomic<std::uint32_t> state{kWaiting};
  };
  using Arena = qsv::platform::NodeArena<Node>;

  void complete_episode(Node* mine) {
    // Re-arm the counter *before* any grant: a granted thread may
    // re-arrive immediately, and the grant's release store orders the
    // reset before its next fetch_add.
    arrived_.store(0, std::memory_order_relaxed);
    // Detach the episode's entire queue; the variable is free for the
    // next episode. All n nodes are present: every arrival enqueued
    // before it counted, and the count reached n.
    Node* chain = var_.exchange(nullptr, std::memory_order_acquire);
    while (chain != nullptr) {
      // Read the link before granting: after the grant the waiter may
      // reclaim the node at any moment.
      Node* p = chain->prev.load(std::memory_order_relaxed);
      if (chain == mine) {
        Arena::instance().release(chain);
      } else {
        chain->state.store(kGranted, std::memory_order_release);
        Wait::notify_all(chain->state);
      }
      chain = p;
    }
  }

  const std::uint32_t n_;
  /// The synchronization variable: tail of the episode's arrival queue.
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<Node*> var_{nullptr};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> arrived_{0};
};

}  // namespace qsv::core
