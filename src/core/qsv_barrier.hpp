// qsv_barrier.hpp — episode synchronization on a synchronization variable.
//
// The QSV episode protocol reuses the exclusive-mode machinery verbatim:
// arrivers enqueue nodes onto the variable with fetch&store and spin
// locally in their own node. The difference is the grant rule — the
// arrival that completes the episode detaches the whole accumulated queue
// with one exchange and walks it, granting every waiter with one store to
// the line that waiter is watching. Two shared RMWs per arrival, local
// spinning for everyone, and the release fan-out is a linear walk by one
// thread (compare: central barrier's O(P)-wide invalidation storm, tree
// barriers' log-depth handoffs — experiment F4 ranks them).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/node_arena.hpp"
#include "platform/wait.hpp"

namespace qsv::core {

template <typename Wait = qsv::platform::RuntimeWait>
class QsvBarrier {
 public:
  /// `n` = team size. The waiting strategy is per-instance, fixed at
  /// construction; RuntimeWait instances default to the process-wide
  /// qsv::wait_policy.
  explicit QsvBarrier(std::size_t n, Wait waiter = Wait{})
      : waiter_(waiter), n_(static_cast<std::uint32_t>(n)) {}
  QsvBarrier(const QsvBarrier&) = delete;
  QsvBarrier& operator=(const QsvBarrier&) = delete;

  void arrive_and_wait(std::size_t /*rank*/ = 0) {
    Node* n = Arena::instance().acquire();
    // relaxed: node init; the acq_rel exchange below publishes it.
    n->state.store(kWaiting, std::memory_order_relaxed);
    // Enqueue onto the variable (same fetch&store as the mutex path).
    Node* prev = var_.exchange(n, std::memory_order_acq_rel);
    // relaxed: only the closing arrival walks prev, and its acq_rel
    // fetch_add of arrived_ pairs with ours below to order the link.
    n->prev.store(prev, std::memory_order_relaxed);
    // Read the team size *before* counting the arrival: the episode
    // cannot close (and shrink n_) until this arrival has counted, so
    // the pre-count load is exactly this episode's team — whereas a
    // post-count load could see a concurrent closer's shrink and make
    // a second arriver believe it closed the episode too.
    const std::uint32_t team = n_.load(std::memory_order_acquire);
    // Count the arrival. acq_rel makes every earlier arriver's enqueue
    // (and pre-barrier writes) happen-before the closing arrival below.
    const std::uint32_t c = arrived_.fetch_add(1, std::memory_order_acq_rel);
    if (c + 1 == team) {
      complete_episode(n);
    } else {
      waiter_.wait_while_equal(n->state, kWaiting);
      Arena::instance().release(n);
    }
  }

  /// Leave the team (std::barrier::arrive_and_drop): counts as an
  /// arrival of the current episode — so waiting teammates are not
  /// stranded — but never waits, enqueues no node, and shrinks the
  /// team for every subsequent episode. The caller must not arrive
  /// again. The drop is registered *before* the arrival count so any
  /// completion that includes this arrival also applies the shrink.
  void arrive_and_drop(std::size_t /*rank*/ = 0) {
    pending_drops_.fetch_add(1, std::memory_order_acq_rel);
    // Same load-before-count rule as arrive_and_wait.
    const std::uint32_t team = n_.load(std::memory_order_acquire);
    const std::uint32_t c = arrived_.fetch_add(1, std::memory_order_acq_rel);
    if (c + 1 == team) {
      complete_episode(nullptr);
    }
  }

  std::size_t team_size() const noexcept {
    return n_.load(std::memory_order_acquire);
  }
  static constexpr const char* name() noexcept { return "qsv-episode"; }

 private:
  static constexpr std::uint32_t kWaiting = 0;
  static constexpr std::uint32_t kGranted = 1;

  struct Node {
    std::atomic<Node*> prev{nullptr};
    std::atomic<std::uint32_t> state{kWaiting};
  };
  using Arena = qsv::platform::NodeArena<Node>;

  /// Close the episode. `mine` is the closer's own queue node, or
  /// nullptr when the closer arrived via arrive_and_drop (droppers
  /// enqueue nothing — there is no wait to grant out of).
  void complete_episode(Node* mine) {
    // Apply pending drops *before* re-arming: the next episode's
    // arrivals must compare against the shrunk team or they would wait
    // for members that left. Ordered by the same grant release stores
    // as the reset below.
    const std::uint32_t drops =
        pending_drops_.exchange(0, std::memory_order_acq_rel);
    // relaxed: next episode's arrivals read n_ after the grant/release
    // edge (or the closer's own program order); the RMW keeps it exact.
    if (drops != 0) n_.fetch_sub(drops, std::memory_order_relaxed);
    // Re-arm the counter *before* any grant: a granted thread may
    // re-arrive immediately, and the grant's release store orders the
    // reset before its next fetch_add.
    arrived_.store(0, std::memory_order_relaxed);  // relaxed: see above
    // Detach the episode's entire queue; the variable is free for the
    // next episode. Every *waiting* arrival's node is present (each
    // enqueued before it counted, and the count reached n); droppers
    // counted without enqueueing, so the chain holds team-minus-
    // droppers nodes, not necessarily n.
    Node* chain = var_.exchange(nullptr, std::memory_order_acquire);
    while (chain != nullptr) {
      // Read the link before granting: after the grant the waiter may
      // reclaim the node at any moment.
      // relaxed: the links were ordered by the arrivals' acq_rel
      // fetch_adds of arrived_, which this closer's own RMW imported.
      Node* p = chain->prev.load(std::memory_order_relaxed);
      if (chain == mine) {
        Arena::instance().release(chain);
      } else {
        chain->state.store(kGranted, std::memory_order_release);
        waiter_.notify_all(chain->state);
      }
      chain = p;
    }
  }

  /// How this instance's waiting arrivals wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  /// Current team size; shrinks at episode boundaries as members drop.
  std::atomic<std::uint32_t> n_;
  /// The synchronization variable: tail of the episode's arrival queue.
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<Node*> var_{nullptr};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> arrived_{0};
  /// Members that called arrive_and_drop since the last boundary.
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> pending_drops_{0};
};

}  // namespace qsv::core
