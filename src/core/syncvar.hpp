// syncvar.hpp — the Queued Synchronization Variable (QSV) mechanism.
//
// This is the reconstructed primary contribution of "A New Synchronization
// Mechanism" (ICPP 1991); see DESIGN.md for the provenance caveat. The
// mechanism in one paragraph:
//
//   A *synchronization variable* is a single machine word. Threads that
//   must wait enqueue a per-thread queue node onto the word with one
//   fetch&store and spin on a flag inside their own node — never on the
//   shared word — so a release touches exactly the one line the next
//   waiter is watching. The same word + node protocol serves
//     * exclusive entry           (QsvMutex),
//     * shared entry with batched reader admission (QsvRwLock),
//     * bounded-impatience entry  (QsvTimeoutMutex: waiters may withdraw),
//     * episode synchronization   (QsvBarrier: the closing arrival walks
//                                  the accumulated queue, granting all),
//   plus two convenience layers (QsvSemaphore, QsvCondVar).
//
// Waiting is factored out behind the runtime waiting layer
// (qsv::wait_policy / platform::RuntimeWait), which is the precise
// sense in which the mechanism was "superseded by modern
// futex/atomics": construct with wait_policy::spin for 1991 semantics,
// wait_policy::park for a futex-era lock, wait_policy::adaptive for a
// self-calibrating one — no change to the protocol, no template
// parameter, retunable per process via QSV_WAIT (experiment A1).
//
// This umbrella header exports the whole public core API.
#pragma once

#include "core/condvar.hpp"       // IWYU pragma: export
#include "core/qsv_barrier.hpp"   // IWYU pragma: export
#include "core/qsv_mutex.hpp"     // IWYU pragma: export
#include "core/qsv_rwlock.hpp"    // IWYU pragma: export
#include "core/qsv_rwlock_central.hpp"  // IWYU pragma: export
#include "core/qsv_timeout.hpp"   // IWYU pragma: export
#include "core/semaphore.hpp"     // IWYU pragma: export
