// events.hpp — optional protocol-event instrumentation for QSV
// primitives. The default NullEvents sink compiles to nothing; benches
// instantiate primitives with CountingEvents to report fast-path /
// handoff mixes.
#pragma once

#include <atomic>
#include <cstdint>

namespace qsv::core {

/// Snapshot of protocol-event tallies.
struct EventCounts {
  std::uint64_t uncontended_acquires = 0;  ///< got the word with queue empty
  std::uint64_t queued_acquires = 0;       ///< had to enqueue and wait
  std::uint64_t direct_handoffs = 0;       ///< release found a waiter
  std::uint64_t free_releases = 0;         ///< release found empty queue
};

/// No-op event sink (default): zero cost.
struct NullEvents {
  static void count_uncontended() noexcept {}
  static void count_queued() noexcept {}
  static void count_handoff() noexcept {}
  static void count_free_release() noexcept {}
};

/// Process-global relaxed counters (bench instrumentation only; not part
/// of the synchronization protocol).
struct CountingEvents {
  static inline std::atomic<std::uint64_t> uncontended{0};
  static inline std::atomic<std::uint64_t> queued{0};
  static inline std::atomic<std::uint64_t> handoffs{0};
  static inline std::atomic<std::uint64_t> free_releases{0};

  static void count_uncontended() noexcept {
    // relaxed: monotonic stat counter; nothing is published under it.
    uncontended.fetch_add(1, std::memory_order_relaxed);
  }
  static void count_queued() noexcept {
    // relaxed: monotonic stat counter; nothing is published under it.
    queued.fetch_add(1, std::memory_order_relaxed);
  }
  static void count_handoff() noexcept {
    // relaxed: monotonic stat counter; nothing is published under it.
    handoffs.fetch_add(1, std::memory_order_relaxed);
  }
  static void count_free_release() noexcept {
    // relaxed: monotonic stat counter; nothing is published under it.
    free_releases.fetch_add(1, std::memory_order_relaxed);
  }

  static EventCounts snapshot() noexcept {
    // Callers quiesce the workers (join) before reading, so the joins'
    // synchronizes-with edges order these; the loads themselves need none.
    return EventCounts{
        uncontended.load(std::memory_order_relaxed),    // relaxed: stat read
        queued.load(std::memory_order_relaxed),         // relaxed: stat read
        handoffs.load(std::memory_order_relaxed),       // relaxed: stat read
        free_releases.load(std::memory_order_relaxed)}; // relaxed: stat read
  }
  static void reset() noexcept {
    uncontended.store(0, std::memory_order_relaxed);    // relaxed: stat reset
    queued.store(0, std::memory_order_relaxed);         // relaxed: stat reset
    handoffs.store(0, std::memory_order_relaxed);       // relaxed: stat reset
    free_releases.store(0, std::memory_order_relaxed);  // relaxed: stat reset
  }
};

}  // namespace qsv::core
