// semaphore.hpp — FIFO counting semaphore on QSV's ticket discipline.
//
// Convenience layer over the mechanism: permits are tickets. acquire()
// takes the next ticket and waits until the grant horizon passes it;
// release() advances the horizon. FIFO-fair by construction (tickets are
// served in order), one RMW per operation on either side.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::core {

class QsvSemaphore {
 public:
  /// `initial` = number of immediately available permits. The waiting
  /// strategy is per-instance, fixed at construction. Unlike the lock
  /// and barrier primitives, the default here is wait_policy::park —
  /// NOT the process default: semaphore waits are unbounded condition
  /// waits (a permit may be minutes away), where burning a processor
  /// is never right. This is also this class's historical behavior
  /// (it hardwired spin-then-futex before the runtime layer). Pass a
  /// policy to override.
  explicit QsvSemaphore(std::int64_t initial,
                        qsv::wait_policy policy = qsv::wait_policy::park)
      : waiter_(policy), grants_(initial) {}
  QsvSemaphore(const QsvSemaphore&) = delete;
  QsvSemaphore& operator=(const QsvSemaphore&) = delete;

  void acquire() {
    // relaxed: ticket draw; the acquire load of grants_ below is the
    // synchronization point with the releasing thread.
    const std::int64_t ticket =
        tickets_.fetch_add(1, std::memory_order_relaxed);
    // Wait for the grant horizon to pass our ticket. The horizon only
    // moves forward, so "changed from the snapshot" is exactly one
    // step of progress — the policy's terminal wait applies verbatim.
    for (;;) {
      const std::int64_t g = grants_.load(std::memory_order_acquire);
      if (g > ticket) return;
      waiter_.wait_while_equal(grants_, g);
    }
  }

  /// Non-blocking: claim a permit only if one is free right now.
  bool try_acquire() {
    // relaxed: sample only; the CAS below validates it.
    std::int64_t t = tickets_.load(std::memory_order_relaxed);
    for (;;) {
      if (grants_.load(std::memory_order_acquire) <= t) return false;
      // relaxed: failure order — retry refreshes t; nothing is read
      // through the failed value.
      if (tickets_.compare_exchange_weak(t, t + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  void release(std::int64_t count = 1) {
    grants_.fetch_add(count, std::memory_order_release);
    waiter_.notify_all(grants_);
  }

  /// Permits currently available (negative = threads waiting).
  std::int64_t available() const noexcept {
    return grants_.load(std::memory_order_acquire) -
           tickets_.load(std::memory_order_acquire);
  }

  static constexpr const char* name() noexcept { return "qsv-semaphore"; }

 private:
  /// How this instance's blocked acquirers wait (and are woken).
  qsv::platform::RuntimeWait waiter_;

  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::int64_t> tickets_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::int64_t> grants_;
};

}  // namespace qsv::core
