// semaphore.hpp — FIFO counting semaphore on QSV's ticket discipline.
//
// Convenience layer over the mechanism: permits are tickets. acquire()
// takes the next ticket and waits until the grant horizon passes it;
// release() advances the horizon. FIFO-fair by construction (tickets are
// served in order), one RMW per operation on either side.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"

namespace qsv::core {

class QsvSemaphore {
 public:
  /// `initial` = number of immediately available permits.
  explicit QsvSemaphore(std::int64_t initial) : grants_(initial) {}
  QsvSemaphore(const QsvSemaphore&) = delete;
  QsvSemaphore& operator=(const QsvSemaphore&) = delete;

  void acquire() {
    const std::int64_t ticket =
        tickets_.fetch_add(1, std::memory_order_relaxed);
    // Spin briefly, then park on the grant horizon via the futex path.
    for (std::uint32_t i = 0; i < kSpinPolls; ++i) {
      if (grants_.load(std::memory_order_acquire) > ticket) return;
      qsv::platform::cpu_relax();
    }
    for (;;) {
      const std::int64_t g = grants_.load(std::memory_order_acquire);
      if (g > ticket) return;
      grants_.wait(g, std::memory_order_acquire);
    }
  }

  /// Non-blocking: claim a permit only if one is free right now.
  bool try_acquire() {
    std::int64_t t = tickets_.load(std::memory_order_relaxed);
    for (;;) {
      if (grants_.load(std::memory_order_acquire) <= t) return false;
      if (tickets_.compare_exchange_weak(t, t + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  void release(std::int64_t count = 1) {
    grants_.fetch_add(count, std::memory_order_release);
    grants_.notify_all();
  }

  /// Permits currently available (negative = threads waiting).
  std::int64_t available() const noexcept {
    return grants_.load(std::memory_order_acquire) -
           tickets_.load(std::memory_order_acquire);
  }

  static constexpr const char* name() noexcept { return "qsv-semaphore"; }

 private:
  static constexpr std::uint32_t kSpinPolls = 512;

  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::int64_t> tickets_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::int64_t> grants_;
};

}  // namespace qsv::core
