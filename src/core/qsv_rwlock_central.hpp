// qsv_rwlock_central.hpp — the centralized-counter reconstruction of QSV
// shared mode, kept as the ablation baseline for experiment F8/A2.
//
// This is the original reconstruction: batched (phase-fair) reader
// admission driven by two shared reader words (entries and exits) and two
// writer words (tickets and grants), each updated by one RMW per
// operation. Every reader entry/exit is an RMW on one hot line and
// shared-mode waiters spin on the admission words themselves, so the
// O(1)-remote-reference property of the exclusive protocol does not carry
// over to readers — exactly the traffic cost the striped rewrite in
// qsv_rwlock.hpp removes. Keep this variant byte-for-byte equivalent to
// the measured artifact; it is the "before" in the before/after story.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/hook.hpp"
#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::core {

template <typename Wait = qsv::platform::RuntimeWait>
class QsvRwLockCentral {
 public:
  /// The waiting strategy is per-instance, fixed at construction. Note
  /// the centralized design's waits are *predicate* waits on shared
  /// admission words (masked bits, counters), so they go through the
  /// policy's wait_until: readers can park on reader_in_, writers on
  /// their baton word; the reader-drain wait on reader_out_ stays
  /// spin/yield (readers count out without a wake).
  explicit QsvRwLockCentral(Wait waiter = Wait{}) : waiter_(waiter) {
    if constexpr (requires { waiter_.consult_telemetry(obs_.rec()); }) {
      waiter_.consult_telemetry(obs_.rec());
    }
  }
  QsvRwLockCentral(const QsvRwLockCentral&) = delete;
  QsvRwLockCentral& operator=(const QsvRwLockCentral&) = delete;

  void lock_shared() noexcept {
    // Announce entry and learn whether a writer phase is in progress.
    const std::uint32_t w =
        reader_in_.fetch_add(kReaderInc, std::memory_order_acquire) &
        kWriterBits;
    if (w != 0) {
      // A writer is present: wait for *that* writer phase to end. The
      // phase id bit flips every writer, so we pass after exactly one
      // writer even under a continuous write stream (no starvation).
      const std::uint64_t t0 = qsv::obs::wait_begin_ns(obs_.rec());
      waiter_.wait_until(reader_in_, [&] {
        return (reader_in_.load(std::memory_order_acquire) & kWriterBits) !=
               w;
      });
      qsv::obs::count_contended_shared(obs_.rec(), t0);
      return;
    }
    qsv::obs::count_shared_acquire(obs_.rec());
  }

  /// Non-blocking shared entry. Unlike lock_shared(), admission must
  /// be a CAS: an entry counted while a writer is present is part of a
  /// later batch and may not simply count itself back out (the phase
  /// accounting would strand that writer), so the count and the
  /// no-writer check have to land atomically.
  bool try_lock_shared() noexcept {
    std::uint32_t v = reader_in_.load(std::memory_order_acquire);
    for (std::uint32_t attempts = 0; attempts < kTryAttempts; ++attempts) {
      if ((v & kWriterBits) != 0) return false;
      if (reader_in_.compare_exchange_weak(v, v + kReaderInc,
                                           std::memory_order_acquire,
                                           std::memory_order_acquire)) {
        qsv::obs::count_shared_acquire(obs_.rec());
        return true;
      }
    }
    return false;  // admission word too contended; report busy
  }

  void unlock_shared() noexcept {
    // release: our read section happens-before the writer that counts us
    // out.
    reader_out_.fetch_add(kReaderInc, std::memory_order_release);
  }

  void lock() noexcept {
    // FIFO among writers via ticket/grant words.
    // relaxed: ticket draw; the acquire wait on writer_grant_ below is
    // the synchronization point for entering the phase.
    const std::uint32_t ticket =
        writer_ticket_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t t0 = 0;
    if (writer_grant_.load(std::memory_order_acquire) != ticket) {
      t0 = qsv::obs::wait_begin_ns(obs_.rec());
      waiter_.wait_until(writer_grant_, [&] {
        return writer_grant_.load(std::memory_order_acquire) == ticket;
      });
    }
    // Announce the writer phase to readers: set presence + phase-id bits.
    // Readers that incremented reader_in_ before this RMW are "ahead of
    // us"; the prior value tells us how many to wait out.
    const std::uint32_t bits = kWriterPresent | (ticket & kPhaseId);
    const std::uint32_t in_before =
        reader_in_.fetch_add(bits, std::memory_order_acquire) & ~kWriterBits;
    // Wait until every such reader has counted itself out. Readers
    // count out with a plain RMW (no wake), so this drain never parks:
    // spin the budget, then yield.
    qsv::platform::SpinYieldWait{kDrainSpinPolls}.wait_until(
        reader_out_, [&] {
          return reader_out_.load(std::memory_order_acquire) == in_before;
        });
    if (t0 != 0) {
      qsv::obs::count_contended_acquire(obs_.rec(), t0);
    } else {
      qsv::obs::count_acquire(obs_.rec());
    }
  }

  /// Non-blocking exclusive entry: take the baton only if it is free
  /// right now, announce the phase, and succeed only if every earlier
  /// reader has already counted out; otherwise withdraw the phase and
  /// pass the baton on.
  bool try_lock() noexcept {
    std::uint32_t g = writer_grant_.load(std::memory_order_acquire);
    // relaxed: pre-check only; a stale read just fails the CAS below.
    if (writer_ticket_.load(std::memory_order_relaxed) != g) return false;
    // relaxed: both orders — the happens-before with the previous phase
    // came through the acquire load of writer_grant_ above; failure
    // publishes nothing.
    if (!writer_ticket_.compare_exchange_strong(g, g + 1,
                                                std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
      return false;
    }
    const std::uint32_t bits = kWriterPresent | (g & kPhaseId);
    const std::uint32_t in_before =
        reader_in_.fetch_add(bits, std::memory_order_acquire) & ~kWriterBits;
    if (reader_out_.load(std::memory_order_acquire) == in_before) {
      qsv::obs::count_acquire(obs_.rec());
      return true;
    }
    // Readers still inside: clear the phase bits (readers that captured
    // them batch in, exactly as after unlock()) and pass the baton.
    reader_in_.fetch_and(~kWriterBits, std::memory_order_release);
    waiter_.notify_all(reader_in_);
    writer_grant_.store(g + 1, std::memory_order_release);
    waiter_.notify_all(writer_grant_);
    return false;
  }

  void unlock() noexcept {
    qsv::obs::note_release(obs_.rec());
    // End the writer phase: clear presence/phase bits; waiting readers
    // (who captured the old bits) see the change and batch in. release
    // publishes the write section to them.
    reader_in_.fetch_and(~kWriterBits, std::memory_order_release);
    waiter_.notify_all(reader_in_);
    // Pass the writer baton. Only the holder writes writer_grant_.
    // relaxed: reading back our own exclusive word.
    writer_grant_.store(
        writer_grant_.load(std::memory_order_relaxed) + 1,
        std::memory_order_release);
    waiter_.notify_all(writer_grant_);
  }

  static constexpr const char* name() noexcept { return "qsv-rw/central"; }

  /// This instance's registry record (null when telemetry is off).
  const qsv::obs::LockRec* telemetry() const noexcept { return obs_.rec(); }

 private:
  // reader_in_ layout: bits 0..1 writer presence/phase; bits 8..31 count
  // of reader entries. reader_out_ uses the count bits only.
  static constexpr std::uint32_t kReaderInc = 0x100;
  /// try_lock_shared gives up after this many lost admission CASes.
  static constexpr std::uint32_t kTryAttempts = 64;
  static constexpr std::uint32_t kWriterBits = 0x3;
  static constexpr std::uint32_t kWriterPresent = 0x2;
  static constexpr std::uint32_t kPhaseId = 0x1;
  /// Polls before the reader-drain wait starts yielding.
  static constexpr std::uint32_t kDrainSpinPolls = 4096;

  /// How this instance's blocked threads wait (and are woken).
  [[no_unique_address]] Wait waiter_;

  /// Per-instance telemetry registration (obs/hook.hpp).
  [[no_unique_address]] qsv::obs::Handle obs_{name(), this};

  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> reader_in_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> reader_out_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> writer_ticket_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> writer_grant_{0};
};

}  // namespace qsv::core
