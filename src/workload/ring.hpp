// ring.hpp — bounded buffer built entirely from QSV primitives.
//
// The canonical producer/consumer substrate: two counting semaphores
// guard slots/items, a QSV mutex guards the ring indices. Exercises the
// mutex and semaphore together (integration tests and the pipeline
// example drive it).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/qsv_mutex.hpp"
#include "core/semaphore.hpp"

namespace qsv::workload {

template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity)
      : buffer_(capacity),
        slots_(static_cast<std::int64_t>(capacity)),
        items_(0) {}

  /// Blocks while the ring is full.
  void push(T value) {
    slots_.acquire();
    {
      qsv::core::QsvMutex<>& m = mutex_;
      m.lock();
      buffer_[tail_ % buffer_.size()] = std::move(value);
      ++tail_;
      m.unlock();
    }
    items_.release();
  }

  /// Blocks while the ring is empty.
  T pop() {
    items_.acquire();
    T out;
    {
      qsv::core::QsvMutex<>& m = mutex_;
      m.lock();
      out = std::move(buffer_[head_ % buffer_.size()]);
      ++head_;
      m.unlock();
    }
    slots_.release();
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    if (!items_.try_acquire()) return std::nullopt;
    T out;
    {
      mutex_.lock();
      out = std::move(buffer_[head_ % buffer_.size()]);
      ++head_;
      mutex_.unlock();
    }
    slots_.release();
    return out;
  }

  std::size_t capacity() const noexcept { return buffer_.size(); }

 private:
  std::vector<T> buffer_;
  qsv::core::QsvSemaphore slots_;
  qsv::core::QsvSemaphore items_;
  qsv::core::QsvMutex<> mutex_;
  std::size_t head_ = 0;  // guarded by mutex_
  std::size_t tail_ = 0;  // guarded by mutex_
};

}  // namespace qsv::workload
