// critical_section.hpp — calibrated synthetic work.
//
// Benchmark critical sections must burn a *controlled* amount of time
// without touching shared memory. busy_wait_ns polls the steady clock
// with a pause-loop between polls, giving ~20ns resolution, which is
// plenty for the 0..4096ns sweeps in experiment F6.
#pragma once

#include <cstdint>

#include "platform/arch.hpp"
#include "platform/timing.hpp"

namespace qsv::workload {

/// Busy-wait for approximately `ns` nanoseconds (0 = return immediately).
inline void busy_wait_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const std::uint64_t deadline = qsv::platform::now_ns() + ns;
  while (qsv::platform::now_ns() < deadline) {
    qsv::platform::cpu_relax();
  }
}

/// A shared counter mutated inside critical sections so the compiler
/// cannot elide them, plus a per-invocation integrity token. Tests use
/// `check()` to verify mutual exclusion was never violated: two threads
/// inside simultaneously would tear the pair.
class GuardedCounter {
 public:
  /// Call only while holding the lock under test.
  void bump() noexcept {
    // Deliberately non-atomic read-modify-write pair: torn under races.
    const std::uint64_t v = value_;
    shadow_ = v + 1;
    value_ = v + 1;
  }

  /// True iff every bump was mutually excluded.
  bool consistent() const noexcept { return value_ == shadow_; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  volatile std::uint64_t value_ = 0;
  volatile std::uint64_t shadow_ = 0;
};

}  // namespace qsv::workload
