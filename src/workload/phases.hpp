// phases.hpp — barrier-phase computation workload (experiment F4 and the
// Jacobi example). Each thread owns a strip of a vector; every phase
// reads neighbours written in the previous phase, so any barrier bug
// materializes as a wrong checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qsv::workload {

/// One Jacobi-style smoothing sweep over `cells`, restricted to
/// [begin, end): out[i] = (in[i-1] + in[i] + in[i+1]) / 3 with clamped
/// edges, in fixed point so results are exact and checkable.
inline void smooth_strip(const std::vector<std::int64_t>& in,
                         std::vector<std::int64_t>& out, std::size_t begin,
                         std::size_t end) noexcept {
  const std::size_t n = in.size();
  for (std::size_t i = begin; i < end; ++i) {
    const std::int64_t left = in[i == 0 ? 0 : i - 1];
    const std::int64_t right = in[i + 1 >= n ? n - 1 : i + 1];
    out[i] = (left + in[i] + right) / 3;
  }
}

/// Reference serial result after `phases` sweeps (for verification).
inline std::vector<std::int64_t> smooth_serial(std::vector<std::int64_t> v,
                                               std::size_t phases) {
  std::vector<std::int64_t> tmp(v.size());
  for (std::size_t p = 0; p < phases; ++p) {
    smooth_strip(v, tmp, 0, v.size());
    v.swap(tmp);
  }
  return v;
}

/// Deterministic initial vector for the phase workloads.
inline std::vector<std::int64_t> phase_input(std::size_t n,
                                             std::uint64_t seed = 42) {
  std::vector<std::int64_t> v(n);
  std::uint64_t x = seed;
  for (auto& e : v) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    e = static_cast<std::int64_t>(x >> 40);  // keep values small and exact
  }
  return v;
}

}  // namespace qsv::workload
