// rw_mix.hpp — readers-writers workload generation (experiment F8).
#pragma once

#include <cstdint>

#include "platform/rng.hpp"

namespace qsv::workload {

/// Per-thread deterministic stream of read/write decisions.
class RwMix {
 public:
  /// `read_ratio` in [0,1]; `seed` ensures reproducibility per thread.
  RwMix(double read_ratio, std::uint64_t seed)
      : rng_(seed), read_ratio_(read_ratio) {}

  /// True = next operation is a read.
  bool next_is_read() noexcept { return rng_.next_bool(read_ratio_); }

  /// Uniform key for the operation (e.g. cache slot).
  std::uint64_t next_key(std::uint64_t space) noexcept {
    return rng_.next_below(space);
  }

 private:
  qsv::platform::Xoshiro256 rng_;
  double read_ratio_;
};

/// Shared state protected by the reader-writer lock under test. Readers
/// verify the invariant (all cells equal); writers advance it. Any
/// reader/writer or writer/writer overlap shows up as a torn snapshot.
class VersionedCells {
 public:
  static constexpr std::size_t kCells = 8;

  /// Writer: advance every cell to the next version (hold exclusive).
  void write() noexcept {
    const std::uint64_t v = cells_[0] + 1;
    for (auto& c : cells_) c = v;
  }

  /// Reader: true iff the snapshot is consistent (hold shared).
  bool read_consistent() const noexcept {
    const std::uint64_t v = cells_[0];
    for (const auto& c : cells_) {
      if (c != v) return false;
    }
    return true;
  }

  std::uint64_t version() const noexcept { return cells_[0]; }

 private:
  volatile std::uint64_t cells_[kCells] = {};
};

}  // namespace qsv::workload
