// parking_lot.hpp — address-keyed wait queues in user space.
//
// The calibration band says the 1991 mechanism was "superseded by modern
// futex/atomics". This module makes the *mechanism* of that statement
// concrete by building the futex itself from the repository's own 1991
// toolkit: a hash table of wait queues keyed by address, each bucket
// guarded by a test&set spinlock, with per-thread slots to block on.
// It is the user-space half of a futex (the kernel half — actually
// descheduling the thread — is delegated to C++20 atomic wait, which on
// Linux compiles down to the futex syscall).
//
// Layering:
//   ParkingLot      — park(addr, predicate) / unpark_one / unpark_all
//   FutexMutex      — the classic 3-state futex mutex on one word
//   LotParkWait     — a platform::WaitPolicy that waits through the lot,
//                     so any QSV primitive can be instantiated "as if
//                     the OS gave us futexes" (experiment A4)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::parking {

/// Process-wide table of address-keyed wait queues.
class ParkingLot {
 public:
  static ParkingLot& instance() {
    static ParkingLot lot;
    return lot;
  }
  ParkingLot(const ParkingLot&) = delete;
  ParkingLot& operator=(const ParkingLot&) = delete;

  /// Block the calling thread on `addr` unless `should_park` returns
  /// false once we hold the bucket lock. The predicate re-check under
  /// the lock is the futex's compare step: a waker that changes the
  /// state and calls unpark after our check cannot be missed, because
  /// it needs the same bucket lock to scan the queue.
  /// Returns true if the thread actually parked (and was unparked),
  /// false if the predicate said not to.
  bool park(const void* addr, const std::function<bool()>& should_park) {
    Slot& slot = my_slot();
    Bucket& b = bucket_of(addr);
    b.lock();
    if (!should_park()) {
      b.unlock();
      return false;
    }
    slot.addr = addr;
    // relaxed: re-arming our own slot; the bucket mutex that enqueues
    // it (and the waker that sets it) provide the ordering.
    slot.signaled.store(0, std::memory_order_relaxed);
    slot.next = nullptr;
    if (b.tail == nullptr) {
      b.head = &slot;
    } else {
      b.tail->next = &slot;
    }
    b.tail = &slot;
    b.unlock();
    // Terminal wait: spin briefly, then let the OS futex take over.
    for (std::uint32_t i = 0; i < kSpinPolls; ++i) {
      if (slot.signaled.load(std::memory_order_acquire) != 0) return true;
      qsv::platform::cpu_relax();
    }
    while (slot.signaled.load(std::memory_order_acquire) == 0) {
      slot.signaled.wait(0, std::memory_order_acquire);
    }
    return true;
  }

  /// Wake at most one thread parked on `addr`. Returns the number woken.
  std::size_t unpark_one(const void* addr) { return unpark(addr, 1); }

  /// Wake every thread parked on `addr`. Returns the number woken.
  std::size_t unpark_all(const void* addr) {
    return unpark(addr, ~static_cast<std::size_t>(0));
  }

  /// Threads currently parked on `addr` (diagnostic; racy by nature).
  std::size_t parked_count(const void* addr) {
    Bucket& b = bucket_of(addr);
    b.lock();
    std::size_t n = 0;
    for (Slot* s = b.head; s != nullptr; s = s->next) {
      if (s->addr == addr) ++n;
    }
    b.unlock();
    return n;
  }

  static constexpr std::size_t kBuckets = 256;

 private:
  ParkingLot() = default;

  /// Per-thread parking slot. One per thread suffices: a thread parks on
  /// at most one address at a time. The slot is removed from its bucket
  /// by the unparker *before* it is signaled, so the thread can park
  /// again immediately after waking.
  struct Slot {
    const void* addr = nullptr;
    std::atomic<std::uint32_t> signaled{0};
    Slot* next = nullptr;
  };

  struct alignas(qsv::platform::kFalseSharingRange) Bucket {
    std::atomic<std::uint32_t> guard{0};
    Slot* head = nullptr;
    Slot* tail = nullptr;

    void lock() noexcept {
      // Plain TAS with relax: bucket critical sections are a handful of
      // pointer operations, so contention is short-lived by design.
      while (guard.exchange(1, std::memory_order_acquire) != 0) {
        qsv::platform::cpu_relax();
      }
    }
    void unlock() noexcept {
      guard.store(0, std::memory_order_release);
    }
  };

  static Slot& my_slot() {
    thread_local Slot slot;
    return slot;
  }

  Bucket& bucket_of(const void* addr) {
    // Fibonacci hash of the address, line-granular.
    const auto x = reinterpret_cast<std::uintptr_t>(addr) >> 6;
    return buckets_[(x * 0x9E3779B97F4A7C15ull) >> 56 & (kBuckets - 1)];
  }

  std::size_t unpark(const void* addr, std::size_t limit) {
    Bucket& b = bucket_of(addr);
    Slot* to_wake_head = nullptr;
    Slot* to_wake_tail = nullptr;
    b.lock();
    Slot** link = &b.head;
    Slot* prev = nullptr;
    std::size_t woken = 0;
    while (*link != nullptr && woken < limit) {
      Slot* s = *link;
      if (s->addr == addr) {
        *link = s->next;
        if (b.tail == s) b.tail = prev;
        s->next = to_wake_head;  // collect; signal after unlock
        if (to_wake_head == nullptr) to_wake_tail = s;
        to_wake_head = s;
        ++woken;
      } else {
        prev = s;
        link = &s->next;
      }
    }
    (void)to_wake_tail;
    b.unlock();
    // Signal outside the bucket lock: the woken thread may immediately
    // re-park, and must not contend with us for the bucket.
    for (Slot* s = to_wake_head; s != nullptr;) {
      Slot* next = s->next;
      s->signaled.store(1, std::memory_order_release);
      s->signaled.notify_one();
      s = next;
    }
    return woken;
  }

  static constexpr std::uint32_t kSpinPolls = 128;

  Bucket buckets_[kBuckets];
};

/// The classic three-state futex mutex (0 free, 1 held, 2 held with
/// waiters), built on the ParkingLot. One CAS on the fast path, one
/// exchange + at most one unpark on release.
class FutexMutex {
 public:
  FutexMutex() = default;
  FutexMutex(const FutexMutex&) = delete;
  FutexMutex& operator=(const FutexMutex&) = delete;

  void lock() {
    std::uint32_t expected = 0;
    // relaxed: failure order — the slow path below re-CASes with
    // acquire before entering; nothing is read through this value.
    if (state_.compare_exchange_strong(expected, 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;  // fast path: uncontended
    }
    for (;;) {
      // Announce contention (1 -> 2) so the holder knows to wake us,
      // then park while the word still reads contended.
      // relaxed: sample only; every path that *enters* does so through
      // an acquire CAS, and every path that parks revalidates.
      expected = state_.load(std::memory_order_relaxed);
      if (expected == 0) {
        // relaxed: failure order — loop iterates and resamples.
        if (state_.compare_exchange_weak(expected, 2,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      // relaxed: both orders — 1 -> 2 only announces contention; it
      // enters nothing, and the parking lot's bucket mutex orders the
      // subsequent park against the holder's wake.
      if (expected == 1 &&
          !state_.compare_exchange_weak(expected, 2,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
        continue;
      }
      ParkingLot::instance().park(&state_, [this] {
        // relaxed: park predicate, evaluated under the bucket mutex;
        // a stale read is a spurious wake the outer loop absorbs.
        return state_.load(std::memory_order_relaxed) == 2;
      });
    }
  }

  bool try_lock() {
    std::uint32_t expected = 0;
    // relaxed: failure order — a failed try_lock reads nothing.
    return state_.compare_exchange_strong(expected, 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() {
    // release pairs with the acquire in lock(); a contended word means
    // someone may be parked (or about to park — the predicate re-check
    // under the bucket lock resolves the race).
    if (state_.exchange(0, std::memory_order_release) == 2) {
      ParkingLot::instance().unpark_one(&state_);
    }
  }

  static constexpr const char* name() noexcept { return "futex"; }

 private:
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> state_{0};
};

/// WaitPolicy that waits through the ParkingLot — instantiating
/// QsvMutex<LotParkWait> runs the unmodified 1991 queue protocol over a
/// hand-built futex (experiment A4's "what the mechanism became" row).
struct LotParkWait {
  static constexpr std::uint32_t kSpinPolls = 128;

  static void wait_while_equal(const std::atomic<std::uint32_t>& flag,
                               std::uint32_t expected) noexcept {
    for (std::uint32_t i = 0; i < kSpinPolls; ++i) {
      if (flag.load(std::memory_order_acquire) != expected) return;
      qsv::platform::cpu_relax();
    }
    while (flag.load(std::memory_order_acquire) == expected) {
      ParkingLot::instance().park(&flag, [&] {
        return flag.load(std::memory_order_acquire) == expected;
      });
    }
  }
  static void notify_one(std::atomic<std::uint32_t>& flag) noexcept {
    ParkingLot::instance().unpark_one(&flag);
  }
  static void notify_all(std::atomic<std::uint32_t>& flag) noexcept {
    ParkingLot::instance().unpark_all(&flag);
  }
  static constexpr const char* name() noexcept { return "lot-park"; }
};

static_assert(qsv::platform::WaitPolicy<LotParkWait>);

}  // namespace qsv::parking
