// lock_order.hpp — the lock-acquisition-order hazard detector.
//
// The ROADMAP's observability layer calls for HeldMap-driven
// lock-order-inversion warnings; this is that detector, and it is also
// one of the qsv::chk model checker's four property checkers. It keeps
// a process-wide directed graph over lock instances — edge A -> B means
// "some thread acquired B while holding A" — and reports a hazard the
// moment an acquisition would close a cycle: two locks taken in both
// orders is a deadlock waiting for the right interleaving, even if this
// run never deadlocks.
//
// Feeds:
//   * the per-thread HeldMap in platform/node_arena.hpp (every
//     node-based production lock: qsv, mcs, clh, the cohort tiers) —
//     indirectly, through the platform-owned hazard_hook seam that this
//     detector installs itself into on enable (platform/ must not
//     include trace/; qsvlint's layering rule enforces the direction),
//   * the chk checker's instrumented wrappers (every checked lock,
//     including non-node locks like tas/ticket).
//
// Cost: one relaxed atomic load per acquisition when disabled (the
// default — this is an opt-in diagnostic, enabled by tests, by the chk
// battery, and by operators chasing a hang). When enabled, acquisitions
// take a global mutex and walk a graph that is small in any real
// program (one node per lock instance).
//
// Determinism: warning text contains registered lock names only — no
// pointers, no thread ids — so a replayed chk counterexample reproduces
// the identical warning bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

namespace qsv::trace {

namespace detail {
/// The enable flag, exposed so the per-acquisition fast path in
/// HeldMap::insert is a single inlined relaxed load.
extern std::atomic<bool> g_lock_order_enabled;
}  // namespace detail

/// Turn the detector on/off. Off discards no state: edges recorded
/// while on persist until lock_order_reset().
void lock_order_enable(bool on) noexcept;

/// Suppress the stderr print (warnings are still counted and readable
/// via lock_order_last_warning). The chk checker sets this during
/// exploration: it resets the graph per execution, so a hazard would
/// otherwise print once per execution that reaches it.
void lock_order_quiet(bool on) noexcept;

inline bool lock_order_enabled() noexcept {
  // relaxed: pure gate — a stale read only delays when tracking starts
  // or stops; the graph mutex orders all recorded data.
  return detail::g_lock_order_enabled.load(std::memory_order_relaxed);
}

/// Register a display name for a lock instance (warnings print names,
/// never addresses). Unnamed locks print as "?".
void lock_order_set_name(const void* lock, std::string_view name);

/// Record that the calling thread acquired `lock` (call after the
/// acquisition completes). Adds held -> lock edges for every lock the
/// thread already holds and emits a hazard warning to stderr — once per
/// lock pair — when an edge closes a cycle.
void lock_order_on_acquire(const void* lock);

/// Record that the calling thread released `lock`.
void lock_order_on_release(const void* lock);

struct LockOrderStats {
  std::size_t edges = 0;     ///< distinct ordered pairs observed
  std::size_t warnings = 0;  ///< inversions reported (one per pair)
};
LockOrderStats lock_order_stats();

/// The most recent warning's text ("" when none) — the queryable face
/// the tests and the chk reports read.
std::string lock_order_last_warning();

/// Drop all edges, names, warnings, and the calling thread's held
/// stack. (Other threads' held stacks empty naturally as they release.)
void lock_order_reset();

}  // namespace qsv::trace
