// lock_order.cpp — lock-acquisition-order graph and inversion warnings.
#include "trace/lock_order.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "obs/hook.hpp"
#include "platform/hazard_hook.hpp"

namespace qsv::trace {

namespace detail {
std::atomic<bool> g_lock_order_enabled{false};
}  // namespace detail

namespace {
std::atomic<bool> g_quiet{false};
}  // namespace

namespace {

/// Everything below the enable flag lives behind one mutex: the
/// detector is a cold diagnostic, not a fast path.
struct Graph {
  std::mutex mu;
  std::map<const void*, std::string> names;
  /// Ordered-pair edge set: (a, b) = "b acquired while a held".
  std::set<std::pair<const void*, const void*>> edges;
  /// Adjacency view of `edges` for the cycle walk.
  std::map<const void*, std::vector<const void*>> succ;
  /// Pairs already reported (unordered canonical form), so a hazard is
  /// one warning, not one per re-occurrence.
  std::set<std::pair<const void*, const void*>> warned;
  std::size_t warnings = 0;
  std::string last_warning;
};

Graph& graph() {
  static Graph* g = new Graph();  // leaked: usable during late TLS teardown
  return *g;
}

/// The calling thread's currently-held locks, acquisition order.
std::vector<const void*>& held() {
  thread_local std::vector<const void*> t;
  return t;
}

std::string name_of(const Graph& g, const void* lock) {
  auto it = g.names.find(lock);
  return it == g.names.end() ? std::string("?") : it->second;
}

/// Is `to` reachable from `from` over the edge graph? Iterative DFS;
/// the graph has one node per lock instance, so this is tiny.
bool reachable(const Graph& g, const void* from, const void* to) {
  std::vector<const void*> stack{from};
  std::set<const void*> seen;
  while (!stack.empty()) {
    const void* n = stack.back();
    stack.pop_back();
    if (n == to) return true;
    if (!seen.insert(n).second) continue;
    auto it = g.succ.find(n);
    if (it == g.succ.end()) continue;
    for (const void* s : it->second) stack.push_back(s);
  }
  return false;
}

}  // namespace

void lock_order_enable(bool on) noexcept {
  // The HeldMap production feed reaches us through the platform-owned
  // hazard_hook seam (platform/ cannot include trace/); publish the
  // callbacks before the enable flag so a feed that observes "enabled"
  // finds them installed.
  if (on) {
    platform::hazard_hook::install(&lock_order_on_acquire,
                                   &lock_order_on_release);
  }
  platform::hazard_hook::set_enabled(on);
  // relaxed: the flag is a pure gate consulted by the detector's own
  // entry points; edges recorded under the graph mutex carry their own
  // ordering.
  detail::g_lock_order_enabled.store(on, std::memory_order_relaxed);
}

void lock_order_quiet(bool on) noexcept {
  // relaxed: diagnostic verbosity toggle; no data is published under it.
  g_quiet.store(on, std::memory_order_relaxed);
}

void lock_order_set_name(const void* lock, std::string_view name) {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.names[lock] = std::string(name);
}

void lock_order_on_acquire(const void* lock) {
  if (!lock_order_enabled()) return;
  std::vector<const void*>& h = held();
  Graph& g = graph();
  {
    std::lock_guard<std::mutex> guard(g.mu);
    for (const void* prior : h) {
      if (prior == lock) continue;  // recursive re-entry: no self edge
      if (!g.edges.insert({prior, lock}).second) continue;
      g.succ[prior].push_back(lock);
      // New edge prior -> lock. If lock already reaches prior, the two
      // participate in a cycle: both orders have been observed.
      if (reachable(g, lock, prior)) {
        auto canon = std::minmax(prior, lock);
        if (g.warned.insert({canon.first, canon.second}).second) {
          g.last_warning = "lock-order inversion: acquired \"" +
                           name_of(g, lock) + "\" while holding \"" +
                           name_of(g, prior) +
                           "\", but the reverse order (\"" +
                           name_of(g, lock) + "\" before \"" +
                           name_of(g, prior) + "\") was observed earlier";
          ++g.warnings;
          // Every inversion lands in the telemetry registry's hazard
          // log — the `hazards` face of the introspection endpoint —
          // regardless of verbosity; quiet only mutes stderr.
          qsv::obs::record_hazard(g.last_warning);
          // relaxed: verbosity toggle (see lock_order_quiet).
          if (!g_quiet.load(std::memory_order_relaxed)) {
            std::fprintf(stderr, "libqsv hazard: %s\n",
                         g.last_warning.c_str());
          }
        }
      }
    }
  }
  h.push_back(lock);
}

void lock_order_on_release(const void* lock) {
  if (!lock_order_enabled()) return;
  std::vector<const void*>& h = held();
  // Release order may not mirror acquisition order; erase the most
  // recent matching entry.
  for (std::size_t i = h.size(); i-- > 0;) {
    if (h[i] == lock) {
      h.erase(h.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  // Held entry absent: the lock was acquired while the detector was
  // off, or adopted from another thread (cohort hold transfer). Benign.
}

LockOrderStats lock_order_stats() {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  return {g.edges.size(), g.warnings};
}

std::string lock_order_last_warning() {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  return g.last_warning;
}

void lock_order_reset() {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.names.clear();
  g.edges.clear();
  g.succ.clear();
  g.warned.clear();
  g.warnings = 0;
  g.last_warning.clear();
  held().clear();
}

}  // namespace qsv::trace
