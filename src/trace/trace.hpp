// trace.hpp — lightweight synchronization event tracing.
//
// The 1991 papers reason about *handoff sequences* (who got the lock
// after whom, how long each waiter sat). This module records exactly
// that, cheaply enough to leave on during benchmarks:
//   * each thread writes fixed-size events into its own power-of-two
//     ring buffer (no allocation, no sharing, ~15ns per event);
//   * TraceSession::merge() collates all rings into one time-ordered
//     sequence after the run;
//   * TracedLock<L> wraps any Lockable and emits acquire-start /
//     acquired / released events, from which waits and handoffs are
//     derived (examples/trace_handoffs.cpp, fairness analysis in F7).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "platform/cache.hpp"
#include "platform/thread_id.hpp"
#include "platform/timing.hpp"

namespace qsv::trace {

/// What happened. Extend as needed; keep the event POD-small.
enum class Kind : std::uint8_t {
  kAcquireStart = 0,  ///< lock() entered (arrival at the queue)
  kAcquired = 1,      ///< lock() returned (handoff received)
  kReleased = 2,      ///< unlock() completed
  kUser = 3,          ///< free-form marker (payload = user value)
};

struct Event {
  std::uint64_t t_ns = 0;       ///< platform::now_ns timestamp
  std::uint64_t payload = 0;    ///< lock id / user value
  std::uint32_t thread = 0;     ///< dense thread index
  Kind kind = Kind::kUser;
};

/// A session owns one ring per participating thread. Threads register
/// lazily on first record(); merge() is called after the measured
/// region, single-threaded.
class TraceSession {
 public:
  /// `capacity_per_thread` is rounded up to a power of two. When a ring
  /// fills, the *oldest* events are overwritten (benchmarks care about
  /// steady state, not warmup).
  explicit TraceSession(std::size_t capacity_per_thread = 1 << 14)
      : capacity_(round_up_pow2(capacity_per_thread)) {}
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Record one event from the calling thread. Wait-free; never blocks
  /// the caller on other threads (the only lock is on first use, to
  /// register the thread's ring).
  void record(Kind kind, std::uint64_t payload) {
    Ring& r = my_ring();
    Event& e = r.slots[r.cursor & (capacity_ - 1)];
    e.t_ns = qsv::platform::now_ns();
    e.payload = payload;
    e.thread = static_cast<std::uint32_t>(qsv::platform::thread_index());
    e.kind = kind;
    ++r.cursor;
  }

  /// All surviving events across all rings, time-ordered. Call after the
  /// traced threads have quiesced (joined); not safe concurrently with
  /// record().
  std::vector<Event> merge() const {
    std::vector<Event> out;
    {
      std::lock_guard<std::mutex> g(registry_mu_);
      for (const Ring* r : rings_) {
        const std::uint64_t n = std::min<std::uint64_t>(r->cursor, capacity_);
        const std::uint64_t begin = r->cursor - n;
        for (std::uint64_t i = begin; i < r->cursor; ++i) {
          out.push_back(r->slots[i & (capacity_ - 1)]);
        }
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Event& a, const Event& b) {
                       return a.t_ns < b.t_ns;
                     });
    return out;
  }

  /// Total events recorded (including overwritten ones).
  std::uint64_t recorded() const {
    std::lock_guard<std::mutex> g(registry_mu_);
    std::uint64_t n = 0;
    for (const Ring* r : rings_) n += r->cursor;
    return n;
  }

  /// CSV: t_ns,thread,kind,payload — one line per surviving event.
  void dump_csv(std::ostream& os) const {
    os << "t_ns,thread,kind,payload\n";
    for (const Event& e : merge()) {
      os << e.t_ns << ',' << e.thread << ','
         << static_cast<int>(e.kind) << ',' << e.payload << '\n';
    }
  }

  std::size_t capacity_per_thread() const noexcept { return capacity_; }

 private:
  struct Ring {
    std::vector<Event> slots;
    std::uint64_t cursor = 0;  // write cursor (monotone; slot = cursor mod cap)
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  Ring& my_ring() {
    // Keyed by (address, epoch): a new session constructed at a dead
    // session's address must not inherit the stale cached ring (a
    // use-after-free otherwise — sessions are commonly stack-allocated
    // back to back).
    thread_local struct Cache {
      const TraceSession* session = nullptr;
      std::uint64_t epoch = 0;
      Ring* ring = nullptr;
    } cache;
    if (cache.session != this || cache.epoch != epoch_) {
      auto ring = std::make_unique<Ring>();
      ring->slots.resize(capacity_);
      std::lock_guard<std::mutex> g(registry_mu_);
      storage_.push_back(std::move(ring));
      rings_.push_back(storage_.back().get());
      cache.session = this;
      cache.epoch = epoch_;
      cache.ring = storage_.back().get();
    }
    return *cache.ring;
  }

  static std::uint64_t next_epoch() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    // relaxed: unique-id draw; only uniqueness matters, not order.
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  const std::uint64_t epoch_ = next_epoch();
  std::size_t capacity_;
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> storage_;
  std::vector<Ring*> rings_;
};

/// Wrap any Lockable with acquire/release tracing into a session.
/// `id` distinguishes locks when several are traced into one session.
template <typename Lock>
class TracedLock {
 public:
  template <typename... Args>
  explicit TracedLock(TraceSession& session, std::uint64_t id,
                      Args&&... args)
      : session_(session), id_(id), impl_(std::forward<Args>(args)...) {}

  void lock() {
    session_.record(Kind::kAcquireStart, id_);
    impl_.lock();
    session_.record(Kind::kAcquired, id_);
  }
  void unlock() {
    impl_.unlock();
    session_.record(Kind::kReleased, id_);
  }

  Lock& underlying() noexcept { return impl_; }

 private:
  TraceSession& session_;
  std::uint64_t id_;
  Lock impl_;
};

/// Handoff statistics derivable from a merged trace: per-thread
/// acquisition counts, wait times, and the handoff adjacency (how often
/// thread B acquired immediately after thread A released).
struct HandoffStats {
  std::vector<std::uint64_t> acquisitions;     ///< by thread index
  std::vector<std::uint64_t> total_wait_ns;    ///< by thread index
  std::uint64_t handoffs = 0;                  ///< acquired-after-release
  std::uint64_t self_handoffs = 0;             ///< same thread re-acquired

  /// Largest / smallest per-thread acquisition share (1.0 = perfectly
  /// even). Meaningful only for threads that participated.
  double imbalance() const {
    std::uint64_t lo = ~0ull, hi = 0, n = 0;
    for (auto a : acquisitions) {
      if (a == 0) continue;
      lo = std::min(lo, a);
      hi = std::max(hi, a);
      ++n;
    }
    return (n == 0 || lo == 0) ? 0.0
                               : static_cast<double>(hi) /
                                     static_cast<double>(lo);
  }
};

/// Fold a merged trace into handoff statistics for lock `id`.
inline HandoffStats analyze_handoffs(const std::vector<Event>& events,
                                     std::uint64_t id) {
  HandoffStats stats;
  std::vector<std::uint64_t> start_ns;
  std::uint32_t last_releaser = ~0u;
  bool release_pending = false;
  for (const Event& e : events) {
    if (e.payload != id) continue;
    const std::size_t t = e.thread;
    if (stats.acquisitions.size() <= t) {
      stats.acquisitions.resize(t + 1, 0);
      stats.total_wait_ns.resize(t + 1, 0);
      start_ns.resize(t + 1, 0);
    }
    switch (e.kind) {
      case Kind::kAcquireStart:
        start_ns[t] = e.t_ns;
        break;
      case Kind::kAcquired:
        ++stats.acquisitions[t];
        if (start_ns[t] != 0) {
          stats.total_wait_ns[t] += e.t_ns - start_ns[t];
        }
        if (release_pending) {
          ++stats.handoffs;
          if (e.thread == last_releaser) ++stats.self_handoffs;
          release_pending = false;
        }
        break;
      case Kind::kReleased:
        last_releaser = e.thread;
        release_pending = true;
        break;
      case Kind::kUser:
        break;
    }
  }
  return stats;
}

}  // namespace qsv::trace
