// shaker.hpp — schedule perturbation for concurrency tests.
//
// Stress loops on a quiet machine explore a narrow band of
// interleavings: threads run in lockstep and the rare windows (the
// MCS/QSV "successor has swapped but not linked" gap, timeout races,
// reader-batch boundaries) are almost never hit. The ScheduleShaker
// widens the band *deterministically per seed*: each call site draws
// from a seeded per-thread PRNG and with configured probabilities does
// nothing, issues a pause, yields the processor, or naps long enough to
// force a full scheduling quantum boundary. Property tests run every
// algorithm through several intensities (tests/validate_test.cpp).
#pragma once

#include <chrono>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/rng.hpp"

namespace qsv::validate {

/// Perturbation intensity. Probabilities are per maybe_perturb() call,
/// in parts per 1024 (so the hot path is one PRNG draw + compare).
struct ShakeProfile {
  std::uint32_t relax_per_1024 = 0;  ///< cpu pause (a few ns)
  std::uint32_t yield_per_1024 = 0;  ///< sched_yield
  std::uint32_t nap_per_1024 = 0;    ///< ~50us sleep (quantum boundary)

  static constexpr ShakeProfile off() { return {0, 0, 0}; }
  static constexpr ShakeProfile gentle() { return {64, 8, 0}; }
  static constexpr ShakeProfile rough() { return {128, 32, 2}; }
  static constexpr ShakeProfile brutal() { return {256, 128, 8}; }
};

/// Per-thread deterministic perturbation source. Each thread constructs
/// its own (seed ⊕ rank keeps streams distinct and runs reproducible).
class ScheduleShaker {
 public:
  ScheduleShaker(ShakeProfile profile, std::uint64_t seed,
                 std::uint64_t rank)
      : profile_(profile), rng_(seed ^ (rank * 0x9E3779B97F4A7C15ull)) {}

  /// Call between protocol steps; perturbs this thread with the
  /// profile's probabilities.
  void maybe_perturb() {
    const std::uint32_t draw =
        static_cast<std::uint32_t>(rng_.next()) & 1023u;
    // Perturbations route through the platform seam, never the raw OS
    // calls: under the qsv::chk checker a shaken thread must hand its
    // nap/yield to the checker's scheduler, and outside it the seam
    // compiles down to the same sleep/yield (qsvlint's seam rule).
    if (draw < profile_.nap_per_1024) {
      qsv::platform::thread_sleep(std::chrono::microseconds(50));
    } else if (draw < profile_.nap_per_1024 + profile_.yield_per_1024) {
      qsv::platform::thread_yield();
    } else if (draw < profile_.nap_per_1024 + profile_.yield_per_1024 +
                          profile_.relax_per_1024) {
      qsv::platform::cpu_relax();
    }
  }

 private:
  ShakeProfile profile_;
  qsv::platform::SplitMix64 rng_;
};

}  // namespace qsv::validate
