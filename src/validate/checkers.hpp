// checkers.hpp — invariant checkers for synchronization property tests.
//
// GuardedCounter (workload/) detects torn increments; these checkers
// detect more: concurrent holders (with the pid of the offender),
// unlock-by-non-owner, and FIFO admission-order violations. They are
// deliberately heavier than GuardedCounter and meant for property
// tests, not benchmarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/cache.hpp"
#include "platform/thread_id.hpp"

namespace qsv::validate {

/// Mutual-exclusion oracle: enter() / exit() bracket the critical
/// section. Detects a second concurrent holder and exits by a thread
/// that never entered. All detection is lock-free so the checker cannot
/// mask the very races it hunts.
class ExclusionChecker {
 public:
  /// Call immediately after acquiring the lock under test.
  void enter() noexcept {
    const std::uint32_t me =
        static_cast<std::uint32_t>(qsv::platform::thread_index()) + 1;
    std::uint32_t expected = 0;
    if (!holder_.compare_exchange_strong(expected, me,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      violations_.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally
    }
    entries_.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally
  }

  /// Call immediately before releasing the lock under test.
  void exit() noexcept {
    const std::uint32_t me =
        static_cast<std::uint32_t>(qsv::platform::thread_index()) + 1;
    std::uint32_t expected = me;
    if (!holder_.compare_exchange_strong(expected, 0,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      // Either we never entered (non-owner unlock) or someone barged in.
      violations_.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally
      holder_.store(0, std::memory_order_release);  // re-arm
    }
  }

  std::uint64_t violations() const noexcept {
    // relaxed: read after the team joins; the join orders it.
    return violations_.load(std::memory_order_relaxed);
  }
  std::uint64_t entries() const noexcept {
    // relaxed: read after the team joins; the join orders it.
    return entries_.load(std::memory_order_relaxed);
  }
  bool clean() const noexcept { return violations() == 0; }

 private:
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> holder_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> entries_{0};
};

/// Reader-writer oracle: tracks concurrent readers and writers and
/// counts states that violate the invariant (writer implies no readers
/// and no second writer).
class RwChecker {
 public:
  void reader_enter() noexcept {
    readers_.fetch_add(1, std::memory_order_acq_rel);
    if (writers_.load(std::memory_order_acquire) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally
    }
  }
  void reader_exit() noexcept {
    readers_.fetch_sub(1, std::memory_order_acq_rel);
  }
  void writer_enter() noexcept {
    if (writers_.fetch_add(1, std::memory_order_acq_rel) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally
    }
    if (readers_.load(std::memory_order_acquire) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally
    }
  }
  void writer_exit() noexcept {
    writers_.fetch_sub(1, std::memory_order_acq_rel);
  }

  std::uint64_t violations() const noexcept {
    // relaxed: read after the team joins; the join orders it.
    return violations_.load(std::memory_order_relaxed);
  }
  bool clean() const noexcept { return violations() == 0; }

 private:
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::int64_t> readers_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::int64_t> writers_{0};
  std::atomic<std::uint64_t> violations_{0};
};

/// FIFO-admission oracle for queue locks. Callers take an arrival
/// ticket *immediately before* calling lock() and report it right after
/// acquisition; the checker counts order inversions (an acquisition
/// whose arrival ticket is smaller than one already admitted is fine;
/// one admitted *before* an earlier arrival that was already waiting is
/// an inversion). Because arrival and enqueue are not atomic together,
/// a strict-FIFO lock can still show a tiny number of apparent
/// inversions from the race between ticket draw and enqueue; the
/// property tests therefore assert a *bound* (<< random admission), not
/// zero.
class FifoChecker {
 public:
  std::uint64_t arrival_ticket() noexcept {
    return arrivals_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Report after acquiring: `ticket` is this thread's arrival ticket.
  void admitted(std::uint64_t ticket) noexcept {
    const std::uint64_t horizon =
        horizon_.load(std::memory_order_acquire);
    if (ticket + window_ < horizon) {
      inversions_.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally
    }
    // Track the highest admitted ticket.
    std::uint64_t h = horizon;
    while (ticket > h &&
           !horizon_.compare_exchange_weak(h, ticket,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    }
    admissions_.fetch_add(1, std::memory_order_relaxed);  // relaxed: tally
  }

  /// `window` absorbs the inherent ticket/enqueue race (default: one
  /// ticket per contending thread is in flight).
  explicit FifoChecker(std::uint64_t window = 16) : window_(window) {}

  std::uint64_t inversions() const noexcept {
    // relaxed: read after the team joins; the join orders it.
    return inversions_.load(std::memory_order_relaxed);
  }
  std::uint64_t admissions() const noexcept {
    // relaxed: read after the team joins; the join orders it.
    return admissions_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t window_;
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint64_t> arrivals_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint64_t> horizon_{0};
  std::atomic<std::uint64_t> inversions_{0};
  std::atomic<std::uint64_t> admissions_{0};
};

}  // namespace qsv::validate
