// catalog.hpp — the unified, capability-tagged catalogue of every
// synchronization primitive in libqsv.
//
// This subsystem replaces the three copy-pasted per-family registries
// (locks/registry, barriers/registry, rwlocks/registry) with a single
// process-wide list. One contract everywhere:
//
//   * `find(name)` returns nullptr on a miss — never a hollow entry
//     with a null factory. (The old find_lock documented exactly that
//     hollow-entry behavior; the inconsistency is gone.)
//   * `make(capacity)` has one capacity meaning for every family:
//     capacity is the maximum number of threads participating in the
//     *run*. Slot-cycling array locks size their slot arrays with it,
//     barriers use it as the team size, everything else ignores it.
//     capacity >= 1 always. Algorithms whose state is indexed by the
//     dense thread id (Graunke–Thakkar) are sized by
//     platform::kMaxThreads instead — ids are bounded by the process's
//     concurrent-thread high-water mark, which a per-run count cannot
//     express (see builtin.cpp).
//   * `make_with(capacity, policy)` additionally selects the
//     qsv::wait_policy for entries whose caps carry wait-mode bits
//     (kWaitSpin..kWaitAdaptive); entries without the bits ignore the
//     policy. `make(capacity)` is make_with at the process default.
//     This replaces the per-policy entries the catalogue used to carry
//     ("qsv/yield", "qsv/park", "qsv-episode/park").
//   * Registration aborts on a duplicate name — a silent collision
//     would make name lookup ambiguous.
//
// Entries self-register through a static `Registrar` (the benchreg
// scenario pattern): a new algorithm joins the catalogue by adding one
// QSV_CATALOG_REGISTER line in a translation unit linked into the
// library or binary — see builtin.cpp for all stock entries and
// DESIGN.md ("The catalogue") for the recipe.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/any_primitive.hpp"
#include "catalog/capability.hpp"

namespace qsv::catalog {

/// One catalogue row: identity + tagging + factories.
struct Entry {
  std::string name;        ///< stable display/lookup name, e.g. "qsv-rw"
  Family family = Family::kLock;
  std::uint32_t caps = 0;  ///< OR of Capability bits, derived from the type
  std::size_t footprint = 0;  ///< sizeof(concrete type)
  /// Construct at the process-default qsv::wait_policy.
  std::function<std::unique_ptr<AnyPrimitive>(std::size_t capacity)> make;
  /// Construct at an explicit policy (ignored without wait-mode bits).
  std::function<std::unique_ptr<AnyPrimitive>(std::size_t capacity,
                                              qsv::wait_policy policy)>
      make_with;
  /// Construct at an explicit cohort local-handoff budget. Set exactly
  /// for entries carrying the kCohort capability (the cohort
  /// compositions and hier-qsv); null for everything else. make_with is
  /// this factory at the type's default budget.
  std::function<std::unique_ptr<AnyPrimitive>(
      std::size_t capacity, qsv::wait_policy policy, std::size_t budget)>
      make_budgeted;

  /// True when every capability in `mask` is present.
  bool has(std::uint32_t mask) const { return (caps & mask) == mask; }
  /// True when make_with honors `p` (the wait-mode bit is set).
  bool has_wait_mode(qsv::wait_policy p) const {
    return has(wait_mode_bit(p));
  }
};

namespace detail {
template <typename T>
Entry tagged_entry(std::string name) {
  Entry e;
  e.name = std::move(name);
  e.caps = caps_of<T>();
  e.family = family_of(e.caps);
  e.footprint = sizeof(T);
  return e;
}

/// One construction rule for every factory: prefer the policy-aware
/// constructor (with capacity if the type takes one), fall back to the
/// policy-blind shapes. Preference order matters — the facade types
/// are both default- and policy-constructible, and the catalogue must
/// plumb the policy through.
template <typename T>
std::unique_ptr<AnyPrimitive> construct(std::size_t capacity,
                                        qsv::wait_policy policy) {
  if constexpr (std::is_constructible_v<T, std::size_t, qsv::wait_policy>) {
    return std::make_unique<Erased<T>>(capacity, policy);
  } else if constexpr (std::is_constructible_v<T, qsv::wait_policy>) {
    (void)capacity;
    return std::make_unique<Erased<T>>(policy);
  } else if constexpr (std::is_default_constructible_v<T>) {
    (void)capacity;
    (void)policy;
    return std::make_unique<Erased<T>>();
  } else {
    (void)policy;
    return std::make_unique<Erased<T>>(capacity);
  }
}

/// Attach both factories to an entry.
template <typename T>
void attach_factories(Entry& e) {
  e.make_with = [](std::size_t capacity, qsv::wait_policy policy) {
    return construct<T>(capacity, policy);
  };
  e.make = [](std::size_t capacity) {
    return construct<T>(capacity, qsv::get_default_wait_policy());
  };
}
}  // namespace detail

/// Build an Entry for a concrete primitive type. Capabilities and
/// family are derived from the type; the factory default-constructs
/// a default-constructible type and otherwise constructs with
/// `capacity` (array locks size their slot arrays with it, barriers
/// take it as the team size). A type that is BOTH default- and
/// size_t-constructible is ambiguous — its size_t parameter may mean
/// something other than capacity (a backoff slot, a cohort width) —
/// and is rejected at compile time: register it with entry_default()
/// or an explicit factory that states which is meant. This keeps the
/// fed-the-wrong-number bug class (the Graunke-Thakkar heap
/// corruption) a compile error instead of a convention.
template <typename T>
Entry entry(std::string name) {
  constexpr bool by_default = std::is_default_constructible_v<T>;
  constexpr bool by_capacity = std::is_constructible_v<T, std::size_t>;
  static_assert(by_default || by_capacity,
                "catalogue primitives are built from a capacity alone");
  static_assert(!(by_default && by_capacity),
                "ambiguous construction: the size_t parameter may not mean "
                "capacity — use entry_default<T>() or an explicit factory");
  Entry e = detail::tagged_entry<T>(std::move(name));
  detail::attach_factories<T>(e);
  return e;
}

/// As entry(), but always default-constructs — the explicit intent
/// marker for types whose size_t constructor parameter is NOT a
/// capacity (e.g. a proportional-backoff slot or a cohort width).
template <typename T>
Entry entry_default(std::string name) {
  static_assert(std::is_default_constructible_v<T>,
                "entry_default needs a default-constructible type");
  Entry e = detail::tagged_entry<T>(std::move(name));
  // Same preference rule, minus the capacity shapes: a policy-aware
  // constructor (tuned non-capacity defaults + explicit policy, e.g.
  // hier-qsv) still gets the policy plumbed through.
  e.make_with = [](std::size_t, qsv::wait_policy policy) {
    if constexpr (std::is_constructible_v<T, qsv::wait_policy>) {
      return std::make_unique<Erased<T>>(policy);
    } else {
      (void)policy;
      return std::make_unique<Erased<T>>();
    }
  };
  e.make = [mw = e.make_with](std::size_t capacity) {
    return mw(capacity, qsv::get_default_wait_policy());
  };
  return e;
}

/// As entry(), for cohort combinator types (CohortLock instantiations):
/// their size_t constructor parameter is the local-handoff *budget*,
/// never a capacity, so the capacity-construction rule of entry() must
/// not apply. All three factories are wired: make_budgeted exposes the
/// budget axis (the fig10 sweep), make_with constructs at the type's
/// kDefaultBudget, make additionally uses the process wait policy.
template <typename T>
Entry entry_cohort(std::string name) {
  static_assert(
      std::is_constructible_v<T, std::size_t, qsv::wait_policy>,
      "cohort entries are built from (budget, wait_policy)");
  static_assert((caps_of<T>() & kCohort) != 0,
                "entry_cohort needs a cohort-structured type");
  Entry e = detail::tagged_entry<T>(std::move(name));
  e.make_budgeted = [](std::size_t, qsv::wait_policy policy,
                       std::size_t budget) {
    return std::make_unique<Erased<T>>(budget, policy);
  };
  e.make_with = [mb = e.make_budgeted](std::size_t capacity,
                                       qsv::wait_policy policy) {
    return mb(capacity, policy, T::kDefaultBudget);
  };
  e.make = [mw = e.make_with](std::size_t capacity) {
    return mw(capacity, qsv::get_default_wait_policy());
  };
  return e;
}

/// Add an entry. Aborts on a duplicate name.
void register_entry(Entry e);

/// OR extra capability bits into an already-registered entry (no-op on
/// a miss). For capabilities that are properties of *other subsystems*
/// rather than the type — kSimulable is tagged this way from the sim's
/// own name lists, so the bit can never drift from what the simulator
/// actually ports.
void add_capability(std::string_view name, std::uint32_t caps);

/// Every registered primitive, in registration order (per family this
/// is the paper-style table order: strawmen, baselines, QSV variants).
const std::vector<Entry>& all();

/// Look up one primitive by exact name. Returns nullptr on miss — the
/// single lookup contract for the whole catalogue.
const Entry* find(std::string_view name);

/// Entries of one family, optionally narrowed to those that have every
/// capability in `caps_mask`.
std::vector<const Entry*> filter(Family family, std::uint32_t caps_mask = 0);

/// Entries (any family) that have every capability in `caps_mask`.
std::vector<const Entry*> filter(std::uint32_t caps_mask);

// Thin per-family views — drop-in successors of the old
// lock_registry()/barrier_registry()/rw_registry() + harness overlays.
inline std::vector<const Entry*> locks() { return filter(Family::kLock); }
inline std::vector<const Entry*> rwlocks() { return filter(Family::kRwLock); }
inline std::vector<const Entry*> barriers() {
  return filter(Family::kBarrier);
}
inline std::vector<const Entry*> eventcounts() {
  return filter(Family::kEventCount);
}
inline std::vector<const Entry*> containers() {
  return filter(Family::kContainer);
}

/// Static-initialization hook for registration translation units.
struct Registrar {
  explicit Registrar(Entry e) { register_entry(std::move(e)); }
};

/// Join the catalogue: one line per algorithm, capabilities derived
/// from the type. Usable from any TU whose object file is linked in.
#define QSV_CATALOG_REGISTER(Type, display_name)                      \
  static const ::qsv::catalog::Registrar QSV_CATALOG_CAT_(qsv_cat_reg_, \
                                                          __LINE__){   \
      ::qsv::catalog::entry<Type>(display_name)}
/// Variant for types whose size_t constructor parameter is not a
/// capacity: always default-constructs (see entry_default()).
#define QSV_CATALOG_REGISTER_DEFAULT(Type, display_name)              \
  static const ::qsv::catalog::Registrar QSV_CATALOG_CAT_(qsv_cat_reg_, \
                                                          __LINE__){   \
      ::qsv::catalog::entry_default<Type>(display_name)}
/// Variant for cohort combinator types, built from (budget, policy)
/// with the budget axis exposed via make_budgeted (see entry_cohort()).
#define QSV_CATALOG_REGISTER_COHORT(Type, display_name)               \
  static const ::qsv::catalog::Registrar QSV_CATALOG_CAT_(qsv_cat_reg_, \
                                                          __LINE__){   \
      ::qsv::catalog::entry_cohort<Type>(display_name)}
#define QSV_CATALOG_CAT_(a, b) QSV_CATALOG_CAT2_(a, b)
#define QSV_CATALOG_CAT2_(a, b) a##b

}  // namespace qsv::catalog
