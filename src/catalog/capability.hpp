// capability.hpp — capability tagging for the unified primitive
// catalogue.
//
// Every synchronization primitive in libqsv advertises what it can do
// through a small bitset: exclusive entry, shared entry, non-blocking
// attempts, bounded (timed) entry, episode synchronization. The bits are
// *derived from the type* with concepts — a primitive that grows a new
// face (say, QsvRwLock gaining try_lock) is re-tagged automatically at
// compile time, so the catalogue can never drift from the code.
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>
#include <cstdint>

#include "obs/hook.hpp"
#include "qsv/wait.hpp"

namespace qsv::catalog {

/// One bit per face of a primitive. A catalogue entry's `caps` is the
/// OR of every face its concrete type implements, plus one wait-mode
/// bit per qsv::wait_policy the entry's factory can construct — the
/// per-policy entries the catalogue used to carry ("qsv/yield",
/// "qsv/park", "qsv-episode/park") are now these bits on the one entry.
enum Capability : std::uint32_t {
  kExclusive  = 1u << 0,  ///< lock() / unlock()
  kTry        = 1u << 1,  ///< try_lock()
  kShared     = 1u << 2,  ///< lock_shared() / unlock_shared()
  kTimed      = 1u << 3,  ///< try_lock_for() (and try_lock_until())
  kEpisode    = 1u << 4,  ///< arrive_and_wait() / team_size()
  kEventCount = 1u << 5,  ///< advance() / await() / read()
  kCohort     = 1u << 6,  ///< topology/cohort-structured: budget() /
                          ///< cohort_count(), budget-parameterized factory
  kCombining  = 1u << 7,  ///< member of the delegation/combining layer:
                          ///< a run(closure) executor, or a container
                          ///< face below

  // Wait modes: which qsv::wait_policy values make(capacity, policy)
  // honors. All four or none — runtime-configurable primitives accept
  // the whole enum; hardwired spinners (tas, ticket, std adapters)
  // ignore the policy argument and advertise no mode.
  kWaitSpin     = 1u << 8,
  kWaitYield    = 1u << 9,
  kWaitPark     = 1u << 10,
  kWaitAdaptive = 1u << 11,

  // Container faces (the first concrete structures over the combining
  // layer): what the type stores, not how it waits.
  kQueue       = 1u << 12,  ///< try_push() / try_pop()
  kMap         = 1u << 13,  ///< insert_or_assign() / find() / erase()
  kAccumulator = 1u << 14,  ///< add() / read() -> int64

  kSimulable   = 1u << 15,  ///< src/sim/protocols.cpp carries a
                            ///< line-for-line port under the same
                            ///< catalogue name, so the scale oracle
                            ///< (sim/replay.hpp) can replay the entry
                            ///< on synthetic topologies. A property of
                            ///< the simulator, not the type: tagged in
                            ///< builtin.cpp from the sim name lists,
                            ///< not derived by caps_of().

  kCheckable   = 1u << 16,  ///< every wait in the primitive reaches the
                            ///< chk_hook seam (spin polls through
                            ///< cpu_relax, terminal waits through the
                            ///< platform wait classes), so qsv::chk's
                            ///< serializing scheduler can explore its
                            ///< schedules deterministically. Excludes
                            ///< the std:: adapters and the futex mutex,
                            ///< whose kernel waits bypass the seam.
                            ///< Like kSimulable, a property of another
                            ///< subsystem: tagged in builtin.cpp.

  kObservable  = 1u << 17,  ///< registers a per-instance obs::LockRec in
                            ///< the telemetry registry and exposes it via
                            ///< telemetry(); derived by caps_of() from
                            ///< the HasTelemetry concept, so the bit can
                            ///< never drift from the code.
};

/// All container-face bits: any of them makes the entry a container.
inline constexpr std::uint32_t kContainerMask = kQueue | kMap | kAccumulator;

/// All four wait-mode bits (the runtime-configurable signature).
inline constexpr std::uint32_t kWaitModeMask =
    kWaitSpin | kWaitYield | kWaitPark | kWaitAdaptive;

/// The wait-mode bit for one policy value.
constexpr Capability wait_mode_bit(qsv::wait_policy p) {
  switch (p) {
    case qsv::wait_policy::spin: return kWaitSpin;
    case qsv::wait_policy::spin_yield: return kWaitYield;
    case qsv::wait_policy::park: return kWaitPark;
    case qsv::wait_policy::adaptive: return kWaitAdaptive;
  }
  return kWaitSpin;
}

/// Coarse family grouping, derived from the capability set: episode
/// primitives are barriers, shared-capable locks are reader-writer
/// locks, eventcounts are condition synchronization, everything else
/// is a plain lock. Benches and tests use the family views
/// (catalog.hpp) exactly like the three old per-family registries.
enum class Family : std::uint8_t {
  kLock,
  kRwLock,
  kBarrier,
  kEventCount,
  kContainer,
};

inline const char* family_name(Family f) {
  switch (f) {
    case Family::kLock: return "lock";
    case Family::kRwLock: return "rwlock";
    case Family::kBarrier: return "barrier";
    case Family::kEventCount: return "eventcount";
    case Family::kContainer: return "container";
  }
  return "?";
}

constexpr Family family_of(std::uint32_t caps) {
  if (caps & kContainerMask) return Family::kContainer;
  if (caps & kEventCount) return Family::kEventCount;
  if (caps & kEpisode) return Family::kBarrier;
  if (caps & kShared) return Family::kRwLock;
  return Family::kLock;
}

// ------------------------------------------------- face detection

template <typename T>
concept HasExclusive = requires(T t) {
  { t.lock() } -> std::same_as<void>;
  { t.unlock() } -> std::same_as<void>;
};

template <typename T>
concept HasTry = requires(T t) {
  { t.try_lock() } -> std::convertible_to<bool>;
};

template <typename T>
concept HasShared = requires(T t) {
  { t.lock_shared() } -> std::same_as<void>;
  { t.unlock_shared() } -> std::same_as<void>;
};

template <typename T>
concept HasTryShared = requires(T t) {
  { t.try_lock_shared() } -> std::convertible_to<bool>;
};

template <typename T>
concept HasTimed = requires(T t) {
  { t.try_lock_for(std::chrono::nanoseconds(1)) } -> std::convertible_to<bool>;
};

template <typename T>
concept HasEpisode = requires(T t, std::size_t rank) {
  { t.arrive_and_wait(rank) } -> std::same_as<void>;
  { t.team_size() } -> std::convertible_to<std::size_t>;
};

template <typename T>
concept HasEventCount = requires(T t, std::uint32_t target) {
  { t.advance() } -> std::convertible_to<std::uint32_t>;
  { t.await(target) } -> std::convertible_to<std::uint32_t>;
  { t.read() } -> std::convertible_to<std::uint32_t>;
};

/// Cohort-structured locks (HierQsvMutex, the CohortLock combinator):
/// they expose the local-handoff budget and the cohort table size, and
/// their catalogue entries carry the budget-parameterized factory.
template <typename T>
concept HasCohortStructure = requires(const T t) {
  { t.budget() } -> std::convertible_to<std::size_t>;
  { t.cohort_count() } -> std::convertible_to<std::size_t>;
};

/// Delegation executors (FcExecutor, PlainExecutor): closures run
/// under the type's mutual exclusion, possibly on another thread.
template <typename T>
concept HasDelegation = requires(T t) { t.run([] {}); };

/// Bounded queue face, at the erased element type (the registered
/// container instantiations store std::uint64_t).
template <typename T>
concept HasQueueFace = requires(T t, std::uint64_t v, std::uint64_t& out) {
  { t.try_push(v) } -> std::convertible_to<bool>;
  { t.try_pop(out) } -> std::convertible_to<bool>;
};

/// Map face at erased uint64 key/value.
template <typename T>
concept HasMapFace = requires(T t, std::uint64_t k, std::uint64_t& out) {
  { t.insert_or_assign(k, k) } -> std::convertible_to<bool>;
  { t.find(k, out) } -> std::convertible_to<bool>;
  { t.erase(k) } -> std::convertible_to<bool>;
};

/// Accumulator face: relaxed or exact counting structures.
template <typename T>
concept HasAccumulatorFace = requires(T t, std::int64_t d) {
  { t.add(d) } -> std::same_as<void>;
  { t.read() } -> std::convertible_to<std::int64_t>;
};

/// Observable primitives own an obs::Handle and expose the registered
/// per-instance record (null when telemetry is disabled or compiled
/// out) — the face the introspection endpoint and the registry-adaptive
/// waiter consume.
template <typename T>
concept HasTelemetry = requires(const T t) {
  { t.telemetry() } -> std::convertible_to<const qsv::obs::LockRec*>;
};

/// Construction-time wait configurability: the type takes a
/// qsv::wait_policy (alone, or after its capacity argument), so the
/// factory can honor make(capacity, policy).
template <typename T>
concept WaitConfigurable =
    std::is_constructible_v<T, qsv::wait_policy> ||
    std::is_constructible_v<T, std::size_t, qsv::wait_policy>;

/// The derived capability set of a concrete primitive type.
template <typename T>
constexpr std::uint32_t caps_of() {
  std::uint32_t caps = 0;
  if constexpr (HasExclusive<T>) caps |= kExclusive;
  if constexpr (HasTry<T>) caps |= kTry;
  if constexpr (HasShared<T>) caps |= kShared;
  if constexpr (HasTimed<T>) caps |= kTimed;
  if constexpr (HasEpisode<T>) caps |= kEpisode;
  if constexpr (HasEventCount<T>) caps |= kEventCount;
  if constexpr (HasCohortStructure<T>) caps |= kCohort;
  if constexpr (HasQueueFace<T>) caps |= kQueue;
  if constexpr (HasMapFace<T>) caps |= kMap;
  if constexpr (HasAccumulatorFace<T>) caps |= kAccumulator;
  if constexpr (HasDelegation<T> || HasQueueFace<T> || HasMapFace<T> ||
                HasAccumulatorFace<T>) {
    caps |= kCombining;
  }
  if constexpr (WaitConfigurable<T>) caps |= kWaitModeMask;
  if constexpr (HasTelemetry<T>) caps |= kObservable;
  return caps;
}

}  // namespace qsv::catalog
