// any_primitive.hpp — one type-erased handle for every synchronization
// primitive in libqsv.
//
// AnyPrimitive replaces the three near-identical erasure hierarchies the
// library used to carry (locks::AnyLock, barriers::AnyBarrier,
// rwlocks::AnyRwLock). It exposes the union of the capability surfaces
// (locking, shared, timed, episode, and eventcount faces);
// calling a face the underlying primitive does not implement aborts
// with a diagnostic rather than silently misbehaving — callers select
// by capability bits first (catalog.hpp). The virtual-dispatch cost
// (~1ns) is identical across algorithms, so comparative bench shapes
// are preserved; hot micro-benchmarks keep using concrete types.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "catalog/capability.hpp"

namespace qsv::catalog {

namespace detail {
[[noreturn]] inline void unsupported(const char* op) {
  std::fprintf(stderr, "qsv::catalog: primitive does not support %s()\n", op);
  std::abort();
}
}  // namespace detail

class AnyPrimitive {
 public:
  virtual ~AnyPrimitive() = default;

  // Exclusive face.
  virtual void lock() { detail::unsupported("lock"); }
  virtual void unlock() { detail::unsupported("unlock"); }
  virtual bool try_lock() { detail::unsupported("try_lock"); }

  // Shared face.
  virtual void lock_shared() { detail::unsupported("lock_shared"); }
  virtual void unlock_shared() { detail::unsupported("unlock_shared"); }
  virtual bool try_lock_shared() { detail::unsupported("try_lock_shared"); }

  // Timed face.
  virtual bool try_lock_for(std::chrono::nanoseconds) {
    detail::unsupported("try_lock_for");
  }

  // Episode face.
  virtual void arrive_and_wait(std::size_t /*rank*/ = 0) {
    detail::unsupported("arrive_and_wait");
  }
  virtual std::size_t team_size() const { detail::unsupported("team_size"); }

  // Eventcount face.
  virtual std::uint32_t advance() { detail::unsupported("advance"); }
  virtual std::uint32_t await(std::uint32_t) { detail::unsupported("await"); }
  virtual std::uint32_t read() const { detail::unsupported("read"); }

  // Container faces (the combining layer), erased at std::uint64_t
  // elements/keys — enough for property tests and sweeps; hot callers
  // use the concrete templates.
  virtual bool try_push(std::uint64_t) { detail::unsupported("try_push"); }
  virtual bool try_pop(std::uint64_t&) { detail::unsupported("try_pop"); }
  virtual bool insert_or_assign(std::uint64_t, std::uint64_t) {
    detail::unsupported("insert_or_assign");
  }
  virtual bool find(std::uint64_t, std::uint64_t&) {
    detail::unsupported("find");
  }
  virtual bool erase(std::uint64_t) { detail::unsupported("erase"); }
  virtual void add(std::int64_t) { detail::unsupported("add"); }
  /// Accumulator read; named apart from the eventcount face's read().
  virtual std::int64_t total() const { detail::unsupported("total"); }

  /// The underlying primitive's telemetry record (kObservable face);
  /// null when the type is not observable or telemetry is disabled.
  virtual const qsv::obs::LockRec* telemetry() const { return nullptr; }

  /// The face bitset of the underlying primitive (Capability values).
  virtual std::uint32_t capabilities() const = 0;

  /// Bytes of fixed per-instance state — uniformly sizeof(concrete
  /// type), Table 2's first column.
  virtual std::size_t footprint() const = 0;
};

/// The one erasure template: overrides exactly the faces the concrete
/// type implements and leaves the rest on the aborting defaults.
template <typename T>
class Erased final : public AnyPrimitive {
 public:
  template <typename... Args>
  explicit Erased(Args&&... args) : impl_(std::forward<Args>(args)...) {}

  void lock() override {
    if constexpr (HasExclusive<T>) impl_.lock();
    else AnyPrimitive::lock();
  }
  void unlock() override {
    if constexpr (HasExclusive<T>) impl_.unlock();
    else AnyPrimitive::unlock();
  }
  bool try_lock() override {
    if constexpr (HasTry<T>) return impl_.try_lock();
    else return AnyPrimitive::try_lock();
  }

  void lock_shared() override {
    if constexpr (HasShared<T>) impl_.lock_shared();
    else AnyPrimitive::lock_shared();
  }
  void unlock_shared() override {
    if constexpr (HasShared<T>) impl_.unlock_shared();
    else AnyPrimitive::unlock_shared();
  }
  bool try_lock_shared() override {
    if constexpr (HasTryShared<T>) return impl_.try_lock_shared();
    else return AnyPrimitive::try_lock_shared();
  }

  bool try_lock_for(std::chrono::nanoseconds timeout) override {
    if constexpr (HasTimed<T>) return impl_.try_lock_for(timeout);
    else return AnyPrimitive::try_lock_for(timeout);
  }

  void arrive_and_wait(std::size_t rank = 0) override {
    if constexpr (HasEpisode<T>) impl_.arrive_and_wait(rank);
    else AnyPrimitive::arrive_and_wait(rank);
  }
  std::size_t team_size() const override {
    if constexpr (HasEpisode<T>) return impl_.team_size();
    else return AnyPrimitive::team_size();
  }

  std::uint32_t advance() override {
    if constexpr (HasEventCount<T>) return impl_.advance();
    else return AnyPrimitive::advance();
  }
  std::uint32_t await(std::uint32_t target) override {
    if constexpr (HasEventCount<T>) return impl_.await(target);
    else return AnyPrimitive::await(target);
  }
  std::uint32_t read() const override {
    if constexpr (HasEventCount<T>) return impl_.read();
    else return AnyPrimitive::read();
  }

  bool try_push(std::uint64_t v) override {
    if constexpr (HasQueueFace<T>) return impl_.try_push(v);
    else return AnyPrimitive::try_push(v);
  }
  bool try_pop(std::uint64_t& out) override {
    if constexpr (HasQueueFace<T>) return impl_.try_pop(out);
    else return AnyPrimitive::try_pop(out);
  }
  bool insert_or_assign(std::uint64_t k, std::uint64_t v) override {
    if constexpr (HasMapFace<T>) return impl_.insert_or_assign(k, v);
    else return AnyPrimitive::insert_or_assign(k, v);
  }
  bool find(std::uint64_t k, std::uint64_t& out) override {
    if constexpr (HasMapFace<T>) return impl_.find(k, out);
    else return AnyPrimitive::find(k, out);
  }
  bool erase(std::uint64_t k) override {
    if constexpr (HasMapFace<T>) return impl_.erase(k);
    else return AnyPrimitive::erase(k);
  }
  void add(std::int64_t d) override {
    if constexpr (HasAccumulatorFace<T>) impl_.add(d);
    else AnyPrimitive::add(d);
  }
  std::int64_t total() const override {
    if constexpr (HasAccumulatorFace<T>) return impl_.read();
    else return AnyPrimitive::total();
  }

  const qsv::obs::LockRec* telemetry() const override {
    if constexpr (HasTelemetry<T>) return impl_.telemetry();
    else return nullptr;
  }

  std::uint32_t capabilities() const override { return caps_of<T>(); }
  std::size_t footprint() const override { return sizeof(T); }

 private:
  T impl_;
};

/// Erase a concrete primitive constructed with explicit arguments —
/// for one-off instruments (e.g. event-counting instantiations) that
/// are not catalogue entries.
template <typename T, typename... Args>
std::unique_ptr<AnyPrimitive> wrap(Args&&... args) {
  return std::make_unique<Erased<T>>(std::forward<Args>(args)...);
}

}  // namespace qsv::catalog
