#include "catalog/catalog.hpp"

#include <cstdio>
#include <cstdlib>

namespace qsv::catalog {

namespace detail {
// Defined in builtin.cpp. Referencing it here pins the builtin
// registration object file into every static-library link — a TU whose
// only contents are static Registrars would otherwise be dropped by
// the linker and the stock entries would silently vanish.
void builtin_anchor();
}  // namespace detail

namespace {

std::vector<Entry>& storage() {
  static std::vector<Entry> entries;
  return entries;
}

}  // namespace

void register_entry(Entry e) {
  auto& entries = storage();
  for (const auto& existing : entries) {
    if (existing.name == e.name) {
      std::fprintf(stderr, "qsv::catalog: duplicate registration '%s'\n",
                   e.name.c_str());
      std::abort();
    }
  }
  if (!e.make || !e.make_with) {
    std::fprintf(stderr, "qsv::catalog: entry '%s' has no factory\n",
                 e.name.c_str());
    std::abort();
  }
  entries.push_back(std::move(e));
}

void add_capability(std::string_view name, std::uint32_t caps) {
  for (auto& e : storage()) {
    if (e.name == name) {
      e.caps |= caps;
      return;
    }
  }
}

const std::vector<Entry>& all() {
  detail::builtin_anchor();
  return storage();
}

const Entry* find(std::string_view name) {
  for (const auto& e : all()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<const Entry*> filter(Family family, std::uint32_t caps_mask) {
  std::vector<const Entry*> out;
  for (const auto& e : all()) {
    if (e.family == family && e.has(caps_mask)) out.push_back(&e);
  }
  return out;
}

std::vector<const Entry*> filter(std::uint32_t caps_mask) {
  std::vector<const Entry*> out;
  for (const auto& e : all()) {
    if (e.has(caps_mask)) out.push_back(&e);
  }
  return out;
}

}  // namespace qsv::catalog
