// builtin.cpp — the stock catalogue: every synchronization primitive
// libqsv ships, 1991 baselines and QSV variants alike, in one list.
//
// Registration order is presentation order within each family (the
// paper-style tables: strawmen, array queue locks, list queue locks,
// modern baselines, then the reconstructed QSV contribution). Adding an
// algorithm is one QSV_CATALOG_REGISTER line here — or in any other
// linked translation unit; capabilities and family are derived from
// the type, so there is nothing else to keep in sync.
//
// Waiting is a runtime dimension, not an entry: the per-policy rows
// the catalogue used to carry ("qsv/yield", "qsv/park",
// "qsv-episode/park") are gone. Each primitive appears once, its caps
// carry the wait-mode bits, and make_with(capacity, policy) selects
// the mode — `qsvbench --wait=...` sweeps it.
#include "catalog/catalog.hpp"

#include "barriers/central.hpp"
#include "barriers/combining_tree.hpp"
#include "barriers/dissemination.hpp"
#include "barriers/mcs_tree.hpp"
#include "barriers/tournament.hpp"
#include "catalog/std_adapters.hpp"
#include "combining/fc_executor.hpp"
#include "combining/fc_queue.hpp"
#include "combining/sharded_map.hpp"
#include "combining/striped_accumulator.hpp"
#include "core/syncvar.hpp"
#include "eventcount/eventcount.hpp"
#include "hier/cohort_lock.hpp"
#include "hier/hier_qsv.hpp"
#include "locks/anderson.hpp"
#include "locks/clh.hpp"
#include "locks/graunke_thakkar.hpp"
#include "locks/mcs.hpp"
#include "locks/tas.hpp"
#include "locks/ticket.hpp"
#include "locks/ttas.hpp"
#include "parking/parking_lot.hpp"
#include "platform/thread_id.hpp"
#include "platform/wait.hpp"
#include "rwlocks/central_rw.hpp"
#include "sim/protocols.hpp"

namespace qsv::catalog {
namespace detail {

// Referenced by catalog.cpp so this object file — nothing but static
// registrars otherwise — survives static-library linking.
void builtin_anchor() {}

}  // namespace detail
}  // namespace qsv::catalog

namespace {

// ------------------------------------------------------------- locks
using TtasBackoff = qsv::locks::TtasLock<>;
using HierQsv = qsv::hier::HierQsvMutex<>;

QSV_CATALOG_REGISTER(qsv::locks::TasLock, "tas");
QSV_CATALOG_REGISTER(qsv::locks::TtasNoBackoffLock, "ttas");
QSV_CATALOG_REGISTER(TtasBackoff, "ttas+backoff");
QSV_CATALOG_REGISTER(qsv::locks::TicketLock, "ticket");
// ticket+prop's size_t parameter is a backoff slot (ns), hier-qsv's a
// cohort width — not capacities; both take their tuned defaults
// (entry_default still plumbs the wait policy where a policy
// constructor exists, as for hier-qsv).
QSV_CATALOG_REGISTER_DEFAULT(qsv::locks::TicketLockProportional,
                             "ticket+prop");
QSV_CATALOG_REGISTER(qsv::locks::AndersonLock<>, "anderson");

// Graunke–Thakkar indexes its flag array by the dense thread index
// (platform::thread_index()). Indices are recycled at thread exit and
// so bounded by kMaxThreads *concurrent* threads — but not by one
// run's contender count: a 2-thread run can legally see any index up
// to the process's concurrency high-water mark. Size the instance by
// kMaxThreads; the old per-family registry passed the sweep's thread
// count here and corrupted the heap once thread indices passed it.
static const qsv::catalog::Registrar qsv_cat_reg_gt{[] {
  auto e = qsv::catalog::entry<qsv::locks::GraunkeThakkarLock>(
      "graunke-thakkar");
  e.make_with = [](std::size_t, qsv::wait_policy) {
    return qsv::catalog::wrap<qsv::locks::GraunkeThakkarLock>(
        qsv::platform::kMaxThreads);
  };
  e.make = [mw = e.make_with](std::size_t capacity) {
    return mw(capacity, qsv::get_default_wait_policy());
  };
  return e;
}()};
QSV_CATALOG_REGISTER(qsv::locks::ClhLock<>, "clh");
QSV_CATALOG_REGISTER(qsv::locks::McsLock<>, "mcs");
QSV_CATALOG_REGISTER(qsv::catalog::StdMutexAdapter, "std::mutex");
// The classic 3-state futex mutex over the hand-built parking lot —
// the "what the mechanism became" baseline, now a first-class row.
QSV_CATALOG_REGISTER(qsv::parking::FutexMutex, "futex");
QSV_CATALOG_REGISTER(qsv::core::QsvMutex<>, "qsv");
QSV_CATALOG_REGISTER(qsv::core::QsvTimeoutMutex, "qsv-timeout");
// hier-qsv's size_t parameters are cohort width and budget, not
// capacities (entry_default); the budget axis is exposed through
// make_budgeted so the fig10 sweep can dial it like the combinator
// entries below.
static const qsv::catalog::Registrar qsv_cat_reg_hier{[] {
  auto e = qsv::catalog::entry_default<HierQsv>("hier-qsv");
  e.make_budgeted = [](std::size_t, qsv::wait_policy policy,
                       std::size_t budget) {
    return qsv::catalog::wrap<HierQsv>(/*threads_per_cohort=*/4, budget,
                                       qsv::platform::RuntimeWait(policy));
  };
  return e;
}()};

// ---------------------------------------------------- cohort compositions
// The generic cohort combinator (hier/cohort_lock.hpp) over pairs of
// catalogue mutexes: global tier × local (per-NUMA-node) tier, cohorts
// from the discovered topology. hier-qsv above remains the fused
// QSV-repertoire specialization; these measure the cohort effect over
// other queue protocols (and a centralized ticket tier as control).
using CohortQsvQsv =
    qsv::hier::CohortLock<qsv::core::QsvMutex<>, qsv::core::QsvMutex<>>;
using CohortMcsMcs =
    qsv::hier::CohortLock<qsv::locks::McsLock<>, qsv::locks::McsLock<>>;
using CohortQsvTicket =
    qsv::hier::CohortLock<qsv::core::QsvMutex<>, qsv::locks::TicketLock>;
using CohortTicketMcs =
    qsv::hier::CohortLock<qsv::locks::TicketLock, qsv::locks::McsLock<>>;
// Both tiers centralized: the all-ticket composition is the scale
// oracle's worst-case control (every wait spins on a shared serving
// word), bounding the cohort effect from below in fig12.
using CohortTicketTicket =
    qsv::hier::CohortLock<qsv::locks::TicketLock, qsv::locks::TicketLock>;

QSV_CATALOG_REGISTER_COHORT(CohortQsvQsv, "cohort/qsv+qsv");
QSV_CATALOG_REGISTER_COHORT(CohortMcsMcs, "cohort/mcs+mcs");
QSV_CATALOG_REGISTER_COHORT(CohortQsvTicket, "cohort/qsv+ticket");
QSV_CATALOG_REGISTER_COHORT(CohortTicketMcs, "cohort/ticket+mcs");
QSV_CATALOG_REGISTER_COHORT(CohortTicketTicket, "cohort/ticket+ticket");

// ---------------------------------------------------------- barriers
QSV_CATALOG_REGISTER(qsv::barriers::CentralBarrier<>, "central");
QSV_CATALOG_REGISTER(qsv::barriers::CombiningTreeBarrier<>, "combining-tree");
QSV_CATALOG_REGISTER(qsv::barriers::TournamentBarrier<>, "tournament");
QSV_CATALOG_REGISTER(qsv::barriers::DisseminationBarrier<>, "dissemination");
QSV_CATALOG_REGISTER(qsv::barriers::McsTreeBarrier<>, "mcs-tree");
QSV_CATALOG_REGISTER(qsv::catalog::StdBarrierAdapter, "std::barrier");
QSV_CATALOG_REGISTER(qsv::core::QsvBarrier<>, "qsv-episode");

// ----------------------------------------------------------- rwlocks
QSV_CATALOG_REGISTER(qsv::rwlocks::ReaderPrefRwLock, "central-rw/reader-pref");
QSV_CATALOG_REGISTER(qsv::rwlocks::WriterPrefRwLock, "central-rw/writer-pref");
QSV_CATALOG_REGISTER(qsv::catalog::StdSharedMutexAdapter,
                     "std::shared_mutex");
QSV_CATALOG_REGISTER(qsv::core::QsvRwLock<>, "qsv-rw");
QSV_CATALOG_REGISTER(qsv::core::QsvRwLockCentral<>, "qsv-rw/central");

// -------------------------------------------- combining and containers
// The delegation layer: fc-mutex is the flat-combining executor over
// the QSV mutex wearing its lock face (every unlock serves the
// publication backlog), and the containers are the first concrete
// structures over it. Each fc/* container has a plain/* twin on
// PlainExecutor — same structure, ordinary lock handoff — so tab4
// measures the combining effect in isolation. Their size_t
// constructor parameters are ring capacity / shard count / stripe
// count, never a thread capacity: entry_default throughout.
using FcMutex = qsv::combining::FcExecutor<qsv::core::QsvMutex<>>;
using PlainExec = qsv::combining::PlainExecutor<qsv::core::QsvMutex<>>;
using FcQueueU64 = qsv::combining::FcMpmcQueue<std::uint64_t>;
using PlainQueueU64 =
    qsv::combining::FcMpmcQueue<std::uint64_t, PlainExec>;
using FcMapU64 = qsv::combining::ShardedMap<std::uint64_t, std::uint64_t>;
using PlainMapU64 =
    qsv::combining::ShardedMap<std::uint64_t, std::uint64_t, PlainExec>;
using FcMapCohort = qsv::combining::ShardedMap<
    std::uint64_t, std::uint64_t,
    qsv::combining::FcExecutor<CohortQsvQsv>>;

QSV_CATALOG_REGISTER(FcMutex, "fc-mutex");
QSV_CATALOG_REGISTER_DEFAULT(FcQueueU64, "fc/queue");
QSV_CATALOG_REGISTER_DEFAULT(PlainQueueU64, "plain/queue");
QSV_CATALOG_REGISTER_DEFAULT(FcMapU64, "fc/map");
QSV_CATALOG_REGISTER_DEFAULT(PlainMapU64, "plain/map");
QSV_CATALOG_REGISTER_DEFAULT(FcMapCohort, "fc/map/cohort");
QSV_CATALOG_REGISTER(qsv::combining::FcCounter, "fc-counter");
QSV_CATALOG_REGISTER_DEFAULT(qsv::combining::StripedAccumulator,
                             "striped-acc");

// -------------------------------------------------------- eventcounts
// Condition synchronization joins the catalogue: the centralized
// (fig11's strawman) and queued (QSV node protocol) eventcounts.
QSV_CATALOG_REGISTER(qsv::eventcount::EventCount<>, "eventcount");
QSV_CATALOG_REGISTER(qsv::eventcount::QueuedEventCount<>, "queued-ec");

// ---------------------------------------------------------- simulable
// kSimulable is tagged from the simulator's own name lists — an entry
// earns the bit iff src/sim/protocols.cpp carries a port under the
// exact catalogue name, so the bit can never drift from what the scale
// oracle can actually replay. (The eventcount ports exist too but under
// sim-specific names, so those entries stay untagged.) This initializer
// runs after every Registrar above: within one translation unit,
// dynamic initialization is sequential.
[[maybe_unused]] static const bool qsv_cat_simulable_tagged = [] {
  for (const auto* names :
       {&qsv::sim::sim_lock_names(), &qsv::sim::sim_barrier_names(),
        &qsv::sim::sim_rw_names()}) {
    for (const std::string& name : *names) {
      qsv::catalog::add_capability(name, qsv::catalog::kSimulable);
    }
  }
  return true;
}();

// ---------------------------------------------------------- checkable
// kCheckable marks the rows whose every wait reaches the chk_hook seam
// (platform/chk_hook.hpp): raw spins poll through cpu_relax, terminal
// waits go through the platform wait classes. qsv::chk's battery
// (chk/battery.cpp) explores exactly these rows. Excluded: the std::
// adapters and the futex mutex — their kernel waits bypass the seam,
// so the serializing scheduler cannot take control of them.
[[maybe_unused]] static const bool qsv_cat_checkable_tagged = [] {
  static constexpr const char* kCheckableRows[] = {
      // locks
      "tas", "ttas", "ttas+backoff", "ticket", "ticket+prop", "anderson",
      "graunke-thakkar", "clh", "mcs", "qsv", "qsv-timeout", "hier-qsv",
      "cohort/qsv+qsv", "cohort/mcs+mcs", "cohort/qsv+ticket",
      "cohort/ticket+mcs", "cohort/ticket+ticket",
      // rwlocks
      "central-rw/reader-pref", "central-rw/writer-pref", "qsv-rw",
      "qsv-rw/central",
  };
  for (const char* name : kCheckableRows) {
    qsv::catalog::add_capability(name, qsv::catalog::kCheckable);
  }
  return true;
}();

}  // namespace
