// std_adapters.hpp — the standard library's primitives behind the qsv
// concepts, so every catalogue sweep includes the "what the mechanism
// became" modern baseline. Consolidates the three old per-family
// adapters.hpp files.
#pragma once

#include <barrier>
#include <cstddef>
#include <mutex>
#include <shared_mutex>

namespace qsv::catalog {

/// std::mutex (glibc: futex-based) — the modern exclusive baseline for
/// every wall-clock experiment.
class StdMutexAdapter {
 public:
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  static constexpr const char* name() noexcept { return "std::mutex"; }
  static constexpr std::size_t footprint_bytes() noexcept {
    return sizeof(std::mutex);
  }

 private:
  std::mutex mu_;
};

/// std::shared_mutex — the modern reader-writer baseline.
class StdSharedMutexAdapter {
 public:
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  void lock_shared() { mu_.lock_shared(); }
  bool try_lock_shared() { return mu_.try_lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }
  static constexpr const char* name() noexcept { return "std::shared_mutex"; }

 private:
  std::shared_mutex mu_;
};

/// C++20 std::barrier — the modern episode baseline.
class StdBarrierAdapter {
 public:
  explicit StdBarrierAdapter(std::size_t n)
      : n_(n), barrier_(static_cast<std::ptrdiff_t>(n)) {}

  void arrive_and_wait(std::size_t /*rank*/ = 0) { barrier_.arrive_and_wait(); }

  std::size_t team_size() const noexcept { return n_; }
  static constexpr const char* name() noexcept { return "std::barrier"; }

 private:
  std::size_t n_;
  std::barrier<> barrier_;
};

}  // namespace qsv::catalog
