// dissemination.hpp — dissemination barrier (Hensgen/Finkel/Manber 1988).
//
// ceil(log2 P) rounds; in round k, thread i signals thread
// (i + 2^k) mod P and waits for a signal from (i - 2^k) mod P. No thread
// ever spins on a location another waiter writes, total traffic is
// O(P log P) point-to-point signals, and latency is the log P critical
// path — the best of the pure-software 1991 barriers on scalable
// networks. Signals are monotonic per-round counters, so episodes never
// need sense reversal.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::barriers {

template <typename Wait = qsv::platform::RuntimeWait>
class DisseminationBarrier {
 public:
  explicit DisseminationBarrier(std::size_t n, Wait waiter = Wait{})
      : waiter_(waiter),
        n_(n),
        rounds_(qsv::platform::ceil_log2(n == 0 ? 1 : n)),
        flags_(n * std::max<std::size_t>(rounds_, 1)),
        episode_(n) {
    for (std::size_t i = 0; i < flags_.size(); ++i) {
      flags_[i].store(0, std::memory_order_relaxed);  // relaxed: ctor
    }
    for (std::size_t i = 0; i < n; ++i) episode_[i] = 0;
  }

  std::size_t flag_slots() const noexcept { return flags_.size(); }
  DisseminationBarrier(const DisseminationBarrier&) = delete;
  DisseminationBarrier& operator=(const DisseminationBarrier&) = delete;

  void arrive_and_wait(std::size_t rank) noexcept {
    if (n_ <= 1) return;
    const std::uint32_t epoch = ++episode_[rank];  // my episode, 1-based
    std::size_t dist = 1;
    for (std::size_t k = 0; k < rounds_; ++k, dist <<= 1) {
      // Signal my round-k partner: bump their inbound counter. release
      // publishes everything I have seen so far this episode.
      auto& out = flag(k, (rank + dist) % n_);
      out.fetch_add(1, std::memory_order_release);
      waiter_.notify_all(out);
      // Wait until my inbound counter reaches my episode (a >= wait,
      // so it goes through the predicate form).
      auto& in = flag(k, rank);
      waiter_.wait_until(in, [&] {
        return in.load(std::memory_order_acquire) >= epoch;
      });
    }
  }

  std::size_t team_size() const noexcept { return n_; }
  std::size_t rounds() const noexcept { return rounds_; }
  static constexpr const char* name() noexcept { return "dissemination"; }

 private:
  std::atomic<std::uint32_t>& flag(std::size_t round,
                                   std::size_t rank) noexcept {
    return flags_[round * n_ + rank];
  }

  /// How this instance's waiting arrivals wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  const std::size_t n_;
  const std::size_t rounds_;
  qsv::platform::PaddedArray<std::atomic<std::uint32_t>> flags_;
  // Per-rank episode number, written only by its owner; padded so two
  // owners never share a line.
  qsv::platform::PaddedArray<std::uint32_t> episode_;
};

}  // namespace qsv::barriers
