// mcs_tree.hpp — MCS static tree barrier (Mellor-Crummey & Scott 1991).
//
// Arrival climbs a static 4-ary tree (each parent waits for its <= 4
// children, then reports to its own parent); wakeup descends a static
// binary tree. Every flag has exactly one writer and one reader per
// episode and each thread spins on O(1) statically-assigned locations —
// the minimal-traffic barrier of the era and the shape QSV's episode
// mode borrows. Monotonic episode counters replace the original's
// sense-reversed booleans.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::barriers {

template <typename Wait = qsv::platform::RuntimeWait>
class McsTreeBarrier {
 public:
  static constexpr std::size_t kArrivalFanIn = 4;

  explicit McsTreeBarrier(std::size_t n, Wait waiter = Wait{})
      : waiter_(waiter), n_(n), slots_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      slots_[i].arrival.store(0, std::memory_order_relaxed);  // relaxed: ctor
      slots_[i].release.store(0, std::memory_order_relaxed);  // relaxed: ctor
      slots_[i].episode = 0;
    }
  }
  McsTreeBarrier(const McsTreeBarrier&) = delete;
  McsTreeBarrier& operator=(const McsTreeBarrier&) = delete;

  void arrive_and_wait(std::size_t rank) noexcept {
    if (n_ <= 1) return;
    Slot& me = slots_[rank];
    const std::uint32_t epoch = ++me.episode;

    // --- Arrival phase: 4-ary tree, children report to parents. ---
    for (std::size_t c = 0; c < kArrivalFanIn; ++c) {
      const std::size_t child = rank * kArrivalFanIn + 1 + c;
      if (child >= n_) break;
      // acquire pairs with the child's release store of its arrival.
      auto& f = slots_[child].arrival;
      waiter_.wait_until(f, [&] {
        return f.load(std::memory_order_acquire) >= epoch;
      });
    }
    if (rank != 0) {
      // Report my subtree's arrival to my parent's poll of my flag
      // (with the wake a parked parent needs).
      me.arrival.store(epoch, std::memory_order_release);
      waiter_.notify_all(me.arrival);
      // --- Wakeup phase: wait for my binary-tree parent's release. ---
      waiter_.wait_while_equal(me.release, epoch - 1);
    }
    // Release my binary-tree children.
    for (std::size_t c = 1; c <= 2; ++c) {
      const std::size_t child = 2 * rank + c;
      if (child >= n_) break;
      auto& f = slots_[child].release;
      f.store(epoch, std::memory_order_release);
      waiter_.notify_all(f);
    }
  }

  std::size_t team_size() const noexcept { return n_; }
  static constexpr const char* name() noexcept { return "mcs-tree"; }

 private:
  struct Slot {
    std::atomic<std::uint32_t> arrival{0};
    std::atomic<std::uint32_t> release{0};
    std::uint32_t episode = 0;  // owner-private
  };

  /// How this instance's waiting arrivals wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  const std::size_t n_;
  qsv::platform::PaddedArray<Slot> slots_;
};

}  // namespace qsv::barriers
