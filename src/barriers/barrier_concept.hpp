// barrier_concept.hpp — the episode-synchronization interface.
//
// All libqsv barriers are constructed for a fixed team of `n` threads and
// synchronize an unbounded sequence of episodes. Algorithms that need a
// dense team-relative rank take it as a parameter; callers pass the same
// rank every episode.
#pragma once

#include <concepts>
#include <cstddef>

namespace qsv::barriers {

template <typename B>
concept PhaseBarrier = requires(B b, std::size_t rank) {
  { b.arrive_and_wait(rank) } -> std::same_as<void>;
  { b.team_size() } -> std::convertible_to<std::size_t>;
  { B::name() } -> std::convertible_to<const char*>;
};

}  // namespace qsv::barriers
