// registry.hpp — type-erased catalogue of episode-synchronization
// algorithms (see locks/registry.hpp for the rationale).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace qsv::barriers {

class AnyBarrier {
 public:
  virtual ~AnyBarrier() = default;
  virtual void arrive_and_wait(std::size_t rank) = 0;
  virtual std::size_t team_size() const = 0;
};

struct BarrierFactory {
  std::string name;
  std::function<std::unique_ptr<AnyBarrier>(std::size_t team)> make;
};

const std::vector<BarrierFactory>& barrier_registry();
const BarrierFactory* find_barrier(const std::string& name);

}  // namespace qsv::barriers
