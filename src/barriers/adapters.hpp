// adapters.hpp — std::barrier behind the PhaseBarrier concept.
#pragma once

#include <barrier>
#include <cstddef>

namespace qsv::barriers {

/// C++20 std::barrier — the modern baseline episode synchronizer.
class StdBarrierAdapter {
 public:
  explicit StdBarrierAdapter(std::size_t n)
      : n_(n), barrier_(static_cast<std::ptrdiff_t>(n)) {}

  void arrive_and_wait(std::size_t /*rank*/ = 0) { barrier_.arrive_and_wait(); }

  std::size_t team_size() const noexcept { return n_; }
  static constexpr const char* name() noexcept { return "std::barrier"; }

 private:
  std::size_t n_;
  std::barrier<> barrier_;
};

}  // namespace qsv::barriers
