#include "barriers/registry.hpp"

#include "barriers/adapters.hpp"
#include "barriers/central.hpp"
#include "barriers/combining_tree.hpp"
#include "barriers/dissemination.hpp"
#include "barriers/mcs_tree.hpp"
#include "barriers/tournament.hpp"

namespace qsv::barriers {

namespace {

template <typename B>
class Erased final : public AnyBarrier {
 public:
  explicit Erased(std::size_t team) : impl_(team) {}
  void arrive_and_wait(std::size_t rank) override {
    impl_.arrive_and_wait(rank);
  }
  std::size_t team_size() const override { return impl_.team_size(); }

 private:
  B impl_;
};

template <typename B>
BarrierFactory make(const char* display) {
  return BarrierFactory{display,
                        [](std::size_t team) -> std::unique_ptr<AnyBarrier> {
                          return std::make_unique<Erased<B>>(team);
                        }};
}

}  // namespace

const std::vector<BarrierFactory>& barrier_registry() {
  static const std::vector<BarrierFactory> registry = {
      make<CentralBarrier<>>("central"),
      make<CombiningTreeBarrier<>>("combining-tree"),
      make<TournamentBarrier<>>("tournament"),
      make<DisseminationBarrier<>>("dissemination"),
      make<McsTreeBarrier<>>("mcs-tree"),
      make<StdBarrierAdapter>("std::barrier"),
  };
  return registry;
}

const BarrierFactory* find_barrier(const std::string& name) {
  for (const auto& f : barrier_registry()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace qsv::barriers
