// tournament.hpp — tournament barrier (Hensgen/Finkel/Manber 1988,
// as measured by MCS '91 §3.3).
//
// Pairings are fixed by rank bits, so each round's "loser" knows
// statically whom to signal and needs no RMW at all: arrival is one
// ordinary store per round on the loser side, and the champion (rank 0)
// broadcasts release through a single global episode word. All spinning
// is on locations written by exactly one other thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/thread_id.hpp"
#include "platform/wait.hpp"

namespace qsv::barriers {

template <typename Wait = qsv::platform::RuntimeWait>
class TournamentBarrier {
 public:
  explicit TournamentBarrier(std::size_t n, Wait waiter = Wait{})
      : waiter_(waiter),
        n_(n),
        rounds_(qsv::platform::ceil_log2(n == 0 ? 1 : n)),
        arrive_flags_(n * std::max<std::size_t>(rounds_, 1)) {
    for (std::size_t i = 0; i < arrive_flags_.size(); ++i) {
      arrive_flags_[i].store(0, std::memory_order_relaxed);  // relaxed: ctor
    }
  }
  TournamentBarrier(const TournamentBarrier&) = delete;
  TournamentBarrier& operator=(const TournamentBarrier&) = delete;

  void arrive_and_wait(std::size_t rank) noexcept {
    if (n_ <= 1) return;
    // relaxed: episode snapshot; round flags carry the real ordering.
    const std::uint32_t epoch = episode_.load(std::memory_order_relaxed);
    std::size_t bit = 1;
    for (std::size_t k = 0; k < rounds_; ++k, bit <<= 1) {
      if ((rank & bit) != 0) {
        // Loser of round k: signal my winner (rank with this bit clear),
        // then go straight to the release wait. release publishes my
        // pre-barrier writes to the winner's acquire.
        auto& f = flag(k, rank);
        f.store(epoch + 1, std::memory_order_release);
        waiter_.notify_all(f);  // my winner may be parked on this flag
        break;
      }
      const std::size_t partner = rank | bit;
      if (partner < n_) {
        // Winner of round k: wait for my loser's arrival.
        auto& f = flag(k, partner);
        waiter_.wait_until(f, [&] {
          return f.load(std::memory_order_acquire) == epoch + 1;
        });
      }
      // No partner (team not a power of two): advance unopposed.
    }
    if (rank == 0) {
      // Champion: everyone has arrived; broadcast the new episode.
      episode_.store(epoch + 1, std::memory_order_release);
      waiter_.notify_all(episode_);
    } else {
      waiter_.wait_while_equal(episode_, epoch);
    }
  }

  std::size_t team_size() const noexcept { return n_; }
  std::size_t rounds() const noexcept { return rounds_; }
  static constexpr const char* name() noexcept { return "tournament"; }

 private:
  std::atomic<std::uint32_t>& flag(std::size_t round,
                                   std::size_t rank) noexcept {
    return arrive_flags_[round * n_ + rank];
  }

  /// How this instance's waiting arrivals wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  const std::size_t n_;
  const std::size_t rounds_;
  qsv::platform::PaddedArray<std::atomic<std::uint32_t>> arrive_flags_;
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> episode_{0};
};

}  // namespace qsv::barriers
