// combining_tree.hpp — software combining tree barrier (Yew/Tzeng/Lawrie
// style, as evaluated by MCS '91).
//
// Threads are partitioned into groups of `kFanIn` at the leaves; the last
// arriver of each group ("winner") climbs to the parent node, so only
// O(P/k) threads touch each level and no single counter sees all P RMWs.
// Release descends the same tree: each winner, once released from above,
// bumps its node's release epoch to wake the group it beat.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::barriers {

template <typename Wait = qsv::platform::RuntimeWait,
          std::size_t kFanIn = 4>
class CombiningTreeBarrier {
 public:
  explicit CombiningTreeBarrier(std::size_t n, Wait waiter = Wait{})
      : waiter_(waiter), n_(n) {
    // Build levels bottom-up: level 0 has ceil(n/k) nodes over the
    // threads, each next level groups the winners of the previous one.
    std::size_t width = n;
    std::size_t total = 0;
    do {
      width = (width + kFanIn - 1) / kFanIn;
      level_offset_.push_back(total);
      level_width_.push_back(width);
      total += width;
    } while (width > 1);
    // Single allocation: Node holds atomics and is neither copyable nor
    // movable, so the vector must never reallocate.
    nodes_ = std::vector<Node>(total);
    // Record how many participants each node actually has (the last group
    // in a level may be partial).
    std::size_t below = n;
    for (std::size_t lvl = 0; lvl < level_width_.size(); ++lvl) {
      for (std::size_t i = 0; i < level_width_[lvl]; ++i) {
        const std::size_t lo = i * kFanIn;
        const std::size_t hi = std::min(below, lo + kFanIn);
        node(lvl, i).fan_in = hi - lo;
      }
      below = level_width_[lvl];
    }
  }
  CombiningTreeBarrier(const CombiningTreeBarrier&) = delete;
  CombiningTreeBarrier& operator=(const CombiningTreeBarrier&) = delete;

  void arrive_and_wait(std::size_t rank) noexcept {
    ascend(0, rank / kFanIn);
  }

  std::size_t team_size() const noexcept { return n_; }
  static constexpr const char* name() noexcept { return "combining-tree"; }

  /// Number of internal nodes (space accounting).
  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct alignas(qsv::platform::kFalseSharingRange) Node {
    std::atomic<std::uint32_t> arrived{0};
    std::atomic<std::uint32_t> release_epoch{0};
    std::size_t fan_in = 0;
  };

  Node& node(std::size_t lvl, std::size_t i) noexcept {
    return nodes_[level_offset_[lvl] + i];
  }

  void ascend(std::size_t lvl, std::size_t idx) noexcept {
    Node& nd = node(lvl, idx);
    // relaxed: episode snapshot; the acq_rel arrival RMW below and the
    // release publication order the actual handoff.
    const std::uint32_t epoch =
        nd.release_epoch.load(std::memory_order_relaxed);
    // acq_rel: winner must observe losers' pre-barrier writes.
    if (nd.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        nd.fan_in) {
      // Winner: reset for the next episode and climb (or finish at root).
      // relaxed: ordered by the eventual release publication.
      nd.arrived.store(0, std::memory_order_relaxed);
      if (lvl + 1 < level_width_.size()) {
        ascend(lvl + 1, idx / kFanIn);
      }
      // Released from above (or root): wake this node's group.
      nd.release_epoch.store(epoch + 1, std::memory_order_release);
      waiter_.notify_all(nd.release_epoch);
    } else {
      waiter_.wait_while_equal(nd.release_epoch, epoch);
    }
  }

  /// How this instance's waiting arrivals wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  const std::size_t n_;
  std::vector<Node> nodes_;
  std::vector<std::size_t> level_offset_;
  std::vector<std::size_t> level_width_;
};

}  // namespace qsv::barriers
