// central.hpp — centralized counter barrier.
//
// The strawman: one shared arrival counter plus one episode word everyone
// spins on. O(P) RMWs on one line per episode and an O(P)-wide
// invalidation at release — the traffic experiment F5 quantifies.
// Episodes are tracked by a monotonic counter rather than a flipped
// "sense" flag; this is immune to episode-overlap bugs by construction
// (a thread can be at most one episode ahead of the slowest).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "platform/arch.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qsv::barriers {

template <typename Wait = qsv::platform::RuntimeWait>
class CentralBarrier {
 public:
  explicit CentralBarrier(std::size_t n, Wait waiter = Wait{})
      : waiter_(waiter), n_(n) {}
  CentralBarrier(const CentralBarrier&) = delete;
  CentralBarrier& operator=(const CentralBarrier&) = delete;

  void arrive_and_wait(std::size_t /*rank*/ = 0) noexcept {
    // Episode I am completing. relaxed: ordering comes from the
    // episode publication below.
    const std::uint32_t epoch = episode_.load(std::memory_order_relaxed);
    // acq_rel so the last arriver has observed every earlier arriver's
    // pre-barrier writes before publishing the new episode.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      // relaxed: re-arm before the episode publication; the release
      // store below orders it for the next episode's arrivals.
      arrived_.store(0, std::memory_order_relaxed);
      episode_.store(epoch + 1, std::memory_order_release);
      waiter_.notify_all(episode_);
    } else {
      waiter_.wait_while_equal(episode_, epoch);
    }
  }

  std::size_t team_size() const noexcept { return n_; }
  static constexpr const char* name() noexcept { return "central"; }

 private:
  /// How this instance's waiting arrivals wait (and are woken).
  [[no_unique_address]] Wait waiter_;
  const std::size_t n_;
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> arrived_{0};
  alignas(qsv::platform::kFalseSharingRange)
      std::atomic<std::uint32_t> episode_{0};
};

}  // namespace qsv::barriers
