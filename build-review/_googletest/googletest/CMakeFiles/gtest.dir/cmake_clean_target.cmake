file(REMOVE_RECURSE
  "../../lib/libgtest.a"
)
