file(REMOVE_RECURSE
  "../../bin/libgtest.pdb"
  "../../lib/libgtest.a"
  "CMakeFiles/gtest.dir/src/gtest-all.cc.o"
  "CMakeFiles/gtest.dir/src/gtest-all.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
