file(REMOVE_RECURSE
  "../../bin/libgtest_main.pdb"
  "../../lib/libgtest_main.a"
  "CMakeFiles/gtest_main.dir/src/gtest_main.cc.o"
  "CMakeFiles/gtest_main.dir/src/gtest_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtest_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
