file(REMOVE_RECURSE
  "../../lib/libgtest_main.a"
)
