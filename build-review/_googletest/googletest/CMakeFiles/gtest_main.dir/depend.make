# Empty dependencies file for gtest_main.
# This may be replaced when dependencies are built.
