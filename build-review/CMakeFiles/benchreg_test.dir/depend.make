# Empty dependencies file for benchreg_test.
# This may be replaced when dependencies are built.
