file(REMOVE_RECURSE
  "CMakeFiles/benchreg_test.dir/tests/benchreg_test.cpp.o"
  "CMakeFiles/benchreg_test.dir/tests/benchreg_test.cpp.o.d"
  "benchreg_test"
  "benchreg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchreg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
