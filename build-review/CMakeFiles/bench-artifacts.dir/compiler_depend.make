# Empty custom commands generated dependencies file for bench-artifacts.
# This may be replaced when dependencies are built.
