file(REMOVE_RECURSE
  "CMakeFiles/bench-artifacts"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench-artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
