file(REMOVE_RECURSE
  "CMakeFiles/sim_explorer.dir/examples/sim_explorer.cpp.o"
  "CMakeFiles/sim_explorer.dir/examples/sim_explorer.cpp.o.d"
  "sim_explorer"
  "sim_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
