# Empty compiler generated dependencies file for sim_explorer.
# This may be replaced when dependencies are built.
