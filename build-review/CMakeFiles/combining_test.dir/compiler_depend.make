# Empty compiler generated dependencies file for combining_test.
# This may be replaced when dependencies are built.
