file(REMOVE_RECURSE
  "CMakeFiles/combining_test.dir/tests/combining_test.cpp.o"
  "CMakeFiles/combining_test.dir/tests/combining_test.cpp.o.d"
  "combining_test"
  "combining_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
