# Empty compiler generated dependencies file for validate_test.
# This may be replaced when dependencies are built.
