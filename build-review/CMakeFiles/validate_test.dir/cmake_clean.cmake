file(REMOVE_RECURSE
  "CMakeFiles/validate_test.dir/tests/validate_test.cpp.o"
  "CMakeFiles/validate_test.dir/tests/validate_test.cpp.o.d"
  "validate_test"
  "validate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
