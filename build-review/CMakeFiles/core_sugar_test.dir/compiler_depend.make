# Empty compiler generated dependencies file for core_sugar_test.
# This may be replaced when dependencies are built.
