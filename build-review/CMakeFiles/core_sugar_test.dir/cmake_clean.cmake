file(REMOVE_RECURSE
  "CMakeFiles/core_sugar_test.dir/tests/core_sugar_test.cpp.o"
  "CMakeFiles/core_sugar_test.dir/tests/core_sugar_test.cpp.o.d"
  "core_sugar_test"
  "core_sugar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sugar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
