# Empty dependencies file for trace_handoffs.
# This may be replaced when dependencies are built.
