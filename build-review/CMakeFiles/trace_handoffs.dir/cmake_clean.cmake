file(REMOVE_RECURSE
  "CMakeFiles/trace_handoffs.dir/examples/trace_handoffs.cpp.o"
  "CMakeFiles/trace_handoffs.dir/examples/trace_handoffs.cpp.o.d"
  "trace_handoffs"
  "trace_handoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_handoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
