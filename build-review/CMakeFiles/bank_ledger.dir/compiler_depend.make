# Empty compiler generated dependencies file for bank_ledger.
# This may be replaced when dependencies are built.
