# Empty dependencies file for bank_ledger.
# This may be replaced when dependencies are built.
