file(REMOVE_RECURSE
  "CMakeFiles/bank_ledger.dir/examples/bank_ledger.cpp.o"
  "CMakeFiles/bank_ledger.dir/examples/bank_ledger.cpp.o.d"
  "bank_ledger"
  "bank_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
