file(REMOVE_RECURSE
  "CMakeFiles/trace_test.dir/tests/trace_test.cpp.o"
  "CMakeFiles/trace_test.dir/tests/trace_test.cpp.o.d"
  "trace_test"
  "trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
