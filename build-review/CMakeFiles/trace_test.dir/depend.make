# Empty dependencies file for trace_test.
# This may be replaced when dependencies are built.
