file(REMOVE_RECURSE
  "CMakeFiles/striped_rw_test.dir/tests/striped_rw_test.cpp.o"
  "CMakeFiles/striped_rw_test.dir/tests/striped_rw_test.cpp.o.d"
  "striped_rw_test"
  "striped_rw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striped_rw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
