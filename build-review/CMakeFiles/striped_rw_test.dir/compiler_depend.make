# Empty compiler generated dependencies file for striped_rw_test.
# This may be replaced when dependencies are built.
