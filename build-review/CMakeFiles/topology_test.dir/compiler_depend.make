# Empty compiler generated dependencies file for topology_test.
# This may be replaced when dependencies are built.
