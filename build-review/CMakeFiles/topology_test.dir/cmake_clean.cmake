file(REMOVE_RECURSE
  "CMakeFiles/topology_test.dir/tests/topology_test.cpp.o"
  "CMakeFiles/topology_test.dir/tests/topology_test.cpp.o.d"
  "topology_test"
  "topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
