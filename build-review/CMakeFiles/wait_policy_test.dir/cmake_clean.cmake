file(REMOVE_RECURSE
  "CMakeFiles/wait_policy_test.dir/tests/wait_policy_test.cpp.o"
  "CMakeFiles/wait_policy_test.dir/tests/wait_policy_test.cpp.o.d"
  "wait_policy_test"
  "wait_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
