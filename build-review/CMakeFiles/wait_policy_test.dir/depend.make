# Empty dependencies file for wait_policy_test.
# This may be replaced when dependencies are built.
