# Empty dependencies file for locks_test.
# This may be replaced when dependencies are built.
