file(REMOVE_RECURSE
  "CMakeFiles/locks_test.dir/tests/locks_test.cpp.o"
  "CMakeFiles/locks_test.dir/tests/locks_test.cpp.o.d"
  "locks_test"
  "locks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
