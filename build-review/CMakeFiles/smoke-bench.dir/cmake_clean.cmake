file(REMOVE_RECURSE
  "CMakeFiles/smoke-bench"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/smoke-bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
