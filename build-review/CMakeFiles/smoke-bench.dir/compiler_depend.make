# Empty custom commands generated dependencies file for smoke-bench.
# This may be replaced when dependencies are built.
