file(REMOVE_RECURSE
  "CMakeFiles/sim_protocols_test.dir/tests/sim_protocols_test.cpp.o"
  "CMakeFiles/sim_protocols_test.dir/tests/sim_protocols_test.cpp.o.d"
  "sim_protocols_test"
  "sim_protocols_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
