# Empty dependencies file for sim_protocols_test.
# This may be replaced when dependencies are built.
