file(REMOVE_RECURSE
  "CMakeFiles/parking_test.dir/tests/parking_test.cpp.o"
  "CMakeFiles/parking_test.dir/tests/parking_test.cpp.o.d"
  "parking_test"
  "parking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
