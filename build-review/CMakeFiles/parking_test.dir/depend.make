# Empty dependencies file for parking_test.
# This may be replaced when dependencies are built.
