# Empty dependencies file for rwlocks_test.
# This may be replaced when dependencies are built.
