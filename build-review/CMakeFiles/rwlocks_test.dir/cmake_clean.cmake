file(REMOVE_RECURSE
  "CMakeFiles/rwlocks_test.dir/tests/rwlocks_test.cpp.o"
  "CMakeFiles/rwlocks_test.dir/tests/rwlocks_test.cpp.o.d"
  "rwlocks_test"
  "rwlocks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwlocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
