file(REMOVE_RECURSE
  "CMakeFiles/eventcount_test.dir/tests/eventcount_test.cpp.o"
  "CMakeFiles/eventcount_test.dir/tests/eventcount_test.cpp.o.d"
  "eventcount_test"
  "eventcount_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventcount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
