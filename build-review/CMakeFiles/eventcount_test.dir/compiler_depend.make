# Empty compiler generated dependencies file for eventcount_test.
# This may be replaced when dependencies are built.
