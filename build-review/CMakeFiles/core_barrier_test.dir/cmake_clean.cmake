file(REMOVE_RECURSE
  "CMakeFiles/core_barrier_test.dir/tests/core_barrier_test.cpp.o"
  "CMakeFiles/core_barrier_test.dir/tests/core_barrier_test.cpp.o.d"
  "core_barrier_test"
  "core_barrier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
