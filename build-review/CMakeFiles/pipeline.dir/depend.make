# Empty dependencies file for pipeline.
# This may be replaced when dependencies are built.
