file(REMOVE_RECURSE
  "CMakeFiles/pipeline.dir/examples/pipeline.cpp.o"
  "CMakeFiles/pipeline.dir/examples/pipeline.cpp.o.d"
  "pipeline"
  "pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
