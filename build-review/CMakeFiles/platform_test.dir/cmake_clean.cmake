file(REMOVE_RECURSE
  "CMakeFiles/platform_test.dir/tests/platform_test.cpp.o"
  "CMakeFiles/platform_test.dir/tests/platform_test.cpp.o.d"
  "platform_test"
  "platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
