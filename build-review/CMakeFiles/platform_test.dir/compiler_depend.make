# Empty compiler generated dependencies file for platform_test.
# This may be replaced when dependencies are built.
