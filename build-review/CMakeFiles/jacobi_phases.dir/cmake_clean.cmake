file(REMOVE_RECURSE
  "CMakeFiles/jacobi_phases.dir/examples/jacobi_phases.cpp.o"
  "CMakeFiles/jacobi_phases.dir/examples/jacobi_phases.cpp.o.d"
  "jacobi_phases"
  "jacobi_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
