# Empty compiler generated dependencies file for jacobi_phases.
# This may be replaced when dependencies are built.
