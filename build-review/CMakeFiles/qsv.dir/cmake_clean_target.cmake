file(REMOVE_RECURSE
  "libqsv.a"
)
