file(REMOVE_RECURSE
  "CMakeFiles/qsv.dir/src/benchreg/emit.cpp.o"
  "CMakeFiles/qsv.dir/src/benchreg/emit.cpp.o.d"
  "CMakeFiles/qsv.dir/src/benchreg/registry.cpp.o"
  "CMakeFiles/qsv.dir/src/benchreg/registry.cpp.o.d"
  "CMakeFiles/qsv.dir/src/catalog/builtin.cpp.o"
  "CMakeFiles/qsv.dir/src/catalog/builtin.cpp.o.d"
  "CMakeFiles/qsv.dir/src/catalog/catalog.cpp.o"
  "CMakeFiles/qsv.dir/src/catalog/catalog.cpp.o.d"
  "CMakeFiles/qsv.dir/src/platform/affinity.cpp.o"
  "CMakeFiles/qsv.dir/src/platform/affinity.cpp.o.d"
  "CMakeFiles/qsv.dir/src/platform/histogram.cpp.o"
  "CMakeFiles/qsv.dir/src/platform/histogram.cpp.o.d"
  "CMakeFiles/qsv.dir/src/platform/timing.cpp.o"
  "CMakeFiles/qsv.dir/src/platform/timing.cpp.o.d"
  "CMakeFiles/qsv.dir/src/platform/topology.cpp.o"
  "CMakeFiles/qsv.dir/src/platform/topology.cpp.o.d"
  "CMakeFiles/qsv.dir/src/platform/waiter.cpp.o"
  "CMakeFiles/qsv.dir/src/platform/waiter.cpp.o.d"
  "CMakeFiles/qsv.dir/src/sim/machine.cpp.o"
  "CMakeFiles/qsv.dir/src/sim/machine.cpp.o.d"
  "CMakeFiles/qsv.dir/src/sim/protocols.cpp.o"
  "CMakeFiles/qsv.dir/src/sim/protocols.cpp.o.d"
  "libqsv.a"
  "libqsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
