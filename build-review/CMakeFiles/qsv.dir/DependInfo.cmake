
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchreg/emit.cpp" "CMakeFiles/qsv.dir/src/benchreg/emit.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/benchreg/emit.cpp.o.d"
  "/root/repo/src/benchreg/registry.cpp" "CMakeFiles/qsv.dir/src/benchreg/registry.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/benchreg/registry.cpp.o.d"
  "/root/repo/src/catalog/builtin.cpp" "CMakeFiles/qsv.dir/src/catalog/builtin.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/catalog/builtin.cpp.o.d"
  "/root/repo/src/catalog/catalog.cpp" "CMakeFiles/qsv.dir/src/catalog/catalog.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/catalog/catalog.cpp.o.d"
  "/root/repo/src/platform/affinity.cpp" "CMakeFiles/qsv.dir/src/platform/affinity.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/platform/affinity.cpp.o.d"
  "/root/repo/src/platform/histogram.cpp" "CMakeFiles/qsv.dir/src/platform/histogram.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/platform/histogram.cpp.o.d"
  "/root/repo/src/platform/timing.cpp" "CMakeFiles/qsv.dir/src/platform/timing.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/platform/timing.cpp.o.d"
  "/root/repo/src/platform/topology.cpp" "CMakeFiles/qsv.dir/src/platform/topology.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/platform/topology.cpp.o.d"
  "/root/repo/src/platform/waiter.cpp" "CMakeFiles/qsv.dir/src/platform/waiter.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/platform/waiter.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "CMakeFiles/qsv.dir/src/sim/machine.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/sim/machine.cpp.o.d"
  "/root/repo/src/sim/protocols.cpp" "CMakeFiles/qsv.dir/src/sim/protocols.cpp.o" "gcc" "CMakeFiles/qsv.dir/src/sim/protocols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
