# Empty dependencies file for qsv.
# This may be replaced when dependencies are built.
