# Empty compiler generated dependencies file for qsvbench.
# This may be replaced when dependencies are built.
