
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl1_wait_policy.cpp" "CMakeFiles/qsvbench.dir/bench/abl1_wait_policy.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/abl1_wait_policy.cpp.o.d"
  "/root/repo/bench/abl2_reader_batch.cpp" "CMakeFiles/qsvbench.dir/bench/abl2_reader_batch.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/abl2_reader_batch.cpp.o.d"
  "/root/repo/bench/abl3_backoff.cpp" "CMakeFiles/qsvbench.dir/bench/abl3_backoff.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/abl3_backoff.cpp.o.d"
  "/root/repo/bench/abl4_parking.cpp" "CMakeFiles/qsvbench.dir/bench/abl4_parking.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/abl4_parking.cpp.o.d"
  "/root/repo/bench/abl5_costmodel.cpp" "CMakeFiles/qsvbench.dir/bench/abl5_costmodel.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/abl5_costmodel.cpp.o.d"
  "/root/repo/bench/abl6_striped_readers.cpp" "CMakeFiles/qsvbench.dir/bench/abl6_striped_readers.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/abl6_striped_readers.cpp.o.d"
  "/root/repo/bench/fig10_hier.cpp" "CMakeFiles/qsvbench.dir/bench/fig10_hier.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig10_hier.cpp.o.d"
  "/root/repo/bench/fig11_eventcount.cpp" "CMakeFiles/qsvbench.dir/bench/fig11_eventcount.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig11_eventcount.cpp.o.d"
  "/root/repo/bench/fig1_lock_scaling.cpp" "CMakeFiles/qsvbench.dir/bench/fig1_lock_scaling.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig1_lock_scaling.cpp.o.d"
  "/root/repo/bench/fig2_bus_traffic.cpp" "CMakeFiles/qsvbench.dir/bench/fig2_bus_traffic.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig2_bus_traffic.cpp.o.d"
  "/root/repo/bench/fig3_numa_traffic.cpp" "CMakeFiles/qsvbench.dir/bench/fig3_numa_traffic.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig3_numa_traffic.cpp.o.d"
  "/root/repo/bench/fig4_barrier_scaling.cpp" "CMakeFiles/qsvbench.dir/bench/fig4_barrier_scaling.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig4_barrier_scaling.cpp.o.d"
  "/root/repo/bench/fig5_barrier_traffic.cpp" "CMakeFiles/qsvbench.dir/bench/fig5_barrier_traffic.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig5_barrier_traffic.cpp.o.d"
  "/root/repo/bench/fig6_cs_crossover.cpp" "CMakeFiles/qsvbench.dir/bench/fig6_cs_crossover.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig6_cs_crossover.cpp.o.d"
  "/root/repo/bench/fig7_fairness.cpp" "CMakeFiles/qsvbench.dir/bench/fig7_fairness.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig7_fairness.cpp.o.d"
  "/root/repo/bench/fig8_rw_ratio.cpp" "CMakeFiles/qsvbench.dir/bench/fig8_rw_ratio.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig8_rw_ratio.cpp.o.d"
  "/root/repo/bench/fig9_timeout.cpp" "CMakeFiles/qsvbench.dir/bench/fig9_timeout.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/fig9_timeout.cpp.o.d"
  "/root/repo/bench/qsvbench_main.cpp" "CMakeFiles/qsvbench.dir/bench/qsvbench_main.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/qsvbench_main.cpp.o.d"
  "/root/repo/bench/smoke_rw_ratio.cpp" "CMakeFiles/qsvbench.dir/bench/smoke_rw_ratio.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/smoke_rw_ratio.cpp.o.d"
  "/root/repo/bench/tab1_uncontended.cpp" "CMakeFiles/qsvbench.dir/bench/tab1_uncontended.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/tab1_uncontended.cpp.o.d"
  "/root/repo/bench/tab2_space.cpp" "CMakeFiles/qsvbench.dir/bench/tab2_space.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/tab2_space.cpp.o.d"
  "/root/repo/bench/tab3_combining.cpp" "CMakeFiles/qsvbench.dir/bench/tab3_combining.cpp.o" "gcc" "CMakeFiles/qsvbench.dir/bench/tab3_combining.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/qsv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
