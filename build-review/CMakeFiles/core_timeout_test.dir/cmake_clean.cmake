file(REMOVE_RECURSE
  "CMakeFiles/core_timeout_test.dir/tests/core_timeout_test.cpp.o"
  "CMakeFiles/core_timeout_test.dir/tests/core_timeout_test.cpp.o.d"
  "core_timeout_test"
  "core_timeout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_timeout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
