# Empty compiler generated dependencies file for core_timeout_test.
# This may be replaced when dependencies are built.
