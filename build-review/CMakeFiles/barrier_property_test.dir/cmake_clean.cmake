file(REMOVE_RECURSE
  "CMakeFiles/barrier_property_test.dir/tests/barrier_property_test.cpp.o"
  "CMakeFiles/barrier_property_test.dir/tests/barrier_property_test.cpp.o.d"
  "barrier_property_test"
  "barrier_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
