# Empty dependencies file for barrier_property_test.
# This may be replaced when dependencies are built.
