# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for barrier_property_test.
