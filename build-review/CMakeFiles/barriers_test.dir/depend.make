# Empty dependencies file for barriers_test.
# This may be replaced when dependencies are built.
