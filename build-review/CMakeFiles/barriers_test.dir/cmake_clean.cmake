file(REMOVE_RECURSE
  "CMakeFiles/barriers_test.dir/tests/barriers_test.cpp.o"
  "CMakeFiles/barriers_test.dir/tests/barriers_test.cpp.o.d"
  "barriers_test"
  "barriers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barriers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
