# Empty dependencies file for rw_cache.
# This may be replaced when dependencies are built.
