file(REMOVE_RECURSE
  "CMakeFiles/rw_cache.dir/examples/rw_cache.cpp.o"
  "CMakeFiles/rw_cache.dir/examples/rw_cache.cpp.o.d"
  "rw_cache"
  "rw_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
