file(REMOVE_RECURSE
  "CMakeFiles/core_mutex_test.dir/tests/core_mutex_test.cpp.o"
  "CMakeFiles/core_mutex_test.dir/tests/core_mutex_test.cpp.o.d"
  "core_mutex_test"
  "core_mutex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mutex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
