# Empty compiler generated dependencies file for core_mutex_test.
# This may be replaced when dependencies are built.
