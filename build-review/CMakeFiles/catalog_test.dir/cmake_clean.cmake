file(REMOVE_RECURSE
  "CMakeFiles/catalog_test.dir/tests/catalog_test.cpp.o"
  "CMakeFiles/catalog_test.dir/tests/catalog_test.cpp.o.d"
  "catalog_test"
  "catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
