# Empty dependencies file for catalog_test.
# This may be replaced when dependencies are built.
