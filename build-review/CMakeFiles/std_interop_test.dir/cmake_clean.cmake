file(REMOVE_RECURSE
  "CMakeFiles/std_interop_test.dir/tests/std_interop_test.cpp.o"
  "CMakeFiles/std_interop_test.dir/tests/std_interop_test.cpp.o.d"
  "std_interop_test"
  "std_interop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/std_interop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
