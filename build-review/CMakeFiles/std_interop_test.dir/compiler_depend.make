# Empty compiler generated dependencies file for std_interop_test.
# This may be replaced when dependencies are built.
