# Empty compiler generated dependencies file for core_rw_test.
# This may be replaced when dependencies are built.
