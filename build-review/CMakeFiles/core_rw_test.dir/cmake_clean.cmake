file(REMOVE_RECURSE
  "CMakeFiles/core_rw_test.dir/tests/core_rw_test.cpp.o"
  "CMakeFiles/core_rw_test.dir/tests/core_rw_test.cpp.o.d"
  "core_rw_test"
  "core_rw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
