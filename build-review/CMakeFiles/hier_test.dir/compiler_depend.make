# Empty compiler generated dependencies file for hier_test.
# This may be replaced when dependencies are built.
