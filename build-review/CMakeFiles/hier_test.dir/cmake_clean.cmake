file(REMOVE_RECURSE
  "CMakeFiles/hier_test.dir/tests/hier_test.cpp.o"
  "CMakeFiles/hier_test.dir/tests/hier_test.cpp.o.d"
  "hier_test"
  "hier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
