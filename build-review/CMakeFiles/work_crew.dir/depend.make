# Empty dependencies file for work_crew.
# This may be replaced when dependencies are built.
