file(REMOVE_RECURSE
  "CMakeFiles/work_crew.dir/examples/work_crew.cpp.o"
  "CMakeFiles/work_crew.dir/examples/work_crew.cpp.o.d"
  "work_crew"
  "work_crew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_crew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
