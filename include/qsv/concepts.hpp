// qsv/concepts.hpp — the C++ named requirements as concepts, used by
// the facade headers to *prove* (static_assert) that every exported
// primitive is a drop-in for its std counterpart. Spellings follow
// [thread.req.lockable].
#pragma once

#include <chrono>
#include <concepts>
#include <cstddef>

namespace qsv::api {

/// Cpp17BasicLockable — enough for std::lock_guard and
/// std::condition_variable_any.
template <typename M>
concept basic_lockable = requires(M m) {
  m.lock();
  m.unlock();
};

/// Cpp17Lockable — adds the non-blocking attempt; enough for
/// std::unique_lock's try forms and std::scoped_lock over several
/// locks (whose deadlock-avoidance algorithm, std::lock, needs it).
template <typename M>
concept lockable = basic_lockable<M> && requires(M m) {
  { m.try_lock() } -> std::convertible_to<bool>;
};

/// Cpp17TimedLockable — adds bounded attempts against a duration and
/// an absolute time point.
template <typename M>
concept timed_lockable = lockable<M> && requires(M m) {
  { m.try_lock_for(std::chrono::milliseconds(1)) }
      -> std::convertible_to<bool>;
  { m.try_lock_until(std::chrono::steady_clock::now()) }
      -> std::convertible_to<bool>;
};

/// Cpp17SharedLockable (the std::shared_lock side of SharedMutex).
template <typename M>
concept shared_lockable = requires(M m) {
  m.lock_shared();
  m.unlock_shared();
  { m.try_lock_shared() } -> std::convertible_to<bool>;
};

/// The full std::shared_mutex surface: exclusive + shared, both with
/// try forms.
template <typename M>
concept shared_mutex_like = lockable<M> && shared_lockable<M>;

/// Episode synchronization with the std::barrier verb set we support
/// (arrive_and_wait / arrive_and_drop; no tokens — QSV grants are
/// anonymous).
template <typename B>
concept episode_barrier = requires(B b, std::size_t rank) {
  b.arrive_and_wait(rank);
  b.arrive_and_drop(rank);
  { b.team_size() } -> std::convertible_to<std::size_t>;
};

/// The std::counting_semaphore verb set (minus the compile-time
/// ceiling — QSV permits are tickets on a 64-bit horizon).
template <typename S>
concept counting_semaphore_like = requires(S s) {
  s.acquire();
  s.release();
  { s.try_acquire() } -> std::convertible_to<bool>;
};

}  // namespace qsv::api
