// qsv/introspect.hpp — the observability facade.
//
// Every libqsv primitive registers a per-instance telemetry record in
// the process-wide registry (src/obs/); this header is the embedder's
// entry point to it:
//
//   qsv::introspect::serve(0);            // live endpoint, ephemeral port
//   qsv::introspect::set_name(&mu, "ledger");
//   std::puts(qsv::introspect::dump().c_str());   // in-process listing
//
// The endpoint speaks the line protocol specified in
// docs/INTROSPECTION.md (list / stat <lock> / hazards / stream), the
// same one `qsvbench --introspect` serves. Telemetry is on by default;
// set_enabled(false) makes subsequently constructed primitives
// unobserved, and building with -DQSV_OBS=0 compiles the whole layer
// out.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/introspect.hpp"
#include "obs/registry.hpp"

namespace qsv::introspect {

/// Per-instance telemetry snapshot (counters, wait/hold statistics).
using lock_stats = qsv::obs::LockStats;

/// Start the loopback endpoint on `port` (0 = ephemeral). Returns the
/// bound port, 0 on failure.
inline std::uint16_t serve(std::uint16_t port = 0) {
  return qsv::obs::introspect_start(port);
}

/// Stop the endpoint and join its thread.
inline void stop() { qsv::obs::introspect_stop(); }

/// True while the endpoint is serving.
inline bool serving() { return qsv::obs::introspect_running(); }

/// One-line-per-lock text listing of every live record (the `list`
/// face, usable in-process without a socket).
inline std::string dump() { return qsv::obs::dump(); }

/// Structured snapshot of every live record.
inline std::vector<lock_stats> snapshot() { return qsv::obs::snapshot(); }

/// Name the record registered for `instance` (e.g. `&mu`); listings
/// and warnings then print the name instead of "kind#N".
inline void set_name(const void* instance, std::string_view name) {
  qsv::obs::set_name(instance, name);
}

/// Master switch for *future* registrations (existing records live on).
inline void set_enabled(bool on) { qsv::obs::set_enabled(on); }
inline bool enabled() { return qsv::obs::enabled(); }

/// Ablation toggle: when on, adaptive waiters consult their lock's
/// registry record (measured handoff-wait EWMA) to size spin budgets.
inline void set_adaptive_from_registry(bool on) {
  qsv::obs::set_adaptive_from_registry(on);
}

/// Historical hazard log (lock-order inversions routed through the
/// registry) and live long-hold/starvation detection.
inline std::vector<std::string> hazards() { return qsv::obs::hazard_log(); }
inline std::vector<std::string> detect_hazards(
    std::uint64_t long_hold_ns = qsv::obs::kDefaultLongHoldNs,
    std::uint64_t starvation_ns = qsv::obs::kDefaultStarvationNs) {
  return qsv::obs::detect_hazards(long_hold_ns, starvation_ns);
}

}  // namespace qsv::introspect
