// qsv/containers.hpp — the first concurrent containers, the facade way.
//
// Stable public names over the combining-layer structures. All three
// take a qsv::wait_policy at construction (defaulting to the process
// policy) and run their internal waiting through the runtime wait
// layer, like every other facade type.
//
//   qsv::mpmc_queue<int> q(1024);            // bounded MPMC FIFO
//   q.push(7); int v = q.pop();              // blocking (eventcounts)
//   q.try_push(8); q.try_pop(v);             // non-blocking
//
//   qsv::sharded_map<uint64_t, uint64_t> m;  // sharded hash map,
//   m.insert_or_assign(k, v);                // flat-combined shards
//   m.find(k, v); m.erase(k);
//
//   qsv::striped_accumulator acc;            // wait-free statistics
//   acc.add(1); int64_t n = acc.read();      // counter (quiescent sum)
//
//   qsv::fc_counter c;                       // linearizable fetch&add
//   int64_t prior = c.fetch_add(1);          // served by delegation
#pragma once

#include "combining/fc_executor.hpp"
#include "combining/fc_queue.hpp"
#include "combining/sharded_map.hpp"
#include "combining/striped_accumulator.hpp"
#include "qsv/fc_mutex.hpp"
#include "qsv/wait.hpp"

namespace qsv {

/// Bounded multi-producer multi-consumer FIFO: deposits and removals
/// are flat-combined; full/empty blocking rides the eventcount pair
/// (the bounded_ring discipline).
template <typename T>
using mpmc_queue = combining::FcMpmcQueue<T>;

/// Sharded hash map with flat-combined, catalogue-choosable per-shard
/// locks. Per-key operations are linearizable within their shard.
template <typename K, typename V>
using sharded_map = combining::ShardedMap<K, V>;

/// Per-stripe fetch&add summed on read: wait-free updates, quiescently
/// exact totals (the statistics-counter shape).
using striped_accumulator = combining::StripedAccumulator;

/// Linearizable fetch&add served by the delegation executor.
using fc_counter = combining::FcCounter;

}  // namespace qsv
