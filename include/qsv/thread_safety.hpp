// qsv/thread_safety.hpp — Clang thread-safety annotations for the facade.
//
// Wraps Clang's capability analysis attributes in QSV_* macros that
// expand to nothing on other compilers. Every facade lock type declares
// itself a capability and annotates its acquire/release/try edges, so
// user code compiled with `-Wthread-safety` (CI adds `-Werror`) gets
// misuse of the public API — unlocking a mutex the thread does not
// hold, returning with a lock held, touching a QSV_GUARDED_BY field
// without the guard — as a *compile error*, before qsv::chk or TSan
// ever run the code.
//
// The analysis is purely static and same-thread: it assumes a
// capability released on the acquiring thread. That is exactly the
// facade lock contract (qsv::mutex, qsv::shared_mutex, ...) and
// exactly NOT the semaphore contract (permits transfer between
// threads), which is why qsv::counting_semaphore stays unannotated.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define QSV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QSV_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (lock) the analysis tracks. The name
/// appears in diagnostics: "releasing mutex 'mu' that was not held".
#define QSV_CAPABILITY(x) QSV_THREAD_ANNOTATION(capability(x))

/// Marks a RAII class whose constructor acquires and destructor
/// releases a capability (std::lock_guard-shaped types).
#define QSV_SCOPED_CAPABILITY QSV_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a field or variable may only be touched while `x` is
/// held (shared access needs at least a shared hold).
#define QSV_GUARDED_BY(x) QSV_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the pointee of a pointer field is protected by `x`.
#define QSV_PT_GUARDED_BY(x) QSV_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function-level contracts: the caller must / must not hold the named
/// capabilities on entry.
#define QSV_REQUIRES(...) \
  QSV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define QSV_REQUIRES_SHARED(...) \
  QSV_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define QSV_EXCLUDES(...) QSV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Acquire/release edges. With no argument they annotate the methods
/// of the capability class itself (`this`); with arguments they name
/// the capabilities a free function or wrapper manipulates.
#define QSV_ACQUIRE(...) \
  QSV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QSV_ACQUIRE_SHARED(...) \
  QSV_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define QSV_RELEASE(...) \
  QSV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QSV_RELEASE_SHARED(...) \
  QSV_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define QSV_RELEASE_GENERIC(...) \
  QSV_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Try edges: first argument is the success value the analysis keys on.
#define QSV_TRY_ACQUIRE(...) \
  QSV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define QSV_TRY_ACQUIRE_SHARED(...) \
  QSV_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Returns a reference to the capability guarding the annotated value
/// (for wrapper types that expose their internal lock).
#define QSV_RETURN_CAPABILITY(x) QSV_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot follow (lock
/// handoffs, test harnesses that intentionally misuse a lock).
#define QSV_NO_THREAD_SAFETY_ANALYSIS \
  QSV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace qsv {

/// std::lock_guard with the scoped-capability annotation: libstdc++'s
/// lock_guard carries no annotations, so under -Wthread-safety a guard
/// scope would read as "mutex never locked". This one is the annotated
/// drop-in for analyzed code; it works over any facade lock.
template <typename Mutex>
class QSV_SCOPED_CAPABILITY lock_guard {
 public:
  explicit lock_guard(Mutex& mu) QSV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~lock_guard() QSV_RELEASE() { mu_.unlock(); }
  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace qsv
