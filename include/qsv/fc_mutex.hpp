// qsv/fc_mutex.hpp — delegation (flat combining), the facade way.
//
// qsv::fc_mutex is a qsv::mutex that can also be handed the critical
// section itself: `run(closure)` publishes the closure on a per-thread
// record and whoever holds the lock applies the whole backlog in one
// cache-warm batch before releasing. Use it wherever a mutex protects
// one small hot structure and the contended cost is line bouncing, not
// the work:
//
//   qsv::fc_mutex mu;
//   mu.run([&] { ++shared_counter; });      // delegated critical section
//   std::lock_guard<qsv::fc_mutex> g(mu);   // ...or use it as a lock
//
// Raw lock()/unlock() sections serialize with delegated ones (same
// underlying qsv::mutex), and every unlock serves the pending backlog.
// Waiters go through the instance's qsv::wait_policy exactly like
// qsv::mutex waiters (spin / spin_yield / park / adaptive).
#pragma once

#include <mutex>

#include "combining/fc_executor.hpp"
#include "core/qsv_mutex.hpp"
#include "qsv/concepts.hpp"
#include "qsv/thread_safety.hpp"
#include "qsv/wait.hpp"

namespace qsv {

/// The flat-combining executor over the QSV mutex: a std-conforming
/// lock that batches delegated critical sections. The lock face is an
/// annotated Clang capability; run() needs no annotation — the closure
/// executes under the lock wherever it is applied, and the analysis
/// never sees a hold escape the call.
class QSV_CAPABILITY("mutex") fc_mutex
    : public combining::FcExecutor<core::QsvMutex<platform::RuntimeWait>> {
  using Base = combining::FcExecutor<core::QsvMutex<platform::RuntimeWait>>;

 public:
  using Base::Base;
  void lock() QSV_ACQUIRE() { Base::lock(); }
  bool try_lock() QSV_TRY_ACQUIRE(true) { return Base::try_lock(); }
  void unlock() QSV_RELEASE() { Base::unlock(); }
};

/// The handoff control with the same run() surface and no combining —
/// the baseline the fc containers are benched against.
using plain_executor =
    combining::PlainExecutor<core::QsvMutex<platform::RuntimeWait>>;

static_assert(api::lockable<fc_mutex>);
static_assert(api::lockable<plain_executor>);
static_assert(std::is_constructible_v<std::lock_guard<fc_mutex>, fc_mutex&>);
static_assert(
    std::is_constructible_v<std::unique_lock<fc_mutex>, fc_mutex&>);

}  // namespace qsv
