// qsv/semaphore.hpp — counting semaphore, the facade way.
//
// qsv::counting_semaphore is the FIFO semaphore on QSV's ticket
// discipline: permits are tickets, served strictly in order. Speaks
// the std::counting_semaphore verb set (acquire/release/try_acquire);
// unlike std's, fairness is guaranteed by construction.
#pragma once

#include "core/semaphore.hpp"
#include "qsv/concepts.hpp"

namespace qsv {

/// Deliberately NOT a Clang thread-safety capability
/// (qsv/thread_safety.hpp): the analysis assumes a capability is
/// released by the thread that acquired it, while semaphore permits
/// transfer between threads by design (acquire here, release there).
/// Annotating acquire/release would turn that legitimate pattern into
/// a -Wthread-safety error.
using counting_semaphore = core::QsvSemaphore;

static_assert(api::counting_semaphore_like<counting_semaphore>);

}  // namespace qsv
