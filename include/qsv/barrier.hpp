// qsv/barrier.hpp — episode synchronization, the facade way.
//
// qsv::barrier is the QSV episode barrier: arrivers enqueue onto one
// synchronization variable and spin locally; the closing arrival walks
// the queue and grants everyone. Speaks the std::barrier verb set we
// support — arrive_and_wait plus arrive_and_drop (leave the team, the
// episode sugar added for std interop).
#pragma once

#include "core/qsv_barrier.hpp"
#include "platform/wait.hpp"
#include "qsv/concepts.hpp"
#include "qsv/wait.hpp"

namespace qsv {

/// The QSV episode barrier — one runtime-polymorphic type; construct
/// with (team) or (team, wait_policy). Default: the process policy.
using barrier = core::QsvBarrier<platform::RuntimeWait>;

/// A qsv::barrier pinned to wait_policy::park at construction.
struct parking_barrier : barrier {
  explicit parking_barrier(std::size_t n) : barrier(n, wait_policy::park) {}
};

static_assert(api::episode_barrier<barrier>);
static_assert(api::episode_barrier<parking_barrier>);
static_assert(std::is_base_of_v<barrier, parking_barrier>);

}  // namespace qsv
