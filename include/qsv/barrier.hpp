// qsv/barrier.hpp — episode synchronization, the facade way.
//
// qsv::barrier is the QSV episode barrier: arrivers enqueue onto one
// synchronization variable and spin locally; the closing arrival walks
// the queue and grants everyone. Speaks the std::barrier verb set we
// support — arrive_and_wait plus arrive_and_drop (leave the team, the
// episode sugar added for std interop).
#pragma once

#include "core/qsv_barrier.hpp"
#include "platform/wait.hpp"
#include "qsv/concepts.hpp"

namespace qsv {

/// The QSV episode barrier (spin waiters).
using barrier = core::QsvBarrier<platform::SpinWait>;

/// As qsv::barrier, but waiters park in the kernel.
using parking_barrier = core::QsvBarrier<platform::ParkWait>;

static_assert(api::episode_barrier<barrier>);
static_assert(api::episode_barrier<parking_barrier>);

}  // namespace qsv
