// qsv/qsv.hpp — the libqsv umbrella: one include, the whole public API.
//
//   #include <qsv/qsv.hpp>
//
//   qsv::mutex mu;                      // std::lock_guard/scoped_lock ready
//   qsv::shared_mutex rw;               // std::shared_lock/unique_lock ready
//   qsv::timed_mutex tm;                // try_lock_for / try_lock_until
//   qsv::barrier bar(team);             // arrive_and_wait / arrive_and_drop
//   qsv::counting_semaphore sem(n);     // FIFO permits
//   qsv::cohort_mutex cmu(budget);      // NUMA-cohort lock over sysfs topology
//   qsv::fc_mutex fcm;                  // flat-combining delegation lock
//   qsv::mpmc_queue<int> q(1024);       // bounded MPMC FIFO
//   qsv::sharded_map<K, V> map;         // flat-combined sharded hash map
//   qsv::striped_accumulator acc;       // wait-free statistics counter
//
//   qsv::set_default_wait_policy(qsv::wait_policy::adaptive);  // process
//   qsv::mutex parked(qsv::wait_policy::park);                 // instance
//
//   qsv::introspect::serve(7777);       // live telemetry endpoint
//   qsv::introspect::set_name(&mu, "ledger");
//
// Behind the stable names sits the reconstructed QSV mechanism (one
// machine word per variable, per-thread queue nodes, local spinning —
// see DESIGN.md). Algorithm sweeps and by-name lookup live in the
// capability-tagged catalogue (qsv::catalog::), re-exported here so
// the umbrella really is the one front door.
#pragma once

#include "qsv/barrier.hpp"       // IWYU pragma: export
#include "qsv/cohort_mutex.hpp"  // IWYU pragma: export
#include "qsv/concepts.hpp"      // IWYU pragma: export
#include "qsv/containers.hpp"    // IWYU pragma: export
#include "qsv/fc_mutex.hpp"      // IWYU pragma: export
#include "qsv/introspect.hpp"    // IWYU pragma: export
#include "qsv/mutex.hpp"         // IWYU pragma: export
#include "qsv/semaphore.hpp"     // IWYU pragma: export
#include "qsv/shared_mutex.hpp"  // IWYU pragma: export
#include "qsv/wait.hpp"          // IWYU pragma: export

#include "catalog/catalog.hpp"   // IWYU pragma: export
