// qsv/shared_mutex.hpp — shared (reader-writer) entry, the facade way.
//
// qsv::shared_mutex is the striped, batched-admission QSV shared lock:
// phase-fair between readers and writers, O(1) remote references on
// the read side. It satisfies the full std::shared_mutex surface —
// std::shared_lock and std::unique_lock (including their try forms)
// drop straight on, per the static_asserts below.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "core/qsv_rwlock.hpp"
#include "core/qsv_rwlock_central.hpp"
#include "platform/wait.hpp"
#include "qsv/concepts.hpp"
#include "qsv/thread_safety.hpp"
#include "qsv/wait.hpp"

namespace qsv {

/// The QSV shared lock (striped reader indicators; the headline).
/// One runtime-polymorphic type: construct with a qsv::wait_policy to
/// pin how parked readers wait (default: the process-wide policy).
///
/// A Clang capability with shared/exclusive edges: under
/// -Wthread-safety, writing a QSV_GUARDED_BY field with only a shared
/// hold — or releasing a hold the thread never took — is a compile
/// error.
class QSV_CAPABILITY("shared_mutex") shared_mutex
    : public core::QsvRwLock<platform::RuntimeWait> {
  using Base = core::QsvRwLock<platform::RuntimeWait>;

 public:
  using Base::Base;
  void lock() noexcept QSV_ACQUIRE() { Base::lock(); }
  bool try_lock() noexcept QSV_TRY_ACQUIRE(true) { return Base::try_lock(); }
  void unlock() noexcept QSV_RELEASE() { Base::unlock(); }
  void lock_shared() noexcept QSV_ACQUIRE_SHARED() { Base::lock_shared(); }
  bool try_lock_shared() noexcept QSV_TRY_ACQUIRE_SHARED(true) {
    return Base::try_lock_shared();
  }
  void unlock_shared() noexcept QSV_RELEASE_SHARED() {
    Base::unlock_shared();
  }
};

/// The centralized-counter reconstruction, kept selectable as the
/// before/after ablation baseline (experiment F8/A2). Takes the same
/// construction-time wait_policy; annotated identically.
class QSV_CAPABILITY("shared_mutex") central_shared_mutex
    : public core::QsvRwLockCentral<platform::RuntimeWait> {
  using Base = core::QsvRwLockCentral<platform::RuntimeWait>;

 public:
  using Base::Base;
  void lock() noexcept QSV_ACQUIRE() { Base::lock(); }
  bool try_lock() noexcept QSV_TRY_ACQUIRE(true) { return Base::try_lock(); }
  void unlock() noexcept QSV_RELEASE() { Base::unlock(); }
  void lock_shared() noexcept QSV_ACQUIRE_SHARED() { Base::lock_shared(); }
  bool try_lock_shared() noexcept QSV_TRY_ACQUIRE_SHARED(true) {
    return Base::try_lock_shared();
  }
  void unlock_shared() noexcept QSV_RELEASE_SHARED() {
    Base::unlock_shared();
  }
};

static_assert(api::shared_mutex_like<shared_mutex>);
static_assert(api::shared_mutex_like<central_shared_mutex>);

// Drop-in under the std RAII wrappers.
static_assert(std::is_constructible_v<std::shared_lock<shared_mutex>,
                                      shared_mutex&>);
static_assert(std::is_constructible_v<std::unique_lock<shared_mutex>,
                                      shared_mutex&>);
static_assert(std::is_constructible_v<std::shared_lock<central_shared_mutex>,
                                      central_shared_mutex&>);

}  // namespace qsv
