// qsv/shared_mutex.hpp — shared (reader-writer) entry, the facade way.
//
// qsv::shared_mutex is the striped, batched-admission QSV shared lock:
// phase-fair between readers and writers, O(1) remote references on
// the read side. It satisfies the full std::shared_mutex surface —
// std::shared_lock and std::unique_lock (including their try forms)
// drop straight on, per the static_asserts below.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "core/qsv_rwlock.hpp"
#include "core/qsv_rwlock_central.hpp"
#include "platform/wait.hpp"
#include "qsv/concepts.hpp"
#include "qsv/wait.hpp"

namespace qsv {

/// The QSV shared lock (striped reader indicators; the headline).
/// One runtime-polymorphic type: construct with a qsv::wait_policy to
/// pin how parked readers wait (default: the process-wide policy).
using shared_mutex = core::QsvRwLock<platform::RuntimeWait>;

/// The centralized-counter reconstruction, kept selectable as the
/// before/after ablation baseline (experiment F8/A2). Takes the same
/// construction-time wait_policy.
using central_shared_mutex = core::QsvRwLockCentral<platform::RuntimeWait>;

static_assert(api::shared_mutex_like<shared_mutex>);
static_assert(api::shared_mutex_like<central_shared_mutex>);

// Drop-in under the std RAII wrappers.
static_assert(std::is_constructible_v<std::shared_lock<shared_mutex>,
                                      shared_mutex&>);
static_assert(std::is_constructible_v<std::unique_lock<shared_mutex>,
                                      shared_mutex&>);
static_assert(std::is_constructible_v<std::shared_lock<central_shared_mutex>,
                                      central_shared_mutex&>);

}  // namespace qsv
