// qsv/mutex.hpp — exclusive entry, the facade way.
//
// Stable public names over the core QSV exclusive primitives. Include
// this (or the <qsv/qsv.hpp> umbrella) and use qsv::mutex wherever a
// std::mutex would go: std::lock_guard, std::unique_lock,
// std::scoped_lock (multi-lock deadlock avoidance included) and
// std::condition_variable_any all work — the static_asserts below are
// the contract.
#pragma once

#include <mutex>

#include "core/condvar.hpp"
#include "core/qsv_mutex.hpp"
#include "core/qsv_timeout.hpp"
#include "platform/wait.hpp"
#include "qsv/concepts.hpp"

namespace qsv {

/// The QSV exclusive lock: one word of state, FIFO handoff, waiters
/// spin on their own cache line.
using mutex = core::QsvMutex<platform::SpinWait>;

/// As qsv::mutex, but waiters donate their quantum after a short spin.
using yielding_mutex = core::QsvMutex<platform::SpinYieldWait>;

/// As qsv::mutex, but waiters park in the kernel (futex-era QSV).
using parking_mutex = core::QsvMutex<platform::ParkWait>;

/// Exclusive entry with bounded impatience: try_lock_for/try_lock_until
/// withdraw from the queue when the deadline passes.
using timed_mutex = core::QsvTimeoutMutex;

/// Epoch-based condition variable for QSV mutexes. For the full std
/// protocol (wait with any lockable), std::condition_variable_any over
/// a qsv::mutex also works.
using condition_variable = core::QsvCondVar;

static_assert(api::lockable<mutex>);
static_assert(api::lockable<yielding_mutex>);
static_assert(api::lockable<parking_mutex>);
static_assert(api::timed_lockable<timed_mutex>);

// Drop-in under the std RAII wrappers.
static_assert(std::is_constructible_v<std::lock_guard<mutex>, mutex&>);
static_assert(std::is_constructible_v<std::unique_lock<mutex>, mutex&>);
static_assert(
    std::is_constructible_v<std::scoped_lock<mutex, mutex>, mutex&, mutex&>);
static_assert(std::is_constructible_v<std::unique_lock<timed_mutex>,
                                      timed_mutex&, std::chrono::milliseconds>);

}  // namespace qsv
