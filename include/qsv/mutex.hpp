// qsv/mutex.hpp — exclusive entry, the facade way.
//
// Stable public names over the core QSV exclusive primitives. Include
// this (or the <qsv/qsv.hpp> umbrella) and use qsv::mutex wherever a
// std::mutex would go: std::lock_guard, std::unique_lock,
// std::scoped_lock (multi-lock deadlock avoidance included) and
// std::condition_variable_any all work — the static_asserts below are
// the contract.
//
// qsv::mutex is ONE runtime-polymorphic type: how its waiters wait is
// a qsv::wait_policy chosen at construction (defaulting to the
// process-wide policy, see <qsv/wait.hpp>), not a template parameter.
// The historical per-policy names remain as thin pinned-policy types
// that ARE a qsv::mutex (public base), so a qsv::mutex& can refer to
// any of them.
#pragma once

#include <chrono>
#include <mutex>

#include "core/condvar.hpp"
#include "core/qsv_mutex.hpp"
#include "core/qsv_timeout.hpp"
#include "platform/wait.hpp"
#include "qsv/concepts.hpp"
#include "qsv/thread_safety.hpp"
#include "qsv/wait.hpp"

namespace qsv {

/// The QSV exclusive lock: one word of state, FIFO handoff, waiters
/// spin/yield/park per the instance's wait_policy.
///
/// A Clang capability (qsv/thread_safety.hpp): compile analyzed code
/// with -Wthread-safety and unbalanced lock/unlock on a qsv::mutex is
/// a compile error. The annotated forwarders cost nothing — they
/// inline to the base calls on every compiler.
class QSV_CAPABILITY("mutex") mutex
    : public core::QsvMutex<platform::RuntimeWait> {
  using Base = core::QsvMutex<platform::RuntimeWait>;

 public:
  using Base::Base;
  void lock() QSV_ACQUIRE() { Base::lock(); }
  bool try_lock() QSV_TRY_ACQUIRE(true) { return Base::try_lock(); }
  void unlock() QSV_RELEASE() { Base::unlock(); }
};

/// A qsv::mutex pinned to wait_policy::spin_yield at construction:
/// waiters donate their quantum after a short spin.
struct yielding_mutex : mutex {
  yielding_mutex() : mutex(wait_policy::spin_yield) {}
};

/// A qsv::mutex pinned to wait_policy::park at construction: waiters
/// park in the kernel (futex-era QSV).
struct parking_mutex : mutex {
  parking_mutex() : mutex(wait_policy::park) {}
};

/// A qsv::mutex pinned to wait_policy::adaptive at construction: the
/// spin budget calibrates itself to the observed wake latency.
struct adaptive_mutex : mutex {
  adaptive_mutex() : mutex(wait_policy::adaptive) {}
};

/// Exclusive entry with bounded impatience: try_lock_for/try_lock_until
/// withdraw from the queue when the deadline passes. Annotated like
/// qsv::mutex; the timed try forms key the analysis on success.
class QSV_CAPABILITY("mutex") timed_mutex : public core::QsvTimeoutMutex {
  using Base = core::QsvTimeoutMutex;

 public:
  using Base::Base;
  void lock() QSV_ACQUIRE() { Base::lock(); }
  bool try_lock() QSV_TRY_ACQUIRE(true) { return Base::try_lock(); }
  template <typename Rep, typename Period>
  bool try_lock_for(const std::chrono::duration<Rep, Period>& timeout)
      QSV_TRY_ACQUIRE(true) {
    return Base::try_lock_for(timeout);
  }
  template <typename Clock, typename Duration>
  bool try_lock_until(const std::chrono::time_point<Clock, Duration>& abs)
      QSV_TRY_ACQUIRE(true) {
    return Base::try_lock_until(abs);
  }
  void unlock() QSV_RELEASE() { Base::unlock(); }
};

/// Epoch-based condition variable for QSV mutexes. For the full std
/// protocol (wait with any lockable), std::condition_variable_any over
/// a qsv::mutex also works.
using condition_variable = core::QsvCondVar;

static_assert(api::lockable<mutex>);
static_assert(api::lockable<yielding_mutex>);
static_assert(api::lockable<parking_mutex>);
static_assert(api::lockable<adaptive_mutex>);
static_assert(api::timed_lockable<timed_mutex>);

// The pinned names are the one runtime type underneath.
static_assert(std::is_base_of_v<mutex, yielding_mutex>);
static_assert(std::is_base_of_v<mutex, parking_mutex>);
static_assert(std::is_base_of_v<mutex, adaptive_mutex>);

// Drop-in under the std RAII wrappers.
static_assert(std::is_constructible_v<std::lock_guard<mutex>, mutex&>);
static_assert(std::is_constructible_v<std::unique_lock<mutex>, mutex&>);
static_assert(
    std::is_constructible_v<std::scoped_lock<mutex, mutex>, mutex&, mutex&>);
static_assert(std::is_constructible_v<std::unique_lock<timed_mutex>,
                                      timed_mutex&, std::chrono::milliseconds>);

}  // namespace qsv
