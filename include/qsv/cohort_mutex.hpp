// qsv/cohort_mutex.hpp — topology-aware exclusive entry, the facade way.
//
// qsv::cohort_mutex is the cohort combinator (hier/cohort_lock.hpp)
// over the QSV exclusive lock at both tiers: one QSV lock per NUMA
// node, one global QSV lock, and up to `budget` consecutive
// intra-node handoffs per global tenure. Cohorts come from the
// machine's real topology, discovered from sysfs at first use
// (platform/topology.hpp); single-node hosts — including containers
// with no visible NUMA structure — collapse to one cohort and keep
// exactly the flat lock's semantics.
//
// Like every facade type it is ONE runtime-polymorphic type: the wait
// policy is a qsv::wait_policy chosen at construction (defaulting to
// the process-wide policy), and the budget is a per-instance dial:
//
//   qsv::cohort_mutex mu;                          // budget 16, default policy
//   qsv::cohort_mutex tuned(64);                   // deeper local streaks
//   qsv::cohort_mutex parked(16, qsv::wait_policy::park);
//
// It is a drop-in under the std RAII wrappers (lock_guard,
// unique_lock, scoped_lock) — the static_asserts below are the
// contract. For other tier compositions (MCS×MCS, QSV×ticket, …) use
// the catalogue's "cohort/…" entries or instantiate
// qsv::hier::CohortLock directly.
#pragma once

#include <mutex>

#include "core/qsv_mutex.hpp"
#include "hier/cohort_lock.hpp"
#include "qsv/concepts.hpp"
#include "qsv/thread_safety.hpp"
#include "qsv/wait.hpp"

namespace qsv {

/// The topology-aware cohort lock: QSV global tier × one QSV local
/// tier per discovered NUMA node, budgeted local handoff. A Clang
/// capability like every facade lock (qsv/thread_safety.hpp).
class QSV_CAPABILITY("mutex") cohort_mutex
    : public hier::CohortLock<core::QsvMutex<platform::RuntimeWait>,
                              core::QsvMutex<platform::RuntimeWait>> {
  using Base = hier::CohortLock<core::QsvMutex<platform::RuntimeWait>,
                                core::QsvMutex<platform::RuntimeWait>>;

 public:
  using Base::Base;
  void lock() QSV_ACQUIRE() { Base::lock(); }
  bool try_lock() QSV_TRY_ACQUIRE(true) { return Base::try_lock(); }
  void unlock() QSV_RELEASE() { Base::unlock(); }
};

static_assert(api::lockable<cohort_mutex>);

// Drop-in under the std RAII wrappers.
static_assert(std::is_constructible_v<std::lock_guard<cohort_mutex>,
                                      cohort_mutex&>);
static_assert(std::is_constructible_v<std::unique_lock<cohort_mutex>,
                                      cohort_mutex&>);
static_assert(std::is_constructible_v<std::scoped_lock<cohort_mutex,
                                                       cohort_mutex>,
                                      cohort_mutex&, cohort_mutex&>);

}  // namespace qsv
