// qsv/wait.hpp — the runtime waiting-policy API.
//
// How a blocked thread waits is the only part of the QSV mechanism that
// aged (DESIGN.md: "superseded by modern futex/atomics" means exactly
// the terminal wait). It used to be a compile-time template parameter,
// so every primitive existed three times and a deployed binary could
// never be retuned. This header replaces that with one runtime knob:
//
//   qsv::set_default_wait_policy(qsv::wait_policy::adaptive);  // process
//   qsv::mutex mu(qsv::wait_policy::park);                     // instance
//   QSV_WAIT=spin_yield ./app                                  // deploy
//
// Every facade primitive takes a wait_policy at construction and
// defaults to the process-wide policy, which is seeded once from the
// QSV_WAIT environment variable ("spin" | "spin_yield"/"yield" |
// "park" | "adaptive", with an optional ":<polls>" spin-budget suffix,
// e.g. QSV_WAIT=spin_yield:4096). Unknown values are rejected: the
// seed keeps the built-in default and warns on stderr.
//
// The policies:
//   spin        pure busy-wait — the 1991 behaviour, best on dedicated
//               processors; pathological once threads outnumber them.
//   spin_yield  spin a bounded budget of polls, then donate the
//               quantum. The safe choice on time-shared machines.
//   park        spin briefly, then sleep in the kernel (futex via
//               C++20 atomic wait). What the mechanism became.
//   adaptive    calibrates its spin budget from an EWMA of observed
//               wake latency and parks beyond it — wins on both
//               dedicated and oversubscribed machines (experiment A1).
//
// The process default is wait_policy::spin so the reconstruction keeps
// its 1991 semantics out of the box; production deployments set
// QSV_WAIT=adaptive (or call set_default_wait_policy) at startup.
#pragma once

#include <cstdint>
#include <string_view>

namespace qsv {

/// How a primitive's blocked threads wait for their grant.
enum class wait_policy : std::uint8_t {
  spin = 0,
  spin_yield = 1,
  park = 2,
  adaptive = 3,
};

/// Number of distinct policies (for sweeps and tables).
inline constexpr std::size_t kWaitPolicyCount = 4;

/// Every policy, in enum order — the sweep axis qsvbench --wait walks.
inline constexpr wait_policy kAllWaitPolicies[kWaitPolicyCount] = {
    wait_policy::spin, wait_policy::spin_yield, wait_policy::park,
    wait_policy::adaptive};

/// Stable display name ("spin", "spin_yield", "park", "adaptive").
const char* wait_policy_name(wait_policy p) noexcept;

/// Parse a policy name; accepts the display names plus the "yield"
/// alias for spin_yield. Returns false (and leaves `out` untouched)
/// on anything else — unknown values never map to a policy silently.
bool wait_policy_from_string(std::string_view text, wait_policy& out) noexcept;

/// The process-wide default policy, used by every primitive whose
/// constructor was not given an explicit policy. First call seeds it
/// from the QSV_WAIT environment variable.
wait_policy get_default_wait_policy() noexcept;
void set_default_wait_policy(wait_policy p) noexcept;

/// The process-wide default spin budget: how many polls a spin_yield
/// or park waiter spins before yielding/parking, and the seed for
/// adaptive calibration. Default: 1024 polls (~a few microseconds —
/// roughly the cost of the park/unpark round trip it is amortizing).
/// Tunable per instance via RuntimeWait::set_spin_budget.
std::uint32_t get_default_spin_budget() noexcept;
void set_default_spin_budget(std::uint32_t polls) noexcept;

namespace detail {
/// Parse one QSV_WAIT-style value ("policy" or "policy:polls") into
/// (p, budget); a plain policy name leaves `budget` at its incoming
/// value. Returns false — writing nothing — on malformed input.
bool parse_wait_env(std::string_view value, wait_policy& p,
                    std::uint32_t& budget) noexcept;
/// Apply one QSV_WAIT-style value to the process defaults. Returns
/// false — changing nothing — on malformed input. Exposed for the
/// env-parsing unit tests; production code never calls it
/// (get_default_wait_policy seeds itself).
bool apply_wait_env(std::string_view value) noexcept;
}  // namespace detail

}  // namespace qsv
