// hier_test.cpp — correctness and protocol-shape tests for the
// hierarchical (cohort) QSV mutex.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "harness/team.hpp"
#include "hier/cohort_map.hpp"
#include "hier/hier_qsv.hpp"
#include "obs/hook.hpp"
#include "platform/affinity.hpp"
#include "platform/wait.hpp"
#include "workload/critical_section.hpp"

namespace qh = qsv::hier;

namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 2000;

template <typename Lock>
void exclusion_battery(Lock& lock) {
  qsv::workload::GuardedCounter counter;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      lock.lock();
      counter.bump();
      lock.unlock();
    }
  });
  EXPECT_TRUE(counter.consistent());
  EXPECT_EQ(counter.value(), kThreads * kOpsPerThread);
}

}  // namespace

// -------------------------------------------------------------- cohorts

TEST(BlockCohortMap, GroupsConsecutiveIndices) {
  qh::BlockCohortMap map(4);
  EXPECT_EQ(map.cohort_of(0), 0u);
  EXPECT_EQ(map.cohort_of(3), 0u);
  EXPECT_EQ(map.cohort_of(4), 1u);
  EXPECT_EQ(map.cohort_of(7), 1u);
  EXPECT_EQ(map.cohort_of(8), 2u);
}

TEST(BlockCohortMap, BlockOfOneIsolatesEveryThread) {
  qh::BlockCohortMap map(1);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(map.cohort_of(i), i);
}

TEST(BlockCohortMap, CohortCountCoversAllThreads) {
  qh::BlockCohortMap map(4);
  EXPECT_EQ(map.cohort_count(8), 2u);
  EXPECT_EQ(map.cohort_count(9), 3u);   // ragged tail still has a cohort
  EXPECT_EQ(map.cohort_count(1), 1u);
  // Every index below the bound maps inside the table.
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_LT(map.cohort_of(i), map.cohort_count(9));
  }
}

TEST(BlockCohortMapDeathTest, ZeroBlockAbortsDeterministically) {
  // A zero block would make every cohort_of a divide-by-zero; release
  // builds must abort with a diagnostic, not fall into UB (the
  // HeldMap/node-layer precedent).
  EXPECT_DEATH(qh::BlockCohortMap{0}, "cohort block must be at least 1");
}

TEST(BlockCohortMap, MyCohortUsesDenseThreadIndex) {
  qh::BlockCohortMap map(1024);  // everything in cohort 0 regardless of id
  std::atomic<bool> ok{true};
  qsv::harness::ThreadTeam::run(4, [&](std::size_t) {
    if (map.my_cohort() != 0) ok = false;
  });
  EXPECT_TRUE(ok);
}

// ----------------------------------------------------------- exclusion

TEST(HierQsvMutex, MutualExclusion) {
  qh::HierQsvMutex<> lock;
  exclusion_battery(lock);
}

TEST(HierQsvMutex, MutualExclusionSingleThreadCohorts) {
  qh::HierQsvMutex<> lock(/*threads_per_cohort=*/1, /*budget=*/16);
  exclusion_battery(lock);
}

TEST(HierQsvMutex, MutualExclusionOneBigCohort) {
  qh::HierQsvMutex<> lock(/*threads_per_cohort=*/1024, /*budget=*/8);
  exclusion_battery(lock);
}

TEST(HierQsvMutex, MutualExclusionZeroBudget) {
  // Budget 0: every release returns the global lock — the ablation
  // control that degenerates to flat QSV plus one hop.
  qh::HierQsvMutex<> lock(/*threads_per_cohort=*/4, /*budget=*/0);
  exclusion_battery(lock);
}

TEST(HierQsvMutex, MutualExclusionParkWait) {
  qh::HierQsvMutex<qsv::platform::ParkWait> lock;
  exclusion_battery(lock);
}

TEST(HierQsvMutex, MutualExclusionYieldWait) {
  qh::HierQsvMutex<qsv::platform::SpinYieldWait> lock;
  exclusion_battery(lock);
}

// ------------------------------------------------------------ reentry

TEST(HierQsvMutex, UncontendedAcquireReleaseRepeats) {
  qh::HierQsvMutex<> lock;
  for (int i = 0; i < 10000; ++i) {
    lock.lock();
    lock.unlock();
  }
  SUCCEED();
}

TEST(HierQsvMutex, TwoInstancesAreIndependent) {
  qh::HierQsvMutex<> a;
  qh::HierQsvMutex<> b;
  a.lock();
  b.lock();  // must not deadlock or cross-talk
  b.unlock();
  a.unlock();
  SUCCEED();
}

// ------------------------------------------------------------ try_lock

TEST(HierQsvMutex, TryLockSucceedsWhenFree) {
  qh::HierQsvMutex<> lock;
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(HierQsvMutex, TryLockFailsWhenHeld) {
  qh::HierQsvMutex<> lock;
  lock.lock();
  std::atomic<int> result{-1};
  std::thread t([&] { result = lock.try_lock() ? 1 : 0; });
  t.join();
  EXPECT_EQ(result.load(), 0);
  lock.unlock();
}

TEST(HierQsvMutex, TryLockFailureLeavesLockUsable) {
  qh::HierQsvMutex<> lock;
  lock.lock();
  std::thread t([&] { EXPECT_FALSE(lock.try_lock()); });
  t.join();
  lock.unlock();
  // Failed try_lock must have fully undone its enqueue.
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
  exclusion_battery(lock);
}

TEST(HierQsvMutex, TryLockUnderContentionNeverBlocksForever) {
  qh::HierQsvMutex<> lock;
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> failures{0};
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (int i = 0; i < 2000; ++i) {
      if (lock.try_lock()) {
        successes.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
      } else {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(successes + failures, kThreads * 2000);
  EXPECT_GT(successes.load(), 0u);
}

// ------------------------------------------------------- pass semantics

TEST(HierQsvMutex, BudgetBoundsConsecutiveLocalPasses) {
  constexpr std::size_t kBudget = 4;
  // One big cohort: all handoffs are intra-cohort candidates.
  qh::HierQsvMutex<qsv::platform::SpinWait> lock(1024, kBudget);
  const qsv::obs::LockRec* rec = lock.telemetry();
  if (rec == nullptr) GTEST_SKIP() << "telemetry compiled out";
  qsv::workload::GuardedCounter counter;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      lock.lock();
      counter.bump();
      lock.unlock();
    }
  });
  EXPECT_TRUE(counter.consistent());
  const auto passes = rec->local_passes();
  const auto acquires = rec->global_acquires();
  ASSERT_GT(acquires, 0u);
  // Each global tenure admits at most kBudget passes.
  EXPECT_LE(passes, acquires * kBudget);
}

TEST(HierQsvMutex, ZeroBudgetNeverPassesLocally) {
  qh::HierQsvMutex<qsv::platform::SpinWait> lock(1024, 0);
  const qsv::obs::LockRec* rec = lock.telemetry();
  if (rec == nullptr) GTEST_SKIP() << "telemetry compiled out";
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < 500; ++i) {
      lock.lock();
      lock.unlock();
    }
  });
  EXPECT_EQ(rec->local_passes(), 0u);
}

TEST(HierQsvMutex, GlobalAcquiresBalanceReleases) {
  qh::HierQsvMutex<qsv::platform::SpinWait> lock(4, 8);
  const qsv::obs::LockRec* rec = lock.telemetry();
  if (rec == nullptr) GTEST_SKIP() << "telemetry compiled out";
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < 500; ++i) {
      lock.lock();
      lock.unlock();
    }
  });
  EXPECT_EQ(rec->global_acquires(), rec->global_releases());
}

TEST(HierQsvMutex, LargeBudgetPassesDominate) {
  // A local pass needs a cohort-mate already queued at unlock time; on
  // one processor the queue is usually empty (threads run to
  // completion of their quantum), so passes cannot dominate.
  // available_cpus() rather than hardware_concurrency(): the allowed
  // set (taskset/cgroup cpuset) is what bounds real parallelism.
  if (qsv::platform::available_cpus() < 2) {
    GTEST_SKIP() << "needs >= 2 processors to keep the cohort queue busy";
  }
  qh::HierQsvMutex<qsv::platform::SpinWait> lock(1024, 1u << 20);
  const qsv::obs::LockRec* rec = lock.telemetry();
  if (rec == nullptr) GTEST_SKIP() << "telemetry compiled out";
  qsv::workload::GuardedCounter counter;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      lock.lock();
      counter.bump();
      lock.unlock();
    }
  });
  EXPECT_TRUE(counter.consistent());
  // With an effectively unlimited budget every *contended* handoff stays
  // inside the cohort; the global word is re-acquired only when the local
  // queue momentarily drains. How often that happens depends on scheduling
  // timing, so assert the robust direction only: passes dominate global
  // round trips.
  EXPECT_GT(rec->local_passes(), rec->global_acquires());
}

// ----------------------------------------------------------- accounting

TEST(HierQsvMutex, FootprintIncludesCohortTable) {
  qh::HierQsvMutex<> small(64);  // few cohorts
  qh::HierQsvMutex<> large(1);   // one cohort per thread slot
  EXPECT_GT(large.footprint_bytes(), small.footprint_bytes());
  EXPECT_GE(small.footprint_bytes(), qsv::platform::kFalseSharingRange);
}

TEST(HierQsvMutex, ReportsConfiguration) {
  qh::HierQsvMutex<> lock(4, 16);
  EXPECT_EQ(lock.threads_per_cohort(), 4u);
  EXPECT_EQ(lock.budget(), 16u);
  EXPECT_STREQ(qh::HierQsvMutex<>::name(), "hier-qsv");
}
