// lock_order_test.cpp — the lock-order hazard detector in a normal
// (non-chk) build, fed by the per-thread HeldMap of the node-based
// production locks: AB/BA across two qsv::mutex instances must warn
// with both registered names; a consistent order must stay silent.
#include <gtest/gtest.h>

#include <string>

#include "qsv/mutex.hpp"
#include "trace/lock_order.hpp"

namespace trace = qsv::trace;

namespace {

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::lock_order_reset();
    trace::lock_order_enable(true);
  }
  void TearDown() override {
    trace::lock_order_enable(false);
    trace::lock_order_reset();
  }
};

}  // namespace

TEST_F(LockOrderTest, InversionWarnsWithBothNames) {
  qsv::mutex a;
  qsv::mutex b;
  trace::lock_order_set_name(&a, "accounts");
  trace::lock_order_set_name(&b, "balances");

  a.lock();
  b.lock();  // edge accounts -> balances
  b.unlock();
  a.unlock();

  b.lock();
  a.lock();  // edge balances -> accounts: closes the cycle
  a.unlock();
  b.unlock();

  EXPECT_EQ(trace::lock_order_stats().warnings, 1u);
  const std::string w = trace::lock_order_last_warning();
  EXPECT_NE(w.find("accounts"), std::string::npos) << w;
  EXPECT_NE(w.find("balances"), std::string::npos) << w;
}

TEST_F(LockOrderTest, InversionWarnsOncePerPair) {
  qsv::mutex a;
  qsv::mutex b;
  for (int i = 0; i < 3; ++i) {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  }
  EXPECT_EQ(trace::lock_order_stats().warnings, 1u);
}

TEST_F(LockOrderTest, ConsistentOrderStaysSilent) {
  qsv::mutex a;
  qsv::mutex b;
  trace::lock_order_set_name(&a, "outer");
  trace::lock_order_set_name(&b, "inner");
  for (int i = 0; i < 4; ++i) {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
  }
  EXPECT_GE(trace::lock_order_stats().edges, 1u);
  EXPECT_EQ(trace::lock_order_stats().warnings, 0u);
  EXPECT_EQ(trace::lock_order_last_warning(), "");
}

TEST_F(LockOrderTest, DisabledRecordsNothing) {
  trace::lock_order_enable(false);
  qsv::mutex a;
  qsv::mutex b;
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  b.lock();
  a.lock();
  a.unlock();
  b.unlock();
  EXPECT_EQ(trace::lock_order_stats().edges, 0u);
  EXPECT_EQ(trace::lock_order_stats().warnings, 0u);
}
