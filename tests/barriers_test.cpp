// barriers_test.cpp — correctness and property tests for episode
// synchronization. The core property battery: after barrier episode k,
// every thread must observe every other thread's phase-k writes (phase
// integrity), across many episodes and team sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "catalog/catalog.hpp"
#include "catalog/std_adapters.hpp"
#include "barriers/central.hpp"
#include "barriers/combining_tree.hpp"
#include "barriers/dissemination.hpp"
#include "barriers/mcs_tree.hpp"
#include "barriers/tournament.hpp"
#include "harness/team.hpp"
#include "platform/cache.hpp"

namespace qb = qsv::barriers;

namespace {

/// Phase-integrity battery: each thread writes phase-stamped values,
/// crosses the barrier, and verifies every teammate finished the same
/// phase. A single early or late release shows up as a stale stamp.
template <typename Barrier>
void phase_integrity(std::size_t team, std::size_t episodes) {
  Barrier barrier(team);
  qsv::platform::PaddedArray<std::atomic<std::uint64_t>> stamps(team);
  for (std::size_t i = 0; i < team; ++i) stamps[i].store(0);
  std::atomic<std::uint64_t> failures{0};

  qsv::harness::ThreadTeam::run(team, [&](std::size_t rank) {
    for (std::size_t e = 1; e <= episodes; ++e) {
      stamps[rank].store(e, std::memory_order_release);
      barrier.arrive_and_wait(rank);
      // Everyone must have written phase e by now (and nobody phase e+1
      // is impossible: they cannot pass the next barrier without us).
      for (std::size_t t = 0; t < team; ++t) {
        const auto s = stamps[t].load(std::memory_order_acquire);
        if (s != e) failures.fetch_add(1, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait(rank);  // close the read phase
    }
  });
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace

// --------------------------------------------------- typed battery sweep

template <typename B>
class BarrierTest : public ::testing::Test {};

using BarrierTypes =
    ::testing::Types<qb::CentralBarrier<>, qb::CombiningTreeBarrier<>,
                     qb::TournamentBarrier<>, qb::DisseminationBarrier<>,
                     qb::McsTreeBarrier<>, qsv::catalog::StdBarrierAdapter>;
TYPED_TEST_SUITE(BarrierTest, BarrierTypes);

TYPED_TEST(BarrierTest, SingleThreadNeverBlocks) {
  TypeParam b(1);
  for (int i = 0; i < 100; ++i) b.arrive_and_wait(0);
  SUCCEED();
}

TYPED_TEST(BarrierTest, PhaseIntegrityTeam2) { phase_integrity<TypeParam>(2, 500); }
TYPED_TEST(BarrierTest, PhaseIntegrityTeam4) { phase_integrity<TypeParam>(4, 500); }
TYPED_TEST(BarrierTest, PhaseIntegrityTeam7) {
  // Non-power-of-two team exercises partial tree/tournament structure.
  phase_integrity<TypeParam>(7, 300);
}
TYPED_TEST(BarrierTest, PhaseIntegrityTeam16) {
  phase_integrity<TypeParam>(16, 200);
}

TYPED_TEST(BarrierTest, ReportsTeamSize) {
  TypeParam b(5);
  EXPECT_EQ(b.team_size(), 5u);
}

// ------------------------------------------------------ algorithm details

TEST(Dissemination, RoundCountIsCeilLog2) {
  qb::DisseminationBarrier<> b2(2), b5(5), b8(8), b9(9);
  EXPECT_EQ(b2.rounds(), 1u);
  EXPECT_EQ(b5.rounds(), 3u);
  EXPECT_EQ(b8.rounds(), 3u);
  EXPECT_EQ(b9.rounds(), 4u);
}

TEST(Tournament, RoundCountIsCeilLog2) {
  qb::TournamentBarrier<> b2(2), b6(6);
  EXPECT_EQ(b2.rounds(), 1u);
  EXPECT_EQ(b6.rounds(), 3u);
}

TEST(CombiningTree, NodeCountShrinksPerLevel) {
  qb::CombiningTreeBarrier<> b(16);
  // 16 leaves-participants -> 4 + 1 nodes with fan-in 4.
  EXPECT_EQ(b.node_count(), 5u);
}

TEST(CentralBarrier, ManyEpisodesSequentialConsistencyCheck) {
  // Counter incremented once per thread per episode; after each episode
  // everyone must read exactly team*episode.
  constexpr std::size_t kTeam = 4, kEpisodes = 1000;
  qb::CentralBarrier<> barrier(kTeam);
  std::atomic<std::uint64_t> counter{0};
  std::atomic<std::uint64_t> failures{0};
  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
    for (std::size_t e = 1; e <= kEpisodes; ++e) {
      counter.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait(rank);
      if (counter.load(std::memory_order_relaxed) != kTeam * e) {
        failures.fetch_add(1);
      }
      barrier.arrive_and_wait(rank);
    }
  });
  EXPECT_EQ(failures.load(), 0u);
}

// -------------------------------------------------------------- registry

TEST(Catalog, BarrierViewListsAllBaselines) {
  // At least the 6 baselines + the QSV episode barrier (a floor, so
  // new registrations don't break unrelated suites; the park variant
  // is a wait-mode bit now, not a second entry).
  EXPECT_GE(qsv::catalog::barriers().size(), 7u);
  EXPECT_NE(qsv::catalog::find("dissemination"), nullptr);
  EXPECT_EQ(qsv::catalog::find("bogus"), nullptr);
}

TEST(Catalog, EveryBarrierEntryPassesSmokeIntegrity) {
  for (const auto* entry : qsv::catalog::barriers()) {
    auto barrier = entry->make(4);
    std::atomic<std::uint64_t> counter{0};
    std::atomic<std::uint64_t> failures{0};
    qsv::harness::ThreadTeam::run(4, [&](std::size_t rank) {
      for (std::size_t e = 1; e <= 200; ++e) {
        counter.fetch_add(1);
        barrier->arrive_and_wait(rank);
        if (counter.load() != 4 * e) failures.fetch_add(1);
        barrier->arrive_and_wait(rank);
      }
    });
    EXPECT_EQ(failures.load(), 0u) << entry->name;
  }
}

// -------------------------------------------------- park-wait variants

TEST(CentralBarrier, ParkWaitVariant) {
  phase_integrity<qb::CentralBarrier<qsv::platform::ParkWait>>(4, 300);
}

TEST(CombiningTree, ParkWaitVariant) {
  phase_integrity<qb::CombiningTreeBarrier<qsv::platform::ParkWait>>(4, 300);
}

TEST(McsTree, ParkWaitVariant) {
  phase_integrity<qb::McsTreeBarrier<qsv::platform::ParkWait>>(4, 300);
}
