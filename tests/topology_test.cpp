// topology_test.cpp — sysfs topology discovery (fixture trees through
// the injectable root) and the generic cohort combinator built on it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.hpp"
#include "core/qsv_mutex.hpp"
#include "harness/team.hpp"
#include "hier/cohort_lock.hpp"
#include "hier/cohort_map.hpp"
#include "locks/mcs.hpp"
#include "locks/ticket.hpp"
#include "obs/hook.hpp"
#include "platform/topology.hpp"
#include "workload/critical_section.hpp"

namespace qp = qsv::platform;
namespace qh = qsv::hier;
namespace fs = std::filesystem;

namespace {

/// A disposable sysfs tree under the gtest temp dir. Files are written
/// with a trailing newline, as the kernel does.
class FixtureSysfs {
 public:
  explicit FixtureSysfs(const std::string& name)
      : root_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~FixtureSysfs() { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content << "\n";
  }

  void add_node(int id, const std::string& cpulist) {
    write("devices/system/node/node" + std::to_string(id) + "/cpulist",
          cpulist);
  }
  void add_cpu(int id, int package) {
    write("devices/system/cpu/cpu" + std::to_string(id) +
              "/topology/physical_package_id",
          std::to_string(package));
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

}  // namespace

// ------------------------------------------------------------ cpulist

TEST(ParseCpulist, SinglesRangesAndMixes) {
  EXPECT_EQ(qp::parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(qp::parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(qp::parse_cpulist("0-1,4,6-7"),
            (std::vector<int>{0, 1, 4, 6, 7}));
  EXPECT_EQ(qp::parse_cpulist(" 2 , 5-6 "), (std::vector<int>{2, 5, 6}));
}

TEST(ParseCpulist, DeduplicatesAndSorts) {
  EXPECT_EQ(qp::parse_cpulist("3,1,1-2"), (std::vector<int>{1, 2, 3}));
}

TEST(ParseCpulist, MalformedFragmentsAreDroppedNotRepaired) {
  EXPECT_TRUE(qp::parse_cpulist("").empty());
  EXPECT_TRUE(qp::parse_cpulist("x").empty());
  EXPECT_TRUE(qp::parse_cpulist("3-").empty());
  EXPECT_TRUE(qp::parse_cpulist("-3").empty());
  EXPECT_TRUE(qp::parse_cpulist("7-2").empty());     // inverted range
  EXPECT_EQ(qp::parse_cpulist("0-1,bogus,4"),        // salvage the valid parts
            (std::vector<int>{0, 1, 4}));
  // Ids beyond kMaxCpuId are garbage, not a request for a huge table.
  EXPECT_TRUE(qp::parse_cpulist("0-2000000000").empty());
  EXPECT_TRUE(qp::parse_cpulist("99999").empty());
  EXPECT_EQ(qp::parse_cpulist(std::to_string(qp::kMaxCpuId)),
            (std::vector<int>{qp::kMaxCpuId}));
}

// ---------------------------------------------------------- discovery

TEST(DiscoverTopology, MultiNodeTree) {
  FixtureSysfs fx("topo_multi");
  fx.add_node(0, "0-3");
  fx.add_node(1, "4-7");
  for (int c = 0; c < 4; ++c) fx.add_cpu(c, 0);
  for (int c = 4; c < 8; ++c) fx.add_cpu(c, 1);

  const auto topo = qp::discover_topology(fx.root());
  EXPECT_FALSE(topo.is_fallback());
  ASSERT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.package_count(), 2u);
  EXPECT_EQ(topo.cpu_count(), 8u);
  EXPECT_EQ(topo.nodes()[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes()[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(topo.node_of_cpu(2), 0u);
  EXPECT_EQ(topo.node_of_cpu(5), 1u);
  // Unknown cpus map to node 0 rather than out of range.
  EXPECT_EQ(topo.node_of_cpu(64), 0u);
  EXPECT_EQ(topo.node_of_cpu(-1), 0u);
}

TEST(DiscoverTopology, SingleNodeTree) {
  FixtureSysfs fx("topo_single");
  fx.add_node(0, "0-3");
  for (int c = 0; c < 4; ++c) fx.add_cpu(c, 0);

  const auto topo = qp::discover_topology(fx.root());
  EXPECT_FALSE(topo.is_fallback());
  ASSERT_EQ(topo.node_count(), 1u);
  EXPECT_EQ(topo.package_count(), 1u);
  EXPECT_EQ(topo.cpu_count(), 4u);
}

TEST(DiscoverTopology, NoNodeDirectoryFallsBackToOneNodeOverOnlineCpus) {
  FixtureSysfs fx("topo_nonode");
  fx.write("devices/system/cpu/online", "0-5");

  const auto topo = qp::discover_topology(fx.root());
  EXPECT_TRUE(topo.is_fallback());
  ASSERT_EQ(topo.node_count(), 1u);
  EXPECT_EQ(topo.cpu_count(), 6u);
  EXPECT_EQ(topo.node_of_cpu(5), 0u);
}

TEST(DiscoverTopology, EmptyTreeStillYieldsAUsableTopology) {
  FixtureSysfs fx("topo_empty");
  const auto topo = qp::discover_topology(fx.root());
  EXPECT_TRUE(topo.is_fallback());
  ASSERT_GE(topo.node_count(), 1u);
  EXPECT_GE(topo.cpu_count(), 1u);
}

TEST(DiscoverTopology, MemoryOnlyNodeBetweenCpuNodesDoesNotTruncate) {
  // Memory-only nodes (Optane/CXL) have an empty cpulist and may sit
  // between cpu-bearing nodes; discovery must skip them, not stop.
  FixtureSysfs fx("topo_memonly");
  fx.add_node(0, "0-3");
  fx.write("devices/system/node/node1/cpulist", "");  // memory-only
  fx.add_node(2, "4-7");
  for (int c = 0; c < 8; ++c) fx.add_cpu(c, c / 4);

  const auto topo = qp::discover_topology(fx.root());
  ASSERT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.nodes()[1].sysfs_id, 2);
  EXPECT_EQ(topo.node_of_cpu(5), 1u);
}

TEST(DiscoverTopology, MalformedNodeListsAreSkipped) {
  FixtureSysfs fx("topo_malformed");
  fx.add_node(0, "not a cpulist");  // memory-only/garbage node: dropped
  fx.add_node(1, "0-1");
  for (int c = 0; c < 2; ++c) fx.add_cpu(c, 0);

  const auto topo = qp::discover_topology(fx.root());
  EXPECT_FALSE(topo.is_fallback());
  ASSERT_EQ(topo.node_count(), 1u);
  EXPECT_EQ(topo.nodes()[0].sysfs_id, 1);
  EXPECT_EQ(topo.nodes()[0].cpus, (std::vector<int>{0, 1}));
}

TEST(DiscoverTopology, OverlappingNodeListsKeepFirstClaim) {
  // A cpu listed by two nodes belongs to the first; the duplicate is
  // dropped so cpu_count() counts distinct cpus and node_of_cpu()
  // agrees with the node lists.
  FixtureSysfs fx("topo_overlap");
  fx.add_node(0, "0-3");
  fx.add_node(1, "2-5");
  for (int c = 0; c < 6; ++c) fx.add_cpu(c, 0);

  const auto topo = qp::discover_topology(fx.root());
  ASSERT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.cpu_count(), 6u);
  EXPECT_EQ(topo.nodes()[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes()[1].cpus, (std::vector<int>{4, 5}));
  EXPECT_EQ(topo.node_of_cpu(2), 0u);
  EXPECT_EQ(topo.node_of_cpu(5), 1u);
}

TEST(DiscoverTopology, MissingPackageIdsDefaultToOnePackage) {
  FixtureSysfs fx("topo_nopkg");
  fx.add_node(0, "0-1");
  fx.add_node(1, "2-3");  // no cpu*/topology files at all

  const auto topo = qp::discover_topology(fx.root());
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.package_count(), 1u);
}

TEST(ProcessTopology, IsCachedAndWellFormed) {
  const auto& topo = qp::topology();
  EXPECT_GE(topo.node_count(), 1u);
  EXPECT_GE(topo.cpu_count(), 1u);
  EXPECT_EQ(&topo, &qp::topology());  // one discovery per process
}

// ------------------------------------------------------- cohort map

TEST(TopologyCohortMap, OneCohortPerNodeViaRoundRobinPlacement) {
  FixtureSysfs fx("topo_map");
  fx.add_node(0, "0-1");
  fx.add_node(1, "2-3");
  const auto topo = qp::discover_topology(fx.root());
  qh::TopologyCohortMap map(topo);

  EXPECT_EQ(map.cohort_count(qp::kMaxThreads), 2u);
  for (std::size_t i = 0; i < 64; ++i) {
    // Whatever cpu the harness places index i on, the cohort must be
    // that cpu's node — and inside the table.
    EXPECT_EQ(map.cohort_of(i), topo.node_of_cpu(qp::cpu_for_index(i)));
    EXPECT_LT(map.cohort_of(i), map.cohort_count(qp::kMaxThreads));
  }
}

TEST(TopologyCohortMap, DefaultsToTheProcessTopology) {
  qh::TopologyCohortMap map;
  EXPECT_EQ(&map.topology(), &qp::topology());
  EXPECT_GE(map.cohort_count(qp::kMaxThreads), 1u);
}

TEST(TopologyCohortMapDeathTest, NodeWithoutCpusAborts) {
  // A Topology built by hand can carry a cpu-less node (discovery never
  // produces one); seating a cohort there would strand its local lock.
  std::vector<qp::Topology::Node> nodes(2);
  nodes[0].cpus = {0, 1};
  // nodes[1].cpus left empty
  const qp::Topology topo(std::move(nodes));
  EXPECT_DEATH(qh::TopologyCohortMap{topo},
               "topology node without cpus");
}

// ----------------------------------------- the cohort lock combinator

namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOps = 1000;

/// Mutual exclusion across a type-erased cohort lock.
void exclusion_battery(qsv::catalog::AnyPrimitive& lock) {
  qsv::workload::GuardedCounter counter;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps; ++i) {
      lock.lock();
      counter.bump();
      lock.unlock();
    }
  });
  EXPECT_TRUE(counter.consistent());
  EXPECT_EQ(counter.value(), kThreads * kOps);
}

}  // namespace

TEST(CohortCatalogue, RegistersAtLeastThreeCompositions) {
  const auto entries =
      qsv::catalog::filter(qsv::catalog::Family::kLock, qsv::catalog::kCohort);
  std::size_t combinators = 0;
  for (const auto* e : entries) {
    EXPECT_TRUE(e->make_budgeted)
        << e->name << " carries kCohort but no budget factory";
    if (e->name.rfind("cohort/", 0) == 0) ++combinators;
  }
  EXPECT_GE(combinators, 3u);
  // The fused specialization stays registered alongside the combinator.
  const auto* hier = qsv::catalog::find("hier-qsv");
  ASSERT_NE(hier, nullptr);
  EXPECT_TRUE(hier->has(qsv::catalog::kCohort));
  EXPECT_TRUE(hier->make_budgeted);
}

TEST(CohortCatalogue, EveryCompositionExcludesAcrossBudgets) {
  // The property test: mutual exclusion must hold for every registered
  // composition at the degenerate, small, and default budgets.
  for (const auto* e : qsv::catalog::filter(qsv::catalog::Family::kLock,
                                            qsv::catalog::kCohort)) {
    if (!e->make_budgeted) continue;
    for (const std::size_t budget : {0ul, 2ul, 16ul}) {
      SCOPED_TRACE(e->name + " budget " + std::to_string(budget));
      auto lock = e->make_budgeted(kThreads, qsv::get_default_wait_policy(),
                                   budget);
      exclusion_battery(*lock);
    }
  }
}

namespace {

/// Instantiations of the three shipped composition shapes over a block
/// map so the streak bound is deterministic in shape; the per-instance
/// telemetry record replaces the old process-global counting sink.
template <typename G, typename L>
using Counting = qh::CohortLock<G, L, qh::BlockCohortMap>;

template <typename Lock>
void streak_battery(Lock& lock, std::size_t budget) {
  const qsv::obs::LockRec* rec = lock.telemetry();
  if (rec == nullptr) GTEST_SKIP() << "telemetry compiled out";
  qsv::workload::GuardedCounter counter;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps; ++i) {
      lock.lock();
      counter.bump();
      lock.unlock();
    }
  });
  EXPECT_TRUE(counter.consistent());
  EXPECT_EQ(counter.value(), kThreads * kOps);
  const auto passes = rec->local_passes();
  const auto acquires = rec->global_acquires();
  ASSERT_GT(acquires, 0u);
  // Budget bounds every local-pass streak: one global tenure admits at
  // most `budget` consecutive passes.
  EXPECT_LE(passes, acquires * budget);
  // Tenures balance: what was acquired was released (lock is idle now).
  EXPECT_EQ(acquires, rec->global_releases());
}

}  // namespace

TEST(CohortLock, BudgetBoundsLocalPassStreaksQsvQsv) {
  constexpr std::size_t kBudget = 4;
  Counting<qsv::core::QsvMutex<>, qsv::core::QsvMutex<>> lock(
      kBudget, qsv::get_default_wait_policy(), qh::BlockCohortMap(4));
  streak_battery(lock, kBudget);
}

TEST(CohortLock, BudgetBoundsLocalPassStreaksMcsMcs) {
  constexpr std::size_t kBudget = 4;
  Counting<qsv::locks::McsLock<>, qsv::locks::McsLock<>> lock(
      kBudget, qsv::get_default_wait_policy(), qh::BlockCohortMap(4));
  streak_battery(lock, kBudget);
}

TEST(CohortLock, BudgetBoundsLocalPassStreaksQsvTicket) {
  constexpr std::size_t kBudget = 4;
  Counting<qsv::core::QsvMutex<>, qsv::locks::TicketLock> lock(
      kBudget, qsv::get_default_wait_policy(), qh::BlockCohortMap(4));
  streak_battery(lock, kBudget);
}

TEST(CohortLock, ZeroBudgetNeverPassesLocally) {
  Counting<qsv::core::QsvMutex<>, qsv::core::QsvMutex<>> lock(
      0, qsv::get_default_wait_policy(), qh::BlockCohortMap(1024));
  const qsv::obs::LockRec* rec = lock.telemetry();
  if (rec == nullptr) GTEST_SKIP() << "telemetry compiled out";
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < 500; ++i) {
      lock.lock();
      lock.unlock();
    }
  });
  EXPECT_EQ(rec->local_passes(), 0u);
}

TEST(CohortLock, TryLockPresentExactlyWhenBothComponentsTry) {
  using TryTry = qh::CohortLock<qsv::core::QsvMutex<>, qsv::core::QsvMutex<>>;
  using NoTry =  // TicketLockProportional has no try_lock
      qh::CohortLock<qsv::core::QsvMutex<>, qsv::locks::TicketLockProportional>;
  static_assert(qsv::catalog::HasTry<TryTry>);
  static_assert(!qsv::catalog::HasTry<NoTry>);

  TryTry lock;
  ASSERT_TRUE(lock.try_lock());
  std::atomic<int> result{-1};
  std::thread t([&] { result = lock.try_lock() ? 1 : 0; });
  t.join();
  EXPECT_EQ(result.load(), 0);  // held: the attempt must fail and back out
  lock.unlock();
  ASSERT_TRUE(lock.try_lock());  // backout left the lock usable
  lock.unlock();
}

TEST(CohortLock, UncontendedAcquireReleaseRepeats) {
  qh::CohortLock<qsv::core::QsvMutex<>, qsv::core::QsvMutex<>> lock;
  for (int i = 0; i < 10000; ++i) {
    lock.lock();
    lock.unlock();
  }
  SUCCEED();
}

TEST(CohortLock, TwoInstancesAreIndependent) {
  qh::CohortLock<qsv::core::QsvMutex<>, qsv::core::QsvMutex<>> a;
  qh::CohortLock<qsv::locks::McsLock<>, qsv::locks::McsLock<>> b;
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  SUCCEED();
}

TEST(CohortLock, ReportsConfiguration) {
  qh::CohortLock<qsv::core::QsvMutex<>, qsv::core::QsvMutex<>> lock(8);
  EXPECT_EQ(lock.budget(), 8u);
  EXPECT_GE(lock.cohort_count(), 1u);
  EXPECT_GT(lock.footprint_bytes(), sizeof(qsv::core::QsvMutex<>));
}
