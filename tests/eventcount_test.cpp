// eventcount_test.cpp — eventcounts, sequencers, and the lock-free
// bounded ring built from them.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "eventcount/bounded_ring.hpp"
#include "eventcount/eventcount.hpp"
#include "eventcount/sequencer.hpp"
#include "harness/team.hpp"
#include "platform/wait.hpp"

namespace qe = qsv::eventcount;

namespace {
constexpr std::size_t kThreads = 8;
}

// ----------------------------------------------------------- sequencer

TEST(Sequencer, SingleThreadCountsFromZero) {
  qe::Sequencer seq;
  EXPECT_EQ(seq.ticket(), 0u);
  EXPECT_EQ(seq.ticket(), 1u);
  EXPECT_EQ(seq.ticket(), 2u);
  EXPECT_EQ(seq.issued(), 3u);
}

TEST(Sequencer, TicketsUniqueAcrossThreads) {
  qe::Sequencer seq;
  constexpr std::size_t kPer = 5000;
  std::vector<std::vector<std::uint32_t>> got(kThreads);
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t rank) {
    got[rank].reserve(kPer);
    for (std::size_t i = 0; i < kPer; ++i) got[rank].push_back(seq.ticket());
  });
  std::set<std::uint32_t> all;
  for (const auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), kThreads * kPer);           // no duplicates
  EXPECT_EQ(*all.rbegin(), kThreads * kPer - 1);    // no gaps
}

TEST(Sequencer, TicketsMonotonicPerThread) {
  qe::Sequencer seq;
  std::atomic<bool> ok{true};
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    std::uint32_t prev = seq.ticket();
    for (int i = 0; i < 2000; ++i) {
      const std::uint32_t t = seq.ticket();
      if (t <= prev) ok = false;
      prev = t;
    }
  });
  EXPECT_TRUE(ok);
}

// ------------------------------------------- eventcount (typed sweep)
//
// The heavy sweeps run the two runtime-polymorphic eventcounts at the
// process default policy, so on constrained hosts ctest's
// QSV_WAIT=spin_yield environment keeps many-waiter stress off the
// pure-spin path (the old explicit SpinWait instantiations are what
// blew the 600s timeout on 1-CPU machines). Per-policy blocking
// coverage lives in the light value-parameterized suite below and in
// wait_policy_test's facade matrix.

template <typename Ec>
class EventCountTyped : public ::testing::Test {};

using EcImpls = ::testing::Types<qe::EventCount<>, qe::QueuedEventCount<>>;
TYPED_TEST_SUITE(EventCountTyped, EcImpls);

TYPED_TEST(EventCountTyped, StartsAtZero) {
  TypeParam ec;
  EXPECT_EQ(ec.read(), 0u);
}

TYPED_TEST(EventCountTyped, AdvanceIncrementsAndReturnsNewCount) {
  TypeParam ec;
  EXPECT_EQ(ec.advance(), 1u);
  EXPECT_EQ(ec.advance(), 2u);
  EXPECT_EQ(ec.read(), 2u);
}

TYPED_TEST(EventCountTyped, AwaitPastCountReturnsImmediately) {
  TypeParam ec;
  ec.advance();
  ec.advance();
  EXPECT_GE(ec.await(1), 1u);
  EXPECT_GE(ec.await(2), 2u);
  EXPECT_GE(ec.await(0), 2u);
}

TYPED_TEST(EventCountTyped, AwaitBlocksUntilAdvance) {
  TypeParam ec;
  std::atomic<int> phase{0};
  std::thread waiter([&] {
    phase = 1;
    const auto seen = ec.await(1);
    EXPECT_GE(seen, 1u);
    phase = 2;
  });
  while (phase.load() != 1) std::this_thread::yield();
  // Give the waiter a moment to actually block, then fire the event.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(phase.load(), 1);
  ec.advance();
  waiter.join();
  EXPECT_EQ(phase.load(), 2);
}

TYPED_TEST(EventCountTyped, ManyWaitersAllReleasedByOneAdvance) {
  TypeParam ec;
  std::atomic<std::size_t> released{0};
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t rank) {
    if (rank == 0) {
      // Let the waiters register, then fire.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ec.advance();
    } else {
      ec.await(1);
      released.fetch_add(1);
    }
  });
  EXPECT_EQ(released.load(), kThreads - 1);
}

TYPED_TEST(EventCountTyped, StaggeredTargetsReleaseInOrder) {
  TypeParam ec;
  std::vector<std::uint32_t> seen(kThreads, 0);
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t rank) {
    if (rank == 0) {
      for (std::uint32_t i = 0; i < kThreads - 1; ++i) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ec.advance();
      }
    } else {
      // Thread r waits for r events.
      seen[rank] = ec.await(static_cast<std::uint32_t>(rank));
    }
  });
  for (std::size_t r = 1; r < kThreads; ++r) {
    EXPECT_GE(seen[r], r) << "rank " << r;
  }
}

TYPED_TEST(EventCountTyped, HammerAwaitAdvanceNoLostWakeups) {
  // Lost-wakeup hunting: half the threads advance, half await the next
  // value they have seen; every await must eventually return.
  TypeParam ec;
  constexpr std::uint32_t kEvents = 20000;
  qsv::harness::ThreadTeam::run(4, [&](std::size_t rank) {
    if (rank % 2 == 0) {
      for (std::uint32_t i = 0; i < kEvents / 2; ++i) ec.advance();
    } else {
      std::uint32_t target = 1;
      while (target <= kEvents) {
        target = ec.await(target) + 1;
      }
    }
  });
  EXPECT_EQ(ec.read(), kEvents);
}

// --------------------------------- eventcount x wait_policy (light)

class EventCountPolicy
    : public ::testing::TestWithParam<qsv::wait_policy> {};

TEST_P(EventCountPolicy, AwaitBlocksUntilAdvanceBothImpls) {
  const auto policy = GetParam();
  const auto blocks_until_advance = [&](auto& ec) {
    std::atomic<int> phase{0};
    std::thread waiter([&] {
      phase = 1;
      EXPECT_GE(ec.await(1), 1u);
      phase = 2;
    });
    while (phase.load() != 1) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ec.advance();
    waiter.join();
    EXPECT_EQ(phase.load(), 2);
  };
  qe::EventCount<> central{policy};
  blocks_until_advance(central);
  qe::QueuedEventCount<> queued{policy};
  blocks_until_advance(queued);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, EventCountPolicy,
    ::testing::ValuesIn(std::begin(qsv::kAllWaitPolicies),
                        std::end(qsv::kAllWaitPolicies)),
    [](const auto& info) { return qsv::wait_policy_name(info.param); });

// ------------------------------------------------- eventcount ordering

TEST(EventCount, AdvancePublishesPriorWrites) {
  // The release/acquire contract: data written before advance() must be
  // visible after await() observes the event.
  qe::EventCount<> ec;
  std::uint64_t payload = 0;
  std::thread producer([&] {
    payload = 0xfeedface;
    ec.advance();
  });
  ec.await(1);
  EXPECT_EQ(payload, 0xfeedfaceu);
  producer.join();
}

TEST(QueuedEventCount, WithdrawnWaitersDoNotLeakGrants) {
  // A waiter that finds itself already satisfied withdraws its node; a
  // later waiter with a later target must still be woken correctly.
  qe::QueuedEventCount<> ec;
  ec.advance();          // count = 1
  EXPECT_EQ(ec.await(1), 1u);  // satisfied immediately (likely withdraw path)
  std::thread t([&] { EXPECT_GE(ec.await(2), 2u); });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ec.advance();
  t.join();
}

// -------------------------------------------------------- bounded ring

template <typename Ring>
void ring_spsc_fifo() {
  Ring ring(8);
  constexpr std::uint32_t kItems = 50000;
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kItems; ++i) ring.push(i);
  });
  for (std::uint32_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(ring.pop(), i);  // strict FIFO for a single producer
  }
  producer.join();
}

TEST(EcBoundedRing, SpscFifoCentralized) {
  ring_spsc_fifo<qe::EcBoundedRing<std::uint32_t, qe::EventCount<>>>();
}

TEST(EcBoundedRing, SpscFifoQueued) {
  ring_spsc_fifo<qe::EcBoundedRing<std::uint32_t, qe::QueuedEventCount<>>>();
}

TEST(EcBoundedRing, SpscFifoParkWait) {
  ring_spsc_fifo<qe::EcBoundedRing<
      std::uint32_t, qe::EventCount<qsv::platform::ParkWait>>>();
}

template <typename Ring>
void ring_mpmc_conservation() {
  Ring ring(16);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPer = 20000;
  std::atomic<std::uint64_t> sum{0};
  qsv::harness::ThreadTeam::run(kProducers + kConsumers, [&](std::size_t r) {
    if (r < kProducers) {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        ring.push(static_cast<std::uint32_t>(r * kPer + i));
      }
    } else {
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < kPer; ++i) local += ring.pop();
      sum.fetch_add(local);
    }
  });
  // Conservation: every pushed value popped exactly once.
  const std::uint64_t n = kProducers * kPer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  EXPECT_EQ(ring.pushed(), n);
  EXPECT_EQ(ring.popped(), n);
}

TEST(EcBoundedRing, MpmcConservationCentralized) {
  ring_mpmc_conservation<qe::EcBoundedRing<std::uint32_t,
                                           qe::EventCount<>>>();
}

TEST(EcBoundedRing, MpmcConservationQueued) {
  ring_mpmc_conservation<
      qe::EcBoundedRing<std::uint32_t, qe::QueuedEventCount<>>>();
}

TEST(EcBoundedRing, CapacityOneFullySerializes) {
  qe::EcBoundedRing<int> ring(1);
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) ring.push(i);
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(ring.pop(), i);
  producer.join();
}

TEST(EcBoundedRing, ProducerBlocksWhenFull) {
  qe::EcBoundedRing<int> ring(2);
  ring.push(1);
  ring.push(2);
  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    ring.push(3);  // must block until a pop frees slot 0
    third_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(third_done.load());
  EXPECT_EQ(ring.pop(), 1);
  producer.join();
  EXPECT_TRUE(third_done.load());
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_EQ(ring.pop(), 3);
}
