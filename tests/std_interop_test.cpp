// std_interop_test.cpp — the facade's std-conformance contract,
// exercised for real: QSV primitives under the standard library's own
// RAII wrappers, deadlock-avoidance algorithm, and condition-variable
// protocol. The static_asserts in include/qsv/*.hpp prove the
// signatures; this suite proves the semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "harness/team.hpp"
#include "qsv/qsv.hpp"

using namespace std::chrono_literals;

// ------------------------------------------------- compile-time contract

static_assert(qsv::api::lockable<qsv::mutex>);
static_assert(qsv::api::timed_lockable<qsv::timed_mutex>);
static_assert(qsv::api::shared_mutex_like<qsv::shared_mutex>);
static_assert(qsv::api::shared_mutex_like<qsv::central_shared_mutex>);
static_assert(qsv::api::episode_barrier<qsv::barrier>);
static_assert(qsv::api::counting_semaphore_like<qsv::counting_semaphore>);

// ------------------------------------------------------ std::scoped_lock

TEST(StdInterop, ScopedLockOverTwoQsvMutexes) {
  // std::scoped_lock's deadlock-avoidance algorithm (std::lock) leans
  // on try_lock. Threads acquire the pair in *opposite* orders; without
  // the avoidance path this deadlocks in milliseconds.
  // Kept deliberately small: on a 1-CPU host every contended handoff
  // of a pure-spin mutex costs a scheduler quantum.
  qsv::mutex a, b;
  long balance_a = 1000, balance_b = 1000;  // guarded by {a, b}
  constexpr int kTransfers = 2000;

  qsv::harness::ThreadTeam::run(2, [&](std::size_t rank) {
    for (int i = 0; i < kTransfers; ++i) {
      if (rank % 2 == 0) {
        std::scoped_lock guard(a, b);
        ++balance_a;
        --balance_b;
      } else {
        std::scoped_lock guard(b, a);
        --balance_a;
        ++balance_b;
      }
    }
  });
  EXPECT_EQ(balance_a + balance_b, 2000);
  EXPECT_EQ(balance_a, 1000);  // one rank up, one rank down
}

TEST(StdInterop, LockGuardAndUniqueLockOverQsvMutex) {
  qsv::mutex mu;
  long counter = 0;
  qsv::harness::ThreadTeam::run(4, [&](std::size_t) {
    for (int i = 0; i < 10000; ++i) {
      if (i % 2 == 0) {
        std::lock_guard<qsv::mutex> guard(mu);
        ++counter;
      } else {
        std::unique_lock<qsv::mutex> guard(mu);
        ++counter;
      }
    }
  });
  EXPECT_EQ(counter, 40000);
}

// ------------------------------------- std::shared_lock / std::unique_lock

TEST(StdInterop, SharedAndUniqueLockOverQsvSharedMutex) {
  qsv::shared_mutex rw;
  std::vector<int> pair{0, 0};
  std::atomic<long> reads{0};

  qsv::harness::ThreadTeam::run(4, [&](std::size_t rank) {
    if (rank == 0) {
      for (int i = 0; i < 2000; ++i) {
        std::unique_lock guard(rw);
        pair[0] = i;
        pair[1] = i;
      }
    } else {
      for (int i = 0; i < 20000; ++i) {
        std::shared_lock guard(rw);
        if (pair[0] != pair[1]) std::abort();  // torn read
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(reads.load(), 3 * 20000);
}

TEST(StdInterop, TryToLockFormsOverQsvSharedMutex) {
  qsv::shared_mutex rw;
  {
    // Uncontended: both try forms must succeed immediately.
    std::unique_lock guard(rw, std::try_to_lock);
    EXPECT_TRUE(guard.owns_lock());
  }
  {
    std::shared_lock guard(rw, std::try_to_lock);
    EXPECT_TRUE(guard.owns_lock());
  }
  // Writer held: try_lock and try_lock_shared must both refuse without
  // blocking.
  rw.lock();
  EXPECT_FALSE(rw.try_lock());
  EXPECT_FALSE(rw.try_lock_shared());
  rw.unlock();
  // Reader held: a second reader enters, a writer attempt refuses.
  rw.lock_shared();
  EXPECT_TRUE(rw.try_lock_shared());
  rw.unlock_shared();
  EXPECT_FALSE(rw.try_lock());
  rw.unlock_shared();
  EXPECT_TRUE(rw.try_lock());
  rw.unlock();
}

TEST(StdInterop, TryFormsOverCentralSharedMutex) {
  qsv::central_shared_mutex rw;
  rw.lock();
  EXPECT_FALSE(rw.try_lock());
  EXPECT_FALSE(rw.try_lock_shared());
  rw.unlock();
  rw.lock_shared();
  EXPECT_TRUE(rw.try_lock_shared());
  EXPECT_FALSE(rw.try_lock());
  rw.unlock_shared();
  rw.unlock_shared();
  EXPECT_TRUE(rw.try_lock());
  rw.unlock();
}

// --------------------------------------------- std::condition_variable_any

TEST(StdInterop, ConditionVariableAnyOverQsvMutex) {
  // A tiny bounded handoff queue driven entirely by the std CV protocol
  // over a QSV mutex (condition_variable_any accepts any BasicLockable).
  qsv::mutex mu;
  std::condition_variable_any cv;
  std::vector<int> queue;  // guarded by mu
  bool done = false;       // guarded by mu
  constexpr int kItems = 5000;
  long consumed_sum = 0;

  std::thread consumer([&] {
    std::unique_lock<qsv::mutex> guard(mu);
    for (;;) {
      cv.wait(guard, [&] { return !queue.empty() || done; });
      while (!queue.empty()) {
        consumed_sum += queue.back();
        queue.pop_back();
      }
      if (done) return;
    }
  });
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      {
        std::lock_guard<qsv::mutex> guard(mu);
        queue.push_back(i);
      }
      cv.notify_one();
    }
    {
      std::lock_guard<qsv::mutex> guard(mu);
      done = true;
    }
    cv.notify_one();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed_sum, static_cast<long>(kItems) * (kItems + 1) / 2);
}

// ----------------------------------------------------- timed_mutex (std)

TEST(StdInterop, TimedMutexTryLock) {
  qsv::timed_mutex mu;
  EXPECT_TRUE(mu.try_lock());
  std::thread contender([&] { EXPECT_FALSE(mu.try_lock()); });
  contender.join();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(StdInterop, TimedMutexTryLockUntil) {
  qsv::timed_mutex mu;
  mu.lock();
  std::thread impatient([&] {
    // A deadline in the past refuses immediately; a short future
    // deadline expires while the holder sleeps.
    EXPECT_FALSE(mu.try_lock_until(std::chrono::steady_clock::now() - 1ms));
    EXPECT_FALSE(mu.try_lock_until(std::chrono::steady_clock::now() + 5ms));
  });
  impatient.join();
  mu.unlock();
  // Free: a deadline-bounded attempt succeeds without waiting it out.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(mu.try_lock_until(t0 + 10s));
  mu.unlock();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
}

TEST(StdInterop, TimedMutexUnderUniqueLockDeferredForms) {
  qsv::timed_mutex mu;
  {
    std::unique_lock<qsv::timed_mutex> guard(mu, 50ms);  // try_lock_for form
    EXPECT_TRUE(guard.owns_lock());
  }
  {
    std::unique_lock<qsv::timed_mutex> guard(
        mu, std::chrono::steady_clock::now() + 50ms);  // try_lock_until form
    EXPECT_TRUE(guard.owns_lock());
  }
}

// -------------------------------------------------- barrier episode sugar

TEST(StdInterop, BarrierArriveAndDropShrinksTeam) {
  // Half the team leaves after phase 1 (std::barrier::arrive_and_drop
  // semantics); the rest must keep synchronizing without stranding.
  constexpr std::size_t kTeam = 4, kPhases = 200;
  qsv::barrier bar(kTeam);
  std::atomic<long> sum{0};
  std::atomic<bool> ragged{false};

  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
    sum.fetch_add(1);
    bar.arrive_and_wait(rank);
    if (sum.load() != kTeam) ragged.store(true);
    bar.arrive_and_wait(rank);
    if (rank >= kTeam / 2) {
      bar.arrive_and_drop(rank);
      return;
    }
    for (std::size_t p = 1; p <= kPhases; ++p) {
      sum.fetch_add(1);
      bar.arrive_and_wait(rank);
      const long expect = static_cast<long>(kTeam + (kTeam / 2) * p);
      if (sum.load() != expect) ragged.store(true);
      bar.arrive_and_wait(rank);
    }
  });
  EXPECT_FALSE(ragged.load());
  EXPECT_EQ(bar.team_size(), kTeam / 2);
}

TEST(StdInterop, BarrierDropToZeroAndCloserIsDropper) {
  // The last arrival may itself be a dropper: it must close the episode
  // (waking everyone) even though it enqueued no node.
  constexpr std::size_t kTeam = 3;
  qsv::barrier bar(kTeam);
  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
    if (rank == 0) {
      bar.arrive_and_drop(rank);  // may or may not be the closer
    } else {
      bar.arrive_and_wait(rank);
    }
  });
  EXPECT_EQ(bar.team_size(), kTeam - 1);
}
