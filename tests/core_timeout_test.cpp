// core_timeout_test.cpp — QSV bounded-impatience mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/qsv_timeout.hpp"
#include "harness/team.hpp"
#include "platform/rng.hpp"
#include "workload/critical_section.hpp"

namespace qc = qsv::core;
using namespace std::chrono_literals;

TEST(QsvTimeoutMutex, UncontendedLockUnlock) {
  qc::QsvTimeoutMutex m;
  m.lock();
  m.unlock();
  EXPECT_TRUE(m.try_lock_for(1ms));
  m.unlock();
}

TEST(QsvTimeoutMutex, TimesOutWhileHeld) {
  qc::QsvTimeoutMutex m;
  m.lock();
  std::atomic<bool> timed_out{false};
  std::thread t([&] { timed_out.store(!m.try_lock_for(5ms)); });
  t.join();
  EXPECT_TRUE(timed_out.load());
  m.unlock();
  // Lock must be acquirable again after the abandonment.
  EXPECT_TRUE(m.try_lock_for(100ms));
  m.unlock();
}

TEST(QsvTimeoutMutex, SucceedsWithinDeadline) {
  qc::QsvTimeoutMutex m;
  m.lock();
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    if (m.try_lock_for(500ms)) {
      acquired.store(true);
      m.unlock();
    }
  });
  std::this_thread::sleep_for(10ms);
  m.unlock();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(QsvTimeoutMutex, MutualExclusionNoTimeouts) {
  qc::QsvTimeoutMutex m;
  qsv::workload::GuardedCounter counter;
  constexpr std::size_t kTeam = 8, kOps = 4000;
  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps; ++i) {
      m.lock();
      counter.bump();
      m.unlock();
    }
  });
  EXPECT_TRUE(counter.consistent());
  EXPECT_EQ(counter.value(), kTeam * kOps);
}

TEST(QsvTimeoutMutex, MutualExclusionUnderAbortStorm) {
  // Mixed population: some acquisitions use tiny timeouts and often
  // abort; the counter must stay consistent and equal the successful
  // acquisition count.
  qc::QsvTimeoutMutex m;
  qsv::workload::GuardedCounter counter;
  std::atomic<std::uint64_t> successes{0};
  constexpr std::size_t kTeam = 8, kOps = 3000;
  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
    qsv::platform::Xoshiro256 rng(rank * 13 + 1);
    for (std::size_t i = 0; i < kOps; ++i) {
      const bool impatient = rng.next_bool(0.5);
      if (impatient) {
        if (m.try_lock_for(std::chrono::nanoseconds(rng.next_below(2000)))) {
          counter.bump();
          successes.fetch_add(1, std::memory_order_relaxed);
          m.unlock();
        }
      } else {
        m.lock();
        counter.bump();
        successes.fetch_add(1, std::memory_order_relaxed);
        m.unlock();
      }
    }
  });
  EXPECT_TRUE(counter.consistent());
  EXPECT_EQ(counter.value(), successes.load());
  // Patient acquisitions always succeed, so at least half completed.
  EXPECT_GE(successes.load(), kTeam * kOps / 2);
}

TEST(QsvTimeoutMutex, AbandonedChainIsSkipped) {
  // Build a chain holder <- aborted <- aborted, then verify a patient
  // waiter still gets through after the holder releases.
  qc::QsvTimeoutMutex m;
  m.lock();
  std::thread a([&] { EXPECT_FALSE(m.try_lock_for(2ms)); });
  a.join();
  std::thread b([&] { EXPECT_FALSE(m.try_lock_for(2ms)); });
  b.join();
  std::atomic<bool> acquired{false};
  std::thread c([&] {
    m.lock();
    acquired.store(true);
    m.unlock();
  });
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(acquired.load());
  m.unlock();
  c.join();
  EXPECT_TRUE(acquired.load());
}

TEST(QsvTimeoutMutex, ZeroTimeoutActsAsTryLock) {
  qc::QsvTimeoutMutex m;
  m.lock();
  EXPECT_FALSE(m.try_lock_for(0ns));
  m.unlock();
  EXPECT_TRUE(m.try_lock_for(0ns + 1ms));
  m.unlock();
}

TEST(QsvTimeoutMutex, ManyInstancesIndependent) {
  qc::QsvTimeoutMutex a, b;
  a.lock();
  EXPECT_TRUE(b.try_lock_for(1ms));
  b.unlock();
  a.unlock();
}
