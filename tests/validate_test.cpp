// validate_test.cpp — the checkers themselves, then the registry-wide
// property sweep: every lock × every shake intensity must preserve
// mutual exclusion; queue locks must admit near-FIFO; reader-writer
// locks must preserve the RW invariant under perturbation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <algorithm>
#include "catalog/catalog.hpp"
#include "harness/team.hpp"
#include "platform/affinity.hpp"
#include "validate/checkers.hpp"
#include "validate/shaker.hpp"

namespace qv = qsv::validate;

namespace {
/// Sweep team size, scaled to the host. The property sweeps exercise
/// interleavings, and on a P-CPU box anything past ~2P spinners adds
/// no concurrency — it only multiplies scheduler rotations, which for
/// the raw-spin strawmen (tas/ticket/...; deliberately NOT wired to
/// the runtime waiting layer) cost a full quantum per handoff. 8
/// threads on 1 CPU is what used to blow the 600 s ctest timeout; the
/// policy-aware primitives additionally run under spin_yield there
/// (ctest pins QSV_WAIT=spin_yield on this suite).
const std::size_t kThreads = std::clamp<std::size_t>(
    2 * qsv::platform::available_cpus(), 2, 8);

qv::ShakeProfile profile_by_name(const std::string& name) {
  if (name == "off") return qv::ShakeProfile::off();
  if (name == "gentle") return qv::ShakeProfile::gentle();
  if (name == "rough") return qv::ShakeProfile::rough();
  return qv::ShakeProfile::brutal();
}
}  // namespace

// ------------------------------------------------- checker unit tests

TEST(ExclusionChecker, CleanOnProperUse) {
  qv::ExclusionChecker c;
  c.enter();
  c.exit();
  c.enter();
  c.exit();
  EXPECT_TRUE(c.clean());
  EXPECT_EQ(c.entries(), 2u);
}

TEST(ExclusionChecker, DetectsDoubleEntry) {
  qv::ExclusionChecker c;
  c.enter();
  // A second enter without exit (same thread stands in for a barger).
  c.enter();
  EXPECT_FALSE(c.clean());
}

TEST(ExclusionChecker, DetectsExitWithoutEntry) {
  qv::ExclusionChecker c;
  c.exit();
  EXPECT_FALSE(c.clean());
}

TEST(RwChecker, CleanReadersOnly) {
  qv::RwChecker c;
  c.reader_enter();
  c.reader_enter();
  c.reader_exit();
  c.reader_exit();
  EXPECT_TRUE(c.clean());
}

TEST(RwChecker, DetectsWriterAmongReaders) {
  qv::RwChecker c;
  c.reader_enter();
  c.writer_enter();  // invariant broken
  EXPECT_FALSE(c.clean());
}

TEST(RwChecker, DetectsSecondWriter) {
  qv::RwChecker c;
  c.writer_enter();
  c.writer_enter();
  EXPECT_FALSE(c.clean());
}

TEST(FifoChecker, NoInversionForOrderedAdmission) {
  qv::FifoChecker c(/*window=*/0);
  for (int i = 0; i < 100; ++i) {
    const auto t = c.arrival_ticket();
    c.admitted(t);
  }
  EXPECT_EQ(c.inversions(), 0u);
  EXPECT_EQ(c.admissions(), 100u);
}

TEST(FifoChecker, FlagsLateAdmissionBeyondWindow) {
  qv::FifoChecker c(/*window=*/2);
  const auto t0 = c.arrival_ticket();  // 0
  for (int i = 0; i < 8; ++i) {
    const auto t = c.arrival_ticket();
    c.admitted(t);  // horizon races ahead
  }
  c.admitted(t0);  // 0 + 2 < 8 -> inversion
  EXPECT_GE(c.inversions(), 1u);
}

TEST(ScheduleShaker, DeterministicPerSeed) {
  // Same seed/rank: same perturbation decisions (indirectly observable
  // as identical wall-time *pattern* is not assertable; instead check
  // the shaker draws don't crash and off() never sleeps long).
  qv::ScheduleShaker off(qv::ShakeProfile::off(), 1, 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 100000; ++i) off.maybe_perturb();
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(dt).count(),
            500);
}

// ------------------------------------- registry-wide exclusion sweep

class LockShakeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(LockShakeSweep, MutualExclusionHolds) {
  const auto& [lock_name, shake_name] = GetParam();
  const auto* entry = qsv::catalog::find(lock_name);
  ASSERT_NE(entry, nullptr);
  auto lock = entry->make(qsv::platform::kMaxThreads);
  const auto profile = profile_by_name(shake_name);

  qv::ExclusionChecker checker;
  const std::size_t ops = shake_name == "brutal" ? 300 : 1500;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t rank) {
    qv::ScheduleShaker shaker(profile, /*seed=*/0xC0FFEE, rank);
    for (std::size_t i = 0; i < ops; ++i) {
      shaker.maybe_perturb();
      lock->lock();
      checker.enter();
      shaker.maybe_perturb();  // perturb *inside* the critical section
      checker.exit();
      lock->unlock();
    }
  });
  EXPECT_TRUE(checker.clean())
      << lock_name << " under " << shake_name << ": "
      << checker.violations() << " violations";
  EXPECT_EQ(checker.entries(), kThreads * ops);
}

namespace {
std::vector<std::tuple<std::string, std::string>> sweep_params() {
  std::vector<std::tuple<std::string, std::string>> out;
  for (const auto* f : qsv::catalog::locks()) {
    for (const char* shake : {"off", "gentle", "rough", "brutal"}) {
      out.emplace_back(f->name, shake);
    }
  }
  return out;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(
    AllLocksAllShakes, LockShakeSweep, ::testing::ValuesIn(sweep_params()),
    [](const auto& info) {
      std::string n =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ----------------------------------------------- FIFO admission sweep

class FifoSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(FifoSweep, QueueLocksAdmitNearFifo) {
  const auto* entry = qsv::catalog::find(GetParam());
  ASSERT_NE(entry, nullptr);
  auto lock = entry->make(qsv::platform::kMaxThreads);

  qv::FifoChecker checker(/*window=*/2 * kThreads);
  constexpr std::size_t kOps = 2000;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps; ++i) {
      const auto t = checker.arrival_ticket();
      lock->lock();
      checker.admitted(t);
      lock->unlock();
    }
  });
  // Strict-FIFO admission modulo the ticket/enqueue race window: allow
  // a tiny residue, reject anything resembling random admission.
  EXPECT_LT(checker.inversions(), checker.admissions() / 100)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(QueueLocks, FifoSweep,
                         ::testing::Values("ticket", "anderson",
                                           "graunke-thakkar", "clh", "mcs",
                                           "qsv"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --------------------------------------------- RW invariant under shake

class RwShakeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(RwShakeSweep, ReaderWriterInvariantHolds) {
  const auto& [rw_name, shake_name] = GetParam();
  const auto* entry = qsv::catalog::find(rw_name);
  ASSERT_NE(entry, nullptr);
  auto rw = entry->make(kThreads);
  const auto profile = profile_by_name(shake_name);

  qv::RwChecker checker;
  const std::size_t ops = shake_name == "brutal" ? 300 : 1500;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t rank) {
    qv::ScheduleShaker shaker(profile, /*seed=*/0xBEEF, rank);
    for (std::size_t i = 0; i < ops; ++i) {
      shaker.maybe_perturb();
      if ((i + rank) % 4 == 0) {  // 25% writers
        rw->lock();
        checker.writer_enter();
        shaker.maybe_perturb();
        checker.writer_exit();
        rw->unlock();
      } else {
        rw->lock_shared();
        checker.reader_enter();
        shaker.maybe_perturb();
        checker.reader_exit();
        rw->unlock_shared();
      }
    }
  });
  EXPECT_TRUE(checker.clean())
      << rw_name << " under " << shake_name << ": "
      << checker.violations() << " violations";
}

namespace {
std::vector<std::tuple<std::string, std::string>> rw_params() {
  std::vector<std::tuple<std::string, std::string>> out;
  for (const auto* f : qsv::catalog::rwlocks()) {
    for (const char* shake : {"off", "rough"}) {
      out.emplace_back(f->name, shake);
    }
  }
  return out;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(
    AllRwLocks, RwShakeSweep, ::testing::ValuesIn(rw_params()),
    [](const auto& info) {
      std::string n =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// ------------------------------------- eventcount rings under shake

#include "eventcount/bounded_ring.hpp"

template <typename Ec>
class EcShake : public ::testing::Test {};

using EcKinds = ::testing::Types<qsv::eventcount::EventCount<>,
                                 qsv::eventcount::QueuedEventCount<>>;
TYPED_TEST_SUITE(EcShake, EcKinds);

TYPED_TEST(EcShake, RingConservationUnderRoughShake) {
  qsv::eventcount::EcBoundedRing<std::uint32_t, TypeParam> ring(8);
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kConsumers = 3;
  constexpr std::uint64_t kPer = 3000;
  std::atomic<std::uint64_t> sum{0};
  qsv::harness::ThreadTeam::run(
      kProducers + kConsumers, [&](std::size_t r) {
        qv::ScheduleShaker shaker(qv::ShakeProfile::rough(), 0xD1CE, r);
        if (r < kProducers) {
          for (std::uint64_t i = 0; i < kPer; ++i) {
            shaker.maybe_perturb();
            ring.push(static_cast<std::uint32_t>(r * kPer + i));
          }
        } else {
          std::uint64_t local = 0;
          for (std::uint64_t i = 0; i < kPer; ++i) {
            shaker.maybe_perturb();
            local += ring.pop();
          }
          sum.fetch_add(local);
        }
      });
  const std::uint64_t n = kProducers * kPer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}
