// parking_test.cpp — the user-space parking lot, the futex mutex built
// on it, and the LotParkWait policy plugged into the QSV mechanism.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/syncvar.hpp"
#include "harness/team.hpp"
#include "parking/parking_lot.hpp"
#include "workload/critical_section.hpp"

namespace qp = qsv::parking;

namespace {
constexpr std::size_t kThreads = 8;

template <typename Lock>
void exclusion_battery(Lock& lock, std::size_t ops = 3000) {
  qsv::workload::GuardedCounter counter;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < ops; ++i) {
      lock.lock();
      counter.bump();
      lock.unlock();
    }
  });
  EXPECT_TRUE(counter.consistent());
  EXPECT_EQ(counter.value(), kThreads * ops);
}
}  // namespace

// ----------------------------------------------------------- lot basics

TEST(ParkingLot, PredicateFalseMeansNoPark) {
  auto& lot = qp::ParkingLot::instance();
  int addr = 0;
  EXPECT_FALSE(lot.park(&addr, [] { return false; }));
  EXPECT_EQ(lot.parked_count(&addr), 0u);
}

TEST(ParkingLot, ParkThenUnparkOne) {
  auto& lot = qp::ParkingLot::instance();
  std::atomic<std::uint32_t> word{0};
  std::atomic<bool> woke{false};
  std::thread t([&] {
    lot.park(&word, [&] { return word.load() == 0; });
    woke = true;
  });
  // Wait until the thread is actually parked.
  while (lot.parked_count(&word) == 0) std::this_thread::yield();
  EXPECT_FALSE(woke.load());
  word.store(1);
  EXPECT_EQ(lot.unpark_one(&word), 1u);
  t.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(lot.parked_count(&word), 0u);
}

TEST(ParkingLot, UnparkOnEmptyAddressIsZero) {
  auto& lot = qp::ParkingLot::instance();
  int addr = 0;
  EXPECT_EQ(lot.unpark_one(&addr), 0u);
  EXPECT_EQ(lot.unpark_all(&addr), 0u);
}

TEST(ParkingLot, UnparkOneWakesExactlyOne) {
  auto& lot = qp::ParkingLot::instance();
  std::atomic<std::uint32_t> word{0};
  std::atomic<int> woke{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      lot.park(&word, [&] { return word.load() == 0; });
      woke.fetch_add(1);
    });
  }
  while (lot.parked_count(&word) < 4) std::this_thread::yield();
  word.store(1);  // flip the state, then dole out wakes one at a time
  EXPECT_EQ(lot.unpark_one(&word), 1u);
  while (woke.load() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(woke.load(), 1);
  EXPECT_EQ(lot.unpark_all(&word), 3u);
  for (auto& t : ts) t.join();
  EXPECT_EQ(woke.load(), 4);
}

TEST(ParkingLot, DistinctAddressesAreIndependent) {
  auto& lot = qp::ParkingLot::instance();
  std::atomic<std::uint32_t> a{0};
  std::atomic<std::uint32_t> b{0};
  std::atomic<int> woke_a{0};
  std::atomic<int> woke_b{0};
  std::thread ta([&] {
    lot.park(&a, [&] { return a.load() == 0; });
    woke_a = 1;
  });
  std::thread tb([&] {
    lot.park(&b, [&] { return b.load() == 0; });
    woke_b = 1;
  });
  while (lot.parked_count(&a) == 0 || lot.parked_count(&b) == 0) {
    std::this_thread::yield();
  }
  a.store(1);
  lot.unpark_all(&a);
  ta.join();
  EXPECT_EQ(woke_a.load(), 1);
  EXPECT_EQ(woke_b.load(), 0);      // b's waiter untouched
  EXPECT_EQ(lot.parked_count(&b), 1u);
  b.store(1);
  lot.unpark_all(&b);
  tb.join();
}

TEST(ParkingLot, SameBucketCollisionsDoNotCrossWake) {
  // Two addresses that collide in the 256-bucket table must still wake
  // independently. Probe for a colliding pair within one page.
  auto& lot = qp::ParkingLot::instance();
  alignas(64) static std::atomic<std::uint32_t> words[64];
  // All 64 words span 4 lines; many collide. Park on two far-apart ones.
  std::atomic<std::uint32_t>& x = words[0];
  std::atomic<std::uint32_t>& y = words[16];  // same line group likely
  x.store(0);
  y.store(0);
  std::atomic<int> woke_x{0};
  std::thread tx([&] {
    lot.park(&x, [&] { return x.load() == 0; });
    woke_x = 1;
  });
  while (lot.parked_count(&x) == 0) std::this_thread::yield();
  y.store(1);
  lot.unpark_all(&y);  // must not wake x's waiter
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(woke_x.load(), 0);
  x.store(1);
  lot.unpark_all(&x);
  tx.join();
}

TEST(ParkingLot, RapidParkReparkCycles) {
  // A woken thread must be able to re-park instantly (slot fully
  // recycled by the unparker before the signal).
  auto& lot = qp::ParkingLot::instance();
  std::atomic<std::uint32_t> word{0};
  constexpr int kCycles = 2000;
  std::thread waiter([&] {
    for (int i = 0; i < kCycles; ++i) {
      lot.park(&word, [&] { return word.load() == 0; });
      word.store(0);  // re-arm for the next cycle
    }
  });
  for (int i = 0; i < kCycles; ++i) {
    while (lot.parked_count(&word) == 0) std::this_thread::yield();
    word.store(1);
    lot.unpark_one(&word);
  }
  waiter.join();
  SUCCEED();
}

// ---------------------------------------------------------- futex mutex

TEST(FutexMutex, MutualExclusion) {
  qp::FutexMutex m;
  exclusion_battery(m);
}

TEST(FutexMutex, TryLockSemantics) {
  qp::FutexMutex m;
  ASSERT_TRUE(m.try_lock());
  std::thread t([&] { EXPECT_FALSE(m.try_lock()); });
  t.join();
  m.unlock();
  ASSERT_TRUE(m.try_lock());
  m.unlock();
}

TEST(FutexMutex, UncontendedFastPathNeverParks) {
  auto& lot = qp::ParkingLot::instance();
  qp::FutexMutex m;
  for (int i = 0; i < 10000; ++i) {
    m.lock();
    m.unlock();
  }
  EXPECT_EQ(lot.parked_count(&m), 0u);
}

TEST(FutexMutex, OversubscribedStillCorrect) {
  // More threads than cores is exactly the regime parking exists for.
  qp::FutexMutex m;
  qsv::workload::GuardedCounter counter;
  const std::size_t threads = 2 * std::thread::hardware_concurrency();
  constexpr std::size_t kOps = 500;
  qsv::harness::ThreadTeam::run(
      threads,
      [&](std::size_t) {
        for (std::size_t i = 0; i < kOps; ++i) {
          m.lock();
          counter.bump();
          m.unlock();
        }
      },
      /*pin=*/false);
  EXPECT_TRUE(counter.consistent());
  EXPECT_EQ(counter.value(), threads * kOps);
}

// ------------------------------------------- QSV over the parking lot

TEST(LotParkWait, QsvMutexRunsUnmodifiedOverHandBuiltFutex) {
  qsv::core::QsvMutex<qp::LotParkWait> m;
  exclusion_battery(m);
}

TEST(LotParkWait, QsvSemaphoreStyleHandoffChain) {
  // Chain handoff through the lot-backed QSV mutex: thread i waits for
  // its predecessor — exercises notify_one delivery through the table.
  qsv::core::QsvMutex<qp::LotParkWait> m;
  std::vector<int> order;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t rank) {
    for (int i = 0; i < 200; ++i) {
      m.lock();
      if (order.size() < kThreads) {
        order.push_back(static_cast<int>(rank));
      }
      m.unlock();
    }
  });
  EXPECT_GE(order.size(), kThreads);  // every thread got through
}
