// rwlocks_test.cpp — reader-writer baselines: exclusion and preference.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "harness/team.hpp"
#include "catalog/catalog.hpp"
#include "catalog/std_adapters.hpp"
#include "rwlocks/central_rw.hpp"
#include "rwlocks/rw_concept.hpp"
#include "workload/rw_mix.hpp"

namespace qr = qsv::rwlocks;

namespace {

/// The invariant battery: writers advance versioned cells, readers check
/// snapshot consistency. Any writer/writer or reader/writer overlap tears
/// the snapshot.
template <typename Lock>
void rw_battery(Lock& lock, double read_ratio) {
  constexpr std::size_t kTeam = 8;
  constexpr std::size_t kOps = 3000;
  qsv::workload::VersionedCells cells;
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> writes{0};

  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
    qsv::workload::RwMix mix(read_ratio, 1000 + rank);
    for (std::size_t i = 0; i < kOps; ++i) {
      if (mix.next_is_read()) {
        lock.lock_shared();
        if (!cells.read_consistent()) torn.fetch_add(1);
        lock.unlock_shared();
      } else {
        lock.lock();
        cells.write();
        writes.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
      }
    }
  });
  EXPECT_EQ(torn.load(), 0u) << Lock::name();
  EXPECT_EQ(cells.version(), writes.load()) << Lock::name();
}

}  // namespace

template <typename L>
class RwLockTest : public ::testing::Test {};

using RwTypes = ::testing::Types<qr::ReaderPrefRwLock, qr::WriterPrefRwLock,
                                 qsv::catalog::StdSharedMutexAdapter>;
TYPED_TEST_SUITE(RwLockTest, RwTypes);

TYPED_TEST(RwLockTest, MostlyReads) {
  TypeParam lock;
  rw_battery(lock, 0.95);
}

TYPED_TEST(RwLockTest, Balanced) {
  TypeParam lock;
  rw_battery(lock, 0.5);
}

TYPED_TEST(RwLockTest, MostlyWrites) {
  TypeParam lock;
  rw_battery(lock, 0.05);
}

TYPED_TEST(RwLockTest, ReadersOverlap) {
  // Two readers must be able to hold the lock simultaneously: reader A
  // holds while reader B acquires from another thread.
  TypeParam lock;
  lock.lock_shared();
  std::atomic<bool> second_reader_in{false};
  std::thread t([&] {
    lock.lock_shared();
    second_reader_in.store(true);
    lock.unlock_shared();
  });
  t.join();  // would deadlock if readers excluded each other
  EXPECT_TRUE(second_reader_in.load());
  lock.unlock_shared();
}

TYPED_TEST(RwLockTest, WriterExcludesReader) {
  TypeParam lock;
  lock.lock();
  std::atomic<bool> reader_in{false};
  std::thread t([&] {
    lock.lock_shared();
    reader_in.store(true);
    lock.unlock_shared();
  });
  // Give the reader a moment; it must still be blocked.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(reader_in.load());
  lock.unlock();
  t.join();
  EXPECT_TRUE(reader_in.load());
}

// --------------------------------------------------- preference behaviour

TEST(ReaderPref, ReadersPassWaitingWriters) {
  // With a reader continuously holding, a writer waits; a newly arriving
  // reader must still be admitted (reader preference).
  qr::ReaderPrefRwLock lock;
  lock.lock_shared();
  std::atomic<bool> writer_in{false}, late_reader_in{false};
  std::thread writer([&] {
    lock.lock();
    writer_in.store(true);
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_in.load());
  std::thread late_reader([&] {
    lock.lock_shared();
    late_reader_in.store(true);
    lock.unlock_shared();
  });
  late_reader.join();  // must not block behind the waiting writer
  EXPECT_TRUE(late_reader_in.load());
  lock.unlock_shared();
  writer.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(WriterPref, ReadersDeferToWaitingWriters) {
  qr::WriterPrefRwLock lock;
  lock.lock_shared();
  std::atomic<bool> writer_done{false}, late_reader_in{false};
  std::thread writer([&] {
    lock.lock();
    writer_done.store(true);
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread late_reader([&] {
    lock.lock_shared();
    late_reader_in.store(true);
    lock.unlock_shared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Writer is waiting, so the late reader must be blocked behind it.
  EXPECT_FALSE(late_reader_in.load());
  lock.unlock_shared();
  writer.join();
  late_reader.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_TRUE(late_reader_in.load());
}

TEST(Catalog, RwViewListsBaselinesAndSmokes) {
  // At least the 3 baselines + striped and central QSV shared mode (a
  // floor, so new registrations don't break unrelated suites).
  const auto rwlocks = qsv::catalog::rwlocks();
  EXPECT_GE(rwlocks.size(), 5u);
  for (const auto* entry : rwlocks) {
    auto lock = entry->make(4);
    qsv::workload::VersionedCells cells;
    std::atomic<std::uint64_t> torn{0};
    qsv::harness::ThreadTeam::run(4, [&](std::size_t rank) {
      qsv::workload::RwMix mix(0.7, rank);
      for (int i = 0; i < 1000; ++i) {
        if (mix.next_is_read()) {
          lock->lock_shared();
          if (!cells.read_consistent()) torn.fetch_add(1);
          lock->unlock_shared();
        } else {
          lock->lock();
          cells.write();
          lock->unlock();
        }
      }
    });
    EXPECT_EQ(torn.load(), 0u) << entry->name;
  }
}
