// trace_test.cpp — the event tracer and handoff analysis.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/qsv_mutex.hpp"
#include "harness/team.hpp"
#include "trace/trace.hpp"

namespace qt = qsv::trace;

TEST(TraceSession, RecordsAndMergesSingleThread) {
  qt::TraceSession s(64);
  s.record(qt::Kind::kUser, 1);
  s.record(qt::Kind::kUser, 2);
  s.record(qt::Kind::kUser, 3);
  const auto events = s.merge();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].payload, 1u);
  EXPECT_EQ(events[2].payload, 3u);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  EXPECT_LE(events[1].t_ns, events[2].t_ns);
}

TEST(TraceSession, CapacityRoundsUpToPowerOfTwo) {
  qt::TraceSession s(100);
  EXPECT_EQ(s.capacity_per_thread(), 128u);
}

TEST(TraceSession, RingOverwriteKeepsNewestEvents) {
  qt::TraceSession s(8);
  for (std::uint64_t i = 0; i < 20; ++i) s.record(qt::Kind::kUser, i);
  const auto events = s.merge();
  ASSERT_EQ(events.size(), 8u);          // only the ring survives
  EXPECT_EQ(s.recorded(), 20u);          // but all were counted
  EXPECT_EQ(events.front().payload, 12u);  // oldest surviving = 20-8
  EXPECT_EQ(events.back().payload, 19u);
}

TEST(TraceSession, MergeIsTimeOrderedAcrossThreads) {
  qt::TraceSession s(1 << 10);
  qsv::harness::ThreadTeam::run(4, [&](std::size_t rank) {
    for (int i = 0; i < 100; ++i) {
      s.record(qt::Kind::kUser, rank);
    }
  });
  const auto events = s.merge();
  ASSERT_EQ(events.size(), 400u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns);
  }
}

TEST(TraceSession, CsvHasHeaderAndOneLinePerEvent) {
  qt::TraceSession s(16);
  s.record(qt::Kind::kUser, 7);
  s.record(qt::Kind::kAcquired, 9);
  std::ostringstream os;
  s.dump_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("t_ns,thread,kind,payload\n"), std::string::npos);
  // header + 2 events = 3 newlines
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(TracedLock, EmitsAcquireAcquiredReleaseTriples) {
  qt::TraceSession s(1 << 10);
  qt::TracedLock<qsv::core::QsvMutex<>> lock(s, /*id=*/42);
  for (int i = 0; i < 10; ++i) {
    lock.lock();
    lock.unlock();
  }
  const auto events = s.merge();
  ASSERT_EQ(events.size(), 30u);
  for (std::size_t i = 0; i < events.size(); i += 3) {
    EXPECT_EQ(events[i].kind, qt::Kind::kAcquireStart);
    EXPECT_EQ(events[i + 1].kind, qt::Kind::kAcquired);
    EXPECT_EQ(events[i + 2].kind, qt::Kind::kReleased);
    EXPECT_EQ(events[i].payload, 42u);
  }
}

TEST(HandoffStats, CountsAcquisitionsPerThread) {
  qt::TraceSession s(1 << 12);
  qt::TracedLock<qsv::core::QsvMutex<>> lock(s, 1);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOps = 200;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps; ++i) {
      lock.lock();
      lock.unlock();
    }
  });
  const auto stats = qt::analyze_handoffs(s.merge(), 1);
  std::uint64_t total = 0;
  for (auto a : stats.acquisitions) total += a;
  EXPECT_EQ(total, kThreads * kOps);
}

TEST(HandoffStats, ImbalanceIsOneForPerfectlyEvenRun) {
  qt::HandoffStats stats;
  stats.acquisitions = {100, 100, 100};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
  stats.acquisitions = {50, 100, 0};  // zero participants are ignored
  EXPECT_DOUBLE_EQ(stats.imbalance(), 2.0);
}

TEST(HandoffStats, SeparatesLockIds) {
  qt::TraceSession s(1 << 10);
  qt::TracedLock<qsv::core::QsvMutex<>> a(s, 1);
  qt::TracedLock<qsv::core::QsvMutex<>> b(s, 2);
  a.lock();
  a.unlock();
  b.lock();
  b.unlock();
  b.lock();
  b.unlock();
  const auto events = s.merge();
  const auto sa = qt::analyze_handoffs(events, 1);
  const auto sb = qt::analyze_handoffs(events, 2);
  std::uint64_t ta = 0, tb = 0;
  for (auto x : sa.acquisitions) ta += x;
  for (auto x : sb.acquisitions) tb += x;
  EXPECT_EQ(ta, 1u);
  EXPECT_EQ(tb, 2u);
}

TEST(HandoffStats, WaitTimesAreNonZeroUnderContention) {
  qt::TraceSession s(1 << 12);
  qt::TracedLock<qsv::core::QsvMutex<>> lock(s, 5);
  qsv::harness::ThreadTeam::run(4, [&](std::size_t) {
    for (int i = 0; i < 500; ++i) {
      lock.lock();
      lock.unlock();
    }
  });
  const auto stats = qt::analyze_handoffs(s.merge(), 5);
  std::uint64_t wait = 0;
  for (auto w : stats.total_wait_ns) wait += w;
  EXPECT_GT(wait, 0u);
  EXPECT_GT(stats.handoffs, 0u);
}
