// workload_test.cpp — workload generators and the bounded ring.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "harness/team.hpp"
#include "platform/affinity.hpp"
#include "platform/timing.hpp"
#include "workload/critical_section.hpp"
#include "workload/phases.hpp"
#include "workload/ring.hpp"
#include "workload/rw_mix.hpp"

namespace qw = qsv::workload;

TEST(BusyWait, ApproximatesRequestedDuration) {
  const auto t0 = qsv::platform::now_ns();
  qw::busy_wait_ns(200'000);  // 200us
  const auto elapsed = qsv::platform::now_ns() - t0;
  EXPECT_GE(elapsed, 200'000u);
  EXPECT_LT(elapsed, 5'000'000u);  // sane upper bound even under load
}

TEST(BusyWait, ZeroReturnsImmediately) {
  const auto t0 = qsv::platform::now_ns();
  qw::busy_wait_ns(0);
  EXPECT_LT(qsv::platform::now_ns() - t0, 100'000u);
}

TEST(GuardedCounter, DetectsUnsynchronizedAccess) {
  // Without a lock, concurrent bumps must (with overwhelming
  // probability) tear the value/shadow pair or lose updates. On one
  // processor the bumps hardly ever interleave mid-update, so the race
  // this test manifests cannot be produced.
  // available_cpus() rather than hardware_concurrency(): the allowed
  // set (taskset/cgroup cpuset) is what bounds real parallelism.
  if (qsv::platform::available_cpus() < 2) {
    GTEST_SKIP() << "needs >= 2 processors to manifest the data race";
  }
  qw::GuardedCounter counter;
  qsv::harness::ThreadTeam::run(8, [&](std::size_t) {
    for (int i = 0; i < 50000; ++i) counter.bump();
  });
  EXPECT_NE(counter.value(), 8u * 50000u);  // lost updates expected
}

TEST(GuardedCounter, CleanWhenSerial) {
  qw::GuardedCounter counter;
  for (int i = 0; i < 1000; ++i) counter.bump();
  EXPECT_TRUE(counter.consistent());
  EXPECT_EQ(counter.value(), 1000u);
}

TEST(RwMix, RatioIsRespected) {
  qw::RwMix mix(0.8, 42);
  int reads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) reads += mix.next_is_read() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.8, 0.02);
}

TEST(RwMix, DeterministicPerSeed) {
  qw::RwMix a(0.5, 7), b(0.5, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_is_read(), b.next_is_read());
}

TEST(VersionedCells, WriteAdvancesAllCells) {
  qw::VersionedCells cells;
  EXPECT_TRUE(cells.read_consistent());
  cells.write();
  cells.write();
  EXPECT_TRUE(cells.read_consistent());
  EXPECT_EQ(cells.version(), 2u);
}

TEST(Phases, SerialSmootherIsDeterministic) {
  const auto in = qw::phase_input(128);
  const auto a = qw::smooth_serial(in, 10);
  const auto b = qw::smooth_serial(in, 10);
  EXPECT_EQ(a, b);
}

TEST(Phases, StripDecompositionMatchesSerial) {
  const std::size_t n = 256;
  auto v = qw::phase_input(n);
  std::vector<std::int64_t> tmp(n);
  // Two "threads" (executed serially here) over disjoint strips.
  qw::smooth_strip(v, tmp, 0, n / 2);
  qw::smooth_strip(v, tmp, n / 2, n);
  std::vector<std::int64_t> ref(n);
  qw::smooth_strip(v, ref, 0, n);
  EXPECT_EQ(tmp, ref);
}

// ------------------------------------------------------------------ ring

TEST(BoundedRing, FifoSingleThread) {
  qw::BoundedRing<int> ring(4);
  ring.push(1);
  ring.push(2);
  ring.push(3);
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_EQ(ring.pop(), 3);
}

TEST(BoundedRing, TryPopOnEmpty) {
  qw::BoundedRing<int> ring(2);
  EXPECT_FALSE(ring.try_pop().has_value());
  ring.push(9);
  const auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(BoundedRing, BlocksWhenFull) {
  qw::BoundedRing<int> ring(2);
  ring.push(1);
  ring.push(2);
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    ring.push(3);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(ring.pop(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedRing, SpscTransfersEverythingInOrder) {
  qw::BoundedRing<std::uint64_t> ring(16);
  constexpr std::uint64_t kItems = 100000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) ring.push(i);
  });
  std::uint64_t next = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(ring.pop(), next++);
  }
  producer.join();
}

TEST(BoundedRing, MpmcConservesItems) {
  qw::BoundedRing<std::uint64_t> ring(8);
  constexpr std::size_t kProducers = 3, kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 20000;
  std::atomic<std::uint64_t> sum_in{0}, sum_out{0};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = p * kPerProducer + i + 1;
        sum_in.fetch_add(v, std::memory_order_relaxed);
        ring.push(v);
      }
    });
  }
  std::atomic<std::uint64_t> consumed{0};
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        if (consumed.fetch_add(1) >= kProducers * kPerProducer) break;
        sum_out.fetch_add(ring.pop(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum_in.load(), sum_out.load());
}
