// core_barrier_test.cpp — QSV episode mode (queue-walk barrier).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "barriers/barrier_concept.hpp"
#include "core/qsv_barrier.hpp"
#include "harness/team.hpp"
#include "platform/cache.hpp"
#include "platform/wait.hpp"

namespace qc = qsv::core;

TEST(QsvBarrier, SatisfiesPhaseBarrierConcept) {
  static_assert(qsv::barriers::PhaseBarrier<qc::QsvBarrier<>>);
  SUCCEED();
}

TEST(QsvBarrier, SingleThreadNeverBlocks) {
  qc::QsvBarrier<> b(1);
  for (int i = 0; i < 1000; ++i) b.arrive_and_wait();
  SUCCEED();
}

namespace {

template <typename Barrier>
void phase_integrity(std::size_t team, std::size_t episodes) {
  Barrier barrier(team);
  qsv::platform::PaddedArray<std::atomic<std::uint64_t>> stamps(team);
  for (std::size_t i = 0; i < team; ++i) stamps[i].store(0);
  std::atomic<std::uint64_t> failures{0};
  qsv::harness::ThreadTeam::run(team, [&](std::size_t rank) {
    for (std::size_t e = 1; e <= episodes; ++e) {
      stamps[rank].store(e, std::memory_order_release);
      barrier.arrive_and_wait(rank);
      for (std::size_t t = 0; t < team; ++t) {
        if (stamps[t].load(std::memory_order_acquire) != e) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      barrier.arrive_and_wait(rank);
    }
  });
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace

TEST(QsvBarrier, PhaseIntegrityTeam2) {
  phase_integrity<qc::QsvBarrier<>>(2, 1000);
}
TEST(QsvBarrier, PhaseIntegrityTeam4) {
  phase_integrity<qc::QsvBarrier<>>(4, 500);
}
TEST(QsvBarrier, PhaseIntegrityTeam7) {
  phase_integrity<qc::QsvBarrier<>>(7, 300);
}
TEST(QsvBarrier, PhaseIntegrityTeam16) {
  phase_integrity<qc::QsvBarrier<>>(16, 200);
}

TEST(QsvBarrier, PhaseIntegrityParkWait) {
  phase_integrity<qc::QsvBarrier<qsv::platform::ParkWait>>(8, 300);
}

TEST(QsvBarrier, CounterConsistencyLongRun) {
  constexpr std::size_t kTeam = 6, kEpisodes = 2000;
  qc::QsvBarrier<> barrier(kTeam);
  std::atomic<std::uint64_t> counter{0};
  std::atomic<std::uint64_t> failures{0};
  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t) {
    for (std::size_t e = 1; e <= kEpisodes; ++e) {
      counter.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait();
      if (counter.load(std::memory_order_relaxed) != kTeam * e) {
        failures.fetch_add(1);
      }
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(failures.load(), 0u);
}

TEST(QsvBarrier, TwoBarriersInterleaved) {
  // Alternating between two independent episode variables must not mix
  // their queues.
  constexpr std::size_t kTeam = 4, kEpisodes = 500;
  qc::QsvBarrier<> ba(kTeam), bb(kTeam);
  std::atomic<std::uint64_t> a{0}, b{0}, failures{0};
  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t) {
    for (std::size_t e = 1; e <= kEpisodes; ++e) {
      a.fetch_add(1);
      ba.arrive_and_wait();
      if (a.load() != kTeam * e) failures.fetch_add(1);
      b.fetch_add(1);
      bb.arrive_and_wait();
      if (b.load() != kTeam * e) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0u);
}
