// harness_test.cpp — measurement infrastructure.
#include <gtest/gtest.h>

#include <sstream>

#include "catalog/catalog.hpp"
#include "harness/options.hpp"
#include "platform/affinity.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "harness/team.hpp"

namespace qh = qsv::harness;

TEST(Table, AlignsAndEmitsCsv) {
  qh::Table t({"algo", "threads", "mops"});
  t.add_row({"mcs", "8", qh::Table::num(12.345, 2)});
  t.add_row({"tas", "8", qh::Table::num(1.2, 2)});
  std::ostringstream human, csv;
  t.print(human);
  t.print_csv(csv);
  EXPECT_NE(human.str().find("mcs"), std::string::npos);
  EXPECT_NE(human.str().find("12.35"), std::string::npos);
  EXPECT_EQ(csv.str(), "algo,threads,mops\nmcs,8,12.35\ntas,8,1.20\n");
}

TEST(Options, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--threads=4", "--seconds=0.25", "--csv"};
  qh::Options opts(4, const_cast<char**>(argv), {"threads", "seconds"});
  EXPECT_EQ(opts.get_u64("threads", 1), 4u);
  EXPECT_DOUBLE_EQ(opts.get_double("seconds", 1.0), 0.25);
  EXPECT_TRUE(opts.csv());
  EXPECT_EQ(opts.get_u64("missing", 7), 7u);
}

TEST(Options, StringValues) {
  const char* argv[] = {"prog", "--algo=mcs"};
  qh::Options opts(2, const_cast<char**>(argv), {"algo"});
  EXPECT_EQ(opts.get_string("algo", "x"), "mcs");
  EXPECT_EQ(opts.get_string("other", "dflt"), "dflt");
}

TEST(ThreadTeam, RunsAllRanksExactlyOnce) {
  std::vector<std::atomic<int>> hits(8);
  qh::ThreadTeam::run(8, [&](std::size_t rank) { hits[rank].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, PropagatesExceptions) {
  EXPECT_THROW(
      qh::ThreadTeam::run(4,
                          [&](std::size_t rank) {
                            if (rank == 2) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
}

TEST(Runner, ProducesConsistentThroughput) {
  // The duration/throughput bounds assert genuinely-overlapping
  // execution; a single processor serializes the team and the measured
  // window stretches arbitrarily past the configured one.
  // available_cpus() rather than hardware_concurrency(): the allowed
  // set (taskset/cgroup cpuset) is what bounds real parallelism.
  if (qsv::platform::available_cpus() < 2) {
    GTEST_SKIP() << "needs >= 2 processors to overlap the team";
  }
  auto lock = qsv::catalog::find("mcs")->make(4);
  qh::LockRunConfig cfg;
  cfg.threads = 4;
  cfg.seconds = 0.1;
  const auto result = qh::run_lock_contention(*lock, cfg);
  EXPECT_TRUE(result.mutual_exclusion_ok);
  EXPECT_GT(result.total_ops, 0u);
  EXPECT_GT(result.throughput_mops(), 0.0);
  EXPECT_EQ(result.per_thread_ops.size(), 4u);
  EXPECT_NEAR(result.duration_s, 0.1, 0.15);
}

TEST(Runner, LatencyHistogramWhenRequested) {
  auto lock = qsv::catalog::find("ticket")->make(2);
  qh::LockRunConfig cfg;
  cfg.threads = 2;
  cfg.seconds = 0.05;
  cfg.record_latency = true;
  const auto result = qh::run_lock_contention(*lock, cfg);
  EXPECT_EQ(result.latency.count(), result.total_ops);
  EXPECT_GT(result.latency.mean(), 0.0);
}

TEST(Catalogues, IncludeQsvEntries) {
  const auto* qsv_lock = qsv::catalog::find("qsv");
  const auto* qsv_barrier = qsv::catalog::find("qsv-episode");
  const auto* qsv_rw = qsv::catalog::find("qsv-rw");
  ASSERT_NE(qsv_lock, nullptr);
  ASSERT_NE(qsv_barrier, nullptr);
  ASSERT_NE(qsv_rw, nullptr);
  EXPECT_EQ(qsv_lock->family, qsv::catalog::Family::kLock);
  EXPECT_EQ(qsv_barrier->family, qsv::catalog::Family::kBarrier);
  EXPECT_EQ(qsv_rw->family, qsv::catalog::Family::kRwLock);
}

TEST(Catalogues, EveryLockPassesRunnerIntegrity) {
  for (const auto* entry : qsv::catalog::locks()) {
    auto lock = entry->make(4);
    qh::LockRunConfig cfg;
    cfg.threads = 4;
    cfg.seconds = 0.04;
    const auto result = qh::run_lock_contention(*lock, cfg);
    EXPECT_TRUE(result.mutual_exclusion_ok) << entry->name;
    EXPECT_GT(result.total_ops, 0u) << entry->name;
  }
}
