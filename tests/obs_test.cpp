// obs_test — the telemetry registry: registration lifecycle, naming,
// the master switch, snapshots, the hazard log, and live hazard
// detection. Every assertion tolerates -DQSV_OBS=0 (records are null,
// the registry is empty) by skipping the observed-path checks.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/qsv_mutex.hpp"
#include "core/qsv_rwlock.hpp"
#include "obs/hook.hpp"
#include "obs/registry.hpp"
#include "platform/wait.hpp"
#include "platform/waiter.hpp"

namespace {

namespace qc = qsv::core;
namespace qo = qsv::obs;

bool dump_mentions(const std::string& needle) {
  return qo::dump().find(needle) != std::string::npos;
}

TEST(ObsRegistry, RegistersOnConstructionUnregistersOnDestruction) {
  const std::size_t before = qo::size();
  {
    qc::QsvMutex<qsv::platform::SpinWait> m;
    if (m.telemetry() == nullptr) GTEST_SKIP() << "telemetry compiled out";
    EXPECT_EQ(qo::size(), before + 1);
    bool found = false;
    for (const qo::LockStats& st : qo::snapshot()) {
      if (st.instance == static_cast<const void*>(&m)) {
        found = true;
        EXPECT_EQ(st.kind, "qsv");
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(qo::size(), before);
}

TEST(ObsRegistry, SetNameRenamesTheRecord) {
  qc::QsvMutex<qsv::platform::SpinWait> m;
  if (m.telemetry() == nullptr) GTEST_SKIP() << "telemetry compiled out";
  qo::set_name(&m, "ledger-for-test");
  qo::LockStats st;
  ASSERT_TRUE(qo::stat_by_name("ledger-for-test", st));
  EXPECT_EQ(st.kind, "qsv");
  EXPECT_TRUE(dump_mentions("ledger-for-test"));
  EXPECT_FALSE(qo::dump_stat("ledger-for-test").empty());
  EXPECT_TRUE(qo::dump_stat("no-such-lock-name").empty());
  qo::LockStats missing;
  EXPECT_FALSE(qo::stat_by_name("no-such-lock-name", missing));
}

TEST(ObsRegistry, DisabledConstructionCarriesNoRecord) {
  const std::size_t before = qo::size();
  qo::set_enabled(false);
  qc::QsvMutex<qsv::platform::SpinWait> dark;
  qo::set_enabled(true);
  EXPECT_EQ(dark.telemetry(), nullptr);
  EXPECT_EQ(qo::size(), before);
  // The switch gates only registration: a lock constructed after
  // re-enabling is observed again.
  qc::QsvMutex<qsv::platform::SpinWait> lit;
#if QSV_OBS
  EXPECT_NE(lit.telemetry(), nullptr);
#else
  EXPECT_EQ(lit.telemetry(), nullptr);
#endif
  // Unobserved locks still work.
  dark.lock();
  dark.unlock();
}

TEST(ObsRegistry, SharedAcquisitionsCountOnTheReaderFace) {
  qc::QsvRwLock<qsv::platform::SpinWait> rw;
  if (rw.telemetry() == nullptr) GTEST_SKIP() << "telemetry compiled out";
  const qo::LockRec* rec = rw.telemetry();
  const std::uint64_t shared0 = rec->shared_acquisitions();
  const std::uint64_t excl0 = rec->acquisitions();
  for (int i = 0; i < 5; ++i) {
    rw.lock_shared();
    rw.unlock_shared();
  }
  rw.lock();
  rw.unlock();
  EXPECT_EQ(rec->shared_acquisitions(), shared0 + 5);
  EXPECT_EQ(rec->acquisitions(), excl0 + 1);
}

TEST(ObsHazards, RecordHazardRoundTripsThroughTheLog) {
  qo::clear_hazard_log();
  qo::record_hazard("synthetic inversion A -> B -> A");
  const std::vector<std::string> log = qo::hazard_log();
#if QSV_OBS
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].find("synthetic inversion"), std::string::npos);
#endif
  qo::clear_hazard_log();
  EXPECT_TRUE(qo::hazard_log().empty());
}

TEST(ObsHazards, LogIsBoundedAtTheCap) {
  qo::clear_hazard_log();
  for (std::size_t i = 0; i < qo::kHazardLogCap + 10; ++i) {
    qo::record_hazard("flood entry " + std::to_string(i));
  }
  const std::vector<std::string> log = qo::hazard_log();
#if QSV_OBS
  ASSERT_EQ(log.size(), qo::kHazardLogCap);
  // Oldest entries were dropped; the newest survives at the back.
  EXPECT_NE(log.back().find(std::to_string(qo::kHazardLogCap + 9)),
            std::string::npos);
#endif
  qo::clear_hazard_log();
}

TEST(ObsHazards, DetectHazardsFlagsStarvationByWorstObservedWait) {
  qc::QsvMutex<qsv::platform::SpinYieldWait> m;
  if (m.telemetry() == nullptr) GTEST_SKIP() << "telemetry compiled out";
  qo::set_name(&m, "starved-for-test");
  // Manufacture one contended acquisition with a multi-millisecond
  // wait, then ask the detector with a 1 ms starvation threshold.
  m.lock();
  std::thread waiter([&m] {
    m.lock();
    m.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  m.unlock();
  waiter.join();
  ASSERT_GT(m.telemetry()->max_wait_ns(), 1'000'000u);
  bool flagged = false;
  for (const std::string& h :
       qo::detect_hazards(/*long_hold_ns=*/1'000'000'000'000ULL,
                          /*starvation_ns=*/1'000'000)) {
    if (h.find("starved-for-test") != std::string::npos &&
        h.find("starvation") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
  // With thresholds far above anything observed, the record is quiet.
  for (const std::string& h :
       qo::detect_hazards(1'000'000'000'000ULL, 1'000'000'000'000ULL)) {
    EXPECT_EQ(h.find("starved-for-test"), std::string::npos);
  }
}

TEST(ObsAdaptive, RegistryModeTogglesAndBoundsTheBudget) {
  // The toggle itself is observable regardless of QSV_OBS.
  EXPECT_FALSE(qo::adaptive_from_registry());
  qo::set_adaptive_from_registry(true);
  EXPECT_TRUE(qo::adaptive_from_registry());
  // An adaptive waiter bound to a live record must keep producing
  // sane budgets while the registry mode is on.
  qc::QsvMutex<qsv::platform::AdaptiveWait> m;
  m.lock();
  std::thread t([&m] {
    m.lock();
    m.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  m.unlock();
  t.join();
  qo::set_adaptive_from_registry(false);
  EXPECT_FALSE(qo::adaptive_from_registry());
}

}  // namespace
