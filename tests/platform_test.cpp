// platform_test.cpp — unit and property tests for the platform substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "platform/arch.hpp"
#include "platform/backoff.hpp"
#include "platform/cache.hpp"
#include "platform/histogram.hpp"
#include "platform/node_arena.hpp"
#include "platform/rng.hpp"
#include "platform/stats.hpp"
#include "platform/thread_id.hpp"
#include "platform/timing.hpp"
#include "platform/wait.hpp"

namespace qp = qsv::platform;

// ---------------------------------------------------------------- arch

TEST(Arch, RoundUp) {
  EXPECT_EQ(qp::round_up(0, 64), 0u);
  EXPECT_EQ(qp::round_up(1, 64), 64u);
  EXPECT_EQ(qp::round_up(64, 64), 64u);
  EXPECT_EQ(qp::round_up(65, 64), 128u);
}

TEST(Arch, IsPow2) {
  EXPECT_FALSE(qp::is_pow2(0));
  EXPECT_TRUE(qp::is_pow2(1));
  EXPECT_TRUE(qp::is_pow2(2));
  EXPECT_FALSE(qp::is_pow2(3));
  EXPECT_TRUE(qp::is_pow2(1ULL << 40));
  EXPECT_FALSE(qp::is_pow2((1ULL << 40) + 1));
}

TEST(Arch, NextPow2) {
  EXPECT_EQ(qp::next_pow2(1), 1u);
  EXPECT_EQ(qp::next_pow2(2), 2u);
  EXPECT_EQ(qp::next_pow2(3), 4u);
  EXPECT_EQ(qp::next_pow2(63), 64u);
  EXPECT_EQ(qp::next_pow2(64), 64u);
  EXPECT_EQ(qp::next_pow2(65), 128u);
}

TEST(Arch, CeilLog2) {
  EXPECT_EQ(qp::ceil_log2(1), 0u);
  EXPECT_EQ(qp::ceil_log2(2), 1u);
  EXPECT_EQ(qp::ceil_log2(3), 2u);
  EXPECT_EQ(qp::ceil_log2(4), 2u);
  EXPECT_EQ(qp::ceil_log2(5), 3u);
  EXPECT_EQ(qp::ceil_log2(1024), 10u);
}

TEST(Arch, Log2Pow2) {
  EXPECT_EQ(qp::log2_pow2(1), 0u);
  EXPECT_EQ(qp::log2_pow2(2), 1u);
  EXPECT_EQ(qp::log2_pow2(1024), 10u);
}

// --------------------------------------------------------------- cache

TEST(Cache, PaddedElementsDoNotShareLines) {
  qp::PaddedArray<std::uint64_t> arr(8);
  for (std::size_t i = 0; i + 1 < arr.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i]);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1]);
    EXPECT_GE(b - a, qp::kFalseSharingRange);
  }
}

TEST(Cache, PaddedArrayFootprintCountsPadding) {
  qp::PaddedArray<char> arr(4);
  EXPECT_GE(arr.footprint_bytes(), 4 * qp::kFalseSharingRange);
}

TEST(Cache, MakeLineAlignedRespectsAlignment) {
  auto p = qp::make_line_aligned<std::uint64_t>(42u);
  EXPECT_EQ(*p, 42u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.get()) %
                qp::kFalseSharingRange,
            0u);
}

// ------------------------------------------------------------- backoff

TEST(Backoff, ExponentialDoublesUpToCap) {
  qp::ExponentialBackoff b(4, 64);
  EXPECT_EQ(b.current(), 4u);
  b();
  EXPECT_EQ(b.current(), 8u);
  b();
  b();
  b();
  EXPECT_EQ(b.current(), 64u);
  b();
  EXPECT_EQ(b.current(), 64u);  // capped
  b.reset();
  EXPECT_EQ(b.current(), 4u);
}

TEST(Backoff, ProportionalScalesWithDistance) {
  // Behavioral check only: longer distance must not return sooner.
  qp::ProportionalBackoff b(1);
  const auto t0 = qp::now_ns();
  b.wait(1);
  const auto t1 = qp::now_ns();
  b.wait(512);
  const auto t2 = qp::now_ns();
  EXPECT_GE(t2 - t1, t1 - t0);
}

// ----------------------------------------------------------------- rng

TEST(Rng, SplitMixDeterministic) {
  qp::SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministicAndSeedSensitive) {
  qp::Xoshiro256 a(1), b(1), c(2);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, NextBelowStaysInRange) {
  qp::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  qp::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyRoughlyMatches) {
  qp::Xoshiro256 rng(99);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

// --------------------------------------------------------------- stats

TEST(Stats, WelfordMatchesClosedForm) {
  qp::OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, MergeEqualsSequential) {
  qp::OnlineStats whole, left, right;
  qp::Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
}

TEST(Stats, MergeWithEmptySides) {
  qp::OnlineStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(qp::quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(qp::quantile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(qp::quantile(v, 0.5), 5.5);
}

TEST(Stats, JainIndexBounds) {
  std::vector<std::uint64_t> fair{100, 100, 100, 100};
  std::vector<std::uint64_t> unfair{400, 0, 0, 0};
  EXPECT_DOUBLE_EQ(qp::jain_index(fair), 1.0);
  EXPECT_DOUBLE_EQ(qp::jain_index(unfair), 0.25);
  EXPECT_DOUBLE_EQ(qp::jain_index({}), 1.0);
}

TEST(Stats, CvZeroWhenUniform) {
  std::vector<std::uint64_t> uniform{7, 7, 7};
  EXPECT_DOUBLE_EQ(qp::cv(uniform), 0.0);
}

// ----------------------------------------------------------- histogram

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(qp::LogHistogram::bucket_of(0), 0u);
  EXPECT_EQ(qp::LogHistogram::bucket_of(1), 0u);
  EXPECT_EQ(qp::LogHistogram::bucket_of(2), 1u);
  EXPECT_EQ(qp::LogHistogram::bucket_of(3), 1u);
  EXPECT_EQ(qp::LogHistogram::bucket_of(4), 2u);
  EXPECT_EQ(qp::LogHistogram::bucket_of(1023), 9u);
  EXPECT_EQ(qp::LogHistogram::bucket_of(1024), 10u);
}

TEST(Histogram, MeanAndCount) {
  qp::LogHistogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, QuantileUpperBoundMonotone) {
  qp::LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  const auto p50 = h.quantile_upper_bound(0.5);
  const auto p99 = h.quantile_upper_bound(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p50, 500u);  // true p50 is ~500; bound is >= the value
}

TEST(Histogram, MergeAddsCounts) {
  qp::LogHistogram a, b;
  a.add(5);
  b.add(500);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_FALSE(a.summary().empty());
}

// ----------------------------------------------------------- thread id

TEST(ThreadId, StableWithinThreadAndUniqueWhileConcurrentlyLive) {
  const auto mine = qp::thread_index();
  EXPECT_EQ(mine, qp::thread_index());
  // Hold every thread alive until all have registered: indices are
  // recycled at thread exit, so uniqueness is guaranteed only among
  // concurrently live threads (exactly what slot-indexed algorithms
  // need).
  std::set<std::size_t> seen;
  std::mutex mu;
  std::atomic<std::size_t> registered{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      const auto idx = qp::thread_index();
      {
        std::lock_guard<std::mutex> g(mu);
        seen.insert(idx);
      }
      registered.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
    });
  }
  while (registered.load() != 8) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> g(mu);
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(seen.count(mine), 0u);
  }
  go.store(true);
  for (auto& t : threads) t.join();
}

TEST(ThreadId, IndicesAreRecycledAfterThreadExit) {
  // Sequential short-lived threads reuse indices instead of growing the
  // watermark without bound — the property that lets thread-indexed
  // structures (Graunke-Thakkar flags, cohort maps) be sized by
  // kMaxThreads in thread-churning processes.
  const auto before = qp::thread_index_watermark();
  for (int i = 0; i < 3 * static_cast<int>(qp::kMaxThreads); ++i) {
    std::thread([] { (void)qp::thread_index(); }).join();
  }
  const auto after = qp::thread_index_watermark();
  EXPECT_LE(after, before + 2);  // churn must not mint churn-many ids
  EXPECT_LT(after, qp::kMaxThreads);
}

// ---------------------------------------------------------------- wait

template <typename Policy>
class WaitPolicyTest : public ::testing::Test {};

// The three pinned strategies plus both runtime dispatchers — policies
// are instances now (tunable budgets, adaptive state), so the tests
// construct one and call through it.
using Policies =
    ::testing::Types<qp::SpinWait, qp::SpinYieldWait, qp::ParkWait,
                     qp::AdaptiveWait, qp::RuntimeWait>;
TYPED_TEST_SUITE(WaitPolicyTest, Policies);

TYPED_TEST(WaitPolicyTest, ReturnsImmediatelyWhenAlreadyChanged) {
  TypeParam policy{};
  std::atomic<std::uint32_t> flag{1};
  policy.wait_while_equal(flag, 0u);  // flag != expected: no wait
  SUCCEED();
}

TYPED_TEST(WaitPolicyTest, WakesOnStore) {
  TypeParam policy{};
  std::atomic<std::uint32_t> flag{0};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    flag.store(1, std::memory_order_release);
    policy.notify_all(flag);
  });
  policy.wait_while_equal(flag, 0u);
  EXPECT_EQ(flag.load(), 1u);
  waker.join();
}

TYPED_TEST(WaitPolicyTest, PredicateWaitCompletes) {
  TypeParam policy{};
  std::atomic<std::uint32_t> word{0};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    word.fetch_add(3, std::memory_order_release);
    policy.notify_all(word);
  });
  policy.wait_until(word, [&] {
    return word.load(std::memory_order_acquire) >= 3;
  });
  EXPECT_GE(word.load(), 3u);
  waker.join();
}

TEST(RuntimeWaitDispatch, EveryPolicyWaitsAndWakes) {
  for (const qsv::wait_policy p : qsv::kAllWaitPolicies) {
    qp::RuntimeWait w(p);
    EXPECT_STREQ(w.name(), qsv::wait_policy_name(p));
    std::atomic<std::uint32_t> flag{0};
    std::thread waker([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      flag.store(7, std::memory_order_release);
      w.notify_all(flag);
    });
    w.wait_while_equal(flag, 0u);
    EXPECT_EQ(flag.load(), 7u);
    waker.join();
  }
}

TEST(RuntimeWaitDispatch, SpinBudgetIsTunablePerInstance) {
  qp::RuntimeWait w(qsv::wait_policy::spin_yield);
  EXPECT_EQ(w.spin_budget(), qsv::get_default_spin_budget());
  w.set_spin_budget(17);
  EXPECT_EQ(w.spin_budget(), 17u);
  // Another instance is untouched: the budget is policy-object state,
  // not a global.
  qp::RuntimeWait other(qsv::wait_policy::spin_yield);
  EXPECT_EQ(other.spin_budget(), qsv::get_default_spin_budget());
}

// ---------------------------------------------------------- node arena

namespace {
struct TestNode {
  std::uint64_t payload = 0;
};
}  // namespace

TEST(NodeArena, ReusesThroughLocalCache) {
  auto& arena = qp::NodeArena<TestNode>::instance();
  TestNode* a = arena.acquire();
  arena.release(a);
  TestNode* b = arena.acquire();
  EXPECT_EQ(a, b);  // same thread gets its cached node back
  arena.release(b);
}

TEST(NodeArena, DistinctWhileHeld) {
  auto& arena = qp::NodeArena<TestNode>::instance();
  TestNode* a = arena.acquire();
  TestNode* b = arena.acquire();
  EXPECT_NE(a, b);
  arena.release(a);
  arena.release(b);
}

TEST(HeldMap, InsertFindErase) {
  auto& map = qp::HeldMap<TestNode>::local();
  int key1 = 0, key2 = 0;
  TestNode n1, n2;
  auto& e1 = map.insert(&key1, &n1);
  auto& e2 = map.insert(&key2, &n2);
  EXPECT_EQ(map.find(&key1).node, &n1);
  EXPECT_EQ(map.find(&key2).node, &n2);
  map.erase(e1);
  EXPECT_EQ(map.find(&key2).node, &n2);
  map.erase(e2);
}

TEST(HeldMap, SupportsNestedHolds) {
  auto& map = qp::HeldMap<TestNode>::local();
  std::vector<int> keys(16);
  std::vector<TestNode> nodes(16);
  for (int i = 0; i < 16; ++i) map.insert(&keys[i], &nodes[i]);
  for (int i = 15; i >= 0; --i) {
    auto& e = map.find(&keys[i]);
    EXPECT_EQ(e.node, &nodes[i]);
    map.erase(e);
  }
}

// The single-slot fast cache must make the steady-state acquire/release
// cycle allocation-free: after warm-up, cycling one node (or the
// lock/unlock pattern that produces it) never grows the arena.
TEST(NodeArena, SteadyStateCycleIsAllocationFree) {
  struct FastCacheNode {
    std::uint64_t payload = 0;
  };
  auto& arena = qp::NodeArena<FastCacheNode>::instance();
  FastCacheNode* warm = arena.acquire();  // warm this thread's fast slot
  arena.release(warm);
  const std::size_t before = arena.allocated();
  for (int i = 0; i < 10000; ++i) {
    FastCacheNode* n = arena.acquire();
    EXPECT_EQ(n, warm);  // fast slot round-trips the same node
    arena.release(n);
  }
  EXPECT_EQ(arena.allocated(), before);
}

// Fast slot holds one node; deeper nesting spills to the vector cache and
// drains back without touching the central arena.
TEST(NodeArena, FastSlotThenVectorSpill) {
  struct SpillNode {
    std::uint64_t payload = 0;
  };
  auto& arena = qp::NodeArena<SpillNode>::instance();
  SpillNode* a = arena.acquire();
  SpillNode* b = arena.acquire();
  SpillNode* c = arena.acquire();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  arena.release(a);  // -> fast slot
  arena.release(b);  // -> vector
  arena.release(c);  // -> vector
  const std::size_t before = arena.allocated();
  EXPECT_EQ(arena.acquire(), a);  // fast slot first
  SpillNode* d = arena.acquire();
  SpillNode* e = arena.acquire();
  EXPECT_TRUE((d == b && e == c) || (d == c && e == b));
  EXPECT_EQ(arena.allocated(), before);  // all served from caches
  arena.release(a);
  arena.release(d);
  arena.release(e);
}

// The uncontended lock/unlock pattern — insert then immediately find and
// erase the same owner — must hit the hints, including after the slot has
// been vacated and re-used many times.
TEST(HeldMap, LockUnlockCycleReusesOneSlot) {
  qp::HeldMap<TestNode> map;  // fresh map: slot layout is observable
  int key = 0;
  TestNode node;
  qp::HeldMap<TestNode>::Entry* first = nullptr;
  for (int i = 0; i < 1000; ++i) {
    auto& e = map.insert(&key, &node);
    if (first == nullptr) first = &e;
    EXPECT_EQ(&e, first);  // free-slot hint returns the vacated slot
    EXPECT_EQ(&map.find(&key), first);  // last-acquired hint hits
    map.erase(e);
  }
}

TEST(HeldMap, HintSurvivesInterleavedOwners) {
  qp::HeldMap<TestNode> map;
  int key1 = 0, key2 = 0;
  TestNode n1, n2;
  auto& e1 = map.insert(&key1, &n1);
  auto& e2 = map.insert(&key2, &n2);
  // Non-LIFO order: hints miss, the scan fallback must still be correct.
  EXPECT_EQ(map.find(&key1).node, &n1);
  map.erase(e1);
  EXPECT_EQ(map.find(&key2).node, &n2);
  map.erase(e2);
  // After full drain the next insert reuses a vacated slot.
  auto& e3 = map.insert(&key1, &n1);
  EXPECT_EQ(map.find(&key1).node, &n1);
  map.erase(e3);
}

// -------------------------------------------------------------- timing

TEST(Timing, MonotonicAndAdvancing) {
  const auto a = qp::now_ns();
  qp::spin_for(1000);
  const auto b = qp::now_ns();
  EXPECT_GE(b, a);
}

TEST(Timing, StopwatchMeasures) {
  qp::Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_ns(), 5'000'000u);
  EXPECT_GT(sw.elapsed_s(), 0.0);
}

TEST(Timing, TscCalibrationPositive) { EXPECT_GT(qp::tsc_ghz(), 0.0); }
