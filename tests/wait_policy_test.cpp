// wait_policy_test.cpp — the runtime waiting layer: QSV_WAIT parsing,
// process/instance defaults, AdaptiveWait's budget calibration, and the
// facade-wide policy matrix (every primitive x every wait_policy under
// contention).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "harness/team.hpp"
#include "platform/waiter.hpp"
#include "qsv/qsv.hpp"

namespace qp = qsv::platform;

namespace {

/// RAII guard: tests mutate the process defaults; always restore.
struct DefaultsGuard {
  qsv::wait_policy policy = qsv::get_default_wait_policy();
  std::uint32_t budget = qsv::get_default_spin_budget();
  ~DefaultsGuard() {
    qsv::set_default_wait_policy(policy);
    qsv::set_default_spin_budget(budget);
  }
};

}  // namespace

// ----------------------------------------------------- names & parsing

TEST(WaitPolicyApi, NamesRoundTrip) {
  for (const qsv::wait_policy p : qsv::kAllWaitPolicies) {
    qsv::wait_policy parsed;
    ASSERT_TRUE(qsv::wait_policy_from_string(qsv::wait_policy_name(p),
                                             parsed))
        << qsv::wait_policy_name(p);
    EXPECT_EQ(parsed, p);
  }
}

TEST(WaitPolicyApi, YieldAliasAndRejections) {
  qsv::wait_policy p = qsv::wait_policy::park;
  EXPECT_TRUE(qsv::wait_policy_from_string("yield", p));
  EXPECT_EQ(p, qsv::wait_policy::spin_yield);

  // Unknown values never map to a policy — and never touch `out`.
  p = qsv::wait_policy::park;
  for (const char* bad : {"", "Spin", "SPIN", "spin ", " spin", "futex",
                          "spinyield", "adaptive2", "spin|yield"}) {
    EXPECT_FALSE(qsv::wait_policy_from_string(bad, p)) << "'" << bad << "'";
    EXPECT_EQ(p, qsv::wait_policy::park) << "'" << bad << "'";
  }
}

TEST(WaitPolicyApi, EnvParsingAppliesPolicyAndBudget) {
  DefaultsGuard guard;
  EXPECT_TRUE(qsv::detail::apply_wait_env("park"));
  EXPECT_EQ(qsv::get_default_wait_policy(), qsv::wait_policy::park);

  EXPECT_TRUE(qsv::detail::apply_wait_env("spin_yield:4096"));
  EXPECT_EQ(qsv::get_default_wait_policy(), qsv::wait_policy::spin_yield);
  EXPECT_EQ(qsv::get_default_spin_budget(), 4096u);

  // A plain policy name leaves the budget alone.
  EXPECT_TRUE(qsv::detail::apply_wait_env("adaptive"));
  EXPECT_EQ(qsv::get_default_wait_policy(), qsv::wait_policy::adaptive);
  EXPECT_EQ(qsv::get_default_spin_budget(), 4096u);
}

TEST(WaitPolicyApi, EnvParsingRejectsUnknownValuesUnchanged) {
  DefaultsGuard guard;
  qsv::set_default_wait_policy(qsv::wait_policy::spin_yield);
  qsv::set_default_spin_budget(123);
  for (const char* bad :
       {"", "bogus", "spin:", "spin:abc", "spin:-1", "spin:1e3", "yield:0",
        "park:99999999999999999999", "adaptive:12:34", "spin yield"}) {
    EXPECT_FALSE(qsv::detail::apply_wait_env(bad)) << "'" << bad << "'";
    EXPECT_EQ(qsv::get_default_wait_policy(), qsv::wait_policy::spin_yield)
        << "'" << bad << "'";
    EXPECT_EQ(qsv::get_default_spin_budget(), 123u) << "'" << bad << "'";
  }
}

TEST(WaitPolicyApi, ProcessDefaultSeedsNewInstancesAtConstruction) {
  DefaultsGuard guard;
  qsv::set_default_wait_policy(qsv::wait_policy::park);
  qp::RuntimeWait parked;  // constructed under the park default
  qsv::set_default_wait_policy(qsv::wait_policy::spin);
  qp::RuntimeWait spinning;  // constructed under the spin default
  // The policy is fixed at construction, not read per wait.
  EXPECT_EQ(parked.policy(), qsv::wait_policy::park);
  EXPECT_EQ(spinning.policy(), qsv::wait_policy::spin);
}

// ------------------------------------------------ adaptive calibration

TEST(AdaptiveWait, ImmediateGrantsShrinkTheBudgetToTheFloor) {
  qp::AdaptiveWait w(qp::AdaptiveWait::kMaxSpinPolls);
  std::atomic<std::uint32_t> flag{1};
  // Every wait observes the flag already changed: observed wake latency
  // ~0, so the EWMA walks the budget down to the floor.
  for (int i = 0; i < 200; ++i) w.wait_while_equal(flag, 0u);
  EXPECT_EQ(w.spin_budget(), qp::AdaptiveWait::kMinSpinPolls);
}

TEST(AdaptiveWait, ParkedWaitsGrowTheBudgetTowardTheCeiling) {
  qp::AdaptiveWait w;
  const std::uint32_t initial = w.spin_budget();
  std::atomic<std::uint32_t> flag{0};
  // Each round the grant arrives far later than any spin budget, so the
  // waiter parks and records the saturating sample.
  for (int i = 0; i < 40; ++i) {
    flag.store(0, std::memory_order_relaxed);
    std::thread waker([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      flag.store(1, std::memory_order_release);
      w.notify_all(flag);
    });
    w.wait_while_equal(flag, 0u);
    waker.join();
  }
  EXPECT_GT(w.spin_budget(), initial);
  EXPECT_EQ(w.spin_budget(), qp::AdaptiveWait::kMaxSpinPolls);
}

TEST(AdaptiveWait, BudgetStaysClamped) {
  qp::AdaptiveWait w;
  w.set_spin_budget(0);
  EXPECT_GE(w.spin_budget(), qp::AdaptiveWait::kMinSpinPolls);
  w.set_spin_budget(~0u);
  EXPECT_LE(w.spin_budget(), qp::AdaptiveWait::kMaxSpinPolls);
}

TEST(AdaptiveWait, RuntimeWaitExposesTheCalibratedValue) {
  qp::RuntimeWait w(qsv::wait_policy::adaptive);
  std::atomic<std::uint32_t> flag{1};
  for (int i = 0; i < 200; ++i) w.wait_while_equal(flag, 0u);
  // Through the dispatcher, spin_budget() reports the live adaptive
  // calibration, not the static spin_yield/park budget.
  EXPECT_EQ(w.spin_budget(), qp::AdaptiveWait::kMinSpinPolls);
}

// -------------------------------------------------- the policy matrix
//
// Every facade primitive x every wait_policy acquires and releases
// under contention. Iteration counts are modest on purpose: the matrix
// proves cross-policy correctness (grants are never lost, parked
// waiters always woken), not throughput — and it must pass on 1-CPU
// hosts even for the pure-spin row.

class PolicyMatrix : public ::testing::TestWithParam<qsv::wait_policy> {
 protected:
  static constexpr std::size_t kThreads = 4;
  static constexpr std::size_t kOps = 400;
};

TEST_P(PolicyMatrix, MutexMutualExclusion) {
  qsv::mutex mu(GetParam());
  std::uint64_t guarded = 0;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps; ++i) {
      std::lock_guard<qsv::mutex> hold(mu);
      ++guarded;
    }
  });
  EXPECT_EQ(guarded, kThreads * kOps);
}

TEST_P(PolicyMatrix, SharedMutexReadersAndWriters) {
  qsv::shared_mutex rw(GetParam());
  std::uint64_t value = 0;
  std::atomic<std::uint64_t> torn{0};
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t rank) {
    for (std::size_t i = 0; i < kOps; ++i) {
      if (rank % 2 == 0) {
        rw.lock_shared();
        const std::uint64_t a = value;
        const std::uint64_t b = value;
        if (a != b) torn.fetch_add(1);
        rw.unlock_shared();
      } else {
        rw.lock();
        ++value;
        rw.unlock();
      }
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(value, (kThreads / 2) * kOps);
}

TEST_P(PolicyMatrix, CentralSharedMutexReadersAndWriters) {
  qsv::central_shared_mutex rw(GetParam());
  std::uint64_t value = 0;
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t rank) {
    for (std::size_t i = 0; i < kOps; ++i) {
      if (rank % 2 == 0) {
        rw.lock_shared();
        (void)value;
        rw.unlock_shared();
      } else {
        rw.lock();
        ++value;
        rw.unlock();
      }
    }
  });
  EXPECT_EQ(value, (kThreads / 2) * kOps);
}

TEST_P(PolicyMatrix, BarrierEpisodesStayAligned) {
  qsv::barrier bar(kThreads, GetParam());
  std::atomic<std::uint64_t> counter{0};
  std::atomic<std::uint64_t> failures{0};
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t e = 1; e <= 100; ++e) {
      counter.fetch_add(1);
      bar.arrive_and_wait(0);
      if (counter.load() != kThreads * e) failures.fetch_add(1);
      bar.arrive_and_wait(0);
    }
  });
  EXPECT_EQ(failures.load(), 0u);
}

TEST_P(PolicyMatrix, TimedMutexBoundedAndUnbounded) {
  qsv::timed_mutex tm(GetParam());
  std::uint64_t guarded = 0;
  std::atomic<std::uint64_t> timeouts{0};
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps / 4; ++i) {
      if (tm.try_lock_for(std::chrono::milliseconds(50))) {
        ++guarded;
        tm.unlock();
      } else {
        timeouts.fetch_add(1);
      }
      tm.lock();
      ++guarded;
      tm.unlock();
    }
  });
  // Under a 50ms deadline and ~free critical sections, withdrawals are
  // possible but losses are not: every entry is accounted.
  EXPECT_EQ(guarded + timeouts.load(), kThreads * (kOps / 4) * 2);
}

TEST_P(PolicyMatrix, SemaphorePermitsConserved) {
  qsv::counting_semaphore sem(2, GetParam());
  std::atomic<std::int64_t> inside{0};
  std::atomic<std::uint64_t> overs{0};
  qsv::harness::ThreadTeam::run(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kOps / 2; ++i) {
      sem.acquire();
      if (inside.fetch_add(1) >= 2) overs.fetch_add(1);
      inside.fetch_sub(1);
      sem.release();
    }
  });
  EXPECT_EQ(overs.load(), 0u);
  EXPECT_EQ(sem.available(), 2);
}

TEST_P(PolicyMatrix, CondVarHandshake) {
  qsv::mutex mu(GetParam());
  qsv::condition_variable cv(GetParam());
  int stage = 0;
  std::thread consumer([&] {
    std::unique_lock<qsv::mutex> hold(mu);
    cv.wait(mu, [&] { return stage == 1; });
    stage = 2;
    cv.notify_all();
  });
  {
    std::unique_lock<qsv::mutex> hold(mu);
    stage = 1;
  }
  cv.notify_all();
  {
    std::unique_lock<qsv::mutex> hold(mu);
    cv.wait(mu, [&] { return stage == 2; });
  }
  consumer.join();
  EXPECT_EQ(stage, 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyMatrix,
    ::testing::ValuesIn(std::begin(qsv::kAllWaitPolicies),
                        std::end(qsv::kAllWaitPolicies)),
    [](const auto& info) { return qsv::wait_policy_name(info.param); });

// ---------------------------------------------- pinned facade aliases

TEST(PinnedNames, AreTheOneRuntimeTypeWithAPinnedPolicy) {
  // The historical names still exist and still pin their policy — but
  // they are the single runtime type underneath, so one reference type
  // spans them all.
  qsv::yielding_mutex ym;
  qsv::parking_mutex pm;
  qsv::adaptive_mutex am;
  std::vector<qsv::mutex*> all{&ym, &pm, &am};
  for (qsv::mutex* m : all) {
    m->lock();
    m->unlock();
    EXPECT_TRUE(m->try_lock());
    m->unlock();
  }
}
