// integration_test.cpp — cross-module scenarios exercising the public
// API the way the examples do: locks + barriers + semaphores + rings
// composed into small applications with checkable global invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/syncvar.hpp"
#include "catalog/catalog.hpp"
#include "harness/team.hpp"
#include "locks/lock_concept.hpp"
#include "platform/rng.hpp"
#include "workload/phases.hpp"
#include "workload/ring.hpp"

namespace qc = qsv::core;

TEST(Integration, BankTransfersConserveTotal) {
  // The bank_ledger example's core: per-account QSV mutexes, random
  // transfers with ordered two-lock acquisition, total must be conserved.
  constexpr std::size_t kAccounts = 16, kTeam = 8, kTransfers = 5000;
  std::vector<qc::QsvMutex<>> locks(kAccounts);
  std::vector<std::int64_t> balance(kAccounts, 1000);

  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
    qsv::platform::Xoshiro256 rng(rank + 1);
    for (std::size_t i = 0; i < kTransfers; ++i) {
      auto from = static_cast<std::size_t>(rng.next_below(kAccounts));
      auto to = static_cast<std::size_t>(rng.next_below(kAccounts));
      if (from == to) continue;
      // Deadlock avoidance: acquire in index order.
      const auto lo = std::min(from, to), hi = std::max(from, to);
      locks[lo].lock();
      locks[hi].lock();
      const auto amount = static_cast<std::int64_t>(rng.next_below(50));
      balance[from] -= amount;
      balance[to] += amount;
      locks[hi].unlock();
      locks[lo].unlock();
    }
  });
  const auto total = std::accumulate(balance.begin(), balance.end(),
                                     std::int64_t{0});
  EXPECT_EQ(total, static_cast<std::int64_t>(kAccounts) * 1000);
}

TEST(Integration, JacobiPhasesMatchSerialUnderQsvBarrier) {
  // The jacobi_phases example's core: strip-parallel smoothing with a
  // QSV episode barrier must reproduce the serial result exactly.
  constexpr std::size_t kCells = 512, kPhases = 50, kTeam = 4;
  auto in = qsv::workload::phase_input(kCells);
  const auto expected = qsv::workload::smooth_serial(in, kPhases);

  std::vector<std::int64_t> a = in, b(kCells);
  qc::QsvBarrier<> barrier(kTeam);
  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
    const std::size_t lo = kCells * rank / kTeam;
    const std::size_t hi = kCells * (rank + 1) / kTeam;
    auto* src = &a;
    auto* dst = &b;
    for (std::size_t p = 0; p < kPhases; ++p) {
      qsv::workload::smooth_strip(*src, *dst, lo, hi);
      barrier.arrive_and_wait(rank);
      std::swap(src, dst);
      // All threads swapped; second barrier keeps phases aligned (no
      // thread may start writing dst while another still reads it).
      barrier.arrive_and_wait(rank);
    }
  });
  EXPECT_EQ((kPhases % 2 == 0 ? a : b), expected);
}

TEST(Integration, PipelineThroughRingsConservesWork) {
  // Two-stage pipeline over BoundedRings driven by QSV semaphores.
  constexpr std::uint64_t kItems = 30000;
  qsv::workload::BoundedRing<std::uint64_t> stage1(32), stage2(32);
  std::atomic<std::uint64_t> sink_sum{0};

  std::thread source([&] {
    for (std::uint64_t i = 1; i <= kItems; ++i) stage1.push(i);
    stage1.push(0);  // poison
  });
  std::thread transform([&] {
    for (;;) {
      const auto v = stage1.pop();
      if (v == 0) {
        stage2.push(0);
        break;
      }
      stage2.push(v * 2);
    }
  });
  std::thread sink([&] {
    for (;;) {
      const auto v = stage2.pop();
      if (v == 0) break;
      sink_sum.fetch_add(v, std::memory_order_relaxed);
    }
  });
  source.join();
  transform.join();
  sink.join();
  EXPECT_EQ(sink_sum.load(), kItems * (kItems + 1));  // 2 * sum(1..N)
}

TEST(Integration, MixedPrimitivesUnderOneRoof) {
  // Readers watch a version guarded by QsvRwLock while writers advance
  // it under a QSV mutex-protected episode count; a barrier closes each
  // round. Checks the primitives do not interfere through shared arenas.
  constexpr std::size_t kTeam = 6, kRounds = 300;
  qc::QsvRwLock<> rw;
  qc::QsvMutex<> mu;
  qc::QsvBarrier<> barrier(kTeam);
  std::uint64_t version = 0;  // guarded by rw
  std::uint64_t episodes = 0;  // guarded by mu
  std::atomic<std::uint64_t> torn{0};

  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t rank) {
    for (std::size_t r = 0; r < kRounds; ++r) {
      if (rank % 2 == 0) {
        rw.lock();
        ++version;
        rw.unlock();
      } else {
        rw.lock_shared();
        const auto v1 = version;
        const auto v2 = version;
        if (v1 != v2) torn.fetch_add(1);
        rw.unlock_shared();
      }
      mu.lock();
      ++episodes;
      mu.unlock();
      barrier.arrive_and_wait(rank);
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(episodes, kTeam * kRounds);
  EXPECT_EQ(version, (kTeam / 2) * kRounds);
}

TEST(Integration, CatalogueAgreesOnSmoke) {
  // Every algorithm in the unified catalogue completes a small workload
  // through the face its capability bits advertise — the "does
  // everything still link and run" canary.
  for (const auto& e : qsv::catalog::all()) {
    auto p = e.make(e.family == qsv::catalog::Family::kBarrier ? 1 : 2);
    // kSimulable and kCheckable live on the catalogue row only (tagged
    // from the simulator's and the chk checker's name lists); the
    // erased handle reports the type-derived bits.
    EXPECT_EQ(p->capabilities(),
              e.caps & ~(qsv::catalog::kSimulable | qsv::catalog::kCheckable))
        << e.name;
    if (e.has(qsv::catalog::kEpisode)) {
      p->arrive_and_wait(0);
    }
    if (e.has(qsv::catalog::kExclusive)) {
      p->lock();
      p->unlock();
    }
    if (e.has(qsv::catalog::kShared)) {
      p->lock_shared();
      p->unlock_shared();
    }
    if (e.has(qsv::catalog::kTry)) {
      EXPECT_TRUE(p->try_lock()) << e.name;
      p->unlock();
    }
    if (e.has(qsv::catalog::kTimed)) {
      EXPECT_TRUE(p->try_lock_for(std::chrono::milliseconds(5))) << e.name;
      p->unlock();
    }
    if (e.has(qsv::catalog::kEventCount)) {
      EXPECT_EQ(p->advance(), 1u) << e.name;
      EXPECT_GE(p->await(1), 1u) << e.name;
    }
  }
  SUCCEED();
}
