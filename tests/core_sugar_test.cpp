// core_sugar_test.cpp — the convenience layers: semaphore and condvar.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/condvar.hpp"
#include "core/qsv_mutex.hpp"
#include "core/semaphore.hpp"
#include "harness/team.hpp"

namespace qc = qsv::core;
using namespace std::chrono_literals;

// ------------------------------------------------------------- semaphore

TEST(QsvSemaphore, InitialPermits) {
  qc::QsvSemaphore sem(2);
  EXPECT_EQ(sem.available(), 2);
  sem.acquire();
  sem.acquire();
  EXPECT_EQ(sem.available(), 0);
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  sem.release(2);
}

TEST(QsvSemaphore, BlocksUntilRelease) {
  qc::QsvSemaphore sem(0);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    sem.acquire();
    acquired.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(acquired.load());
  sem.release();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(QsvSemaphore, BoundsConcurrencyExactly) {
  // With k permits, at most k threads may be inside simultaneously.
  constexpr std::int64_t kPermits = 3;
  constexpr std::size_t kTeam = 8;
  qc::QsvSemaphore sem(kPermits);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::atomic<std::uint64_t> violations{0};
  qsv::harness::ThreadTeam::run(kTeam, [&](std::size_t) {
    for (int i = 0; i < 2000; ++i) {
      sem.acquire();
      const int now = inside.fetch_add(1) + 1;
      if (now > kPermits) violations.fetch_add(1);
      int expect = peak.load();
      while (now > expect && !peak.compare_exchange_weak(expect, now)) {
      }
      // Hold the permit across a scheduling point so holders actually
      // overlap even on a single-processor host.
      if ((i & 0x1f) == 0) std::this_thread::yield();
      inside.fetch_sub(1);
      sem.release();
    }
  });
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_LE(peak.load(), kPermits);
  EXPECT_GE(peak.load(), 2);  // concurrency was actually exercised
  EXPECT_EQ(sem.available(), kPermits);
}

TEST(QsvSemaphore, BulkRelease) {
  qc::QsvSemaphore sem(0);
  std::atomic<int> through{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      sem.acquire();
      through.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(through.load(), 0);
  sem.release(4);
  for (auto& t : threads) t.join();
  EXPECT_EQ(through.load(), 4);
}

// --------------------------------------------------------------- condvar

TEST(QsvCondVar, SignalWakesWaiter) {
  qc::QsvMutex<> m;
  qc::QsvCondVar cv;
  bool ready = false;
  std::atomic<bool> observed{false};
  std::thread waiter([&] {
    m.lock();
    cv.wait(m, [&] { return ready; });
    observed.store(true);
    m.unlock();
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(observed.load());
  m.lock();
  ready = true;
  m.unlock();
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(observed.load());
}

TEST(QsvCondVar, NotifyAllWakesEveryone) {
  qc::QsvMutex<> m;
  qc::QsvCondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 6; ++i) {
    waiters.emplace_back([&] {
      m.lock();
      cv.wait(m, [&] { return go; });
      woke.fetch_add(1);
      m.unlock();
    });
  }
  std::this_thread::sleep_for(20ms);
  m.lock();
  go = true;
  m.unlock();
  cv.notify_all();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), 6);
}

TEST(QsvCondVar, ProducerConsumerHandshake) {
  qc::QsvMutex<> m;
  qc::QsvCondVar cv_full, cv_empty;
  int slot = 0;       // 0 = empty
  long consumed = 0;  // guarded by m
  constexpr int kItems = 2000;

  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      m.lock();
      cv_empty.wait(m, [&] { return slot == 0; });
      slot = i;
      m.unlock();
      cv_full.notify_one();
    }
  });
  std::thread consumer([&] {
    for (int i = 1; i <= kItems; ++i) {
      m.lock();
      cv_full.wait(m, [&] { return slot != 0; });
      EXPECT_EQ(slot, i);
      consumed += slot;
      slot = 0;
      m.unlock();
      cv_empty.notify_one();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed, static_cast<long>(kItems) * (kItems + 1) / 2);
}
